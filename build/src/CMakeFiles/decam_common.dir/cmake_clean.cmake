file(REMOVE_RECURSE
  "CMakeFiles/decam_common.dir/common/error.cpp.o"
  "CMakeFiles/decam_common.dir/common/error.cpp.o.d"
  "libdecam_common.a"
  "libdecam_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decam_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
