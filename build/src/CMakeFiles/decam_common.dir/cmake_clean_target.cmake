file(REMOVE_RECURSE
  "libdecam_common.a"
)
