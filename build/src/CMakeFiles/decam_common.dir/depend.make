# Empty dependencies file for decam_common.
# This may be replaced when dependencies are built.
