file(REMOVE_RECURSE
  "CMakeFiles/decam_data.dir/data/noise.cpp.o"
  "CMakeFiles/decam_data.dir/data/noise.cpp.o.d"
  "CMakeFiles/decam_data.dir/data/rng.cpp.o"
  "CMakeFiles/decam_data.dir/data/rng.cpp.o.d"
  "CMakeFiles/decam_data.dir/data/synth.cpp.o"
  "CMakeFiles/decam_data.dir/data/synth.cpp.o.d"
  "CMakeFiles/decam_data.dir/data/trigger.cpp.o"
  "CMakeFiles/decam_data.dir/data/trigger.cpp.o.d"
  "libdecam_data.a"
  "libdecam_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decam_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
