
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/noise.cpp" "src/CMakeFiles/decam_data.dir/data/noise.cpp.o" "gcc" "src/CMakeFiles/decam_data.dir/data/noise.cpp.o.d"
  "/root/repo/src/data/rng.cpp" "src/CMakeFiles/decam_data.dir/data/rng.cpp.o" "gcc" "src/CMakeFiles/decam_data.dir/data/rng.cpp.o.d"
  "/root/repo/src/data/synth.cpp" "src/CMakeFiles/decam_data.dir/data/synth.cpp.o" "gcc" "src/CMakeFiles/decam_data.dir/data/synth.cpp.o.d"
  "/root/repo/src/data/trigger.cpp" "src/CMakeFiles/decam_data.dir/data/trigger.cpp.o" "gcc" "src/CMakeFiles/decam_data.dir/data/trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decam_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
