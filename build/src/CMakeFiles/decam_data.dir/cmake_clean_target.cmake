file(REMOVE_RECURSE
  "libdecam_data.a"
)
