# Empty compiler generated dependencies file for decam_data.
# This may be replaced when dependencies are built.
