# Empty compiler generated dependencies file for decam_cv.
# This may be replaced when dependencies are built.
