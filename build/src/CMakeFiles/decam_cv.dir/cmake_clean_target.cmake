file(REMOVE_RECURSE
  "libdecam_cv.a"
)
