file(REMOVE_RECURSE
  "CMakeFiles/decam_cv.dir/cv/connected_components.cpp.o"
  "CMakeFiles/decam_cv.dir/cv/connected_components.cpp.o.d"
  "CMakeFiles/decam_cv.dir/cv/threshold.cpp.o"
  "CMakeFiles/decam_cv.dir/cv/threshold.cpp.o.d"
  "libdecam_cv.a"
  "libdecam_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decam_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
