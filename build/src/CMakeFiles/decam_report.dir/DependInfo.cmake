
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/histogram_ascii.cpp" "src/CMakeFiles/decam_report.dir/report/histogram_ascii.cpp.o" "gcc" "src/CMakeFiles/decam_report.dir/report/histogram_ascii.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/decam_report.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/decam_report.dir/report/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decam_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
