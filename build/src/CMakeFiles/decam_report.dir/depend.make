# Empty dependencies file for decam_report.
# This may be replaced when dependencies are built.
