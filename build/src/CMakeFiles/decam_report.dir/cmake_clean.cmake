file(REMOVE_RECURSE
  "CMakeFiles/decam_report.dir/report/histogram_ascii.cpp.o"
  "CMakeFiles/decam_report.dir/report/histogram_ascii.cpp.o.d"
  "CMakeFiles/decam_report.dir/report/table.cpp.o"
  "CMakeFiles/decam_report.dir/report/table.cpp.o.d"
  "libdecam_report.a"
  "libdecam_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decam_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
