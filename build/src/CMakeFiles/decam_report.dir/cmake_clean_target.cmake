file(REMOVE_RECURSE
  "libdecam_report.a"
)
