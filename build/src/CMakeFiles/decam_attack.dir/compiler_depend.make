# Empty compiler generated dependencies file for decam_attack.
# This may be replaced when dependencies are built.
