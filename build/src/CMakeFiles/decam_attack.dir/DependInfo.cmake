
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/adaptive.cpp" "src/CMakeFiles/decam_attack.dir/attack/adaptive.cpp.o" "gcc" "src/CMakeFiles/decam_attack.dir/attack/adaptive.cpp.o.d"
  "/root/repo/src/attack/coeff_matrix.cpp" "src/CMakeFiles/decam_attack.dir/attack/coeff_matrix.cpp.o" "gcc" "src/CMakeFiles/decam_attack.dir/attack/coeff_matrix.cpp.o.d"
  "/root/repo/src/attack/critical_pixels.cpp" "src/CMakeFiles/decam_attack.dir/attack/critical_pixels.cpp.o" "gcc" "src/CMakeFiles/decam_attack.dir/attack/critical_pixels.cpp.o.d"
  "/root/repo/src/attack/qp_solver.cpp" "src/CMakeFiles/decam_attack.dir/attack/qp_solver.cpp.o" "gcc" "src/CMakeFiles/decam_attack.dir/attack/qp_solver.cpp.o.d"
  "/root/repo/src/attack/scale_attack.cpp" "src/CMakeFiles/decam_attack.dir/attack/scale_attack.cpp.o" "gcc" "src/CMakeFiles/decam_attack.dir/attack/scale_attack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decam_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
