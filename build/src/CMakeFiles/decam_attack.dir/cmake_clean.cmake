file(REMOVE_RECURSE
  "CMakeFiles/decam_attack.dir/attack/adaptive.cpp.o"
  "CMakeFiles/decam_attack.dir/attack/adaptive.cpp.o.d"
  "CMakeFiles/decam_attack.dir/attack/coeff_matrix.cpp.o"
  "CMakeFiles/decam_attack.dir/attack/coeff_matrix.cpp.o.d"
  "CMakeFiles/decam_attack.dir/attack/critical_pixels.cpp.o"
  "CMakeFiles/decam_attack.dir/attack/critical_pixels.cpp.o.d"
  "CMakeFiles/decam_attack.dir/attack/qp_solver.cpp.o"
  "CMakeFiles/decam_attack.dir/attack/qp_solver.cpp.o.d"
  "CMakeFiles/decam_attack.dir/attack/scale_attack.cpp.o"
  "CMakeFiles/decam_attack.dir/attack/scale_attack.cpp.o.d"
  "libdecam_attack.a"
  "libdecam_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decam_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
