file(REMOVE_RECURSE
  "libdecam_attack.a"
)
