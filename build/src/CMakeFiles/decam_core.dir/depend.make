# Empty dependencies file for decam_core.
# This may be replaced when dependencies are built.
