file(REMOVE_RECURSE
  "CMakeFiles/decam_core.dir/core/calibration.cpp.o"
  "CMakeFiles/decam_core.dir/core/calibration.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/calibration_io.cpp.o"
  "CMakeFiles/decam_core.dir/core/calibration_io.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/ensemble.cpp.o"
  "CMakeFiles/decam_core.dir/core/ensemble.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/evaluation.cpp.o"
  "CMakeFiles/decam_core.dir/core/evaluation.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/filtering_detector.cpp.o"
  "CMakeFiles/decam_core.dir/core/filtering_detector.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/histogram_detector.cpp.o"
  "CMakeFiles/decam_core.dir/core/histogram_detector.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/multiscale.cpp.o"
  "CMakeFiles/decam_core.dir/core/multiscale.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/decam_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/reconstruction_defense.cpp.o"
  "CMakeFiles/decam_core.dir/core/reconstruction_defense.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/roc.cpp.o"
  "CMakeFiles/decam_core.dir/core/roc.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/scaling_detector.cpp.o"
  "CMakeFiles/decam_core.dir/core/scaling_detector.cpp.o.d"
  "CMakeFiles/decam_core.dir/core/steganalysis_detector.cpp.o"
  "CMakeFiles/decam_core.dir/core/steganalysis_detector.cpp.o.d"
  "libdecam_core.a"
  "libdecam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
