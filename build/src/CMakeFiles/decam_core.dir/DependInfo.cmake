
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/CMakeFiles/decam_core.dir/core/calibration.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/calibration.cpp.o.d"
  "/root/repo/src/core/calibration_io.cpp" "src/CMakeFiles/decam_core.dir/core/calibration_io.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/calibration_io.cpp.o.d"
  "/root/repo/src/core/ensemble.cpp" "src/CMakeFiles/decam_core.dir/core/ensemble.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/ensemble.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/CMakeFiles/decam_core.dir/core/evaluation.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/evaluation.cpp.o.d"
  "/root/repo/src/core/filtering_detector.cpp" "src/CMakeFiles/decam_core.dir/core/filtering_detector.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/filtering_detector.cpp.o.d"
  "/root/repo/src/core/histogram_detector.cpp" "src/CMakeFiles/decam_core.dir/core/histogram_detector.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/histogram_detector.cpp.o.d"
  "/root/repo/src/core/multiscale.cpp" "src/CMakeFiles/decam_core.dir/core/multiscale.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/multiscale.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/decam_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/reconstruction_defense.cpp" "src/CMakeFiles/decam_core.dir/core/reconstruction_defense.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/reconstruction_defense.cpp.o.d"
  "/root/repo/src/core/roc.cpp" "src/CMakeFiles/decam_core.dir/core/roc.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/roc.cpp.o.d"
  "/root/repo/src/core/scaling_detector.cpp" "src/CMakeFiles/decam_core.dir/core/scaling_detector.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/scaling_detector.cpp.o.d"
  "/root/repo/src/core/steganalysis_detector.cpp" "src/CMakeFiles/decam_core.dir/core/steganalysis_detector.cpp.o" "gcc" "src/CMakeFiles/decam_core.dir/core/steganalysis_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decam_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_cv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
