file(REMOVE_RECURSE
  "libdecam_core.a"
)
