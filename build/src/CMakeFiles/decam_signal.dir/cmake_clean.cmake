file(REMOVE_RECURSE
  "CMakeFiles/decam_signal.dir/signal/fft.cpp.o"
  "CMakeFiles/decam_signal.dir/signal/fft.cpp.o.d"
  "CMakeFiles/decam_signal.dir/signal/spectrum.cpp.o"
  "CMakeFiles/decam_signal.dir/signal/spectrum.cpp.o.d"
  "libdecam_signal.a"
  "libdecam_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decam_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
