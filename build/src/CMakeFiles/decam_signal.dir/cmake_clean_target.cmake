file(REMOVE_RECURSE
  "libdecam_signal.a"
)
