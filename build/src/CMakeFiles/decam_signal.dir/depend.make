# Empty dependencies file for decam_signal.
# This may be replaced when dependencies are built.
