file(REMOVE_RECURSE
  "libdecam_imaging.a"
)
