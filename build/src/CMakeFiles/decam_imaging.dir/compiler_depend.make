# Empty compiler generated dependencies file for decam_imaging.
# This may be replaced when dependencies are built.
