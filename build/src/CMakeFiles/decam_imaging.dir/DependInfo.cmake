
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imaging/color.cpp" "src/CMakeFiles/decam_imaging.dir/imaging/color.cpp.o" "gcc" "src/CMakeFiles/decam_imaging.dir/imaging/color.cpp.o.d"
  "/root/repo/src/imaging/draw.cpp" "src/CMakeFiles/decam_imaging.dir/imaging/draw.cpp.o" "gcc" "src/CMakeFiles/decam_imaging.dir/imaging/draw.cpp.o.d"
  "/root/repo/src/imaging/filter.cpp" "src/CMakeFiles/decam_imaging.dir/imaging/filter.cpp.o" "gcc" "src/CMakeFiles/decam_imaging.dir/imaging/filter.cpp.o.d"
  "/root/repo/src/imaging/image.cpp" "src/CMakeFiles/decam_imaging.dir/imaging/image.cpp.o" "gcc" "src/CMakeFiles/decam_imaging.dir/imaging/image.cpp.o.d"
  "/root/repo/src/imaging/image_io.cpp" "src/CMakeFiles/decam_imaging.dir/imaging/image_io.cpp.o" "gcc" "src/CMakeFiles/decam_imaging.dir/imaging/image_io.cpp.o.d"
  "/root/repo/src/imaging/jpeg_sim.cpp" "src/CMakeFiles/decam_imaging.dir/imaging/jpeg_sim.cpp.o" "gcc" "src/CMakeFiles/decam_imaging.dir/imaging/jpeg_sim.cpp.o.d"
  "/root/repo/src/imaging/kernels.cpp" "src/CMakeFiles/decam_imaging.dir/imaging/kernels.cpp.o" "gcc" "src/CMakeFiles/decam_imaging.dir/imaging/kernels.cpp.o.d"
  "/root/repo/src/imaging/scale.cpp" "src/CMakeFiles/decam_imaging.dir/imaging/scale.cpp.o" "gcc" "src/CMakeFiles/decam_imaging.dir/imaging/scale.cpp.o.d"
  "/root/repo/src/imaging/transform.cpp" "src/CMakeFiles/decam_imaging.dir/imaging/transform.cpp.o" "gcc" "src/CMakeFiles/decam_imaging.dir/imaging/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decam_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
