file(REMOVE_RECURSE
  "CMakeFiles/decam_imaging.dir/imaging/color.cpp.o"
  "CMakeFiles/decam_imaging.dir/imaging/color.cpp.o.d"
  "CMakeFiles/decam_imaging.dir/imaging/draw.cpp.o"
  "CMakeFiles/decam_imaging.dir/imaging/draw.cpp.o.d"
  "CMakeFiles/decam_imaging.dir/imaging/filter.cpp.o"
  "CMakeFiles/decam_imaging.dir/imaging/filter.cpp.o.d"
  "CMakeFiles/decam_imaging.dir/imaging/image.cpp.o"
  "CMakeFiles/decam_imaging.dir/imaging/image.cpp.o.d"
  "CMakeFiles/decam_imaging.dir/imaging/image_io.cpp.o"
  "CMakeFiles/decam_imaging.dir/imaging/image_io.cpp.o.d"
  "CMakeFiles/decam_imaging.dir/imaging/jpeg_sim.cpp.o"
  "CMakeFiles/decam_imaging.dir/imaging/jpeg_sim.cpp.o.d"
  "CMakeFiles/decam_imaging.dir/imaging/kernels.cpp.o"
  "CMakeFiles/decam_imaging.dir/imaging/kernels.cpp.o.d"
  "CMakeFiles/decam_imaging.dir/imaging/scale.cpp.o"
  "CMakeFiles/decam_imaging.dir/imaging/scale.cpp.o.d"
  "CMakeFiles/decam_imaging.dir/imaging/transform.cpp.o"
  "CMakeFiles/decam_imaging.dir/imaging/transform.cpp.o.d"
  "libdecam_imaging.a"
  "libdecam_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decam_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
