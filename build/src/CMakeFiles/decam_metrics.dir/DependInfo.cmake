
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/histogram.cpp" "src/CMakeFiles/decam_metrics.dir/metrics/histogram.cpp.o" "gcc" "src/CMakeFiles/decam_metrics.dir/metrics/histogram.cpp.o.d"
  "/root/repo/src/metrics/mse.cpp" "src/CMakeFiles/decam_metrics.dir/metrics/mse.cpp.o" "gcc" "src/CMakeFiles/decam_metrics.dir/metrics/mse.cpp.o.d"
  "/root/repo/src/metrics/ssim.cpp" "src/CMakeFiles/decam_metrics.dir/metrics/ssim.cpp.o" "gcc" "src/CMakeFiles/decam_metrics.dir/metrics/ssim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decam_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
