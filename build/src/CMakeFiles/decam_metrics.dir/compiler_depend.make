# Empty compiler generated dependencies file for decam_metrics.
# This may be replaced when dependencies are built.
