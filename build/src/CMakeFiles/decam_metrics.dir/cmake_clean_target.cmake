file(REMOVE_RECURSE
  "libdecam_metrics.a"
)
