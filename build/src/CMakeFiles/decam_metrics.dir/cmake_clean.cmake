file(REMOVE_RECURSE
  "CMakeFiles/decam_metrics.dir/metrics/histogram.cpp.o"
  "CMakeFiles/decam_metrics.dir/metrics/histogram.cpp.o.d"
  "CMakeFiles/decam_metrics.dir/metrics/mse.cpp.o"
  "CMakeFiles/decam_metrics.dir/metrics/mse.cpp.o.d"
  "CMakeFiles/decam_metrics.dir/metrics/ssim.cpp.o"
  "CMakeFiles/decam_metrics.dir/metrics/ssim.cpp.o.d"
  "libdecam_metrics.a"
  "libdecam_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decam_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
