# Empty dependencies file for decam_ml.
# This may be replaced when dependencies are built.
