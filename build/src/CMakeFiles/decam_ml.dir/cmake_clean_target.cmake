file(REMOVE_RECURSE
  "libdecam_ml.a"
)
