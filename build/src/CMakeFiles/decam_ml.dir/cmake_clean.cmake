file(REMOVE_RECURSE
  "CMakeFiles/decam_ml.dir/ml/classifier.cpp.o"
  "CMakeFiles/decam_ml.dir/ml/classifier.cpp.o.d"
  "CMakeFiles/decam_ml.dir/ml/layers.cpp.o"
  "CMakeFiles/decam_ml.dir/ml/layers.cpp.o.d"
  "CMakeFiles/decam_ml.dir/ml/tensor.cpp.o"
  "CMakeFiles/decam_ml.dir/ml/tensor.cpp.o.d"
  "libdecam_ml.a"
  "libdecam_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decam_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
