file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_defense.dir/adaptive_defense_test.cpp.o"
  "CMakeFiles/test_adaptive_defense.dir/adaptive_defense_test.cpp.o.d"
  "test_adaptive_defense"
  "test_adaptive_defense.pdb"
  "test_adaptive_defense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
