# Empty dependencies file for test_adaptive_defense.
# This may be replaced when dependencies are built.
