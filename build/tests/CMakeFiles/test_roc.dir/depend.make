# Empty dependencies file for test_roc.
# This may be replaced when dependencies are built.
