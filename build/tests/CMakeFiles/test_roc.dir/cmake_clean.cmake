file(REMOVE_RECURSE
  "CMakeFiles/test_roc.dir/roc_test.cpp.o"
  "CMakeFiles/test_roc.dir/roc_test.cpp.o.d"
  "test_roc"
  "test_roc.pdb"
  "test_roc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
