file(REMOVE_RECURSE
  "CMakeFiles/test_image_io.dir/image_io_test.cpp.o"
  "CMakeFiles/test_image_io.dir/image_io_test.cpp.o.d"
  "test_image_io"
  "test_image_io.pdb"
  "test_image_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
