# Empty compiler generated dependencies file for test_image_io.
# This may be replaced when dependencies are built.
