# Empty dependencies file for test_filter.
# This may be replaced when dependencies are built.
