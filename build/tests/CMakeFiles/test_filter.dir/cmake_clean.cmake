file(REMOVE_RECURSE
  "CMakeFiles/test_filter.dir/filter_test.cpp.o"
  "CMakeFiles/test_filter.dir/filter_test.cpp.o.d"
  "test_filter"
  "test_filter.pdb"
  "test_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
