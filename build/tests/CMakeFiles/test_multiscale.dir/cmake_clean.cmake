file(REMOVE_RECURSE
  "CMakeFiles/test_multiscale.dir/multiscale_test.cpp.o"
  "CMakeFiles/test_multiscale.dir/multiscale_test.cpp.o.d"
  "test_multiscale"
  "test_multiscale.pdb"
  "test_multiscale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
