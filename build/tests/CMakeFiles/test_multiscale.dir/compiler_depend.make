# Empty compiler generated dependencies file for test_multiscale.
# This may be replaced when dependencies are built.
