# Empty compiler generated dependencies file for test_ensemble.
# This may be replaced when dependencies are built.
