file(REMOVE_RECURSE
  "CMakeFiles/test_ensemble.dir/ensemble_test.cpp.o"
  "CMakeFiles/test_ensemble.dir/ensemble_test.cpp.o.d"
  "test_ensemble"
  "test_ensemble.pdb"
  "test_ensemble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
