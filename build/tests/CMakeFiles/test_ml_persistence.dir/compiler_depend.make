# Empty compiler generated dependencies file for test_ml_persistence.
# This may be replaced when dependencies are built.
