file(REMOVE_RECURSE
  "CMakeFiles/test_ml_persistence.dir/ml_persistence_test.cpp.o"
  "CMakeFiles/test_ml_persistence.dir/ml_persistence_test.cpp.o.d"
  "test_ml_persistence"
  "test_ml_persistence.pdb"
  "test_ml_persistence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
