file(REMOVE_RECURSE
  "CMakeFiles/test_jpeg_sim.dir/jpeg_sim_test.cpp.o"
  "CMakeFiles/test_jpeg_sim.dir/jpeg_sim_test.cpp.o.d"
  "test_jpeg_sim"
  "test_jpeg_sim.pdb"
  "test_jpeg_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jpeg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
