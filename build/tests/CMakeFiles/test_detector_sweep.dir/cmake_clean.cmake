file(REMOVE_RECURSE
  "CMakeFiles/test_detector_sweep.dir/detector_sweep_test.cpp.o"
  "CMakeFiles/test_detector_sweep.dir/detector_sweep_test.cpp.o.d"
  "test_detector_sweep"
  "test_detector_sweep.pdb"
  "test_detector_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detector_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
