# Empty dependencies file for test_color_draw.
# This may be replaced when dependencies are built.
