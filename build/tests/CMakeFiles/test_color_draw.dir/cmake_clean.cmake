file(REMOVE_RECURSE
  "CMakeFiles/test_color_draw.dir/color_draw_test.cpp.o"
  "CMakeFiles/test_color_draw.dir/color_draw_test.cpp.o.d"
  "test_color_draw"
  "test_color_draw.pdb"
  "test_color_draw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_color_draw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
