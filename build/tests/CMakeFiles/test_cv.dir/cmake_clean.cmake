file(REMOVE_RECURSE
  "CMakeFiles/test_cv.dir/cv_test.cpp.o"
  "CMakeFiles/test_cv.dir/cv_test.cpp.o.d"
  "test_cv"
  "test_cv.pdb"
  "test_cv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
