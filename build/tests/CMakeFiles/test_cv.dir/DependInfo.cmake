
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cv_test.cpp" "tests/CMakeFiles/test_cv.dir/cv_test.cpp.o" "gcc" "tests/CMakeFiles/test_cv.dir/cv_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_cv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/decam_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
