# Empty dependencies file for test_cv.
# This may be replaced when dependencies are built.
