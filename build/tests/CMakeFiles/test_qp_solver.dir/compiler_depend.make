# Empty compiler generated dependencies file for test_qp_solver.
# This may be replaced when dependencies are built.
