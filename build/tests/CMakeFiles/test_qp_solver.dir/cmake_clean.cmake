file(REMOVE_RECURSE
  "CMakeFiles/test_qp_solver.dir/qp_solver_test.cpp.o"
  "CMakeFiles/test_qp_solver.dir/qp_solver_test.cpp.o.d"
  "test_qp_solver"
  "test_qp_solver.pdb"
  "test_qp_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
