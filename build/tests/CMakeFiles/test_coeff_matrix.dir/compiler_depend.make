# Empty compiler generated dependencies file for test_coeff_matrix.
# This may be replaced when dependencies are built.
