file(REMOVE_RECURSE
  "CMakeFiles/test_coeff_matrix.dir/coeff_matrix_test.cpp.o"
  "CMakeFiles/test_coeff_matrix.dir/coeff_matrix_test.cpp.o.d"
  "test_coeff_matrix"
  "test_coeff_matrix.pdb"
  "test_coeff_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coeff_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
