file(REMOVE_RECURSE
  "CMakeFiles/test_calibration_io.dir/calibration_io_test.cpp.o"
  "CMakeFiles/test_calibration_io.dir/calibration_io_test.cpp.o.d"
  "test_calibration_io"
  "test_calibration_io.pdb"
  "test_calibration_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calibration_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
