# Empty dependencies file for test_calibration_io.
# This may be replaced when dependencies are built.
