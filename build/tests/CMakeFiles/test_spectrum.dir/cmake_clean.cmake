file(REMOVE_RECURSE
  "CMakeFiles/test_spectrum.dir/spectrum_test.cpp.o"
  "CMakeFiles/test_spectrum.dir/spectrum_test.cpp.o.d"
  "test_spectrum"
  "test_spectrum.pdb"
  "test_spectrum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
