file(REMOVE_RECURSE
  "CMakeFiles/test_scale_attack.dir/scale_attack_test.cpp.o"
  "CMakeFiles/test_scale_attack.dir/scale_attack_test.cpp.o.d"
  "test_scale_attack"
  "test_scale_attack.pdb"
  "test_scale_attack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scale_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
