# Empty dependencies file for test_scale_attack.
# This may be replaced when dependencies are built.
