# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(decamctl_end_to_end "/usr/bin/cmake" "-DDECAMCTL=/root/repo/build/examples/decamctl" "-DWORK_DIR=/root/repo/build/examples/decamctl_test" "-P" "/root/repo/examples/decamctl_test.cmake")
set_tests_properties(decamctl_end_to_end PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
