file(REMOVE_RECURSE
  "CMakeFiles/decamctl.dir/decamctl.cpp.o"
  "CMakeFiles/decamctl.dir/decamctl.cpp.o.d"
  "decamctl"
  "decamctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decamctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
