# Empty dependencies file for decamctl.
# This may be replaced when dependencies are built.
