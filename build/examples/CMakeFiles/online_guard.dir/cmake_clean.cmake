file(REMOVE_RECURSE
  "CMakeFiles/online_guard.dir/online_guard.cpp.o"
  "CMakeFiles/online_guard.dir/online_guard.cpp.o.d"
  "online_guard"
  "online_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
