# Empty compiler generated dependencies file for online_guard.
# This may be replaced when dependencies are built.
