# Empty dependencies file for backdoor_e2e.
# This may be replaced when dependencies are built.
