file(REMOVE_RECURSE
  "CMakeFiles/backdoor_e2e.dir/backdoor_e2e.cpp.o"
  "CMakeFiles/backdoor_e2e.dir/backdoor_e2e.cpp.o.d"
  "backdoor_e2e"
  "backdoor_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backdoor_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
