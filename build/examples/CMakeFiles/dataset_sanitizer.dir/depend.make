# Empty dependencies file for dataset_sanitizer.
# This may be replaced when dependencies are built.
