file(REMOVE_RECURSE
  "CMakeFiles/dataset_sanitizer.dir/dataset_sanitizer.cpp.o"
  "CMakeFiles/dataset_sanitizer.dir/dataset_sanitizer.cpp.o.d"
  "dataset_sanitizer"
  "dataset_sanitizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_sanitizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
