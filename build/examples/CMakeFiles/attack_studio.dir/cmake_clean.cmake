file(REMOVE_RECURSE
  "CMakeFiles/attack_studio.dir/attack_studio.cpp.o"
  "CMakeFiles/attack_studio.dir/attack_studio.cpp.o.d"
  "attack_studio"
  "attack_studio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_studio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
