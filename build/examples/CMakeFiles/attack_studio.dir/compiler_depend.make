# Empty compiler generated dependencies file for attack_studio.
# This may be replaced when dependencies are built.
