# Empty dependencies file for fig10_filtering_dist.
# This may be replaced when dependencies are built.
