file(REMOVE_RECURSE
  "CMakeFiles/fig10_filtering_dist.dir/fig10_filtering_dist.cpp.o"
  "CMakeFiles/fig10_filtering_dist.dir/fig10_filtering_dist.cpp.o.d"
  "fig10_filtering_dist"
  "fig10_filtering_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_filtering_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
