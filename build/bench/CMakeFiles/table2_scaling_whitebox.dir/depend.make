# Empty dependencies file for table2_scaling_whitebox.
# This may be replaced when dependencies are built.
