file(REMOVE_RECURSE
  "CMakeFiles/table2_scaling_whitebox.dir/table2_scaling_whitebox.cpp.o"
  "CMakeFiles/table2_scaling_whitebox.dir/table2_scaling_whitebox.cpp.o.d"
  "table2_scaling_whitebox"
  "table2_scaling_whitebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_scaling_whitebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
