file(REMOVE_RECURSE
  "CMakeFiles/fig8_scaling_dist.dir/fig8_scaling_dist.cpp.o"
  "CMakeFiles/fig8_scaling_dist.dir/fig8_scaling_dist.cpp.o.d"
  "fig8_scaling_dist"
  "fig8_scaling_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_scaling_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
