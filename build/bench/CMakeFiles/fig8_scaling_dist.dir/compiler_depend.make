# Empty compiler generated dependencies file for fig8_scaling_dist.
# This may be replaced when dependencies are built.
