# Empty dependencies file for extension_ratio.
# This may be replaced when dependencies are built.
