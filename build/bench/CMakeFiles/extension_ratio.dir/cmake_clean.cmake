file(REMOVE_RECURSE
  "CMakeFiles/extension_ratio.dir/extension_ratio.cpp.o"
  "CMakeFiles/extension_ratio.dir/extension_ratio.cpp.o.d"
  "extension_ratio"
  "extension_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
