# Empty dependencies file for extension_runtime_attack.
# This may be replaced when dependencies are built.
