file(REMOVE_RECURSE
  "CMakeFiles/extension_runtime_attack.dir/extension_runtime_attack.cpp.o"
  "CMakeFiles/extension_runtime_attack.dir/extension_runtime_attack.cpp.o.d"
  "extension_runtime_attack"
  "extension_runtime_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_runtime_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
