file(REMOVE_RECURSE
  "CMakeFiles/table8_ensemble.dir/table8_ensemble.cpp.o"
  "CMakeFiles/table8_ensemble.dir/table8_ensemble.cpp.o.d"
  "table8_ensemble"
  "table8_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
