# Empty dependencies file for table8_ensemble.
# This may be replaced when dependencies are built.
