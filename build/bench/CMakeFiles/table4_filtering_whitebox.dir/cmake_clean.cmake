file(REMOVE_RECURSE
  "CMakeFiles/table4_filtering_whitebox.dir/table4_filtering_whitebox.cpp.o"
  "CMakeFiles/table4_filtering_whitebox.dir/table4_filtering_whitebox.cpp.o.d"
  "table4_filtering_whitebox"
  "table4_filtering_whitebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_filtering_whitebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
