# Empty dependencies file for table4_filtering_whitebox.
# This may be replaced when dependencies are built.
