file(REMOVE_RECURSE
  "CMakeFiles/ablation_prevention_quality.dir/ablation_prevention_quality.cpp.o"
  "CMakeFiles/ablation_prevention_quality.dir/ablation_prevention_quality.cpp.o.d"
  "ablation_prevention_quality"
  "ablation_prevention_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prevention_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
