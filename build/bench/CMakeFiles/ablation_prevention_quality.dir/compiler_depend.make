# Empty compiler generated dependencies file for ablation_prevention_quality.
# This may be replaced when dependencies are built.
