file(REMOVE_RECURSE
  "CMakeFiles/table5_filtering_blackbox.dir/table5_filtering_blackbox.cpp.o"
  "CMakeFiles/table5_filtering_blackbox.dir/table5_filtering_blackbox.cpp.o.d"
  "table5_filtering_blackbox"
  "table5_filtering_blackbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_filtering_blackbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
