# Empty compiler generated dependencies file for table5_filtering_blackbox.
# This may be replaced when dependencies are built.
