file(REMOVE_RECURSE
  "CMakeFiles/ablation_histogram.dir/ablation_histogram.cpp.o"
  "CMakeFiles/ablation_histogram.dir/ablation_histogram.cpp.o.d"
  "ablation_histogram"
  "ablation_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
