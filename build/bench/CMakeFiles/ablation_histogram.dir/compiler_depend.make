# Empty compiler generated dependencies file for ablation_histogram.
# This may be replaced when dependencies are built.
