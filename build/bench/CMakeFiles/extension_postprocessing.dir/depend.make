# Empty dependencies file for extension_postprocessing.
# This may be replaced when dependencies are built.
