file(REMOVE_RECURSE
  "CMakeFiles/extension_postprocessing.dir/extension_postprocessing.cpp.o"
  "CMakeFiles/extension_postprocessing.dir/extension_postprocessing.cpp.o.d"
  "extension_postprocessing"
  "extension_postprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_postprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
