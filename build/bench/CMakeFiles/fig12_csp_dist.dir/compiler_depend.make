# Empty compiler generated dependencies file for fig12_csp_dist.
# This may be replaced when dependencies are built.
