file(REMOVE_RECURSE
  "CMakeFiles/fig12_csp_dist.dir/fig12_csp_dist.cpp.o"
  "CMakeFiles/fig12_csp_dist.dir/fig12_csp_dist.cpp.o.d"
  "fig12_csp_dist"
  "fig12_csp_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_csp_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
