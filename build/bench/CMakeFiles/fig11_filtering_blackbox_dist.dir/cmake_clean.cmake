file(REMOVE_RECURSE
  "CMakeFiles/fig11_filtering_blackbox_dist.dir/fig11_filtering_blackbox_dist.cpp.o"
  "CMakeFiles/fig11_filtering_blackbox_dist.dir/fig11_filtering_blackbox_dist.cpp.o.d"
  "fig11_filtering_blackbox_dist"
  "fig11_filtering_blackbox_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_filtering_blackbox_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
