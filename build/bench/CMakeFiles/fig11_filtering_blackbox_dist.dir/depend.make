# Empty dependencies file for fig11_filtering_blackbox_dist.
# This may be replaced when dependencies are built.
