# Empty compiler generated dependencies file for extension_fragility.
# This may be replaced when dependencies are built.
