file(REMOVE_RECURSE
  "CMakeFiles/extension_fragility.dir/extension_fragility.cpp.o"
  "CMakeFiles/extension_fragility.dir/extension_fragility.cpp.o.d"
  "extension_fragility"
  "extension_fragility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_fragility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
