file(REMOVE_RECURSE
  "CMakeFiles/fig9_scaling_blackbox_dist.dir/fig9_scaling_blackbox_dist.cpp.o"
  "CMakeFiles/fig9_scaling_blackbox_dist.dir/fig9_scaling_blackbox_dist.cpp.o.d"
  "fig9_scaling_blackbox_dist"
  "fig9_scaling_blackbox_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_scaling_blackbox_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
