# Empty dependencies file for fig9_scaling_blackbox_dist.
# This may be replaced when dependencies are built.
