file(REMOVE_RECURSE
  "CMakeFiles/ablation_robust_scaler.dir/ablation_robust_scaler.cpp.o"
  "CMakeFiles/ablation_robust_scaler.dir/ablation_robust_scaler.cpp.o.d"
  "ablation_robust_scaler"
  "ablation_robust_scaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_robust_scaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
