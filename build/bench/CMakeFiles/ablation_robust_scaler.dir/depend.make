# Empty dependencies file for ablation_robust_scaler.
# This may be replaced when dependencies are built.
