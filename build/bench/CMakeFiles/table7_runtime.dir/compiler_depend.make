# Empty compiler generated dependencies file for table7_runtime.
# This may be replaced when dependencies are built.
