file(REMOVE_RECURSE
  "CMakeFiles/table7_runtime.dir/table7_runtime.cpp.o"
  "CMakeFiles/table7_runtime.dir/table7_runtime.cpp.o.d"
  "table7_runtime"
  "table7_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
