# Empty compiler generated dependencies file for fig15_psnr_overlap.
# This may be replaced when dependencies are built.
