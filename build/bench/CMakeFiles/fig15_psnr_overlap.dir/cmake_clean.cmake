file(REMOVE_RECURSE
  "CMakeFiles/fig15_psnr_overlap.dir/fig15_psnr_overlap.cpp.o"
  "CMakeFiles/fig15_psnr_overlap.dir/fig15_psnr_overlap.cpp.o.d"
  "fig15_psnr_overlap"
  "fig15_psnr_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_psnr_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
