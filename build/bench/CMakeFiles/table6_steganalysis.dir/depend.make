# Empty dependencies file for table6_steganalysis.
# This may be replaced when dependencies are built.
