file(REMOVE_RECURSE
  "CMakeFiles/table6_steganalysis.dir/table6_steganalysis.cpp.o"
  "CMakeFiles/table6_steganalysis.dir/table6_steganalysis.cpp.o.d"
  "table6_steganalysis"
  "table6_steganalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_steganalysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
