# Empty compiler generated dependencies file for extension_roc.
# This may be replaced when dependencies are built.
