file(REMOVE_RECURSE
  "CMakeFiles/extension_roc.dir/extension_roc.cpp.o"
  "CMakeFiles/extension_roc.dir/extension_roc.cpp.o.d"
  "extension_roc"
  "extension_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
