file(REMOVE_RECURSE
  "CMakeFiles/table3_scaling_blackbox.dir/table3_scaling_blackbox.cpp.o"
  "CMakeFiles/table3_scaling_blackbox.dir/table3_scaling_blackbox.cpp.o.d"
  "table3_scaling_blackbox"
  "table3_scaling_blackbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_scaling_blackbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
