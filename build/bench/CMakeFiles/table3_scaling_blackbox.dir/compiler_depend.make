# Empty compiler generated dependencies file for table3_scaling_blackbox.
# This may be replaced when dependencies are built.
