# Empty compiler generated dependencies file for fig14_threshold_search.
# This may be replaced when dependencies are built.
