file(REMOVE_RECURSE
  "CMakeFiles/fig14_threshold_search.dir/fig14_threshold_search.cpp.o"
  "CMakeFiles/fig14_threshold_search.dir/fig14_threshold_search.cpp.o.d"
  "fig14_threshold_search"
  "fig14_threshold_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_threshold_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
