// Tests for the 1-D resampling kernel tables: partition-of-unity,
// OpenCV-compatible coordinate mapping, kernel profiles and the
// no-anti-aliasing property the image-scaling attack exploits.
#include "imaging/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

namespace decam {
namespace {

using AlgoSizes = std::tuple<ScaleAlgo, int, int>;

class KernelTableProperty : public ::testing::TestWithParam<AlgoSizes> {};

TEST_P(KernelTableProperty, WeightsOfEachOutputSumToOne) {
  const auto [algo, in_size, out_size] = GetParam();
  const KernelTable table = make_kernel_table(in_size, out_size, algo);
  ASSERT_EQ(table.out_size, out_size);
  ASSERT_EQ(table.offsets.size(), static_cast<std::size_t>(out_size) + 1);
  for (int o = 0; o < table.out_size; ++o) {
    double sum = 0.0;
    for (const Tap& tap : table.row(o)) sum += tap.weight;
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_P(KernelTableProperty, TapIndicesAreValidAndUnique) {
  const auto [algo, in_size, out_size] = GetParam();
  const KernelTable table = make_kernel_table(in_size, out_size, algo);
  for (int o = 0; o < table.out_size; ++o) {
    const auto taps = table.row(o);
    ASSERT_FALSE(taps.empty());
    for (std::size_t i = 0; i < taps.size(); ++i) {
      EXPECT_GE(taps[i].index, 0);
      EXPECT_LT(taps[i].index, in_size);
      if (i > 0) {
        EXPECT_LT(taps[i - 1].index, taps[i].index);
      }
    }
  }
}

TEST_P(KernelTableProperty, FlattenedLayoutIsWellFormed) {
  // The CSR invariants the resize inner loop depends on: offsets start at
  // 0, end at taps.size(), and never decrease.
  const auto [algo, in_size, out_size] = GetParam();
  const KernelTable table = make_kernel_table(in_size, out_size, algo);
  ASSERT_EQ(table.offsets.front(), 0);
  ASSERT_EQ(table.offsets.back(), static_cast<int>(table.taps.size()));
  for (std::size_t i = 1; i < table.offsets.size(); ++i) {
    EXPECT_LT(table.offsets[i - 1], table.offsets[i]);  // no empty rows
  }
}

TEST_P(KernelTableProperty, ConstantSignalIsPreserved) {
  const auto [algo, in_size, out_size] = GetParam();
  const KernelTable table = make_kernel_table(in_size, out_size, algo);
  const std::vector<float> in(static_cast<std::size_t>(in_size), 42.0f);
  std::vector<float> out(static_cast<std::size_t>(out_size), 0.0f);
  apply_kernel(table, in.data(), 1, out.data(), 1);
  for (float v : out) EXPECT_NEAR(v, 42.0f, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndGeometries, KernelTableProperty,
    ::testing::Combine(
        ::testing::Values(ScaleAlgo::Nearest, ScaleAlgo::Bilinear,
                          ScaleAlgo::Bicubic, ScaleAlgo::Area,
                          ScaleAlgo::Lanczos4),
        ::testing::Values(7, 32, 97, 224),
        ::testing::Values(3, 16, 49, 100)),
    [](const ::testing::TestParamInfo<AlgoSizes>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_in" +
             std::to_string(std::get<1>(info.param)) + "_out" +
             std::to_string(std::get<2>(info.param));
    });

TEST(KernelTable, NearestMatchesOpenCvIndexing) {
  // cv::resize INTER_NEAREST picks src = floor(dst * in/out).
  const KernelTable table = make_kernel_table(8, 4, ScaleAlgo::Nearest);
  EXPECT_EQ(table.row(0)[0].index, 0);
  EXPECT_EQ(table.row(1)[0].index, 2);
  EXPECT_EQ(table.row(2)[0].index, 4);
  EXPECT_EQ(table.row(3)[0].index, 6);
}

TEST(KernelTable, NearestHasExactlyOneUnitTapPerOutput) {
  const KernelTable table = make_kernel_table(100, 37, ScaleAlgo::Nearest);
  for (int o = 0; o < table.out_size; ++o) {
    const auto taps = table.row(o);
    ASSERT_EQ(taps.size(), 1u);
    EXPECT_FLOAT_EQ(taps[0].weight, 1.0f);
  }
}

TEST(KernelTable, BilinearHalfScaleTouchesTwoNeighbours) {
  // in=8 -> out=4 with half-pixel mapping: centre = 2*o + 0.5, so each
  // output blends source samples 2o and 2o+1 with weight 1/2 each.
  const KernelTable table = make_kernel_table(8, 4, ScaleAlgo::Bilinear);
  for (int o = 0; o < 4; ++o) {
    const auto taps = table.row(o);
    ASSERT_EQ(taps.size(), 2u);
    EXPECT_EQ(taps[0].index, 2 * o);
    EXPECT_EQ(taps[1].index, 2 * o + 1);
    EXPECT_NEAR(taps[0].weight, 0.5f, 1e-6f);
    EXPECT_NEAR(taps[1].weight, 0.5f, 1e-6f);
  }
}

TEST(KernelTable, BilinearIdentityIsExact) {
  const KernelTable table = make_kernel_table(16, 16, ScaleAlgo::Bilinear);
  for (int o = 0; o < 16; ++o) {
    const auto taps = table.row(o);
    ASSERT_EQ(taps.size(), 1u);
    EXPECT_EQ(taps[0].index, o);
    EXPECT_NEAR(taps[0].weight, 1.0f, 1e-6f);
  }
}

TEST(KernelTable, NoAntiAliasingOnDownscale) {
  // The attack-enabling property: at ratio 4 the bilinear kernel still only
  // touches <= 2 source samples per output, leaving the other samples free
  // for the attacker (cv::resize INTER_LINEAR behaves the same way).
  const KernelTable table = make_kernel_table(64, 16, ScaleAlgo::Bilinear);
  for (int o = 0; o < table.out_size; ++o) {
    EXPECT_LE(table.row(o).size(), 2u);
  }
  // INTER_AREA by contrast averages the whole 4-sample footprint.
  const KernelTable area = make_kernel_table(64, 16, ScaleAlgo::Area);
  for (int o = 0; o < area.out_size; ++o) {
    EXPECT_EQ(area.row(o).size(), 4u);
  }
}

TEST(KernelTable, AreaDownscaleMatchesBoxAverage) {
  const KernelTable table = make_kernel_table(6, 2, ScaleAlgo::Area);
  const std::vector<float> in = {1, 2, 3, 10, 20, 30};
  std::vector<float> out(2);
  apply_kernel(table, in.data(), 1, out.data(), 1);
  EXPECT_NEAR(out[0], 2.0f, 1e-5f);
  EXPECT_NEAR(out[1], 20.0f, 1e-5f);
}

TEST(KernelTable, AreaNonIntegerRatioCoversFractionalFootprint) {
  // 5 -> 2: each output covers 2.5 samples; middle sample is split.
  const KernelTable table = make_kernel_table(5, 2, ScaleAlgo::Area);
  const std::vector<float> in = {10, 10, 10, 50, 50};
  std::vector<float> out(2);
  apply_kernel(table, in.data(), 1, out.data(), 1);
  EXPECT_NEAR(out[0], 10.0f, 1e-5f);                 // 10,10,half of 10
  EXPECT_NEAR(out[1], (0.5f * 10 + 50 + 50) / 2.5f, 1e-5f);
}

TEST(KernelProfiles, CubicMatchesKeysAtKnots) {
  EXPECT_NEAR(cubic_weight(0.0), 1.0, 1e-12);
  EXPECT_NEAR(cubic_weight(1.0), 0.0, 1e-12);
  EXPECT_NEAR(cubic_weight(2.0), 0.0, 1e-12);
  EXPECT_NEAR(cubic_weight(-1.0), 0.0, 1e-12);
  // a = -0.75: w(0.5) = ((a+2)/2 - (a+3)) / 4 + 1 = 0.59375.
  EXPECT_NEAR(cubic_weight(0.5), 0.59375, 1e-9);
  EXPECT_LT(cubic_weight(1.5), 0.0);  // negative lobe exists
}

TEST(KernelProfiles, LanczosMatchesDefinition) {
  EXPECT_NEAR(lanczos4_weight(0.0), 1.0, 1e-12);
  for (int k = 1; k < 4; ++k) {
    EXPECT_NEAR(lanczos4_weight(static_cast<double>(k)), 0.0, 1e-12);
  }
  EXPECT_NEAR(lanczos4_weight(4.0), 0.0, 1e-12);
  EXPECT_NEAR(lanczos4_weight(5.0), 0.0, 1e-12);
  EXPECT_GT(lanczos4_weight(0.4), 0.0);
  EXPECT_LT(lanczos4_weight(1.5), 0.0);  // first negative lobe
}

TEST(KernelTable, RejectsNonPositiveSizes) {
  EXPECT_THROW(make_kernel_table(0, 4, ScaleAlgo::Bilinear),
               std::invalid_argument);
  EXPECT_THROW(make_kernel_table(4, 0, ScaleAlgo::Bilinear),
               std::invalid_argument);
  EXPECT_THROW(make_kernel_table(-3, 4, ScaleAlgo::Nearest),
               std::invalid_argument);
}

TEST(KernelTable, ApplyKernelHonoursStrides) {
  const KernelTable table = make_kernel_table(4, 2, ScaleAlgo::Nearest);
  // Input laid out with stride 2 (e.g. a column of a 2-wide image).
  const std::vector<float> in = {1, -1, 2, -1, 3, -1, 4, -1};
  std::vector<float> out = {0, 0, 0, 0};
  apply_kernel(table, in.data(), 2, out.data(), 2);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[2], 3.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);  // untouched gaps
}

TEST(KernelTable, ToStringCoversAllAlgorithms) {
  EXPECT_STREQ(to_string(ScaleAlgo::Nearest), "nearest");
  EXPECT_STREQ(to_string(ScaleAlgo::Bilinear), "bilinear");
  EXPECT_STREQ(to_string(ScaleAlgo::Bicubic), "bicubic");
  EXPECT_STREQ(to_string(ScaleAlgo::Area), "area");
  EXPECT_STREQ(to_string(ScaleAlgo::Lanczos4), "lanczos4");
}

}  // namespace
}  // namespace decam
