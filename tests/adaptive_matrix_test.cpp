// Regression wall for the adaptive-attack story quantified by
// bench/matrix_adaptive (ISSUE 10): the off-grid spread measurably erodes
// the single detectors it targets (and outright defeats the weak histogram
// baseline at full strength), the JPEG-robust fixed point actually survives
// recompression, and yet the calibrated three-method ensemble stays above a
// checked-in accuracy floor. If a refactor of the attack, defense, or
// detector code shifts any of these cliffs, this suite fails before the
// slow bench ever runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "attack/adaptive.h"
#include "core/calibration.h"
#include "core/filtering_detector.h"
#include "core/histogram_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "imaging/jpeg_sim.h"
#include "metrics/mse.h"

namespace decam {
namespace {

constexpr int kSceneSide = 128;
constexpr int kTargetSide = 32;

Image make_scene(std::uint64_t seed) {
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = kSceneSide;
  data::Rng rng(seed);
  return generate_scene(params, rng);
}

attack::AttackOptions base_options() {
  attack::AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  options.eps = 2.0;
  return options;
}

// The QP solve is the expensive part; every test shares one crafted family.
struct SharedAttacks {
  Image scene;
  Image target;
  attack::AttackResult plain;
  Image offgrid_07;  // the matrix bench's default spread
  Image offgrid_10;  // full strength: maximal evasion, degraded payload
};

const SharedAttacks& shared() {
  static const SharedAttacks* cached = [] {
    auto* s = new SharedAttacks();
    s->scene = make_scene(43);
    data::Rng target_rng(44);
    s->target = data::generate_target(kTargetSide, kTargetSide, target_rng);
    s->plain = attack::craft_attack(s->scene, s->target, base_options());
    s->offgrid_07 = attack::spread_off_grid(
        s->plain.image, kTargetSide, kTargetSide, ScaleAlgo::Bilinear, 0.7);
    s->offgrid_10 = attack::spread_off_grid(
        s->plain.image, kTargetSide, kTargetSide, ScaleAlgo::Bilinear, 1.0);
    return s;
  }();
  return *cached;
}

core::ScalingDetector make_scaling() {
  core::ScalingDetectorConfig config;
  config.down_width = config.down_height = kTargetSide;
  config.metric = core::Metric::MSE;
  return core::ScalingDetector{config};
}

core::HistogramDetector make_histogram() {
  core::HistogramDetectorConfig config;
  config.down_width = config.down_height = kTargetSide;
  return core::HistogramDetector{config};
}

TEST(OffGridSpread, ErodesScalingEvidenceButKeepsThePayload) {
  const SharedAttacks& s = shared();
  const core::ScalingDetector scaling = make_scaling();
  const double plain_score = scaling.score(s.plain.image);
  const double spread_score = scaling.score(s.offgrid_07);
  // At the matrix default (0.7) the round-trip MSE collapses by well over
  // 4x (measured: ~6600 -> ~700) — exactly the evasion the matrix records
  // as scaling/mse accuracy falling to chance.
  EXPECT_LT(spread_score, 0.25 * plain_score);
  // ... while the payload still lands: the downscale of the spread attack
  // stays close to the target (the scaler's heavy taps were left alone).
  const Image seen =
      resize(s.offgrid_07, kTargetSide, kTargetSide, ScaleAlgo::Bilinear);
  EXPECT_LT(mse(seen, s.target), 150.0);
}

TEST(OffGridSpread, MovesFilteringScoreTowardBenign) {
  const SharedAttacks& s = shared();
  core::FilteringDetectorConfig config;
  config.metric = core::Metric::SSIM;
  const core::FilteringDetector filtering{config};
  // LowIsAttack polarity: a RISING min-filter SSIM is evasion progress.
  const double plain_score = filtering.score(s.plain.image);
  const double spread_score = filtering.score(s.offgrid_07);
  const double benign_score = filtering.score(s.scene);
  EXPECT_GT(spread_score, plain_score);
  EXPECT_GT(benign_score, spread_score);  // not fully benign-like yet
}

TEST(OffGridSpread, DefeatsTheHistogramBaselineOutright) {
  const SharedAttacks& s = shared();
  const core::HistogramDetector histogram = make_histogram();
  const double plain_score = histogram.score(s.plain.image);
  const double spread_score = histogram.score(s.offgrid_07);
  const double full_score = histogram.score(s.offgrid_10);
  const double benign_score = histogram.score(s.scene);
  // The margin Xiao's heuristic relies on shrinks monotonically with
  // spread...
  EXPECT_GT(spread_score, plain_score);
  EXPECT_GT(full_score, spread_score);
  // ... and at full strength the attack crosses the midpoint of a
  // plain-calibrated split (measured: ~0.58 vs threshold ~0.53) — the weak
  // baseline is not merely degraded, it votes "benign".
  const double plain_trained_threshold = (plain_score + benign_score) / 2.0;
  EXPECT_GT(full_score, plain_trained_threshold);
}

TEST(OffGridSpread, EnsembleAccuracyHoldsAboveTheFloor) {
  // Mini white-box matrix column, mirroring bench/matrix_adaptive's
  // defense="none" protocol: calibrate each method on PLAIN train attacks,
  // evaluate on OFF-GRID eval attacks. The adaptive move halves the scaling
  // method's accuracy, but the ensemble floor holds.
  constexpr int kTrain = 5;
  constexpr int kEval = 5;
  const attack::AttackOptions options = base_options();

  std::vector<double> train_benign_scaling, train_attack_scaling;
  std::vector<double> train_benign_filter, train_attack_filter;
  std::vector<double> train_benign_csp, train_attack_csp;
  const core::ScalingDetector scaling = make_scaling();
  core::FilteringDetectorConfig filter_config;
  filter_config.metric = core::Metric::SSIM;
  const core::FilteringDetector filtering{filter_config};
  const core::SteganalysisDetector steganalysis{};

  for (int i = 0; i < kTrain; ++i) {
    const Image scene = make_scene(100 + static_cast<std::uint64_t>(i));
    data::Rng target_rng(200 + static_cast<std::uint64_t>(i));
    const Image target =
        data::generate_target(kTargetSide, kTargetSide, target_rng);
    const Image attack = attack::craft_attack(scene, target, options).image;
    train_benign_scaling.push_back(scaling.score(scene));
    train_attack_scaling.push_back(scaling.score(attack));
    train_benign_filter.push_back(filtering.score(scene));
    train_attack_filter.push_back(filtering.score(attack));
    train_benign_csp.push_back(steganalysis.score(scene));
    train_attack_csp.push_back(steganalysis.score(attack));
  }
  const core::Calibration cal_scaling =
      core::calibrate_white_box(train_benign_scaling, train_attack_scaling)
          .calibration;
  const core::Calibration cal_filter =
      core::calibrate_white_box(train_benign_filter, train_attack_filter)
          .calibration;
  const core::Calibration cal_csp =
      core::calibrate_white_box(train_benign_csp, train_attack_csp)
          .calibration;

  int correct_ensemble = 0;
  int correct_scaling = 0;
  int total = 0;
  const auto judge = [&](const Image& img, bool is_attack_image) {
    const bool vote_scaling =
        core::is_attack(scaling.score(img), cal_scaling);
    const bool vote_filter =
        core::is_attack(filtering.score(img), cal_filter);
    const bool vote_csp = core::is_attack(steganalysis.score(img), cal_csp);
    const int votes = (vote_scaling ? 1 : 0) + (vote_filter ? 1 : 0) +
                      (vote_csp ? 1 : 0);
    correct_ensemble += ((votes >= 2) == is_attack_image) ? 1 : 0;
    correct_scaling += (vote_scaling == is_attack_image) ? 1 : 0;
    ++total;
  };
  for (int i = 0; i < kEval; ++i) {
    const Image scene = make_scene(300 + static_cast<std::uint64_t>(i));
    data::Rng target_rng(400 + static_cast<std::uint64_t>(i));
    const Image target =
        data::generate_target(kTargetSide, kTargetSide, target_rng);
    attack::OffGridOptions adaptive;
    adaptive.base = options;
    adaptive.spread = 0.7;
    judge(attack::off_grid_spread_attack(scene, target, adaptive).image,
          /*is_attack_image=*/true);
    judge(scene, /*is_attack_image=*/false);
  }
  ASSERT_EQ(total, 2 * kEval);
  // The checked-in floor: >= 80% on this grid (the quick matrix measures
  // 0.94 at n=8; the floor leaves one misjudged pair of slack).
  EXPECT_GE(correct_ensemble, (2 * kEval) * 8 / 10);
  // And the single scaling method must do measurably WORSE than the
  // ensemble here — that asymmetry is the whole point of the matrix.
  EXPECT_LT(correct_scaling, correct_ensemble);
}

TEST(JpegRobust, SurvivesRecompressionWherePlainAttackDies) {
  const SharedAttacks& s = shared();
  attack::JpegRobustOptions options;
  options.base = base_options();
  // At this geometry q75 barely dents the payload; quality 30 is where the
  // vanilla attack demonstrably dies (measured linf ~33 vs the 24 bound)
  // and the fixed point has real work to do (converges to ~22 in 3 rounds).
  options.quality = 30;

  // The plain attack's payload is destroyed by JPEG at the same quality.
  const Image plain_jpeg = jpeg_roundtrip(s.plain.image, options.quality);
  const Image plain_landed =
      resize(plain_jpeg, kTargetSide, kTargetSide, ScaleAlgo::Bilinear);
  double plain_linf = 0.0;
  for (int c = 0; c < s.target.channels(); ++c) {
    for (int y = 0; y < kTargetSide; ++y) {
      for (int x = 0; x < kTargetSide; ++x) {
        plain_linf = std::max(
            plain_linf, static_cast<double>(std::abs(
                            plain_landed.at(x, y, c) - s.target.at(x, y, c))));
      }
    }
  }
  EXPECT_GT(plain_linf, options.survive_linf);  // vanilla payload dies

  const attack::JpegRobustResult robust =
      attack::jpeg_robust_attack(s.scene, s.target, options);
  EXPECT_TRUE(robust.survived);
  EXPECT_LE(robust.post_jpeg_linf, options.survive_linf);
  EXPECT_LT(robust.post_jpeg_linf, plain_linf);
  EXPECT_GE(robust.rounds, 1);
  EXPECT_LE(robust.rounds, options.max_rounds);
}

TEST(SpreadOffGrid, ValidatesAndIsMonotoneInSpread) {
  const SharedAttacks& s = shared();
  EXPECT_THROW(attack::spread_off_grid(s.plain.image, kTargetSide,
                                       kTargetSide, ScaleAlgo::Bilinear, -0.1),
               std::invalid_argument);
  EXPECT_THROW(attack::spread_off_grid(s.plain.image, kTargetSide,
                                       kTargetSide, ScaleAlgo::Bilinear, 1.5),
               std::invalid_argument);
  const Image zero = attack::spread_off_grid(
      s.plain.image, kTargetSide, kTargetSide, ScaleAlgo::Bilinear, 0.0);
  EXPECT_DOUBLE_EQ(mse(zero, s.plain.image), 0.0);

  const core::ScalingDetector scaling = make_scaling();
  const double at_plain = scaling.score(s.plain.image);
  const double at_07 = scaling.score(s.offgrid_07);
  const double at_10 = scaling.score(s.offgrid_10);
  EXPECT_GT(at_plain, at_07);
  EXPECT_GT(at_07, at_10);
}

}  // namespace
}  // namespace decam
