// Unit tests for the minimal JSON reader in bench/bench_common.h, focused
// on the \uXXXX escape support: BMP code points, UTF-8 encoding widths,
// surrogate pairs, and strict rejection of malformed escapes (truncated hex,
// lone surrogates) — a malformed bench document must fail validation, not
// round-trip quietly.
#include <gtest/gtest.h>

#include <string>

#include "bench_common.h"

namespace {

using decam::bench::micro::JsonParser;
using decam::bench::micro::JsonValue;

std::string parse_json_string(const std::string& doc) {
  JsonValue value;
  JsonParser parser(doc);
  EXPECT_TRUE(parser.parse(value)) << doc;
  EXPECT_EQ(value.kind, JsonValue::Kind::String);
  return value.string;
}

bool parse_fails(const std::string& doc) {
  JsonValue value;
  JsonParser parser(doc);
  return !parser.parse(value);
}

TEST(BenchJson, BasicEscapesStillWork) {
  EXPECT_EQ(parse_json_string(R"("a\nb\tc\"d\\e")"), "a\nb\tc\"d\\e");
}

TEST(BenchJson, UnicodeEscapeAscii) {
  EXPECT_EQ(parse_json_string("\"\\u0041z\""), "Az");
  EXPECT_EQ(parse_json_string("\"\\u0061\\u0062\""), "ab");
}

TEST(BenchJson, UnicodeEscapeHexCaseInsensitive) {
  EXPECT_EQ(parse_json_string("\"\\u00e9\""), "\xC3\xA9");
  EXPECT_EQ(parse_json_string("\"\\u00E9\""), "\xC3\xA9");
}

TEST(BenchJson, UnicodeEscapeTwoByteUtf8) {
  // U+00E9 (e acute) and U+03BC (mu).
  EXPECT_EQ(parse_json_string("\"\\u00E9\""), "\xC3\xA9");
  EXPECT_EQ(parse_json_string("\"\\u03BC\""), "\xCE\xBC");
}

TEST(BenchJson, UnicodeEscapeThreeByteUtf8) {
  // U+2014 (em dash).
  EXPECT_EQ(parse_json_string("\"\\u2014\""), "\xE2\x80\x94");
}

TEST(BenchJson, SurrogatePairDecodesToFourByteUtf8) {
  // U+1F600 as the surrogate pair D83D DE00.
  EXPECT_EQ(parse_json_string("\"\\uD83D\\uDE00\""), "\xF0\x9F\x98\x80");
}

TEST(BenchJson, MixedContentAroundEscapes) {
  EXPECT_EQ(parse_json_string("\"ns/px \\u00B5s\""), "ns/px \xC2\xB5s");
}

TEST(BenchJson, RejectsTruncatedHex) {
  EXPECT_TRUE(parse_fails("\"\\u00\""));
  EXPECT_TRUE(parse_fails("\"\\u00G1\""));
}

TEST(BenchJson, RejectsLoneSurrogates) {
  EXPECT_TRUE(parse_fails("\"\\uD83D\""));         // high, nothing after
  EXPECT_TRUE(parse_fails("\"\\uD83Dxy\""));       // high, no \u
  EXPECT_TRUE(parse_fails("\"\\uD83D\\u0041\""));  // high + non-low
  EXPECT_TRUE(parse_fails("\"\\uDE00\""));         // low first
}

TEST(BenchJson, EscapesInsideObjectKeysAndValues) {
  JsonValue value;
  JsonParser parser("{\"na\\u006De\": \"bench\\u2014quick\"}");
  ASSERT_TRUE(parser.parse(value));
  ASSERT_EQ(value.kind, JsonValue::Kind::Object);
  const JsonValue* found = value.find("name");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->string, "bench\xE2\x80\x94quick");
}

}  // namespace
