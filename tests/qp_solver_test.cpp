// Tests for the Dykstra attack QP solver: feasibility, optimality against
// hand-computable cases, box handling, and behaviour across kernels.
#include "attack/qp_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/rng.h"

namespace decam::attack {
namespace {

std::vector<double> random_vector(std::size_t n, double lo, double hi,
                                  std::uint64_t seed) {
  data::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.next_range(lo, hi);
  return v;
}

double max_violation(const CoeffMatrix& C, const std::vector<double>& x,
                     const std::vector<double>& t, double eps) {
  const auto y = C.multiply(x);
  double worst = 0.0;
  for (std::size_t r = 0; r < y.size(); ++r) {
    worst = std::max(worst, std::fabs(y[r] - t[r]) - eps);
  }
  return std::max(worst, 0.0);
}

TEST(QpSolver, AlreadyFeasibleSourceIsUntouched) {
  const CoeffMatrix C = CoeffMatrix::for_scaling(8, 4, ScaleAlgo::Bilinear);
  const std::vector<double> s(8, 100.0);
  const std::vector<double> t(4, 100.0);  // scale of constant 100 IS 100
  const QpResult result = solve_attack_qp(C, s, t);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.delta_norm_sq, 0.0, 1e-9);
  for (double x : result.x) EXPECT_NEAR(x, 100.0, 1e-6);
}

TEST(QpSolver, NearestTargetsAreHitExactly) {
  // Nearest-neighbour rows have a single unit tap: the QP must move exactly
  // the sampled entries to within eps of the target and leave others alone.
  const CoeffMatrix C = CoeffMatrix::for_scaling(8, 2, ScaleAlgo::Nearest);
  const std::vector<double> s(8, 50.0);
  const std::vector<double> t = {200.0, 10.0};
  QpOptions options;
  options.eps = 1.0;
  const QpResult result = solve_attack_qp(C, s, t, options);
  EXPECT_TRUE(result.converged);
  // Sampled indices are 0 and 4 (floor(o * 8/2)).
  EXPECT_NEAR(result.x[0], 199.0, 1.5);  // moves to the slab boundary
  EXPECT_NEAR(result.x[4], 11.0, 1.5);
  for (const std::size_t untouched : {1u, 2u, 3u, 5u, 6u, 7u}) {
    EXPECT_NEAR(result.x[untouched], 50.0, 1e-6);
  }
}

TEST(QpSolver, SolutionIsMinimalNormForSingleConstraint) {
  // One bilinear row: 0.5 x0 + 0.5 x1 = 200 from s = (0, 0). The minimal-
  // norm solution moves both coordinates equally: x0 = x1 = 200 - eps.
  const CoeffMatrix C = CoeffMatrix::for_scaling(2, 1, ScaleAlgo::Bilinear);
  const std::vector<double> s = {0.0, 0.0};
  const std::vector<double> t = {200.0};
  QpOptions options;
  options.eps = 2.0;
  options.tolerance = 0.01;
  options.max_sweeps = 500;
  const QpResult result = solve_attack_qp(C, s, t, options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], result.x[1], 0.1);
  EXPECT_NEAR(0.5 * (result.x[0] + result.x[1]), 198.0, 0.2);
}

class QpAcrossKernels : public ::testing::TestWithParam<ScaleAlgo> {};

TEST_P(QpAcrossKernels, ReachesFeasibilityWithinBox) {
  const ScaleAlgo algo = GetParam();
  const CoeffMatrix C = CoeffMatrix::for_scaling(48, 12, algo);
  const auto s = random_vector(48, 40.0, 220.0, 7);
  const auto t = random_vector(12, 5.0, 250.0, 8);
  QpOptions options;
  options.eps = 1.0;
  options.max_sweeps = 400;
  options.tolerance = 0.5;
  const QpResult result = solve_attack_qp(C, s, t, options);
  EXPECT_TRUE(result.converged) << to_string(algo);
  EXPECT_LE(max_violation(C, result.x, t, options.eps), options.tolerance + 1e-6);
  for (double x : result.x) {
    EXPECT_GE(x, options.lo - 1e-9);
    EXPECT_LE(x, options.hi + 1e-9);
  }
}

TEST_P(QpAcrossKernels, PerturbationShrinksWhenTargetIsCloser) {
  const ScaleAlgo algo = GetParam();
  const CoeffMatrix C = CoeffMatrix::for_scaling(32, 8, algo);
  const auto s = random_vector(32, 100.0, 150.0, 9);
  // A target near the natural downscale needs a tiny Δ; a distant one more.
  std::vector<double> near_target = C.multiply(s);
  for (double& v : near_target) v += 3.0;
  std::vector<double> far_target = C.multiply(s);
  for (double& v : far_target) v += 90.0;
  QpOptions options;
  options.max_sweeps = 400;
  const QpResult near_result = solve_attack_qp(C, s, near_target, options);
  const QpResult far_result = solve_attack_qp(C, s, far_target, options);
  EXPECT_LT(near_result.delta_norm_sq, far_result.delta_norm_sq);
}

INSTANTIATE_TEST_SUITE_P(Kernels, QpAcrossKernels,
                         ::testing::Values(ScaleAlgo::Nearest,
                                           ScaleAlgo::Bilinear,
                                           ScaleAlgo::Bicubic,
                                           ScaleAlgo::Lanczos4),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(QpSolver, RespectsCustomBox) {
  const CoeffMatrix C = CoeffMatrix::for_scaling(4, 1, ScaleAlgo::Nearest);
  const std::vector<double> s = {10.0, 10.0, 10.0, 10.0};
  const std::vector<double> t = {500.0};  // unreachable inside [0, 255]
  QpOptions options;
  options.eps = 0.0;
  options.max_sweeps = 50;
  const QpResult result = solve_attack_qp(C, s, t, options);
  EXPECT_FALSE(result.converged);
  for (double x : result.x) {
    EXPECT_GE(x, 0.0 - 1e-9);
    EXPECT_LE(x, 255.0 + 1e-9);
  }
  // Best effort: the sampled pixel saturates at the box bound.
  EXPECT_NEAR(result.x[0], 255.0, 1e-6);
}

TEST(QpSolver, ReportsDeltaNormAccurately) {
  const CoeffMatrix C = CoeffMatrix::for_scaling(4, 2, ScaleAlgo::Nearest);
  const std::vector<double> s = {0.0, 0.0, 0.0, 0.0};
  const std::vector<double> t = {100.0, 100.0};
  QpOptions options;
  options.eps = 0.0;
  options.tolerance = 1e-6;
  options.max_sweeps = 10;
  const QpResult result = solve_attack_qp(C, s, t, options);
  double expected = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    expected += (result.x[i] - s[i]) * (result.x[i] - s[i]);
  }
  EXPECT_NEAR(result.delta_norm_sq, expected, 1e-9);
  EXPECT_NEAR(result.delta_norm_sq, 2.0 * 100.0 * 100.0, 1e-3);
}

TEST(QpSolver, ValidatesArguments) {
  const CoeffMatrix C = CoeffMatrix::for_scaling(8, 4, ScaleAlgo::Bilinear);
  const std::vector<double> s(8, 0.0);
  const std::vector<double> t(4, 0.0);
  EXPECT_THROW(solve_attack_qp(C, std::vector<double>(7, 0.0), t),
               std::invalid_argument);
  EXPECT_THROW(solve_attack_qp(C, s, std::vector<double>(3, 0.0)),
               std::invalid_argument);
  QpOptions bad;
  bad.eps = -1.0;
  EXPECT_THROW(solve_attack_qp(C, s, t, bad), std::invalid_argument);
  bad = {};
  bad.lo = 10.0;
  bad.hi = 5.0;
  EXPECT_THROW(solve_attack_qp(C, s, t, bad), std::invalid_argument);
  bad = {};
  bad.max_sweeps = 0;
  EXPECT_THROW(solve_attack_qp(C, s, t, bad), std::invalid_argument);
}

TEST(QpSolver, SweepsUsedIsBoundedAndReported) {
  const CoeffMatrix C = CoeffMatrix::for_scaling(16, 4, ScaleAlgo::Bilinear);
  const auto s = random_vector(16, 0.0, 255.0, 11);
  const auto t = random_vector(4, 0.0, 255.0, 12);
  QpOptions options;
  options.max_sweeps = 7;
  options.tolerance = 1e-12;
  const QpResult result = solve_attack_qp(C, s, t, options);
  EXPECT_GE(result.sweeps_used, 1);
  EXPECT_LE(result.sweeps_used, 7);
}

}  // namespace
}  // namespace decam::attack
