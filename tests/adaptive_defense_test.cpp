// Tests for the adaptive attack (noise masking vs the CSP detector) and
// the Quiring reconstruction defence baseline: critical-pixel geometry,
// payload invariance, defence efficacy and its benign-quality cost.
#include <gtest/gtest.h>

#include "attack/adaptive.h"
#include "attack/critical_pixels.h"
#include "core/reconstruction_defense.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "metrics/mse.h"
#include "metrics/ssim.h"

namespace decam {
namespace {

Image make_scene(int side, std::uint64_t seed) {
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = side;
  data::Rng rng(seed);
  return generate_scene(params, rng);
}

TEST(CriticalPixels, NearestReadsExactlyOnePixelPerOutput) {
  const auto matrix =
      attack::CoeffMatrix::for_scaling(64, 16, ScaleAlgo::Nearest);
  const std::vector<bool> flags = attack::critical_indices(matrix);
  int count = 0;
  for (bool f : flags) count += f ? 1 : 0;
  EXPECT_EQ(count, 16);
  EXPECT_TRUE(flags[0]);   // floor(0 * 4)
  EXPECT_TRUE(flags[4]);   // floor(1 * 4)
  EXPECT_FALSE(flags[1]);
}

TEST(CriticalPixels, FractionMatchesKernelFootprint) {
  // Bilinear at ratio 4: 2 critical columns and rows per output sample ->
  // (2*16)/64 per axis -> 1/2 * 1/2 = 1/4... of the 1/2 axes: 0.25.
  const double nearest =
      attack::critical_fraction(64, 64, 16, 16, ScaleAlgo::Nearest);
  const double bilinear =
      attack::critical_fraction(64, 64, 16, 16, ScaleAlgo::Bilinear);
  const double area =
      attack::critical_fraction(64, 64, 16, 16, ScaleAlgo::Area);
  EXPECT_NEAR(nearest, 16.0 * 16.0 / (64.0 * 64.0), 1e-9);
  EXPECT_GT(bilinear, nearest);
  EXPECT_NEAR(area, 1.0, 1e-9);  // area averaging reads EVERY pixel
}

TEST(CriticalPixels, MaskAgreesWithFraction) {
  const Image mask =
      attack::critical_mask(48, 40, 12, 10, ScaleAlgo::Bilinear);
  int lit = 0;
  for (int y = 0; y < 40; ++y) {
    for (int x = 0; x < 48; ++x) {
      if (mask.at(x, y, 0) > 0.0f) ++lit;
    }
  }
  const double fraction =
      attack::critical_fraction(48, 40, 12, 10, ScaleAlgo::Bilinear);
  EXPECT_NEAR(static_cast<double>(lit) / (48.0 * 40.0), fraction, 1e-9);
}

TEST(NoiseMaskedAttack, PayloadSurvivesNoise) {
  const Image scene = make_scene(128, 1);
  data::Rng target_rng(2);
  const Image target = data::generate_target(32, 32, target_rng);
  attack::NoiseMaskOptions options;
  options.base.algo = ScaleAlgo::Bilinear;
  options.base.eps = 2.0;
  options.noise_amplitude = 24.0;
  const attack::AttackResult adaptive =
      attack::noise_masked_attack(scene, target, options);
  // The noise only lands on pixels the scaler never reads: the downscale
  // error stays within the quantisation-augmented bound.
  EXPECT_LE(adaptive.report.downscale_linf, options.base.eps + 2.5);
}

TEST(NoiseMaskedAttack, CspDetectorResistsSpectralMasking) {
  // The natural anti-CSP adaptive move — bury the harmonics under noise on
  // the pixels the scaler never reads — does NOT work: the harmonics come
  // from the critical-pixel deltas the attacker cannot soften, and the
  // noise only makes the image more suspicious to the other methods.
  const Image scene = make_scene(128, 3);
  data::Rng target_rng(4);
  const Image target = data::generate_target(32, 32, target_rng);
  attack::AttackOptions plain_options;
  plain_options.algo = ScaleAlgo::Bilinear;
  plain_options.eps = 2.0;
  const attack::AttackResult plain =
      attack::craft_attack(scene, target, plain_options);
  attack::NoiseMaskOptions adaptive_options;
  adaptive_options.base = plain_options;
  adaptive_options.noise_amplitude = 28.0;
  const attack::AttackResult adaptive =
      attack::noise_masked_attack(scene, target, adaptive_options);

  const core::SteganalysisDetector steg{};
  EXPECT_GE(steg.count_csp(adaptive.image), 2);  // still caught

  core::ScalingDetectorConfig scaling_config;
  scaling_config.down_width = scaling_config.down_height = 32;
  scaling_config.metric = core::Metric::MSE;
  const core::ScalingDetector scaling{scaling_config};
  // The masking noise only ADDS round-trip error for the scaling method.
  EXPECT_GE(scaling.score(adaptive.image), scaling.score(plain.image));
  EXPECT_GT(scaling.score(adaptive.image), 10.0 * scaling.score(scene));
  // And it costs the attacker visual stealth.
  EXPECT_LE(adaptive.report.source_ssim, plain.report.source_ssim + 1e-6);
}

TEST(NoiseMaskedAttack, ZeroAmplitudeEqualsPlainAttack) {
  const Image scene = make_scene(96, 5);
  data::Rng target_rng(6);
  const Image target = data::generate_target(24, 24, target_rng);
  attack::NoiseMaskOptions options;
  options.base.algo = ScaleAlgo::Bilinear;
  options.noise_amplitude = 0.0;
  const attack::AttackResult adaptive =
      attack::noise_masked_attack(scene, target, options);
  const attack::AttackResult plain =
      attack::craft_attack(scene, target, options.base);
  EXPECT_DOUBLE_EQ(mse(adaptive.image, plain.image), 0.0);
  options.noise_amplitude = -1.0;
  EXPECT_THROW(attack::noise_masked_attack(scene, target, options),
               std::invalid_argument);
}

TEST(ReconstructionDefense, NeutralisesTheAttack) {
  const Image scene = make_scene(128, 7);
  data::Rng target_rng(8);
  const Image target = data::generate_target(32, 32, target_rng);
  attack::AttackOptions attack_options;
  attack_options.algo = ScaleAlgo::Bilinear;
  const attack::AttackResult attack_result =
      attack::craft_attack(scene, target, attack_options);

  core::ReconstructionConfig config;
  config.target_width = config.target_height = 32;
  config.algo = ScaleAlgo::Bilinear;
  const Image cleansed =
      core::reconstruct_critical_pixels(attack_result.image, config);
  const Image seen = resize(cleansed, 32, 32, ScaleAlgo::Bilinear);
  // Before: downscale == target. After: target payload destroyed.
  EXPECT_LT(attack_result.report.downscale_mse, 20.0);
  EXPECT_GT(mse(seen, target), 500.0);
}

TEST(ReconstructionDefense, DegradesBenignInputs) {
  // The drawback the paper cites: the defence rewrites pixels of EVERY
  // image, so what the model sees changes even for benign inputs. Use a
  // crisp scene — the sharper the photo, the bigger the quality tax.
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = 128;
  params.blur_sigma_min = 0.5;
  params.blur_sigma_max = 0.6;
  data::Rng rng(9);
  const Image scene = generate_scene(params, rng);
  core::ReconstructionConfig config;
  config.target_width = config.target_height = 32;
  const Image cleansed = core::reconstruct_critical_pixels(scene, config);
  const Image seen_before = resize(scene, 32, 32, ScaleAlgo::Bilinear);
  const Image seen_after = resize(cleansed, 32, 32, ScaleAlgo::Bilinear);
  EXPECT_GT(mse(seen_before, seen_after), 1.0);   // model input changed
  EXPECT_LT(ssim(scene, cleansed), 1.0);          // image modified
  // Decamouflage's detectors by contrast leave the input untouched.
}

TEST(ReconstructionDefense, ValidatesConfig) {
  const Image scene = make_scene(64, 10);
  core::ReconstructionConfig config;
  config.target_width = 0;
  EXPECT_THROW(core::reconstruct_critical_pixels(scene, config),
               std::invalid_argument);
  config = {};
  config.neighbourhood = 0;
  EXPECT_THROW(core::reconstruct_critical_pixels(scene, config),
               std::invalid_argument);
  EXPECT_THROW(core::reconstruct_critical_pixels(Image(), config),
               std::invalid_argument);
}

TEST(ReconstructionDefense, AllCriticalFallsBackGracefully) {
  // Area scaling reads every pixel: the "clean neighbour" pool is empty
  // everywhere and the defence degenerates to a median filter, but it must
  // not crash or leave pixels unset.
  const Image scene = make_scene(64, 11);
  core::ReconstructionConfig config;
  config.target_width = config.target_height = 16;
  config.algo = ScaleAlgo::Area;
  const Image cleansed = core::reconstruct_critical_pixels(scene, config);
  EXPECT_TRUE(cleansed.same_shape(scene));
  EXPECT_GE(cleansed.min_value(), 0.0f);
  EXPECT_LE(cleansed.max_value(), 255.0f);
}

}  // namespace
}  // namespace decam
