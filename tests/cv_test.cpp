// Tests for binarisation, Otsu, the circular low-pass mask and
// connected-component blob counting.
#include <gtest/gtest.h>

#include "cv/connected_components.h"
#include "cv/threshold.h"

namespace decam {
namespace {

TEST(Binarize, ThresholdsStrictlyAbove) {
  Image img(3, 1, 1);
  img.at(0, 0, 0) = 10.0f;
  img.at(1, 0, 0) = 50.0f;
  img.at(2, 0, 0) = 50.1f;
  const Image out = binarize(img, 50.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(2, 0, 0), 255.0f);
  EXPECT_THROW(binarize(Image(2, 2, 3), 1.0f), std::invalid_argument);
}

TEST(Otsu, SeparatesBimodalImage) {
  Image img(10, 10, 1);
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) {
      img.at(x, y, 0) = (x < 5) ? 40.0f : 200.0f;
    }
  }
  const float level = otsu_threshold(img);
  EXPECT_GE(level, 40.0f);
  EXPECT_LT(level, 200.0f);
  // Binarising at the Otsu level recovers the two classes exactly.
  const Image bin = binarize(img, level);
  EXPECT_FLOAT_EQ(bin.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(bin.at(9, 9, 0), 255.0f);
}

TEST(Otsu, UniformImageReturnsValidLevel) {
  const Image img(4, 4, 1, 128.0f);
  const float level = otsu_threshold(img);
  EXPECT_GE(level, 0.0f);
  EXPECT_LE(level, 255.0f);
}

TEST(CircularLowPass, ZeroesOutsideRadius) {
  Image img(11, 11, 1, 100.0f);
  const Image out = circular_low_pass(img, 3.0);
  EXPECT_FLOAT_EQ(out.at(5, 5, 0), 100.0f);  // centre kept
  EXPECT_FLOAT_EQ(out.at(5, 2, 0), 100.0f);  // distance 3 kept
  EXPECT_FLOAT_EQ(out.at(5, 1, 0), 0.0f);    // distance 4 cut
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);    // corner cut
}

TEST(CircularLowPass, RadiusZeroKeepsOnlyCentreOfOddImage) {
  Image img(5, 5, 1, 9.0f);
  const Image out = circular_low_pass(img, 0.0);
  int kept = 0;
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      if (out.at(x, y, 0) > 0.0f) ++kept;
    }
  }
  EXPECT_EQ(kept, 1);
  EXPECT_FLOAT_EQ(out.at(2, 2, 0), 9.0f);
}

TEST(ConnectedComponents, CountsIsolatedBlobs) {
  Image img(8, 8, 1, 0.0f);
  img.at(1, 1, 0) = 255.0f;  // blob 1: single pixel
  img.at(5, 5, 0) = 255.0f;  // blob 2: 2x2 square
  img.at(6, 5, 0) = 255.0f;
  img.at(5, 6, 0) = 255.0f;
  img.at(6, 6, 0) = 255.0f;
  const ComponentMap map = connected_components(img);
  ASSERT_EQ(map.blobs.size(), 2u);
  // Sorted by descending area: the square first.
  EXPECT_EQ(map.blobs[0].area, 4);
  EXPECT_EQ(map.blobs[1].area, 1);
  EXPECT_DOUBLE_EQ(map.blobs[0].centroid_x, 5.5);
  EXPECT_DOUBLE_EQ(map.blobs[0].centroid_y, 5.5);
  EXPECT_EQ(map.blobs[1].min_x, 1);
  EXPECT_EQ(map.blobs[1].max_x, 1);
}

TEST(ConnectedComponents, DiagonalPixelsAreOneBlobWith8Connectivity) {
  Image img(4, 4, 1, 0.0f);
  img.at(0, 0, 0) = 255.0f;
  img.at(1, 1, 0) = 255.0f;
  img.at(2, 2, 0) = 255.0f;
  const ComponentMap map = connected_components(img);
  ASSERT_EQ(map.blobs.size(), 1u);
  EXPECT_EQ(map.blobs[0].area, 3);
}

TEST(ConnectedComponents, EmptyImageHasNoBlobs) {
  const Image img(6, 6, 1, 0.0f);
  EXPECT_TRUE(connected_components(img).blobs.empty());
  EXPECT_EQ(count_blobs(img), 0);
}

TEST(ConnectedComponents, FullImageIsOneBlob) {
  const Image img(6, 6, 1, 255.0f);
  const ComponentMap map = connected_components(img);
  ASSERT_EQ(map.blobs.size(), 1u);
  EXPECT_EQ(map.blobs[0].area, 36);
  EXPECT_EQ(map.blobs[0].min_x, 0);
  EXPECT_EQ(map.blobs[0].max_x, 5);
}

TEST(ConnectedComponents, LabelsPartitionForeground) {
  Image img(5, 5, 1, 0.0f);
  img.at(0, 0, 0) = 255.0f;
  img.at(4, 4, 0) = 255.0f;
  const ComponentMap map = connected_components(img);
  EXPECT_NE(map.labels[0], 0);
  EXPECT_NE(map.labels[24], 0);
  EXPECT_NE(map.labels[0], map.labels[24]);
  EXPECT_EQ(map.labels[12], 0);  // background centre
}

TEST(CountBlobs, MinAreaFiltersSmallBlobs) {
  Image img(8, 8, 1, 0.0f);
  img.at(0, 0, 0) = 255.0f;  // area 1
  for (int y = 4; y < 7; ++y) {
    for (int x = 4; x < 7; ++x) img.at(x, y, 0) = 255.0f;  // area 9
  }
  EXPECT_EQ(count_blobs(img, 1), 2);
  EXPECT_EQ(count_blobs(img, 2), 1);
  EXPECT_EQ(count_blobs(img, 10), 0);
  EXPECT_THROW(count_blobs(img, 0), std::invalid_argument);
}

TEST(ConnectedComponents, LargeSnakeDoesNotOverflowStack) {
  // A worst-case serpentine blob across a larger image exercises the
  // explicit-stack flood fill (a recursive version would overflow).
  const int n = 512;
  Image img(n, n, 1, 0.0f);
  for (int y = 0; y < n; ++y) {
    if (y % 2 == 0) {
      for (int x = 0; x < n; ++x) img.at(x, y, 0) = 255.0f;
    } else {
      img.at((y % 4 == 1) ? n - 1 : 0, y, 0) = 255.0f;
    }
  }
  const ComponentMap map = connected_components(img);
  ASSERT_EQ(map.blobs.size(), 1u);
  EXPECT_EQ(map.blobs[0].area, (n / 2) * n + n / 2);
}

}  // namespace
}  // namespace decam
