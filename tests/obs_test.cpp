// Tests for the observability layer (src/obs): histogram bucket/percentile
// behaviour, counter atomicity under thread hammering, span nesting, Chrome
// trace JSON well-formedness (parsed back with a minimal JSON reader), and
// the zero-event path when tracing is disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace decam::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser, just enough to re-read the Chrome
// trace export and prove it is well-formed.

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  const JsonValue& at(const std::string& key) const {
    const auto found = members.find(key);
    if (found == members.end()) {
      throw std::runtime_error("missing key: " + key);
    }
    return found->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) throw std::runtime_error("trailing JSON data");
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected JSON end");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) {
      throw std::runtime_error(std::string("expected '") + ch + "'");
    }
    ++pos_;
  }

  JsonValue parse_value() {
    const char ch = peek();
    if (ch == '{') return parse_object();
    if (ch == '[') return parse_array();
    if (ch == '"') {
      JsonValue value;
      value.type = JsonValue::Type::String;
      value.text = parse_string();
      return value;
    }
    if (ch == 't' || ch == 'f') return parse_literal(ch == 't');
    if (ch == 'n') {
      consume_word("null");
      return JsonValue{};
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue value;
    value.type = JsonValue::Type::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      value.members.emplace(key, parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.type = JsonValue::Type::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
          const unsigned code = static_cast<unsigned>(
              std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16));
          pos_ += 4;
          out += static_cast<char>(code);  // control chars only in our data
          break;
        }
        default: throw std::runtime_error("unknown escape");
      }
    }
    if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) throw std::runtime_error("bad number");
    JsonValue value;
    value.type = JsonValue::Type::Number;
    value.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return value;
  }

  JsonValue parse_literal(bool truthy) {
    consume_word(truthy ? "true" : "false");
    JsonValue value;
    value.type = JsonValue::Type::Bool;
    value.boolean = truthy;
    return value;
  }

  void consume_word(std::string_view word) {
    skip_whitespace();
    if (text_.substr(pos_, word.size()) != word) {
      throw std::runtime_error("bad literal");
    }
    pos_ += word.size();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// Restores the tracing gate and empties the buffer around each test so the
// tests compose regardless of execution order or the DECAM_TRACE env var.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing_enabled(false);
    TraceBuffer::instance().clear();
  }
  void TearDown() override {
    set_tracing_enabled(false);
    TraceBuffer::instance().clear();
  }
};

void busy_wait_us(double duration_us) {
  const double until = now_us() + duration_us;
  while (now_us() < until) {
  }
}

// ---------------------------------------------------------------------------
// Histogram

TEST_F(ObsTest, HistogramBucketBoundsAreMonotone) {
  double previous = 0.0;
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    const double upper = Histogram::bucket_upper_ms(i);
    EXPECT_GT(upper, previous);
    previous = upper;
  }
  // Samples land in the bucket whose bounds bracket them (boundary values
  // may land on either side of the floating-point log).
  for (const double ms : {0.0005, 0.002, 0.5, 1.0, 17.0, 200.0, 5000.0}) {
    const int index = Histogram::bucket_index(ms);
    EXPECT_LE(ms, Histogram::bucket_upper_ms(index));
    if (index > 0) {
      EXPECT_GE(ms, Histogram::bucket_upper_ms(index - 1));
    }
  }
  // Out-of-range values clamp instead of overflowing.
  EXPECT_EQ(Histogram::bucket_index(-3.0), 0);
  EXPECT_EQ(Histogram::bucket_index(1e12), Histogram::kBucketCount - 1);
}

TEST_F(ObsTest, HistogramCountSumMinMaxAreExact) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min_ms(), 0.0);
  EXPECT_EQ(histogram.max_ms(), 0.0);
  EXPECT_EQ(histogram.percentile(50.0), 0.0);

  histogram.record(3.0);
  histogram.record(1.0);
  histogram.record(10.0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum_ms(), 14.0);
  EXPECT_DOUBLE_EQ(histogram.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max_ms(), 10.0);

  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.max_ms(), 0.0);
}

TEST_F(ObsTest, HistogramPercentilesTrackUniformData) {
  Histogram histogram;
  for (int ms = 1; ms <= 1000; ++ms) histogram.record(static_cast<double>(ms));
  // Geometric buckets give ~9 % relative resolution; allow 12 %.
  EXPECT_NEAR(histogram.percentile(50.0), 500.0, 60.0);
  EXPECT_NEAR(histogram.percentile(95.0), 950.0, 115.0);
  EXPECT_NEAR(histogram.percentile(99.0), 990.0, 120.0);
  // Extremes clamp to the exact observed range.
  EXPECT_DOUBLE_EQ(histogram.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(100.0), 1000.0);
  // Percentiles are monotone in p.
  double previous = 0.0;
  for (double p = 0.0; p <= 100.0; p += 5.0) {
    const double value = histogram.percentile(p);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST_F(ObsTest, HistogramSingleSamplePercentiles) {
  Histogram histogram;
  histogram.record(42.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(99.0), 42.0);
}

TEST_F(ObsTest, HistogramOverflowSamplesLandInLastBucket) {
  Histogram histogram;
  histogram.record(1e12);  // far beyond the ~1 h top bucket bound
  histogram.record(1e12);
  EXPECT_EQ(histogram.bucket_count(Histogram::kBucketCount - 1), 2u);
  EXPECT_EQ(histogram.count(), 2u);
  // Percentiles of an overflow-only histogram clamp to the exact observed
  // values instead of the (meaningless) finite bucket bound.
  EXPECT_DOUBLE_EQ(histogram.percentile(50.0), 1e12);
  EXPECT_DOUBLE_EQ(histogram.max_ms(), 1e12);
}

TEST_F(ObsTest, HistogramPercentileBoundaryInterpolation) {
  Histogram histogram;
  // Two samples in well-separated buckets: any interior percentile must sit
  // within the observed range and the exact boundaries are the extremes.
  histogram.record(1.0);
  histogram.record(512.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(100.0), 512.0);
  for (double p = 1.0; p < 100.0; p += 7.0) {
    const double value = histogram.percentile(p);
    EXPECT_GE(value, 1.0) << "p=" << p;
    EXPECT_LE(value, 512.0) << "p=" << p;
  }
  // Out-of-domain p clamps to the extremes rather than extrapolating.
  EXPECT_DOUBLE_EQ(histogram.percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(250.0), 512.0);
}

// Exporters snapshot histograms while hot paths keep recording (relaxed
// atomics; the header documents the "statistically consistent" contract).
// Primarily a TSan target; the reader also checks it never observes
// impossible values.
TEST_F(ObsTest, HistogramSnapshotWhileRecording) {
  Histogram histogram;
  constexpr int kRecords = 50000;
  std::thread writer([&histogram] {
    for (int i = 0; i < kRecords; ++i) {
      histogram.record(static_cast<double>(i % 100) + 0.5);
    }
  });
  std::uint64_t last_count = 0;
  while (last_count < kRecords) {
    const std::uint64_t count = histogram.count();
    EXPECT_GE(count, last_count);  // counts only grow
    last_count = count;
    std::uint64_t bucket_sum = 0;
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      bucket_sum += histogram.bucket_count(i);
    }
    EXPECT_LE(bucket_sum, static_cast<std::uint64_t>(kRecords));
    const double p50 = histogram.percentile(50.0);
    EXPECT_GE(p50, 0.0);
    EXPECT_LE(p50, 100.0);
  }
  writer.join();
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kRecords));
  EXPECT_DOUBLE_EQ(histogram.min_ms(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max_ms(), 99.5);
}

// ---------------------------------------------------------------------------
// Thread hammering

TEST_F(ObsTest, CounterIsAtomicUnderThreadHammer) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST_F(ObsTest, HistogramIsLossLessUnderThreadHammer) {
  Histogram histogram;
  constexpr int kThreads = 4;
  constexpr int kRecordsPerThread = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        histogram.record(static_cast<double>(t) + 1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kRecordsPerThread);
  // Sum of t+1 over threads: (1+2+3+4) * records.
  EXPECT_NEAR(histogram.sum_ms(), 10.0 * kRecordsPerThread, 1e-6);
  EXPECT_DOUBLE_EQ(histogram.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max_ms(), 4.0);
}

TEST_F(ObsTest, GaugeAddIsAtomicUnderThreadHammer) {
  Gauge gauge;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kAddsPerThread; ++i) gauge.add(0.5);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_NEAR(gauge.value(), 0.5 * kThreads * kAddsPerThread, 1e-6);
}

// ---------------------------------------------------------------------------
// Registry

TEST_F(ObsTest, RegistryHandlesAreStableAndResettable) {
  auto& registry = MetricsRegistry::instance();
  Counter& counter = registry.counter("obs_test/counter");
  Gauge& gauge = registry.gauge("obs_test/gauge");
  Histogram& histogram = registry.histogram("obs_test/histogram");
  counter.add(7);
  gauge.set(2.5);
  histogram.record(1.0);

  // Repeated lookup returns the same objects.
  EXPECT_EQ(&registry.counter("obs_test/counter"), &counter);
  EXPECT_EQ(&registry.gauge("obs_test/gauge"), &gauge);
  EXPECT_EQ(&registry.histogram("obs_test/histogram"), &histogram);
  EXPECT_EQ(registry.find_histogram("obs_test/histogram"), &histogram);
  EXPECT_EQ(registry.find_histogram("obs_test/nonexistent"), nullptr);

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST_F(ObsTest, LatencyTableOrdersByTable7CostRank) {
  EXPECT_EQ(table7_rank("detector/steganalysis/csp"), 0);
  EXPECT_EQ(table7_rank("detector/scaling/mse"), 1);
  EXPECT_EQ(table7_rank("detector/filtering/min/ssim"), 2);
  EXPECT_EQ(table7_rank("guard/request"), 3);

  auto& registry = MetricsRegistry::instance();
  registry.histogram("obs_table/scaling/mse").record(5.0);
  registry.histogram("obs_table/filtering/ssim").record(20.0);
  registry.histogram("obs_table/steganalysis/csp").record(1.0);
  const std::string rendered =
      latency_table_by_prefix("obs_table/").render();
  const std::size_t csp = rendered.find("obs_table/steganalysis/csp");
  const std::size_t mse = rendered.find("obs_table/scaling/mse");
  const std::size_t ssim = rendered.find("obs_table/filtering/ssim");
  ASSERT_NE(csp, std::string::npos);
  ASSERT_NE(mse, std::string::npos);
  ASSERT_NE(ssim, std::string::npos);
  EXPECT_LT(csp, mse);
  EXPECT_LT(mse, ssim);
  registry.reset();
}

// ---------------------------------------------------------------------------
// Spans & tracing

TEST_F(ObsTest, DisabledTracingRecordsNoEventsFromSpans) {
  ASSERT_FALSE(tracing_enabled());
  {
    Span outer("outer");
    EXPECT_FALSE(outer.active());
    DECAM_SPAN("macro");
    busy_wait_us(50.0);
  }
  EXPECT_EQ(TraceBuffer::instance().size(), 0u);
}

TEST_F(ObsTest, SpanNestingProducesContainedEvents) {
  set_tracing_enabled(true);
  {
    Span outer("outer");
    busy_wait_us(300.0);
    {
      Span inner("inner");
      busy_wait_us(300.0);
    }
    busy_wait_us(300.0);
  }
  set_tracing_enabled(false);
  const std::vector<TraceEvent> events = TraceBuffer::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Events are recorded on close, so "inner" lands first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1.0);
  EXPECT_LT(inner.dur_us, outer.dur_us);
  EXPECT_EQ(inner.tid, outer.tid);
}

TEST_F(ObsTest, ScopedTimerRecordsHistogramAndOptionalTrace) {
  Histogram histogram;
  {
    ScopedTimer timer(histogram, "timed");
    busy_wait_us(200.0);
    const double elapsed = timer.stop();
    EXPECT_GE(elapsed, 0.2);
    EXPECT_DOUBLE_EQ(timer.stop(), elapsed);  // idempotent
  }
  EXPECT_EQ(histogram.count(), 1u);           // stop() recorded exactly once
  EXPECT_EQ(TraceBuffer::instance().size(), 0u);  // tracing off: no event

  set_tracing_enabled(true);
  { ScopedTimer timer(histogram, "timed"); }
  set_tracing_enabled(false);
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_EQ(TraceBuffer::instance().size(), 1u);
}

// ---------------------------------------------------------------------------
// Chrome trace JSON

TEST_F(ObsTest, ChromeTraceJsonParsesBack) {
  set_tracing_enabled(true);
  {
    Span weird("we\"ird\\name\nwith\tcontrol");
    Span plain("detector/scaling/mse");
    busy_wait_us(100.0);
  }
  set_tracing_enabled(false);

  const std::string json = TraceBuffer::instance().chrome_json();
  const JsonValue root = JsonParser(json).parse();
  ASSERT_EQ(root.type, JsonValue::Type::Object);
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::Array);
  ASSERT_EQ(events.items.size(), 2u);
  std::vector<std::string> names;
  for (const JsonValue& event : events.items) {
    ASSERT_EQ(event.type, JsonValue::Type::Object);
    EXPECT_EQ(event.at("ph").text, "X");
    EXPECT_EQ(event.at("cat").text, "decam");
    EXPECT_EQ(event.at("pid").number, 1.0);
    EXPECT_GT(event.at("tid").number, 0.0);
    EXPECT_GE(event.at("ts").number, 0.0);
    EXPECT_GE(event.at("dur").number, 0.0);
    names.push_back(event.at("name").text);
  }
  // Escaping survived the round trip, including the raw control characters.
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "we\"ird\\name\nwith\tcontrol"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "detector/scaling/mse"),
            names.end());
}

TEST_F(ObsTest, WriteChromeTraceProducesParseableFile) {
  set_tracing_enabled(true);
  { Span span("file_span"); }
  set_tracing_enabled(false);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "decam_obs_test_trace.json";
  TraceBuffer::instance().write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = JsonParser(buffer.str()).parse();
  EXPECT_EQ(root.at("traceEvents").items.size(), 1u);
  EXPECT_EQ(root.at("traceEvents").items[0].at("name").text, "file_span");
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Log prefix

TEST_F(ObsTest, LogPrefixCarriesElapsedMilliseconds) {
  const std::string prefix = log_prefix();
  EXPECT_EQ(prefix.rfind("[decam +", 0), 0u);
  EXPECT_NE(prefix.find("ms] "), std::string::npos);
  // The embedded elapsed time parses as a number and grows monotonically.
  const auto parse_ms = [](const std::string& text) {
    return std::stod(text.substr(8, text.find("ms]") - 8));
  };
  const double first = parse_ms(prefix);
  busy_wait_us(1500.0);
  const double second = parse_ms(log_prefix());
  EXPECT_GT(second, first);
}

TEST_F(ObsTest, ClockIsMonotoneAndThreadIdsAreStable) {
  const double t0 = now_us();
  busy_wait_us(100.0);
  EXPECT_GT(now_us(), t0);
  EXPECT_EQ(current_tid(), current_tid());
  std::uint32_t other = 0;
  std::thread([&other] { other = current_tid(); }).join();
  EXPECT_NE(other, current_tid());
}

// ---------------------------------------------------------------------------
// Thread-name metadata (runtime pool workers label their trace rows).
// NOTE: names registered here outlive TraceBuffer::clear(), so this test
// stays after the event-count assertions above.

TEST_F(ObsTest, ChromeTraceCarriesThreadNameMetadata) {
  set_current_thread_name("decam-test-main");
  set_tracing_enabled(true);
  { Span span("named_span"); }
  set_tracing_enabled(false);

  const std::string json = TraceBuffer::instance().chrome_json();
  const JsonValue root = JsonParser(json).parse();
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.items.size(), 2u);  // metadata first, then the span
  const JsonValue& meta = events.items[0];
  EXPECT_EQ(meta.at("ph").text, "M");
  EXPECT_EQ(meta.at("name").text, "thread_name");
  EXPECT_EQ(meta.at("pid").number, 1.0);
  EXPECT_EQ(meta.at("tid").number, static_cast<double>(current_tid()));
  EXPECT_EQ(meta.at("args").at("name").text, "decam-test-main");
  EXPECT_EQ(events.items[1].at("name").text, "named_span");
}

}  // namespace
}  // namespace decam::obs
