// The determinism contract (DESIGN.md §8): running the experiment pipeline
// through the thread pool must be bit-for-bit identical to the serial run —
// same ScoreRows in the same order, same attack-quality rows, and a cache
// TSV that a serial run would also have written.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "runtime/thread_pool.h"

namespace decam::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.n_train = 3;
  config.n_eval = 3;
  config.target_width = config.target_height = 24;
  config.min_side = 96;
  config.max_side = 120;
  config.seed = 7;
  return config;
}

void expect_rows_equal(const std::vector<ScoreRow>& serial,
                       const std::vector<ScoreRow>& parallel,
                       const char* label) {
  ASSERT_EQ(serial.size(), parallel.size()) << label;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(std::string(label) + " row " + std::to_string(i));
    EXPECT_EQ(serial[i].scaling_mse, parallel[i].scaling_mse);
    EXPECT_EQ(serial[i].scaling_ssim, parallel[i].scaling_ssim);
    EXPECT_EQ(serial[i].scaling_psnr, parallel[i].scaling_psnr);
    EXPECT_EQ(serial[i].filtering_mse, parallel[i].filtering_mse);
    EXPECT_EQ(serial[i].filtering_ssim, parallel[i].filtering_ssim);
    EXPECT_EQ(serial[i].filtering_psnr, parallel[i].filtering_psnr);
    EXPECT_EQ(serial[i].csp, parallel[i].csp);
    EXPECT_EQ(serial[i].histogram, parallel[i].histogram);
  }
}

class RuntimeDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { runtime::set_thread_count(0); }
};

TEST_F(RuntimeDeterminismTest, ParallelScoresAreBitIdenticalToSerial) {
  const ExperimentConfig config = tiny_config();

  runtime::set_thread_count(1);
  const ExperimentData serial = run_experiment(config, {}, false);

  runtime::set_thread_count(4);
  const ExperimentData parallel = run_experiment(config, {}, false);

  expect_rows_equal(serial.train_benign, parallel.train_benign,
                    "train_benign");
  expect_rows_equal(serial.train_attack, parallel.train_attack,
                    "train_attack");
  expect_rows_equal(serial.eval_benign, parallel.eval_benign, "eval_benign");
  expect_rows_equal(serial.eval_attack_white, parallel.eval_attack_white,
                    "eval_attack_white");
  expect_rows_equal(serial.eval_attack_black, parallel.eval_attack_black,
                    "eval_attack_black");
  ASSERT_EQ(serial.attack_quality.size(), parallel.attack_quality.size());
  for (std::size_t i = 0; i < serial.attack_quality.size(); ++i) {
    SCOPED_TRACE("attack_quality row " + std::to_string(i));
    EXPECT_EQ(serial.attack_quality[i].downscale_linf,
              parallel.attack_quality[i].downscale_linf);
    EXPECT_EQ(serial.attack_quality[i].source_ssim,
              parallel.attack_quality[i].source_ssim);
  }
}

TEST_F(RuntimeDeterminismTest, ParallelCacheTsvMatchesSerialWriter) {
  const ExperimentConfig config = tiny_config();
  const std::filesystem::path dir_serial =
      std::filesystem::temp_directory_path() / "decam_determinism_serial";
  const std::filesystem::path dir_parallel =
      std::filesystem::temp_directory_path() / "decam_determinism_parallel";
  std::filesystem::remove_all(dir_serial);
  std::filesystem::remove_all(dir_parallel);

  runtime::set_thread_count(1);
  run_experiment(config, dir_serial, false);
  runtime::set_thread_count(4);
  const ExperimentData parallel = run_experiment(config, dir_parallel, false);

  // The TSV is written by the single caller thread after the parallel
  // region; both directories must hold one byte-identical cache file.
  const auto read_only_file = [](const std::filesystem::path& dir) {
    std::filesystem::path found;
    int count = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      found = entry.path();
      ++count;
    }
    EXPECT_EQ(count, 1) << dir;
    std::ifstream in(found, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };
  const std::string serial_bytes = read_only_file(dir_serial);
  const std::string parallel_bytes = read_only_file(dir_parallel);
  EXPECT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, parallel_bytes);

  // And the parallel-written cache loads back as a valid experiment that
  // matches what the run returned.
  std::filesystem::path cache_file;
  for (const auto& entry : std::filesystem::directory_iterator(dir_parallel)) {
    cache_file = entry.path();
  }
  const std::optional<ExperimentData> loaded =
      load_experiment(config, cache_file);
  ASSERT_TRUE(loaded.has_value());
  expect_rows_equal(parallel.eval_attack_black, loaded->eval_attack_black,
                    "reloaded eval_attack_black");

  std::filesystem::remove_all(dir_serial);
  std::filesystem::remove_all(dir_parallel);
}

}  // namespace
}  // namespace decam::core
