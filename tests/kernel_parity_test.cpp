// Golden parity tests: the optimized kernels in src/imaging/ (van Herk
// rank filters, running-sum box blur, scanline convolution, row-major
// flattened-table resize) against the retained naive reference
// implementations in reference_kernels.h.
//
// Tolerance policy (see imaging/filter.h): rank filters select actual input
// samples and must match bit-for-bit; gaussian_blur keeps the exact
// per-pixel arithmetic sequence and must also match bit-for-bit; box_blur
// and resize may re-associate double additions, so they get a max-abs-diff
// budget of 1e-6 of full scale (inputs live in [0, 255]).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "data/rng.h"
#include "imaging/filter.h"
#include "imaging/kernels.h"
#include "imaging/scale.h"
#include "reference_kernels.h"

namespace decam {
namespace {

constexpr float kFullScaleTol = 255.0f * 1e-6f;

Image random_image(int w, int h, int c, std::uint64_t seed) {
  data::Rng rng(seed);
  Image img(w, h, c);
  for (int ch = 0; ch < c; ++ch) {
    for (float& v : img.plane(ch)) {
      v = static_cast<float>(rng.next_range(0.0, 255.0));
    }
  }
  return img;
}

void expect_identical(const Image& got, const Image& want,
                      const std::string& what) {
  ASSERT_EQ(got.width(), want.width()) << what;
  ASSERT_EQ(got.height(), want.height()) << what;
  ASSERT_EQ(got.channels(), want.channels()) << what;
  for (int c = 0; c < want.channels(); ++c) {
    for (int y = 0; y < want.height(); ++y) {
      for (int x = 0; x < want.width(); ++x) {
        ASSERT_EQ(got.at(x, y, c), want.at(x, y, c))
            << what << " at (" << x << ", " << y << ", " << c << ")";
      }
    }
  }
}

void expect_close(const Image& got, const Image& want, float tol,
                  const std::string& what) {
  ASSERT_EQ(got.width(), want.width()) << what;
  ASSERT_EQ(got.height(), want.height()) << what;
  ASSERT_EQ(got.channels(), want.channels()) << what;
  for (int c = 0; c < want.channels(); ++c) {
    for (int y = 0; y < want.height(); ++y) {
      for (int x = 0; x < want.width(); ++x) {
        const float diff = std::fabs(got.at(x, y, c) - want.at(x, y, c));
        ASSERT_LE(diff, tol)
            << what << " at (" << x << ", " << y << ", " << c << ")";
      }
    }
  }
}

struct Shape {
  int w, h, c;
};

// Odd and even k, k larger than either dimension, 1- and 3-channel images,
// and degenerate 1xN / Nx1 strips.
const Shape kRankShapes[] = {{31, 17, 1}, {16, 16, 3}, {1, 13, 1},
                             {13, 1, 3},  {5, 5, 1}};
const int kRankKs[] = {1, 2, 3, 4, 5, 9};

TEST(RankFilterParity, MinMaxMedianMatchReferenceExactly) {
  for (const Shape& s : kRankShapes) {
    const Image img = random_image(s.w, s.h, s.c, 1000u + s.w * 7u + s.h);
    for (const int k : kRankKs) {
      for (const RankOp op : {RankOp::Min, RankOp::Median, RankOp::Max}) {
        const std::string what = std::to_string(s.w) + "x" +
                                 std::to_string(s.h) + "x" +
                                 std::to_string(s.c) + " k=" +
                                 std::to_string(k) + " op=" +
                                 std::to_string(static_cast<int>(op));
        expect_identical(rank_filter(img, k, op),
                         testref::rank_filter(img, k, op), what);
      }
    }
  }
}

// The histogram median paths (imaging/filter.h eligibility contract).
// Quantised values land on the 8-bit grid (Perreault–Hébert path), i/256
// values on the 16-bit grid (serpentine Huang path); both must reproduce
// the sorted-window reference bit for bit, k = 15 included (larger than
// every test shape, so the whole window is border replication).
const int kGridKs[] = {1, 2, 3, 4, 5, 9, 15};

Image random_grid8_image(int w, int h, int c, std::uint64_t seed) {
  data::Rng rng(seed);
  Image img(w, h, c);
  for (int ch = 0; ch < c; ++ch) {
    for (float& v : img.plane(ch)) {
      v = static_cast<float>(static_cast<int>(rng.next_range(0.0, 256.0)));
    }
  }
  return img;
}

Image random_grid16_image(int w, int h, int c, std::uint64_t seed) {
  data::Rng rng(seed);
  Image img(w, h, c);
  for (int ch = 0; ch < c; ++ch) {
    for (float& v : img.plane(ch)) {
      const int i = static_cast<int>(rng.next_range(0.0, 65536.0));
      v = static_cast<float>(i) * (1.0f / 256.0f);  // exact: 2^-8 scale
    }
  }
  return img;
}

TEST(RankFilterParity, MedianGrid8MatchesReferenceExactly) {
  for (const Shape& s : kRankShapes) {
    const Image img = random_grid8_image(s.w, s.h, s.c, 4000u + s.w * 7u + s.h);
    ASSERT_EQ(classify_median_path(img), MedianPath::Grid8);
    for (const int k : kGridKs) {
      expect_identical(rank_filter(img, k, RankOp::Median),
                       testref::rank_filter(img, k, RankOp::Median),
                       "grid8 " + std::to_string(s.w) + "x" +
                           std::to_string(s.h) + "x" + std::to_string(s.c) +
                           " k=" + std::to_string(k));
    }
  }
}

TEST(RankFilterParity, MedianGrid16MatchesReferenceExactly) {
  for (const Shape& s : kRankShapes) {
    const Image img =
        random_grid16_image(s.w, s.h, s.c, 5000u + s.w * 7u + s.h);
    ASSERT_EQ(classify_median_path(img), MedianPath::Grid16);
    for (const int k : kGridKs) {
      expect_identical(rank_filter(img, k, RankOp::Median),
                       testref::rank_filter(img, k, RankOp::Median),
                       "grid16 " + std::to_string(s.w) + "x" +
                           std::to_string(s.h) + "x" + std::to_string(s.c) +
                           " k=" + std::to_string(k));
    }
  }
}

TEST(RankFilterParity, OffGridMedianFallsBackAndMatches) {
  // One off-grid pixel disqualifies the whole image; the exact sorted-window
  // fallback must still reproduce the reference on the unchanged pixels.
  Image img = random_grid8_image(16, 16, 3, 6001);
  img.plane(1)[37] = 0.3f;
  ASSERT_EQ(classify_median_path(img), MedianPath::Exact);
  for (const int k : {2, 3, 9}) {
    expect_identical(rank_filter(img, k, RankOp::Median),
                     testref::rank_filter(img, k, RankOp::Median),
                     "off-grid k=" + std::to_string(k));
  }
}

TEST(MedianClassifier, RoutesByRepresentability) {
  const auto one_pixel = [](float v) {
    Image img(3, 3, 1);
    for (float& p : img.plane(0)) p = 7.0f;
    img.plane(0)[4] = v;
    return img;
  };
  EXPECT_EQ(classify_median_path(one_pixel(0.0f)), MedianPath::Grid8);
  EXPECT_EQ(classify_median_path(one_pixel(255.0f)), MedianPath::Grid8);
  EXPECT_EQ(classify_median_path(one_pixel(0.5f)), MedianPath::Grid16);
  EXPECT_EQ(classify_median_path(one_pixel(65535.0f / 256.0f)),
            MedianPath::Grid16);  // top of the 16-bit grid
  EXPECT_EQ(classify_median_path(one_pixel(0.3f)), MedianPath::Exact);
  EXPECT_EQ(classify_median_path(one_pixel(-1.0f)), MedianPath::Exact);
  EXPECT_EQ(classify_median_path(one_pixel(256.0f)),
            MedianPath::Exact);  // integral but past the grid top
  EXPECT_EQ(classify_median_path(one_pixel(300.25f)), MedianPath::Exact);
  EXPECT_EQ(classify_median_path(
                one_pixel(std::numeric_limits<float>::quiet_NaN())),
            MedianPath::Exact);
  EXPECT_EQ(
      classify_median_path(one_pixel(std::numeric_limits<float>::infinity())),
      MedianPath::Exact);

  // Multi-channel: the coarsest plane decides for the whole image.
  Image mixed(4, 4, 2);
  for (float& p : mixed.plane(0)) p = 12.0f;   // grid8 on its own
  for (float& p : mixed.plane(1)) p = 12.5f;   // grid16 only
  EXPECT_EQ(classify_median_path(mixed), MedianPath::Grid16);
  mixed.plane(1)[0] = 0.1f;
  EXPECT_EQ(classify_median_path(mixed), MedianPath::Exact);
}

TEST(RankFilterParity, ConstantImageIsFixedPoint) {
  Image img(9, 6, 1);
  for (float& v : img.plane(0)) v = 42.5f;
  for (const int k : {2, 3, 9}) {
    for (const RankOp op : {RankOp::Min, RankOp::Median, RankOp::Max}) {
      const Image out = rank_filter(img, k, op);
      for (int y = 0; y < out.height(); ++y) {
        for (int x = 0; x < out.width(); ++x) {
          ASSERT_EQ(out.at(x, y, 0), 42.5f) << "k=" << k;
        }
      }
    }
  }
}

TEST(GaussianBlurParity, ScanlineConvolveIsBitCompatible) {
  const Image img = random_image(25, 19, 3, 77);
  for (const double sigma : {0.8, 1.5, 3.0}) {
    expect_identical(gaussian_blur(img, sigma),
                     testref::gaussian_blur(img, sigma),
                     "sigma=" + std::to_string(sigma));
  }
  // Degenerate strips: every read is border-clamped in one direction.
  const Image strip_h = random_image(13, 1, 1, 78);
  const Image strip_v = random_image(1, 13, 1, 79);
  expect_identical(gaussian_blur(strip_h, 1.5),
                   testref::gaussian_blur(strip_h, 1.5), "13x1 sigma=1.5");
  expect_identical(gaussian_blur(strip_v, 1.5),
                   testref::gaussian_blur(strip_v, 1.5), "1x13 sigma=1.5");
}

TEST(BoxBlurParity, RunningSumWithinLastUlpBudget) {
  const Shape shapes[] = {{31, 17, 3}, {1, 13, 1}, {13, 1, 1}, {4, 4, 1}};
  for (const Shape& s : shapes) {
    const Image img = random_image(s.w, s.h, s.c, 2000u + s.w);
    for (const int k : {1, 3, 5, 9, 25}) {
      expect_close(box_blur(img, k), testref::box_blur(img, k), kFullScaleTol,
                   std::to_string(s.w) + "x" + std::to_string(s.h) +
                       " box k=" + std::to_string(k));
    }
  }
}

struct ResizeCase {
  int in_w, in_h, out_w, out_h, c;
};

TEST(ResizeParity, RowMajorPassMatchesColumnStridedReference) {
  const ResizeCase cases[] = {
      {37, 29, 11, 7, 3},   // downscale
      {11, 7, 37, 29, 3},   // upscale
      {23, 23, 23, 23, 1},  // identity geometry
      {7, 3, 3, 7, 1},      // shrink one axis, grow the other
      {2, 2, 64, 64, 1},    // heavy border clamping for wide kernels
      {1, 13, 1, 5, 1},     // degenerate 1xN
      {13, 1, 5, 1, 3},     // degenerate Nx1
  };
  for (const ResizeCase& rc : cases) {
    const Image img =
        random_image(rc.in_w, rc.in_h, rc.c, 3000u + rc.in_w * 13u + rc.out_w);
    for (const ScaleAlgo algo :
         {ScaleAlgo::Nearest, ScaleAlgo::Bilinear, ScaleAlgo::Bicubic,
          ScaleAlgo::Area, ScaleAlgo::Lanczos4}) {
      const std::string what = std::string(to_string(algo)) + " " +
                               std::to_string(rc.in_w) + "x" +
                               std::to_string(rc.in_h) + "->" +
                               std::to_string(rc.out_w) + "x" +
                               std::to_string(rc.out_h);
      expect_close(resize(img, rc.out_w, rc.out_h, algo),
                   testref::resize(img, rc.out_w, rc.out_h, algo),
                   kFullScaleTol, what);
    }
  }
}

// Regression for extreme downscales: border clamping collapses many taps
// onto the same source index; after build-time coalescing each row must
// list strictly increasing indices and still partition unity.
TEST(KernelTableCoalescing, ExtremeDownscaleRowsPartitionUnity) {
  const std::pair<int, int> geometries[] = {{1024, 2}, {7, 3}, {1, 1}};
  for (const auto& [in, out] : geometries) {
    for (const ScaleAlgo algo :
         {ScaleAlgo::Nearest, ScaleAlgo::Bilinear, ScaleAlgo::Bicubic,
          ScaleAlgo::Area, ScaleAlgo::Lanczos4}) {
      const KernelTable table = make_kernel_table(in, out, algo);
      ASSERT_EQ(table.out_size, out);
      for (int o = 0; o < out; ++o) {
        const auto row = table.row(o);
        ASSERT_FALSE(row.empty()) << to_string(algo);
        double sum = 0.0;
        for (std::size_t t = 0; t < row.size(); ++t) {
          ASSERT_GE(row[t].index, 0);
          ASSERT_LT(row[t].index, in);
          if (t > 0) {
            ASSERT_GT(row[t].index, row[t - 1].index)
                << to_string(algo) << " " << in << "->" << out << " row " << o
                << ": duplicate source index survived coalescing";
          }
          sum += row[t].weight;
        }
        EXPECT_NEAR(sum, 1.0, 1e-4)
            << to_string(algo) << " " << in << "->" << out << " row " << o;
      }
    }
  }
}

TEST(KernelTableCoalescing, ExtremeDownscalePreservesConstantImages) {
  Image img(1024, 4, 1);
  for (float& v : img.plane(0)) v = 200.0f;
  for (const ScaleAlgo algo :
       {ScaleAlgo::Nearest, ScaleAlgo::Bilinear, ScaleAlgo::Bicubic,
        ScaleAlgo::Area, ScaleAlgo::Lanczos4}) {
    const Image out = resize(img, 2, 2, algo);
    for (int y = 0; y < 2; ++y) {
      for (int x = 0; x < 2; ++x) {
        EXPECT_NEAR(out.at(x, y, 0), 200.0f, 1e-3f) << to_string(algo);
      }
    }
  }
}

TEST(KernelCache, HitsMissesAndSharing) {
  clear_kernel_cache();
  KernelCacheStats stats = kernel_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);

  const auto a = get_kernel_table(100, 50, ScaleAlgo::Bicubic);
  const auto b = get_kernel_table(100, 50, ScaleAlgo::Bicubic);
  EXPECT_EQ(a.get(), b.get()) << "same key must share one table";
  const auto c = get_kernel_table(100, 50, ScaleAlgo::Bilinear);
  EXPECT_NE(a.get(), c.get());

  stats = kernel_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(KernelCache, EvictionBoundsEntriesAndKeepsTablesAlive) {
  clear_kernel_cache();
  const std::size_t capacity = kernel_cache_stats().capacity;
  ASSERT_GT(capacity, 0u);
  // Hold a shared_ptr across more distinct keys than the cache can keep:
  // eviction must bound `entries` without invalidating in-flight tables.
  const auto pinned = get_kernel_table(333, 111, ScaleAlgo::Bicubic);
  for (std::size_t i = 0; i < capacity + 16; ++i) {
    get_kernel_table(static_cast<int>(64 + i), 32, ScaleAlgo::Bilinear);
  }
  const KernelCacheStats stats = kernel_cache_stats();
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_EQ(pinned->in_size, 333);
  EXPECT_EQ(pinned->out_size, 111);
  EXPECT_EQ(pinned->row(0).size(),
            static_cast<std::size_t>(pinned->row_taps(0)));
  clear_kernel_cache();
}

}  // namespace
}  // namespace decam
