// Tests for color conversion and the drawing primitives used by the
// synthetic dataset generator.
#include <gtest/gtest.h>

#include <array>

#include "imaging/color.h"
#include "imaging/draw.h"

namespace decam {
namespace {

TEST(ToGray, UsesBt601Weights) {
  Image img(1, 1, 3);
  img.at(0, 0, 0) = 100.0f;  // R
  img.at(0, 0, 1) = 50.0f;   // G
  img.at(0, 0, 2) = 200.0f;  // B
  const Image gray = to_gray(img);
  EXPECT_EQ(gray.channels(), 1);
  EXPECT_NEAR(gray.at(0, 0, 0), 0.299f * 100 + 0.587f * 50 + 0.114f * 200,
              1e-3f);
}

TEST(ToGray, GrayInputPassesThrough) {
  Image img(2, 2, 1, 42.0f);
  const Image gray = to_gray(img);
  EXPECT_TRUE(gray.same_shape(img));
  EXPECT_FLOAT_EQ(gray.at(1, 1, 0), 42.0f);
}

TEST(ToGray, RejectsTwoChannels) {
  EXPECT_THROW(to_gray(Image(2, 2, 2)), std::invalid_argument);
}

TEST(GrayToRgb, ReplicatesPlane) {
  Image gray(2, 1, 1);
  gray.at(0, 0, 0) = 11.0f;
  gray.at(1, 0, 0) = 22.0f;
  const Image rgb = gray_to_rgb(gray);
  EXPECT_EQ(rgb.channels(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(rgb.at(0, 0, c), 11.0f);
    EXPECT_FLOAT_EQ(rgb.at(1, 0, c), 22.0f);
  }
  EXPECT_THROW(gray_to_rgb(Image(2, 2, 3)), std::invalid_argument);
}

TEST(Draw, FillRectClipsToImage) {
  Image img(4, 4, 1, 0.0f);
  const std::array<float, 1> white = {255.0f};
  fill_rect(img, -2, -2, 2, 2, white);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 255.0f);
  EXPECT_FLOAT_EQ(img.at(1, 1, 0), 255.0f);
  EXPECT_FLOAT_EQ(img.at(2, 2, 0), 0.0f);
}

TEST(Draw, FillRectBroadcastsSingleColorToAllChannels) {
  Image img(2, 2, 3, 0.0f);
  const std::array<float, 1> gray = {70.0f};
  fill_rect(img, 0, 0, 2, 2, gray);
  for (int c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(img.at(1, 1, c), 70.0f);
}

TEST(Draw, FillRectRejectsWrongColorArity) {
  Image img(2, 2, 3);
  const std::array<float, 2> bad = {1.0f, 2.0f};
  EXPECT_THROW(fill_rect(img, 0, 0, 1, 1, bad), std::invalid_argument);
}

TEST(Draw, FillCircleCoversDisc) {
  Image img(9, 9, 1, 0.0f);
  const std::array<float, 1> white = {255.0f};
  fill_circle(img, 4, 4, 2, white);
  EXPECT_FLOAT_EQ(img.at(4, 4, 0), 255.0f);
  EXPECT_FLOAT_EQ(img.at(6, 4, 0), 255.0f);   // on the radius
  EXPECT_FLOAT_EQ(img.at(7, 4, 0), 0.0f);     // outside
  EXPECT_FLOAT_EQ(img.at(6, 6, 0), 0.0f);     // corner at distance 2*sqrt2
  EXPECT_THROW(fill_circle(img, 0, 0, -1, white), std::invalid_argument);
}

TEST(Draw, DrawLineConnectsEndpoints) {
  Image img(5, 5, 1, 0.0f);
  const std::array<float, 1> white = {255.0f};
  draw_line(img, 0, 0, 4, 4, white);
  for (int i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(img.at(i, i, 0), 255.0f);
}

TEST(Draw, DrawLineClipsOutOfRangePoints) {
  Image img(3, 3, 1, 0.0f);
  const std::array<float, 1> white = {255.0f};
  draw_line(img, -2, 1, 5, 1, white);  // horizontal, partially outside
  for (int x = 0; x < 3; ++x) EXPECT_FLOAT_EQ(img.at(x, 1, 0), 255.0f);
}

TEST(Draw, GradientInterpolatesHorizontally) {
  Image img(11, 3, 1);
  const std::array<float, 1> from = {0.0f};
  const std::array<float, 1> to = {100.0f};
  fill_gradient(img, from, to, 0.0);
  EXPECT_NEAR(img.at(0, 1, 0), 0.0f, 1e-3f);
  EXPECT_NEAR(img.at(5, 1, 0), 50.0f, 1e-3f);
  EXPECT_NEAR(img.at(10, 1, 0), 100.0f, 1e-3f);
  // Vertical invariance for angle 0.
  EXPECT_NEAR(img.at(5, 0, 0), img.at(5, 2, 0), 1e-4f);
}

TEST(Draw, BlendSpriteRespectsAlphaAndClipping) {
  Image img(4, 4, 1, 100.0f);
  Image sprite(2, 2, 1, 200.0f);
  blend_sprite(img, sprite, 3, 3, 0.5f);  // only (3,3) overlaps
  EXPECT_FLOAT_EQ(img.at(3, 3, 0), 150.0f);
  EXPECT_FLOAT_EQ(img.at(2, 2, 0), 100.0f);
  EXPECT_THROW(blend_sprite(img, Image(2, 2, 3), 0, 0, 0.5f),
               std::invalid_argument);
  EXPECT_THROW(blend_sprite(img, sprite, 0, 0, 1.5f), std::invalid_argument);
}

}  // namespace
}  // namespace decam
