// Hostile-input wall for the PNM/BMP codecs (ISSUE 10 satellite). Every
// decoder here is fed files an attacker controls — the scan CLI reads
// arbitrary paths — so the contract is strict: malformed input throws
// IoError; it never crashes, never hangs, never allocates gigabytes off a
// 20-byte header, and never trips ASan/UBSan. The corpus covers truncated
// headers, absurd and overflowing dimensions, bad maxval/bpp fields,
// short pixel payloads, and randomized single-byte corruption of valid
// files (which must either throw IoError or decode to SOME valid image —
// a flipped pixel byte is legitimately still a picture).
#include "imaging/image_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/rng.h"

namespace decam {
namespace {

class ImageIoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("decam_io_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_bytes(const std::string& name,
                          const std::vector<std::uint8_t>& bytes) const {
    const std::string p = (dir_ / name).string();
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return p;
  }

  std::string write_text(const std::string& name,
                         const std::string& text) const {
    return write_bytes(name,
                       std::vector<std::uint8_t>(text.begin(), text.end()));
  }

  static std::vector<std::uint8_t> read_bytes(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                     std::istreambuf_iterator<char>());
  }

  static Image small_image(int w, int h, int channels) {
    Image img(w, h, channels);
    for (int c = 0; c < channels; ++c) {
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          img.at(x, y, c) = static_cast<float>((x * 31 + y * 7 + c * 53) % 256);
        }
      }
    }
    return img;
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// PNM: truncated and malformed headers.

TEST_F(ImageIoFuzzTest, PnmEmptyFileThrows) {
  EXPECT_THROW(read_pnm(write_bytes("empty.pgm", {})), IoError);
}

TEST_F(ImageIoFuzzTest, PnmWrongMagicThrows) {
  for (const char* magic : {"P4", "P7", "Px", "QQ", "\x00\x00", "P"}) {
    EXPECT_THROW(read_pnm(write_text("magic.pgm", magic)), IoError)
        << "magic '" << magic << "'";
  }
}

TEST_F(ImageIoFuzzTest, PnmTruncatedHeaderThrows) {
  for (const char* header : {"P5", "P5\n", "P5\n12", "P5\n12 8", "P5\n12 8\n",
                             "P5\n# only a comment"}) {
    EXPECT_THROW(read_pnm(write_text("trunc.pgm", header)), IoError)
        << "header '" << header << "'";
  }
}

TEST_F(ImageIoFuzzTest, PnmNonNumericHeaderThrows) {
  EXPECT_THROW(read_pnm(write_text("alpha.pgm", "P5\nab cd\n255\n")), IoError);
  EXPECT_THROW(read_pnm(write_text("neg.pgm", "P5\n-3 4\n255\n")), IoError);
}

// A digit run long enough to overflow int must be rejected by the bounded
// parser, not wrap into some small positive number (signed overflow is UB).
TEST_F(ImageIoFuzzTest, PnmOverflowingDimensionThrows) {
  EXPECT_THROW(
      read_pnm(write_text("wide.pgm", "P5\n99999999999999999999 4\n255\n")),
      IoError);
  EXPECT_THROW(read_pnm(write_text("tall.pgm", "P5\n4 4294967297\n255\n")),
               IoError);
  EXPECT_THROW(
      read_pnm(write_text("deep.pgm", "P5\n4 4\n99999999999999999999\n")),
      IoError);
}

TEST_F(ImageIoFuzzTest, PnmZeroDimensionThrows) {
  EXPECT_THROW(read_pnm(write_text("zw.pgm", "P5\n0 4\n255\n")), IoError);
  EXPECT_THROW(read_pnm(write_text("zh.pgm", "P5\n4 0\n255\n")), IoError);
}

// Header claims a gigapixel canvas: must throw BEFORE allocating pixel
// storage (each dimension parses fine; the product trips the decode cap).
TEST_F(ImageIoFuzzTest, PnmAbsurdPixelCountThrows) {
  EXPECT_THROW(read_pnm(write_text("big.pgm", "P5\n16777216 16777216\n255\n")),
               IoError);
  EXPECT_THROW(read_pnm(write_text("big2.ppm", "P6\n5000 5000\n255\n")),
               IoError);
}

TEST_F(ImageIoFuzzTest, PnmBadMaxvalThrows) {
  EXPECT_THROW(read_pnm(write_text("m0.pgm", "P5\n4 4\n0\n")), IoError);
  EXPECT_THROW(read_pnm(write_text("m16.pgm", "P5\n4 4\n65535\n")), IoError);
}

TEST_F(ImageIoFuzzTest, PnmShortPayloadThrows) {
  std::string file = "P5\n8 8\n255\n";
  file += std::string(17, '\x42');  // 17 of the promised 64 bytes
  EXPECT_THROW(read_pnm(write_text("short.pgm", file)), IoError);
  EXPECT_THROW(read_pnm(write_text("nopix.ppm", "P6\n4 4\n255\n")), IoError);
}

// ---------------------------------------------------------------------------
// BMP: malformed headers and geometry.

TEST_F(ImageIoFuzzTest, BmpTooShortThrows) {
  EXPECT_THROW(read_bmp(write_bytes("empty.bmp", {})), IoError);
  EXPECT_THROW(read_bmp(write_bytes("tiny.bmp", {'B', 'M', 0, 0})), IoError);
  EXPECT_THROW(read_bmp(write_bytes("h53.bmp",
                                    std::vector<std::uint8_t>(53, 0x42))),
               IoError);
}

TEST_F(ImageIoFuzzTest, BmpWrongMagicThrows) {
  std::vector<std::uint8_t> buf(64, 0);
  buf[0] = 'X';
  buf[1] = 'M';
  EXPECT_THROW(read_bmp(write_bytes("magic.bmp", buf)), IoError);
}

// Builds a structurally valid 24-bit BMP header + payload, then lets each
// test corrupt one field.
std::vector<std::uint8_t> valid_bmp_bytes() {
  Image img(6, 5, 3);
  for (int c = 0; c < 3; ++c) {
    for (float& v : img.plane(c)) v = 100.0f + 10.0f * c;
  }
  const std::string p =
      (std::filesystem::temp_directory_path() /
       ("decam_fuzz_seed_" + std::to_string(::getpid()) + ".bmp"))
          .string();
  write_bmp(img, p);
  std::ifstream in(p, std::ios::binary);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  std::filesystem::remove(p);
  return buf;
}

void poke_u32(std::vector<std::uint8_t>& buf, std::size_t off,
              std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

TEST_F(ImageIoFuzzTest, BmpUnsupportedFormatThrows) {
  auto buf = valid_bmp_bytes();
  buf[28] = 32;  // bpp
  EXPECT_THROW(read_bmp(write_bytes("bpp.bmp", buf)), IoError);

  buf = valid_bmp_bytes();
  poke_u32(buf, 30, 1);  // BI_RLE8 compression
  EXPECT_THROW(read_bmp(write_bytes("rle.bmp", buf)), IoError);

  buf = valid_bmp_bytes();
  poke_u32(buf, 14, 12);  // pre-BITMAPINFOHEADER core header
  EXPECT_THROW(read_bmp(write_bytes("core.bmp", buf)), IoError);
}

// height == INT32_MIN: negating it to get the bottom-up row count is signed
// overflow unless the decoder widens first. Must throw, not UB.
TEST_F(ImageIoFuzzTest, BmpIntMinHeightThrows) {
  auto buf = valid_bmp_bytes();
  poke_u32(buf, 22, 0x80000000u);
  EXPECT_THROW(read_bmp(write_bytes("intmin.bmp", buf)), IoError);
}

TEST_F(ImageIoFuzzTest, BmpBadDimensionsThrow) {
  for (const std::uint32_t w : {0u, 0x80000001u, 0xFFFFFFFFu}) {
    auto buf = valid_bmp_bytes();
    poke_u32(buf, 18, w);
    EXPECT_THROW(read_bmp(write_bytes("w.bmp", buf)), IoError) << "w=" << w;
  }
  auto buf = valid_bmp_bytes();
  poke_u32(buf, 22, 0);
  EXPECT_THROW(read_bmp(write_bytes("h0.bmp", buf)), IoError);
}

// Dimensions whose product overflows the decode cap must throw before the
// pixel allocation, even though each fits an int32 individually.
TEST_F(ImageIoFuzzTest, BmpAbsurdPixelCountThrows) {
  auto buf = valid_bmp_bytes();
  poke_u32(buf, 18, 70000);
  poke_u32(buf, 22, 70000);
  EXPECT_THROW(read_bmp(write_bytes("big.bmp", buf)), IoError);
}

// data_offset past EOF (including 0xFFFFFFFF, which would wrap a naive
// `offset + size` bound check) must throw, not read out of bounds.
TEST_F(ImageIoFuzzTest, BmpBadDataOffsetThrows) {
  for (const std::uint32_t off : {100000u, 0xFFFFFFF0u, 0xFFFFFFFFu}) {
    auto buf = valid_bmp_bytes();
    poke_u32(buf, 10, off);
    EXPECT_THROW(read_bmp(write_bytes("off.bmp", buf)), IoError)
        << "offset=" << off;
  }
}

TEST_F(ImageIoFuzzTest, BmpTruncatedPixelDataThrows) {
  auto buf = valid_bmp_bytes();
  buf.resize(buf.size() - 7);
  EXPECT_THROW(read_bmp(write_bytes("trunc.bmp", buf)), IoError);
}

// ---------------------------------------------------------------------------
// Randomized corruption: flip bytes in valid files. Every outcome must be
// either IoError or a successfully decoded image — nothing else.

template <typename Reader>
void corruption_sweep(const std::vector<std::uint8_t>& valid,
                      const Reader& read, const std::string& path,
                      std::uint64_t seed, int trials) {
  data::Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> buf = valid;
    const int flips = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next_u64() % buf.size();
      buf[pos] ^= static_cast<std::uint8_t>(1 + (rng.next_u64() % 255));
    }
    {
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(buf.data()),
                static_cast<std::streamsize>(buf.size()));
    }
    try {
      const Image img = read(path);
      EXPECT_GT(img.width(), 0);
      EXPECT_GT(img.height(), 0);
    } catch (const IoError&) {
      // Equally acceptable: the corruption broke the file's grammar.
    }
  }
}

TEST_F(ImageIoFuzzTest, PnmBitFlipCorpusNeverCrashes) {
  const Image img = small_image(9, 7, 1);
  const std::string seed_path = (dir_ / "seed.pgm").string();
  write_pnm(img, seed_path);
  corruption_sweep(read_bytes(seed_path), &read_pnm,
                   (dir_ / "mut.pgm").string(), /*seed=*/101, /*trials=*/200);

  const Image rgb = small_image(8, 6, 3);
  write_pnm(rgb, seed_path);
  corruption_sweep(read_bytes(seed_path), &read_pnm,
                   (dir_ / "mut.ppm").string(), /*seed=*/102, /*trials=*/200);
}

TEST_F(ImageIoFuzzTest, BmpBitFlipCorpusNeverCrashes) {
  corruption_sweep(valid_bmp_bytes(), &read_bmp, (dir_ / "mut.bmp").string(),
                   /*seed=*/103, /*trials=*/200);
}

// Pure garbage of assorted sizes: both decoders must reject (or, for the
// vanishingly unlikely valid blob, decode) without hanging or crashing.
TEST_F(ImageIoFuzzTest, RandomBlobsNeverCrash) {
  data::Rng rng(104);
  for (const std::size_t len : {0u, 1u, 2u, 16u, 54u, 100u, 4096u}) {
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    const std::string p = write_bytes("blob.bin", buf);
    for (int variant = 0; variant < 2; ++variant) {
      try {
        if (variant == 0) {
          (void)read_pnm(p);
        } else {
          (void)read_bmp(p);
        }
      } catch (const IoError&) {
      }
    }
  }
}

}  // namespace
}  // namespace decam
