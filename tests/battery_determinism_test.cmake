# CTest driver for the battery's thread-count determinism contract
# (DESIGN.md §8): the same quick table8_ensemble experiment run on one
# worker thread and on four must produce byte-identical cache TSVs — the
# per-image score rows, serialised at %.17g, straight from disk. A single
# ULP of drift anywhere in the fused metric pass or the parallel fan-out
# shows up as a file diff here.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR}/threads1 ${WORK_DIR}/threads4)

foreach(threads 1 4)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            DECAM_CACHE_DIR=${WORK_DIR}/threads${threads}
            ${TABLE8} --quick --threads ${threads} --no-manifest
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "table8_ensemble --threads ${threads} failed: ${rc}")
  endif()
endforeach()

file(GLOB tsv1 ${WORK_DIR}/threads1/experiment_*.tsv)
file(GLOB tsv4 ${WORK_DIR}/threads4/experiment_*.tsv)
list(LENGTH tsv1 count1)
list(LENGTH tsv4 count4)
if(NOT count1 EQUAL 1 OR NOT count4 EQUAL 1)
  message(FATAL_ERROR
          "expected one cache TSV per run, got ${count1} and ${count4}")
endif()

# Same config -> same cache filename; different names mean the cache key
# itself became thread-dependent, which is its own determinism failure.
get_filename_component(name1 ${tsv1} NAME)
get_filename_component(name4 ${tsv4} NAME)
if(NOT name1 STREQUAL name4)
  message(FATAL_ERROR "cache keys differ across thread counts: "
                      "${name1} vs ${name4}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${tsv1} ${tsv4}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "per-image scores differ between --threads 1 and "
                      "--threads 4: ${tsv1} vs ${tsv4}")
endif()
message(STATUS "battery determinism OK (${name1} byte-identical at 1 and 4 "
               "threads)")
