# CTest driver for the battery's thread-count determinism contract
# (DESIGN.md §8): the same quick table8_ensemble experiment run on one
# worker thread and on four must produce byte-identical cache TSVs — the
# per-image score rows, serialised at %.17g, straight from disk. A single
# ULP of drift anywhere in the fused metric pass or the parallel fan-out
# shows up as a file diff here.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR}/threads1 ${WORK_DIR}/threads4)

foreach(threads 1 4)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            DECAM_CACHE_DIR=${WORK_DIR}/threads${threads}
            ${TABLE8} --quick --threads ${threads} --no-manifest
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "table8_ensemble --threads ${threads} failed: ${rc}")
  endif()
endforeach()

file(GLOB tsv1 ${WORK_DIR}/threads1/experiment_*.tsv)
file(GLOB tsv4 ${WORK_DIR}/threads4/experiment_*.tsv)
list(LENGTH tsv1 count1)
list(LENGTH tsv4 count4)
if(NOT count1 EQUAL 1 OR NOT count4 EQUAL 1)
  message(FATAL_ERROR
          "expected one cache TSV per run, got ${count1} and ${count4}")
endif()

# Same config -> same cache filename; different names mean the cache key
# itself became thread-dependent, which is its own determinism failure.
get_filename_component(name1 ${tsv1} NAME)
get_filename_component(name4 ${tsv4} NAME)
if(NOT name1 STREQUAL name4)
  message(FATAL_ERROR "cache keys differ across thread counts: "
                      "${name1} vs ${name4}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${tsv1} ${tsv4}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "per-image scores differ between --threads 1 and "
                      "--threads 4: ${tsv1} vs ${tsv4}")
endif()
message(STATUS "battery determinism OK (${name1} byte-identical at 1 and 4 "
               "threads)")

# Defense-wrapped scan determinism (DESIGN.md §13): the same images scored
# through `decamctl scan --defense` on 1 worker thread and on 4 must report
# bit-identical scores (%.17g in the JSON). Only the measured latencies may
# differ, so those fields are scrubbed before the comparison.
get_filename_component(EXAMPLES_DIR ${DECAMCTL} DIRECTORY)
execute_process(COMMAND ${EXAMPLES_DIR}/quickstart 3
                WORKING_DIRECTORY ${WORK_DIR}
                OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart failed: ${rc}")
endif()

foreach(threads 1 4)
  execute_process(
    COMMAND ${DECAMCTL} scan
            ${WORK_DIR}/quickstart_out/scene.ppm
            ${WORK_DIR}/quickstart_out/attack.ppm
            ${WORK_DIR}/quickstart_out/attack_roundtrip.ppm
            --width 112 --height 112 --defense squeeze4+jpeg75
            --json --threads ${threads}
    OUTPUT_VARIABLE scan_out ERROR_QUIET RESULT_VARIABLE rc)
  # 0 = all benign, 3 = attack flagged; both are successful scans.
  if(NOT rc EQUAL 0 AND NOT rc EQUAL 3)
    message(FATAL_ERROR
            "defended scan --threads ${threads} failed: ${rc}")
  endif()
  string(REGEX REPLACE "\"(total_)?latency_ms\": [0-9.eE+-]+" "latency"
         scan_scrubbed "${scan_out}")
  set(scan_${threads} "${scan_scrubbed}")
endforeach()

if(NOT scan_1 STREQUAL scan_4)
  message(FATAL_ERROR "defended scan scores differ between --threads 1 "
                      "and --threads 4:\n${scan_1}\n--- vs ---\n${scan_4}")
endif()
if(NOT scan_1 MATCHES "squeeze4\\+jpeg75>scaling/mse")
  message(FATAL_ERROR "defended scan did not report defended detector "
                      "names:\n${scan_1}")
endif()
message(STATUS "defended scan determinism OK (squeeze4+jpeg75, "
               "bit-identical JSON scores at 1 and 4 threads)")
