// Unit tests for decam::Image: construction, accessors, arithmetic,
// conversions and the invariants downstream modules rely on.
#include "imaging/image.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace decam {
namespace {

TEST(Image, DefaultConstructedIsEmpty) {
  const Image img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.width(), 0);
  EXPECT_EQ(img.height(), 0);
  EXPECT_EQ(img.channels(), 0);
  EXPECT_EQ(img.size(), 0u);
}

TEST(Image, ConstructionAllocatesAndFills) {
  const Image img(4, 3, 2, 7.5f);
  EXPECT_FALSE(img.empty());
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 2);
  EXPECT_EQ(img.plane_size(), 12u);
  EXPECT_EQ(img.size(), 24u);
  for (int c = 0; c < 2; ++c) {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 4; ++x) {
        EXPECT_FLOAT_EQ(img.at(x, y, c), 7.5f);
      }
    }
  }
}

TEST(Image, InvalidConstructionThrows) {
  EXPECT_THROW(Image(0, 3, 1), std::invalid_argument);
  EXPECT_THROW(Image(3, 0, 1), std::invalid_argument);
  EXPECT_THROW(Image(3, 3, 0), std::invalid_argument);
  EXPECT_THROW(Image(-1, 3, 1), std::invalid_argument);
}

TEST(Image, PlanarLayoutIsContiguousPerChannel) {
  Image img(2, 2, 2);
  img.at(0, 0, 0) = 1.0f;
  img.at(1, 0, 0) = 2.0f;
  img.at(0, 1, 0) = 3.0f;
  img.at(1, 1, 0) = 4.0f;
  img.at(0, 0, 1) = 5.0f;
  const auto p0 = img.plane(0);
  EXPECT_FLOAT_EQ(p0[0], 1.0f);
  EXPECT_FLOAT_EQ(p0[1], 2.0f);
  EXPECT_FLOAT_EQ(p0[2], 3.0f);
  EXPECT_FLOAT_EQ(p0[3], 4.0f);
  EXPECT_FLOAT_EQ(img.plane(1)[0], 5.0f);
}

TEST(Image, RowSpanAliasesStorage) {
  Image img(3, 2, 1);
  auto row1 = img.row(1, 0);
  row1[2] = 42.0f;
  EXPECT_FLOAT_EQ(img.at(2, 1, 0), 42.0f);
  EXPECT_EQ(row1.size(), 3u);
}

TEST(Image, AtClampedReplicatesEdges) {
  Image img(2, 2, 1);
  img.at(0, 0, 0) = 1.0f;
  img.at(1, 0, 0) = 2.0f;
  img.at(0, 1, 0) = 3.0f;
  img.at(1, 1, 0) = 4.0f;
  EXPECT_FLOAT_EQ(img.at_clamped(-5, -5, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.at_clamped(9, -1, 0), 2.0f);
  EXPECT_FLOAT_EQ(img.at_clamped(-1, 9, 0), 3.0f);
  EXPECT_FLOAT_EQ(img.at_clamped(9, 9, 0), 4.0f);
}

TEST(Image, ClampLimitsRange) {
  Image img(2, 1, 1);
  img.at(0, 0, 0) = -10.0f;
  img.at(1, 0, 0) = 300.0f;
  img.clamp();
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(1, 0, 0), 255.0f);
}

TEST(Image, ClampCustomBoundsAndInvalidBounds) {
  Image img(1, 1, 1, 5.0f);
  img.clamp(6.0f, 10.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 6.0f);
  EXPECT_THROW(img.clamp(10.0f, 6.0f), std::invalid_argument);
}

TEST(Image, ArithmeticOperators) {
  Image a(2, 1, 1, 10.0f);
  Image b(2, 1, 1, 4.0f);
  a += b;
  EXPECT_FLOAT_EQ(a.at(0, 0, 0), 14.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a.at(1, 0, 0), 10.0f);
  a *= 0.5f;
  EXPECT_FLOAT_EQ(a.at(0, 0, 0), 5.0f);
}

TEST(Image, ArithmeticShapeMismatchThrows) {
  Image a(2, 1, 1);
  Image b(1, 2, 1);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Image, ToU8InterleavesAndQuantises) {
  Image img(2, 1, 3);
  img.at(0, 0, 0) = 10.4f;   // rounds to 10
  img.at(0, 0, 1) = 10.6f;   // rounds to 11
  img.at(0, 0, 2) = -3.0f;   // clamps to 0
  img.at(1, 0, 0) = 255.9f;  // clamps to 255
  img.at(1, 0, 1) = 128.0f;
  img.at(1, 0, 2) = 1.0f;
  const auto bytes = img.to_u8();
  ASSERT_EQ(bytes.size(), 6u);
  EXPECT_EQ(bytes[0], 10);
  EXPECT_EQ(bytes[1], 11);
  EXPECT_EQ(bytes[2], 0);
  EXPECT_EQ(bytes[3], 255);
  EXPECT_EQ(bytes[4], 128);
  EXPECT_EQ(bytes[5], 1);
}

TEST(Image, FromU8RoundTrips) {
  const std::array<std::uint8_t, 6> bytes = {1, 2, 3, 4, 5, 6};
  const Image img = Image::from_u8(bytes, 2, 1, 3);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 2), 3.0f);
  EXPECT_FLOAT_EQ(img.at(1, 0, 1), 5.0f);
  const auto back = img.to_u8();
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), back.begin()));
}

TEST(Image, FromU8SizeMismatchThrows) {
  const std::array<std::uint8_t, 5> bytes = {};
  EXPECT_THROW(Image::from_u8(bytes, 2, 1, 3), std::invalid_argument);
}

TEST(Image, ExtractAndRecombineChannels) {
  Image img(2, 2, 3);
  img.at(1, 1, 2) = 9.0f;
  const Image blue = img.extract_channel(2);
  EXPECT_EQ(blue.channels(), 1);
  EXPECT_FLOAT_EQ(blue.at(1, 1, 0), 9.0f);
  const std::array<Image, 3> planes = {img.extract_channel(0),
                                       img.extract_channel(1), blue};
  const Image rebuilt = Image::from_channels(planes);
  EXPECT_TRUE(rebuilt.same_shape(img));
  EXPECT_FLOAT_EQ(rebuilt.at(1, 1, 2), 9.0f);
}

TEST(Image, FromChannelsRejectsMismatchedPlanes) {
  const std::array<Image, 2> planes = {Image(2, 2, 1), Image(3, 2, 1)};
  EXPECT_THROW(Image::from_channels(planes), std::invalid_argument);
  const std::array<Image, 1> multi = {Image(2, 2, 3)};
  EXPECT_THROW(Image::from_channels(multi), std::invalid_argument);
}

TEST(Image, Statistics) {
  Image img(2, 2, 1);
  img.at(0, 0, 0) = 1.0f;
  img.at(1, 0, 0) = 2.0f;
  img.at(0, 1, 0) = 3.0f;
  img.at(1, 1, 0) = 6.0f;
  EXPECT_FLOAT_EQ(img.min_value(), 1.0f);
  EXPECT_FLOAT_EQ(img.max_value(), 6.0f);
  EXPECT_DOUBLE_EQ(img.mean_value(), 3.0);
}

TEST(Image, AbsdiffComputesElementwise) {
  Image a(2, 1, 1);
  Image b(2, 1, 1);
  a.at(0, 0, 0) = 5.0f;
  b.at(0, 0, 0) = 8.0f;
  a.at(1, 0, 0) = 3.0f;
  b.at(1, 0, 0) = 1.0f;
  const Image d = absdiff(a, b);
  EXPECT_FLOAT_EQ(d.at(0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(d.at(1, 0, 0), 2.0f);
  EXPECT_THROW(absdiff(a, Image(1, 1, 1)), std::invalid_argument);
}

TEST(Image, SameShapeChecksAllDimensions) {
  EXPECT_TRUE(Image(2, 3, 1).same_shape(Image(2, 3, 1)));
  EXPECT_FALSE(Image(2, 3, 1).same_shape(Image(3, 2, 1)));
  EXPECT_FALSE(Image(2, 3, 1).same_shape(Image(2, 3, 2)));
}

}  // namespace
}  // namespace decam
