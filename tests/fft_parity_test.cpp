// Parity harness for the planned spectral engine (DESIGN.md §10): every
// transform path — radix-4/radix-2 plans, Bluestein convolution, the
// real-input 2-D fast path, the in-place fftshift — is checked against a
// naive O(n^2) reference DFT and the straightforward copy implementations
// they replaced. The acceptance budget is 1e-9 of the transform's peak
// magnitude: FFT restructuring legally reorders floating-point sums, so
// bit-identity is replaced by this explicit tolerance (the same policy
// filter.h documents for the box/resize kernels).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "data/rng.h"
#include "imaging/color.h"
#include "signal/fft.h"
#include "signal/spectrum.h"

namespace decam {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  data::Rng rng(seed);
  std::vector<Complex> signal(n);
  for (auto& v : signal) {
    v = Complex(rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0));
  }
  return signal;
}

// Naive O(n^2) DFT, the reference every fast path must reproduce.
std::vector<Complex> naive_dft(const std::vector<Complex>& in, bool inverse) {
  const std::size_t n = in.size();
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Complex> out(n, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>((j * k) % n) /
                           static_cast<double>(n);
      acc += in[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

// Separable naive 2-D DFT (rows then columns).
std::vector<Complex> naive_dft2d(const std::vector<Complex>& in, int w,
                                 int h) {
  std::vector<Complex> out = in;
  std::vector<Complex> line;
  for (int y = 0; y < h; ++y) {
    line.assign(out.begin() + static_cast<std::size_t>(y) * w,
                out.begin() + static_cast<std::size_t>(y + 1) * w);
    line = naive_dft(line, false);
    std::copy(line.begin(), line.end(),
              out.begin() + static_cast<std::size_t>(y) * w);
  }
  for (int x = 0; x < w; ++x) {
    line.resize(static_cast<std::size_t>(h));
    for (int y = 0; y < h; ++y) {
      line[static_cast<std::size_t>(y)] =
          out[static_cast<std::size_t>(y) * w + x];
    }
    line = naive_dft(line, false);
    for (int y = 0; y < h; ++y) {
      out[static_cast<std::size_t>(y) * w + x] =
          line[static_cast<std::size_t>(y)];
    }
  }
  return out;
}

double peak_magnitude(const std::vector<Complex>& v) {
  double peak = 0.0;
  for (const Complex& x : v) peak = std::max(peak, std::abs(x));
  return peak;
}

double max_abs_diff(const std::vector<Complex>& a,
                    const std::vector<Complex>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// The pre-engine fftshift: full-size temporary, index remap.
std::vector<Complex> reference_fftshift(const std::vector<Complex>& data,
                                        int width, int height) {
  std::vector<Complex> out(data.size());
  const int hx = width / 2;
  const int hy = height / 2;
  for (int y = 0; y < height; ++y) {
    const int sy = (y + hy) % height;
    for (int x = 0; x < width; ++x) {
      const int sx = (x + hx) % width;
      out[static_cast<std::size_t>(sy) * width + sx] =
          data[static_cast<std::size_t>(y) * width + x];
    }
  }
  return out;
}

// Power-of-two, odd, prime, and mixed-composite lengths — including the
// image side lengths the detectors actually hit (224, 227, 300, 450).
class FftNaiveParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftNaiveParity, ForwardMatchesNaiveDft) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, n * 31 + 7);
  const auto expected = naive_dft(signal, false);
  auto actual = signal;
  fft(actual, false);
  const double budget = 1e-9 * std::max(peak_magnitude(expected), 1.0);
  EXPECT_LE(max_abs_diff(actual, expected), budget) << "n=" << n;
}

TEST_P(FftNaiveParity, InverseMatchesNaiveDft) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, n * 17 + 3);
  const auto expected = naive_dft(signal, true);
  auto actual = signal;
  fft(actual, true);
  const double budget = 1e-9 * std::max(peak_magnitude(expected), 1.0);
  EXPECT_LE(max_abs_diff(actual, expected), budget) << "n=" << n;
}

TEST_P(FftNaiveParity, RoundTripRecoversSignal) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, n * 5 + 11);
  const auto back = ifft(fft(signal));
  const double budget = 1e-9 * std::max(peak_magnitude(signal), 1.0);
  EXPECT_LE(max_abs_diff(back, signal), budget) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftNaiveParity,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 27,
                                           64, 97, 224, 227, 256, 300, 450),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// 2-D shapes: squares, rectangles, degenerate 1xN / Nx1 strips, odd/even
// mixes — the complex grid transform and its inverse.
class Fft2dNaiveParity
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Fft2dNaiveParity, ForwardMatchesSeparableNaive) {
  const auto [w, h] = GetParam();
  auto grid = random_signal(static_cast<std::size_t>(w) * h,
                            static_cast<std::uint64_t>(w) * 1000 + h);
  const auto expected = naive_dft2d(grid, w, h);
  fft2d(grid, w, h, false);
  const double budget = 1e-9 * std::max(peak_magnitude(expected), 1.0);
  EXPECT_LE(max_abs_diff(grid, expected), budget) << w << "x" << h;
}

TEST_P(Fft2dNaiveParity, RoundTripRecoversGrid) {
  const auto [w, h] = GetParam();
  auto grid = random_signal(static_cast<std::size_t>(w) * h,
                            static_cast<std::uint64_t>(h) * 911 + w);
  const auto original = grid;
  fft2d(grid, w, h, false);
  fft2d(grid, w, h, true);
  const double budget = 1e-9 * std::max(peak_magnitude(original), 1.0);
  EXPECT_LE(max_abs_diff(grid, original), budget) << w << "x" << h;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Fft2dNaiveParity,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 16}, std::pair{16, 1},
                      std::pair{1, 7}, std::pair{13, 1}, std::pair{5, 4},
                      std::pair{12, 7}, std::pair{16, 12}, std::pair{32, 32},
                      std::pair{30, 14}, std::pair{27, 27}),
    [](const auto& info) {
      return "w" + std::to_string(info.param.first) + "h" +
             std::to_string(info.param.second);
    });

// The real-input fast path (packed row pairs + Hermitian column mirror)
// must agree with the naive transform of the same plane.
class RealFft2dParity : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(RealFft2dParity, ImageTransformMatchesNaive) {
  const auto [w, h] = GetParam();
  data::Rng rng(static_cast<std::uint64_t>(w) * 77 + h);
  Image img(w, h, 1);
  for (float& v : img.plane(0)) {
    v = static_cast<float>(rng.next_range(0.0, 255.0));
  }
  std::vector<Complex> real_plane(img.plane_size());
  const auto plane = img.plane(0);
  for (std::size_t i = 0; i < plane.size(); ++i) {
    real_plane[i] = Complex(static_cast<double>(plane[i]), 0.0);
  }
  const auto expected = naive_dft2d(real_plane, w, h);
  const auto actual = fft2d(img);
  const double budget = 1e-9 * std::max(peak_magnitude(expected), 1.0);
  EXPECT_LE(max_abs_diff(actual, expected), budget) << w << "x" << h;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RealFft2dParity,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 9}, std::pair{8, 1},
                      std::pair{2, 2}, std::pair{5, 3}, std::pair{8, 9},
                      std::pair{13, 7}, std::pair{16, 16}, std::pair{31, 12},
                      std::pair{45, 45}, std::pair{64, 48}),
    [](const auto& info) {
      return "w" + std::to_string(info.param.first) + "h" +
             std::to_string(info.param.second);
    });

TEST(RealFft2dParity, ColorInputMatchesExplicitLumaTransform) {
  data::Rng rng(99);
  Image rgb(21, 14, 3);
  for (int c = 0; c < 3; ++c) {
    for (float& v : rgb.plane(c)) {
      v = static_cast<float>(rng.next_range(0.0, 255.0));
    }
  }
  const auto direct = fft2d(rgb);
  const auto via_gray = fft2d(to_gray(rgb));
  const double budget = 1e-9 * std::max(peak_magnitude(via_gray), 1.0);
  EXPECT_LE(max_abs_diff(direct, via_gray), budget);
}

TEST(RealFft2dParity, ScratchOverloadReusesBufferAcrossGeometries) {
  std::vector<Complex> scratch;
  data::Rng rng(7);
  for (const auto& [w, h] : {std::pair{16, 12}, std::pair{9, 5},
                             std::pair{24, 24}}) {
    Image img(w, h, 1);
    for (float& v : img.plane(0)) {
      v = static_cast<float>(rng.next_range(0.0, 255.0));
    }
    fft2d(img, scratch);
    const auto fresh = fft2d(img);
    ASSERT_EQ(scratch.size(), fresh.size());
    EXPECT_LE(max_abs_diff(scratch, fresh), 0.0) << w << "x" << h;
  }
}

// In-place fftshift (quadrant swap for even sizes, one-row-scratch cycle
// rotation for odd heights) against the old full-copy implementation.
class FftShiftParity : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(FftShiftParity, MatchesReferenceCopyImplementation) {
  const auto [w, h] = GetParam();
  auto grid = random_signal(static_cast<std::size_t>(w) * h,
                            static_cast<std::uint64_t>(w) * 13 + h);
  const auto expected = reference_fftshift(grid, w, h);
  fftshift(grid, w, h);
  EXPECT_LE(max_abs_diff(grid, expected), 0.0) << w << "x" << h;
}

INSTANTIATE_TEST_SUITE_P(
    EvenOddMix, FftShiftParity,
    ::testing::Values(std::pair{4, 4}, std::pair{6, 4}, std::pair{5, 4},
                      std::pair{4, 5}, std::pair{5, 3}, std::pair{7, 7},
                      std::pair{1, 6}, std::pair{1, 7}, std::pair{6, 1},
                      std::pair{7, 1}, std::pair{1, 1}, std::pair{32, 9},
                      std::pair{9, 32}),
    [](const auto& info) {
      return "w" + std::to_string(info.param.first) + "h" +
             std::to_string(info.param.second);
    });

TEST(FftShiftParity, EvenSizesStaySelfInverse) {
  auto grid = random_signal(16 * 12, 5);
  const auto original = grid;
  fftshift(grid, 16, 12);
  fftshift(grid, 16, 12);
  EXPECT_LE(max_abs_diff(grid, original), 0.0);
}

// The fused spectrum (shift folded into the magnitude pass, polynomial
// log) against the definitional formula computed from the same transform.
TEST(SpectrumParity, FusedLogMagnitudesMatchDefinition) {
  data::Rng rng(21);
  for (const auto& [w, h] : {std::pair{32, 32}, std::pair{15, 22}}) {
    Image img(w, h, 1);
    for (float& v : img.plane(0)) {
      v = static_cast<float>(rng.next_range(0.0, 255.0));
    }
    std::vector<Complex> freq = fft2d(img);
    fftshift(freq, w, h);
    const std::vector<double> actual = centered_log_magnitudes(img);
    ASSERT_EQ(actual.size(), freq.size());
    for (std::size_t i = 0; i < freq.size(); ++i) {
      EXPECT_NEAR(actual[i], std::log1p(std::abs(freq[i])), 1e-9)
          << w << "x" << h << " bin " << i;
    }
  }
}

// Plan-cache behaviour: a sweep far past the LRU capacity must stay
// correct (the old Bluestein cache dropped *every* plan at entry 65 —
// including the row/column plans of the transform in flight).
TEST(FftPlanCache, SizeSweepPastCapacityStaysCorrectAndBounded) {
  clear_fft_plan_caches();
  // 150 distinct odd (Bluestein) sizes — well past the 64-entry capacity.
  for (std::size_t n = 3; n < 3 + 2 * 150; n += 2) {
    const auto signal = random_signal(n, n);
    const auto back = ifft(fft(signal));
    const double budget = 1e-9 * std::max(peak_magnitude(signal), 1.0);
    ASSERT_LE(max_abs_diff(back, signal), budget) << "n=" << n;
  }
  const FftPlanCacheStats stats = bluestein_plan_cache_stats();
  EXPECT_LE(stats.size, stats.capacity);
  EXPECT_GT(stats.misses, stats.capacity);  // the sweep really did churn
}

TEST(FftPlanCache, HotSizeSurvivesChurn) {
  clear_fft_plan_caches();
  // Establish a hot Bluestein size, then churn many cold sizes while
  // touching the hot one — LRU must keep it resident (the old clear-all
  // eviction forgot it every 64 distinct sizes).
  const std::size_t hot = 450;
  (void)fft(random_signal(hot, 1));
  for (std::size_t i = 0; i < 200; ++i) {
    (void)fft(random_signal(101 + 2 * i, i + 2));
    (void)fft(random_signal(hot, i + 3));
  }
  const FftPlanCacheStats stats = bluestein_plan_cache_stats();
  // 201 hot hits + 200 cold misses: with clear-all eviction the hot size
  // would miss every ~32 rounds as well.
  EXPECT_GE(stats.hits, 200u);
  EXPECT_LE(stats.size, stats.capacity);
}

}  // namespace
}  // namespace decam
