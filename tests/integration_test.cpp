// End-to-end integration: the full paper protocol at miniature scale —
// calibrate on regime A (white-box search + black-box percentile), evaluate
// on unseen regime B, ensemble vote — asserting the SHAPE of the paper's
// results (high accuracy, FRR tracking percentile, CSP fixed threshold,
// PSNR non-separability).
#include <gtest/gtest.h>

#include <memory>

#include "core/ensemble.h"
#include "core/evaluation.h"
#include "core/filtering_detector.h"
#include "core/pipeline.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"

namespace decam::core {
namespace {

// Shared miniature experiment (computed once for the whole suite).
const ExperimentData& experiment() {
  static const ExperimentData data = [] {
    ExperimentConfig config;
    config.n_train = 12;
    config.n_eval = 12;
    config.target_width = config.target_height = 32;
    config.min_side = 128;
    config.max_side = 192;
    config.seed = 2026;
    return run_experiment(config, {}, /*verbose=*/false);
  }();
  return data;
}

TEST(Integration, WhiteBoxScalingMseIsHighlyAccurateOnUnseenData) {
  const auto& data = experiment();
  const auto train_benign =
      ExperimentData::column(data.train_benign, &ScoreRow::scaling_mse);
  const auto train_attack =
      ExperimentData::column(data.train_attack, &ScoreRow::scaling_mse);
  const WhiteBoxResult wb = calibrate_white_box(train_benign, train_attack);
  EXPECT_GE(wb.calibration.train_accuracy, 0.95);
  const DetectionStats stats = evaluate(
      ExperimentData::column(data.eval_benign, &ScoreRow::scaling_mse),
      ExperimentData::column(data.eval_attack_white, &ScoreRow::scaling_mse),
      wb.calibration);
  EXPECT_GE(stats.accuracy(), 0.9);
}

TEST(Integration, WhiteBoxScalingSsimPolarityIsLow) {
  const auto& data = experiment();
  const WhiteBoxResult wb = calibrate_white_box(
      ExperimentData::column(data.train_benign, &ScoreRow::scaling_ssim),
      ExperimentData::column(data.train_attack, &ScoreRow::scaling_ssim));
  EXPECT_EQ(wb.calibration.polarity, Polarity::LowIsAttack);
  EXPECT_GE(wb.calibration.train_accuracy, 0.95);
}

TEST(Integration, WhiteBoxFilteringSeparates) {
  const auto& data = experiment();
  for (auto member : {&ScoreRow::filtering_mse, &ScoreRow::filtering_ssim}) {
    const WhiteBoxResult wb = calibrate_white_box(
        ExperimentData::column(data.train_benign, member),
        ExperimentData::column(data.train_attack, member));
    const DetectionStats stats = evaluate(
        ExperimentData::column(data.eval_benign, member),
        ExperimentData::column(data.eval_attack_white, member),
        wb.calibration);
    EXPECT_GE(stats.accuracy(), 0.85);
  }
}

TEST(Integration, BlackBoxPercentileTransfersAcrossDatasets) {
  const auto& data = experiment();
  // Calibrate from regime-A benign scores only; evaluate on regime B with
  // attacks crafted by UNKNOWN scalers.
  const Calibration c = calibrate_black_box(
      ExperimentData::column(data.train_benign, &ScoreRow::scaling_mse),
      /*percentile=*/2.0, Polarity::HighIsAttack);
  const DetectionStats stats = evaluate(
      ExperimentData::column(data.eval_benign, &ScoreRow::scaling_mse),
      ExperimentData::column(data.eval_attack_black, &ScoreRow::scaling_mse),
      c);
  EXPECT_GE(stats.accuracy(), 0.85);
  EXPECT_GE(stats.recall(), 0.85);
}

TEST(Integration, SteganalysisFixedThresholdTwoWorksOnBothRegimes) {
  const auto& data = experiment();
  const Calibration csp{2.0, Polarity::HighIsAttack, 0.0};
  const DetectionStats train_stats = evaluate(
      ExperimentData::column(data.train_benign, &ScoreRow::csp),
      ExperimentData::column(data.train_attack, &ScoreRow::csp), csp);
  const DetectionStats eval_stats = evaluate(
      ExperimentData::column(data.eval_benign, &ScoreRow::csp),
      ExperimentData::column(data.eval_attack_white, &ScoreRow::csp), csp);
  EXPECT_GE(train_stats.accuracy(), 0.85);
  EXPECT_GE(eval_stats.accuracy(), 0.85);
}

TEST(Integration, PsnrDoesNotSeparate) {
  // The appendix's negative result: PSNR training accuracy is clearly worse
  // than MSE's on the same data.
  const auto& data = experiment();
  const WhiteBoxResult psnr_wb = calibrate_white_box(
      ExperimentData::column(data.train_benign, &ScoreRow::filtering_psnr),
      ExperimentData::column(data.train_attack, &ScoreRow::filtering_psnr));
  const WhiteBoxResult mse_wb = calibrate_white_box(
      ExperimentData::column(data.train_benign, &ScoreRow::filtering_mse),
      ExperimentData::column(data.train_attack, &ScoreRow::filtering_mse));
  EXPECT_GE(mse_wb.calibration.train_accuracy,
            psnr_wb.calibration.train_accuracy);
}

TEST(Integration, EnsembleMatchesOrBeatsWorstMember) {
  const auto& data = experiment();
  // Build calibrations for the three method/metric picks the paper's
  // ensemble uses: scaling/MSE, filtering/SSIM, steganalysis/CSP.
  const Calibration scaling = calibrate_white_box(
      ExperimentData::column(data.train_benign, &ScoreRow::scaling_mse),
      ExperimentData::column(data.train_attack, &ScoreRow::scaling_mse))
      .calibration;
  const Calibration filtering = calibrate_white_box(
      ExperimentData::column(data.train_benign, &ScoreRow::filtering_ssim),
      ExperimentData::column(data.train_attack, &ScoreRow::filtering_ssim))
      .calibration;
  const Calibration steg{2.0, Polarity::HighIsAttack, 0.0};

  auto vote = [&](const ScoreRow& row) {
    int votes = 0;
    if (is_attack(row.scaling_mse, scaling)) ++votes;
    if (is_attack(row.filtering_ssim, filtering)) ++votes;
    if (is_attack(row.csp, steg)) ++votes;
    return votes >= 2;
  };
  std::vector<bool> benign_flags, attack_flags;
  for (const ScoreRow& row : data.eval_benign) {
    benign_flags.push_back(vote(row));
  }
  for (const ScoreRow& row : data.eval_attack_white) {
    attack_flags.push_back(vote(row));
  }
  const DetectionStats ensemble_stats =
      evaluate_flags(benign_flags, attack_flags);

  // Individual members for comparison.
  const DetectionStats scaling_stats = evaluate(
      ExperimentData::column(data.eval_benign, &ScoreRow::scaling_mse),
      ExperimentData::column(data.eval_attack_white, &ScoreRow::scaling_mse),
      scaling);
  const DetectionStats steg_stats = evaluate(
      ExperimentData::column(data.eval_benign, &ScoreRow::csp),
      ExperimentData::column(data.eval_attack_white, &ScoreRow::csp), steg);
  const double worst_member =
      std::min(scaling_stats.accuracy(), steg_stats.accuracy());
  EXPECT_GE(ensemble_stats.accuracy(), worst_member);
  EXPECT_GE(ensemble_stats.accuracy(), 0.9);
}

TEST(Integration, HistogramBaselineIsClearlyWeakerThanDecamouflage) {
  const auto& data = experiment();
  const WhiteBoxResult hist_wb = calibrate_white_box(
      ExperimentData::column(data.train_benign, &ScoreRow::histogram),
      ExperimentData::column(data.train_attack, &ScoreRow::histogram));
  const WhiteBoxResult mse_wb = calibrate_white_box(
      ExperimentData::column(data.train_benign, &ScoreRow::scaling_mse),
      ExperimentData::column(data.train_attack, &ScoreRow::scaling_mse));
  EXPECT_GE(mse_wb.calibration.train_accuracy,
            hist_wb.calibration.train_accuracy);
}

}  // namespace
}  // namespace decam::core
