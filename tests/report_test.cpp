// Tests for the ASCII table and histogram renderers.
#include <gtest/gtest.h>

#include <vector>

#include "report/histogram_ascii.h"
#include "report/table.h"

namespace decam::report {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table table({"Method", "Acc."});
  table.add_row({"scaling", "99.9%"});
  table.add_row({"filtering", "99.3%"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("scaling"), std::string::npos);
  EXPECT_NE(out.find("99.3%"), std::string::npos);
  // Borders present.
  EXPECT_NE(out.find("+--"), std::string::npos);
  EXPECT_EQ(out.front(), '+');
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table table({"A", "B"});
  table.add_row({"long-cell-content", "x"});
  const std::string out = table.render();
  // Each line has identical length (a rectangle).
  std::size_t expected = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t end = out.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(end - pos, expected);
    pos = end + 1;
  }
}

TEST(Table, RejectsMismatchedRow) {
  Table table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Formatting, PercentAndDouble) {
  EXPECT_EQ(format_percent(0.999), "99.9%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
  EXPECT_EQ(format_percent(0.0325, 2), "3.25%");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1714.957, 1), "1715.0");
}

TEST(Histogram, RendersBothClassesAndThreshold) {
  const std::vector<double> benign = {1, 2, 2, 3, 3, 3};
  const std::vector<double> attack = {8, 9, 9, 10};
  HistogramOptions options;
  options.bins = 10;
  options.threshold = 5.0;
  const std::string out = render_histogram(benign, attack, options);
  EXPECT_NE(out.find("benign"), std::string::npos);
  EXPECT_NE(out.find("attack"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("<-- threshold"), std::string::npos);
}

TEST(Histogram, SingleClassRendersWithoutStars) {
  const std::vector<double> benign = {1, 2, 3};
  HistogramOptions options;
  options.bins = 4;
  const std::string out = render_histogram(benign, {}, options);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_EQ(out.find('*'), std::string::npos);
}

TEST(Histogram, LogScaleHandlesWideDynamicRange) {
  const std::vector<double> small = {1.0, 2.0};
  const std::vector<double> huge = {1e6, 2e6};
  HistogramOptions options;
  options.bins = 8;
  options.log_x = true;
  const std::string out = render_histogram(small, huge, options);
  EXPECT_NE(out.find("[log-x]"), std::string::npos);
  // Both populations visible: at least one '#' bar and one '*' bar.
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(Histogram, ValidatesInput) {
  HistogramOptions options;
  EXPECT_THROW(render_histogram({}, {}, options), std::invalid_argument);
  options.bins = 1;
  const std::vector<double> one = {1.0};
  EXPECT_THROW(render_histogram(one, {}, options), std::invalid_argument);
}

TEST(Histogram, ConstantDataDoesNotDivideByZero) {
  const std::vector<double> constant = {5.0, 5.0, 5.0};
  HistogramOptions options;
  options.bins = 4;
  const std::string out = render_histogram(constant, {}, options);
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace decam::report
