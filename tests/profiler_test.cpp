// Hierarchical stage profiler (obs/profiler.h): tree construction from
// nested spans, cross-thread merging, self-time arithmetic, the collapsed
// stack export, and snapshot-while-recording safety.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <regex>
#include <sstream>
#include <thread>

#include "obs/span.h"
#include "obs/trace.h"

namespace decam::obs {
namespace {

// Spin for a bounded, nonzero wall-clock interval so span durations are
// reliably positive on any clock resolution.
void busy_wait_us(int us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

const ProfileEntry* find_entry(const std::vector<ProfileEntry>& entries,
                               const std::string& path) {
  for (const ProfileEntry& entry : entries) {
    if (entry.path == path) return &entry;
  }
  return nullptr;
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing_enabled(false);
    set_profiling_enabled(true);
    reset_profile();
  }
  void TearDown() override {
    set_profiling_enabled(false);
    reset_profile();
  }
};

TEST_F(ProfilerTest, NestedSpansBuildPathTree) {
  {
    DECAM_SPAN("pt_outer");
    busy_wait_us(200);
    {
      DECAM_SPAN("pt_inner");
      busy_wait_us(100);
    }
    {
      DECAM_SPAN("pt_inner");
      busy_wait_us(100);
    }
  }
  const std::vector<ProfileEntry> entries = profile_snapshot();
  const ProfileEntry* outer = find_entry(entries, "pt_outer");
  const ProfileEntry* inner = find_entry(entries, "pt_outer;pt_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(outer->name, "pt_outer");
  EXPECT_EQ(inner->count, 2u);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(inner->name, "pt_inner");
  // Inclusive time contains the children; self = total - children >= 0.
  EXPECT_GE(outer->total_ms, inner->total_ms);
  EXPECT_GE(outer->self_ms, 0.0);
  EXPECT_NEAR(outer->self_ms, outer->total_ms - inner->total_ms, 1e-9);
  // The same name at top level is a different stage than the nested one.
  EXPECT_EQ(find_entry(entries, "pt_inner"), nullptr);
}

TEST_F(ProfilerTest, PreOrderSnapshotKeepsParentBeforeChild) {
  {
    DECAM_SPAN("pt_a");
    DECAM_SPAN("pt_b");
    DECAM_SPAN("pt_c");
    busy_wait_us(50);
  }
  const std::vector<ProfileEntry> entries = profile_snapshot();
  std::size_t ia = entries.size(), ib = entries.size(), ic = entries.size();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].path == "pt_a") ia = i;
    if (entries[i].path == "pt_a;pt_b") ib = i;
    if (entries[i].path == "pt_a;pt_b;pt_c") ic = i;
  }
  ASSERT_LT(ia, entries.size());
  ASSERT_LT(ib, entries.size());
  ASSERT_LT(ic, entries.size());
  EXPECT_LT(ia, ib);
  EXPECT_LT(ib, ic);
}

TEST_F(ProfilerTest, ThreadsMergeByStagePath) {
  auto record = [] {
    for (int i = 0; i < 3; ++i) {
      DECAM_SPAN("pt_shared");
      busy_wait_us(50);
    }
  };
  std::thread worker(record);
  record();
  worker.join();
  const std::vector<ProfileEntry> entries = profile_snapshot();
  const ProfileEntry* shared = find_entry(entries, "pt_shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->count, 6u);
}

TEST_F(ProfilerTest, SelfTimesSumToRootTotals) {
  {
    DECAM_SPAN("pt_root");
    busy_wait_us(300);
    {
      DECAM_SPAN("pt_mid");
      busy_wait_us(200);
      DECAM_SPAN("pt_leaf");
      busy_wait_us(100);
    }
  }
  const std::vector<ProfileEntry> entries = profile_snapshot();
  double self_sum = 0.0;
  double root_total = 0.0;
  for (const ProfileEntry& entry : entries) {
    if (entry.path.rfind("pt_root", 0) == 0) self_sum += entry.self_ms;
    if (entry.path == "pt_root") root_total = entry.total_ms;
  }
  ASSERT_GT(root_total, 0.0);
  // Self times partition the root's inclusive time exactly (same counters,
  // exact subtraction — only the >= 0 clamp could shave a sliver).
  EXPECT_NEAR(self_sum, root_total, 0.05 * root_total);
}

TEST_F(ProfilerTest, DisabledProfilingRecordsNothing) {
  set_profiling_enabled(false);
  {
    DECAM_SPAN("pt_dark");
    busy_wait_us(50);
  }
  EXPECT_EQ(find_entry(profile_snapshot(), "pt_dark"), nullptr);
}

TEST_F(ProfilerTest, ResetZeroesCountsButKeepsRecordingValid) {
  {
    DECAM_SPAN("pt_epoch");
    busy_wait_us(50);
  }
  reset_profile();
  const std::vector<ProfileEntry> cleared = profile_snapshot();
  const ProfileEntry* after = find_entry(cleared, "pt_epoch");
  if (after != nullptr) {
    EXPECT_EQ(after->count, 0u);
    EXPECT_EQ(after->total_ms, 0.0);
  }
  {
    DECAM_SPAN("pt_epoch");
    busy_wait_us(50);
  }
  const std::vector<ProfileEntry> rerecorded = profile_snapshot();
  const ProfileEntry* again = find_entry(rerecorded, "pt_epoch");
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->count, 1u);
  EXPECT_GT(again->total_ms, 0.0);
}

TEST_F(ProfilerTest, CollapsedStacksMatchLineGrammar) {
  {
    DECAM_SPAN("pt_stack_outer");
    busy_wait_us(200);
    DECAM_SPAN("pt_stack_inner");
    busy_wait_us(200);
  }
  const std::string stacks = collapsed_stacks();
  EXPECT_NE(stacks.find("pt_stack_outer;pt_stack_inner "), std::string::npos);
  const std::regex line_re("^[^ ]+ [0-9]+$");
  std::istringstream in(stacks);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad line: " << line;
    ++lines;
  }
  EXPECT_GE(lines, 1);
}

TEST_F(ProfilerTest, RenderedTablesContainStages) {
  {
    DECAM_SPAN("pt_render");
    busy_wait_us(100);
  }
  EXPECT_NE(render_profile_tree().render().find("pt_render"),
            std::string::npos);
  EXPECT_NE(render_profile_hotspots(5).render().find("pt_render"),
            std::string::npos);
}

// Snapshots are documented to run concurrently with recording threads
// (relaxed counters, child inserts under the tree mutex). Hammer both sides
// at once — primarily a TSan target, but the final count check also catches
// lost updates.
TEST_F(ProfilerTest, SnapshotWhileRecordingIsSafe) {
  constexpr int kIterations = 2000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kIterations; ++i) {
      DECAM_SPAN("pt_live_outer");
      DECAM_SPAN(i % 2 == 0 ? "pt_live_even" : "pt_live_odd");
    }
    done.store(true);
  });
  // do-while: on a single-core host the writer can finish before this
  // thread runs at all, but at least one snapshot must still happen.
  int snapshots = 0;
  do {
    const std::vector<ProfileEntry> entries = profile_snapshot();
    for (const ProfileEntry& entry : entries) {
      EXPECT_GE(entry.self_ms, 0.0);
    }
    ++snapshots;
  } while (!done.load());
  writer.join();
  EXPECT_GT(snapshots, 0);
  const std::vector<ProfileEntry> final_entries = profile_snapshot();
  const ProfileEntry* outer = find_entry(final_entries, "pt_live_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, static_cast<std::uint64_t>(kIterations));
}

}  // namespace
}  // namespace decam::obs
