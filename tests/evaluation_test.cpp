// Tests for the confusion-matrix measures (Acc/Prec/Rec/FAR/FRR).
#include "core/evaluation.h"

#include <gtest/gtest.h>

#include <vector>

namespace decam::core {
namespace {

TEST(Evaluate, PerfectDetector) {
  const std::vector<double> benign = {1.0, 2.0, 3.0};
  const std::vector<double> attack = {10.0, 11.0};
  const Calibration c{5.0, Polarity::HighIsAttack, 0.0};
  const DetectionStats stats = evaluate(benign, attack, c);
  EXPECT_EQ(stats.true_positives, 2);
  EXPECT_EQ(stats.true_negatives, 3);
  EXPECT_EQ(stats.false_positives, 0);
  EXPECT_EQ(stats.false_negatives, 0);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(stats.precision(), 1.0);
  EXPECT_DOUBLE_EQ(stats.recall(), 1.0);
  EXPECT_DOUBLE_EQ(stats.far(), 0.0);
  EXPECT_DOUBLE_EQ(stats.frr(), 0.0);
}

TEST(Evaluate, MixedOutcomeMatchesHandCount) {
  // threshold 5, HighIsAttack:
  //   benign {1, 6}  -> 1 TN, 1 FP
  //   attack {4, 9}  -> 1 FN, 1 TP
  const std::vector<double> benign = {1.0, 6.0};
  const std::vector<double> attack = {4.0, 9.0};
  const Calibration c{5.0, Polarity::HighIsAttack, 0.0};
  const DetectionStats stats = evaluate(benign, attack, c);
  EXPECT_EQ(stats.true_positives, 1);
  EXPECT_EQ(stats.false_positives, 1);
  EXPECT_EQ(stats.true_negatives, 1);
  EXPECT_EQ(stats.false_negatives, 1);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(stats.precision(), 0.5);
  EXPECT_DOUBLE_EQ(stats.recall(), 0.5);
  EXPECT_DOUBLE_EQ(stats.far(), 0.5);   // 1 of 2 attacks accepted
  EXPECT_DOUBLE_EQ(stats.frr(), 0.5);   // 1 of 2 benign rejected
}

TEST(Evaluate, LowIsAttackPolarity) {
  const std::vector<double> benign = {0.9, 0.95};
  const std::vector<double> attack = {0.2, 0.8};
  const Calibration c{0.5, Polarity::LowIsAttack, 0.0};
  const DetectionStats stats = evaluate(benign, attack, c);
  EXPECT_EQ(stats.true_positives, 1);   // 0.2
  EXPECT_EQ(stats.false_negatives, 1);  // 0.8 slips through
  EXPECT_EQ(stats.true_negatives, 2);
  EXPECT_DOUBLE_EQ(stats.far(), 0.5);
  EXPECT_DOUBLE_EQ(stats.frr(), 0.0);
}

TEST(Evaluate, EmptyClassesYieldZeroRates) {
  const DetectionStats stats = evaluate({}, {}, Calibration{});
  EXPECT_DOUBLE_EQ(stats.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(stats.precision(), 0.0);
  EXPECT_DOUBLE_EQ(stats.recall(), 0.0);
  EXPECT_DOUBLE_EQ(stats.far(), 0.0);
  EXPECT_DOUBLE_EQ(stats.frr(), 0.0);
}

TEST(EvaluateFlags, TalliesBooleanDecisions) {
  const std::vector<bool> benign = {false, false, true};   // 1 FP
  const std::vector<bool> attack = {true, true, false};    // 1 FN
  const DetectionStats stats = evaluate_flags(benign, attack);
  EXPECT_EQ(stats.true_positives, 2);
  EXPECT_EQ(stats.false_positives, 1);
  EXPECT_EQ(stats.true_negatives, 2);
  EXPECT_EQ(stats.false_negatives, 1);
  EXPECT_NEAR(stats.accuracy(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(stats.far(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.frr(), 1.0 / 3.0, 1e-12);
}

TEST(DetectionStats, FarAndFrrAreComplementaryToRecallAndSpecificity) {
  DetectionStats stats;
  stats.true_positives = 90;
  stats.false_negatives = 10;
  stats.true_negatives = 95;
  stats.false_positives = 5;
  EXPECT_DOUBLE_EQ(stats.recall() + stats.far(), 1.0);
  EXPECT_DOUBLE_EQ(stats.frr(), 0.05);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 185.0 / 200.0);
}

}  // namespace
}  // namespace decam::core
