// Memory accounting (obs/memstats.h): source registration, gauge
// publication, /proc RSS sampling, and the rendered table.
#include "obs/memstats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "obs/metrics.h"

namespace decam::obs {
namespace {

TEST(MemStatsTest, RegisteredSourceAppearsAsGauge) {
  register_memory_source("memtest_fixed", [] { return std::uint64_t{12345}; });
  sample_memory_gauges();
  EXPECT_EQ(MetricsRegistry::instance().gauge("mem/memtest_fixed_bytes")
                .value(),
            12345.0);
}

TEST(MemStatsTest, SourcesTrackLiveValues) {
  static std::atomic<std::uint64_t> bytes{100};
  register_memory_source("memtest_live", [] { return bytes.load(); });
  sample_memory_gauges();
  EXPECT_EQ(
      MetricsRegistry::instance().gauge("mem/memtest_live_bytes").value(),
      100.0);
  bytes.store(250);
  sample_memory_gauges();
  EXPECT_EQ(
      MetricsRegistry::instance().gauge("mem/memtest_live_bytes").value(),
      250.0);
}

TEST(MemStatsTest, ReRegistrationReplacesTheSource) {
  register_memory_source("memtest_swap", [] { return std::uint64_t{1}; });
  register_memory_source("memtest_swap", [] { return std::uint64_t{2}; });
  sample_memory_gauges();
  EXPECT_EQ(
      MetricsRegistry::instance().gauge("mem/memtest_swap_bytes").value(),
      2.0);
}

TEST(MemStatsTest, ProcessRssIsSampledFromProc) {
  // /proc/self/status exists on every platform this repo targets; both
  // figures are whole megabytes for any real process.
  const std::uint64_t rss = current_rss_bytes();
  const std::uint64_t peak = peak_rss_bytes();
  EXPECT_GT(rss, 1u << 20);
  EXPECT_GE(peak, rss);
  sample_memory_gauges();
  EXPECT_GT(
      MetricsRegistry::instance().gauge("mem/process_rss_bytes").value(),
      0.0);
  EXPECT_GT(MetricsRegistry::instance()
                .gauge("mem/process_peak_rss_bytes")
                .value(),
            0.0);
}

TEST(MemStatsTest, RenderedTableListsSourcesLargestFirst) {
  register_memory_source("memtest_big", [] { return std::uint64_t{1 << 20}; });
  register_memory_source("memtest_small", [] { return std::uint64_t{64}; });
  const std::string table = render_memory_table().render();
  const std::size_t big = table.find("memtest_big");
  const std::size_t small = table.find("memtest_small");
  ASSERT_NE(big, std::string::npos) << table;
  ASSERT_NE(small, std::string::npos) << table;
  EXPECT_LT(big, small) << table;
}

}  // namespace
}  // namespace decam::obs
