// Cross-implementation property tests: each fast algorithm in the library
// is checked against an independent brute-force reference implementation
// written here (naive DFT, exhaustive QP grid search, brute-force blob
// count, direct 2-D resampling) on randomized inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "attack/qp_solver.h"
#include "cv/connected_components.h"
#include "data/rng.h"
#include "imaging/scale.h"
#include "metrics/ssim.h"
#include "signal/fft.h"

namespace decam {
namespace {

// ---------------------------------------------------------------- FFT ----

std::vector<Complex> naive_dft(const std::vector<Complex>& input) {
  const std::size_t n = input.size();
  std::vector<Complex> output(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * j % n) /
                           static_cast<double>(n);
      acc += input[j] * Complex(std::cos(angle), std::sin(angle));
    }
    output[k] = acc;
  }
  return output;
}

class FftVsNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsNaive, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  data::Rng rng(n * 31 + 7);
  std::vector<Complex> signal(n);
  for (auto& v : signal) {
    v = Complex(rng.next_range(-100.0, 100.0), rng.next_range(-100.0, 100.0));
  }
  const auto fast = fft(signal);
  const auto slow = naive_dft(signal);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-6 * (1.0 + std::abs(slow[k])))
        << "n=" << n << " bin " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, FftVsNaive,
                         ::testing::Values(2, 3, 5, 8, 12, 17, 31, 32, 45),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ----------------------------------------------------------------- QP ----

// Exhaustive grid search over a 2-variable box-constrained attack QP.
double brute_force_qp(const attack::CoeffMatrix& C,
                      const std::vector<double>& s,
                      const std::vector<double>& t, double eps) {
  double best = 1e300;
  for (double x0 = 0.0; x0 <= 255.0; x0 += 0.5) {
    for (double x1 = 0.0; x1 <= 255.0; x1 += 0.5) {
      const std::vector<double> x = {x0, x1};
      const auto y = C.multiply(x);
      bool feasible = true;
      for (std::size_t r = 0; r < y.size(); ++r) {
        if (std::fabs(y[r] - t[r]) > eps + 1e-9) feasible = false;
      }
      if (!feasible) continue;
      const double cost = (x0 - s[0]) * (x0 - s[0]) +
                          (x1 - s[1]) * (x1 - s[1]);
      best = std::min(best, cost);
    }
  }
  return best;
}

TEST(QpOptimality, MatchesBruteForceOnTwoVariableProblems) {
  data::Rng rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    // One constraint over two variables with random positive weights.
    const float w0 = static_cast<float>(rng.next_range(0.1, 0.9));
    const std::vector<std::vector<Tap>> rows = {{{0, w0}, {1, 1.0f - w0}}};
    const attack::CoeffMatrix C{KernelTable::from_rows(2, rows)};
    const std::vector<double> s = {rng.next_range(0.0, 255.0),
                                   rng.next_range(0.0, 255.0)};
    const std::vector<double> t = {rng.next_range(0.0, 255.0)};
    attack::QpOptions options;
    options.eps = 2.0;
    options.tolerance = 0.01;
    options.max_sweeps = 300;
    const attack::QpResult result = attack::solve_attack_qp(C, s, t, options);
    ASSERT_TRUE(result.converged) << "trial " << trial;
    const double brute = brute_force_qp(C, s, t, options.eps);
    // The grid has 0.5 resolution; allow the corresponding slack.
    EXPECT_LE(result.delta_norm_sq, brute + 2.0) << "trial " << trial;
  }
}

TEST(QpOptimality, TwoOverlappingConstraintsStillNearOptimal) {
  // Rows sharing variable 1 (like adjacent bicubic rows).
  const std::vector<std::vector<Tap>> rows = {{{0, 0.7f}, {1, 0.3f}},
                                              {{0, 0.2f}, {1, 0.8f}}};
  const attack::CoeffMatrix C{KernelTable::from_rows(2, rows)};
  const std::vector<double> s = {60.0, 200.0};
  const std::vector<double> t = {180.0, 90.0};
  attack::QpOptions options;
  options.eps = 2.0;
  options.tolerance = 0.01;
  options.max_sweeps = 2000;
  const attack::QpResult result = attack::solve_attack_qp(C, s, t, options);
  ASSERT_TRUE(result.converged);
  const double brute = brute_force_qp(C, s, t, options.eps);
  EXPECT_LE(result.delta_norm_sq, brute + 2.0);
}

// -------------------------------------------------------------- blobs ----

// Brute-force component count via repeated mask erosion... simpler: union
// by repeated label propagation until fixpoint.
int brute_force_components(const Image& binary) {
  const int w = binary.width();
  const int h = binary.height();
  std::vector<int> label(static_cast<std::size_t>(w) * h, 0);
  int next = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (binary.at(x, y, 0) > 0.0f) {
        label[static_cast<std::size_t>(y) * w + x] = ++next;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const std::size_t idx = static_cast<std::size_t>(y) * w + x;
        if (label[idx] == 0) continue;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int nx = x + dx;
            const int ny = y + dy;
            if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
            const std::size_t nidx = static_cast<std::size_t>(ny) * w + nx;
            if (label[nidx] != 0 && label[nidx] < label[idx]) {
              label[idx] = label[nidx];
              changed = true;
            }
          }
        }
      }
    }
  }
  std::vector<int> roots;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int l = label[static_cast<std::size_t>(y) * w + x];
      if (l != 0 && std::find(roots.begin(), roots.end(), l) == roots.end()) {
        roots.push_back(l);
      }
    }
  }
  return static_cast<int>(roots.size());
}

TEST(BlobProperty, CountMatchesBruteForceOnRandomMasks) {
  data::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Image mask(24, 18, 1);
    for (float& v : mask.plane(0)) {
      v = rng.next_bool(0.35) ? 255.0f : 0.0f;
    }
    EXPECT_EQ(count_blobs(mask),
              brute_force_components(mask))
        << "trial " << trial;
  }
}

// ------------------------------------------------------------- resize ----

TEST(ResizeProperty, LinearityOverImages) {
  // resize is a linear operator: resize(aX + bY) == a resize(X) + b resize(Y).
  data::Rng rng(13);
  Image x(20, 14, 1), y(20, 14, 1);
  for (float& v : x.plane(0)) v = static_cast<float>(rng.next_range(0, 255));
  for (float& v : y.plane(0)) v = static_cast<float>(rng.next_range(0, 255));
  Image combo(20, 14, 1);
  for (std::size_t i = 0; i < combo.plane(0).size(); ++i) {
    combo.plane(0)[i] = 0.3f * x.plane(0)[i] + 0.7f * y.plane(0)[i];
  }
  for (const ScaleAlgo algo : {ScaleAlgo::Bilinear, ScaleAlgo::Bicubic,
                               ScaleAlgo::Area, ScaleAlgo::Lanczos4}) {
    const Image rx = resize(x, 7, 5, algo);
    const Image ry = resize(y, 7, 5, algo);
    const Image rc = resize(combo, 7, 5, algo);
    for (int py = 0; py < 5; ++py) {
      for (int px = 0; px < 7; ++px) {
        EXPECT_NEAR(rc.at(px, py, 0),
                    0.3f * rx.at(px, py, 0) + 0.7f * ry.at(px, py, 0), 1e-2f)
            << to_string(algo);
      }
    }
  }
}

TEST(SsimProperty, InvariantToGlobalPermutationOfBothImages) {
  // SSIM(I, J) compares local structure; applying the SAME spatial shuffle
  // of rows to both images preserves per-window statistics only for
  // translations — but a simple sanity invariant holds: SSIM is symmetric
  // and bounded on random pairs.
  data::Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    Image a(16, 16, 1), b(16, 16, 1);
    for (float& v : a.plane(0)) v = static_cast<float>(rng.next_range(0, 255));
    for (float& v : b.plane(0)) v = static_cast<float>(rng.next_range(0, 255));
    const double s_ab = ssim(a, b);
    const double s_ba = ssim(b, a);
    EXPECT_NEAR(s_ab, s_ba, 1e-12);
    EXPECT_GE(s_ab, -1.0);
    EXPECT_LE(s_ab, 1.0);
  }
}

}  // namespace
}  // namespace decam
