// End-to-end tests of the image-scaling attack: the two success criteria of
// the paper (A ~= O visually, scale(A) ~= T) across scaling algorithms.
#include "attack/scale_attack.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/rng.h"
#include "data/synth.h"
#include "metrics/mse.h"
#include "metrics/ssim.h"

namespace decam::attack {
namespace {

struct Fixture {
  Image source;
  Image target;
};

Fixture make_fixture(int src_side, int dst_side, std::uint64_t seed) {
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = src_side;
  params.max_side = src_side;
  data::Rng scene_rng(seed);
  data::Rng target_rng(seed + 1000);
  return {generate_scene(params, scene_rng),
          data::generate_target(dst_side, dst_side, target_rng)};
}

class AttackAcrossAlgos : public ::testing::TestWithParam<ScaleAlgo> {};

TEST_P(AttackAcrossAlgos, DownscaleOfAttackMatchesTarget) {
  const ScaleAlgo algo = GetParam();
  const Fixture f = make_fixture(96, 24, 1);
  AttackOptions options;
  options.algo = algo;
  options.eps = 2.0;
  options.max_sweeps = 200;
  const AttackResult result = craft_attack(f.source, f.target, options);
  // Success criterion 2: the model sees T. Allow a small slack beyond eps
  // for the 8-bit quantisation of the attack image.
  EXPECT_LE(result.report.downscale_linf, options.eps + 2.5)
      << to_string(algo);
  EXPECT_LT(result.report.downscale_mse, 16.0) << to_string(algo);
}

TEST_P(AttackAcrossAlgos, AttackImageStaysCloseToSource) {
  const ScaleAlgo algo = GetParam();
  const Fixture f = make_fixture(96, 24, 2);
  AttackOptions options;
  options.algo = algo;
  const AttackResult result = craft_attack(f.source, f.target, options);
  // Success criterion 1: a human still sees O, not T. Mean local SSIM is a
  // harsh judge of sparse impulsive noise (every 11x11 window catches a
  // perturbed pixel at ratio 4), so the claim that matters is that the
  // attack leaves most pixels (nearly) untouched. The untouched fraction
  // depends on the kernel support: nearest rewrites 1 pixel per output,
  // bilinear perturbs 2 per axis, bicubic spreads a minimal-norm delta
  // over 4 per axis (almost every pixel moves a little).
  int close = 0;
  for (int y = 0; y < 96; ++y) {
    for (int x = 0; x < 96; ++x) {
      if (std::fabs(result.image.at(x, y, 0) - f.source.at(x, y, 0)) <= 2.0f) {
        ++close;
      }
    }
  }
  const double min_close_fraction = algo == ScaleAlgo::Nearest ? 0.90
                                    : algo == ScaleAlgo::Bilinear ? 0.70
                                                                  : 0.25;
  EXPECT_GT(close, static_cast<int>(96 * 96 * min_close_fraction))
      << to_string(algo);
  EXPECT_GT(result.report.source_ssim, 0.05) << to_string(algo);
  // The attack must NOT simply replace the image wholesale.
  const Image target_upscaled = resize(f.target, 96, 96, ScaleAlgo::Bilinear);
  EXPECT_LT(result.report.perturbation_mse, mse(f.source, target_upscaled))
      << to_string(algo);
}

INSTANTIATE_TEST_SUITE_P(Scalers, AttackAcrossAlgos,
                         ::testing::Values(ScaleAlgo::Nearest,
                                           ScaleAlgo::Bilinear,
                                           ScaleAlgo::Bicubic),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(ScaleAttack, NearestFastPathIsExact) {
  const Fixture f = make_fixture(64, 16, 3);
  AttackOptions options;
  options.algo = ScaleAlgo::Nearest;
  const AttackResult result = craft_attack(f.source, f.target, options);
  // Nearest overwrites exactly the sampled pixels: the downscale is the
  // target up to 8-bit rounding.
  EXPECT_LE(result.report.downscale_linf, 0.51);
  EXPECT_TRUE(result.report.converged);
  // Exactly 16*16 pixels per channel may differ from the source.
  int changed = 0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (result.image.at(x, y, 0) != f.source.at(x, y, 0)) ++changed;
    }
  }
  EXPECT_LE(changed, 16 * 16);
}

TEST(ScaleAttack, LargerScaleRatioMakesStealthierAttacks) {
  // With ratio 6 the attacker controls ~1/36 of pixels vs ~1/9 at ratio 3:
  // source similarity must be markedly higher at the larger ratio.
  data::Rng rng_a(4);
  data::Rng rng_b(5);
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = 144;
  const Image source = generate_scene(params, rng_a);
  data::Rng target_rng(6);
  const Image small_target = data::generate_target(24, 24, target_rng);
  const Image big_target = data::generate_target(48, 48, target_rng);
  AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  const AttackResult stealthy = craft_attack(source, small_target, options);
  const AttackResult blatant = craft_attack(source, big_target, options);
  EXPECT_GT(stealthy.report.source_ssim, blatant.report.source_ssim);
}

TEST(ScaleAttack, ValidatesArguments) {
  const Fixture f = make_fixture(64, 16, 7);
  AttackOptions options;
  // Target not smaller than source.
  EXPECT_THROW(craft_attack(f.target, f.target, options),
               std::invalid_argument);
  // Channel mismatch.
  EXPECT_THROW(craft_attack(f.source, Image(16, 16, 1), options),
               std::invalid_argument);
  EXPECT_THROW(craft_attack(Image(), f.target, options),
               std::invalid_argument);
}

TEST(ScaleAttack, AssessMatchesCraftReport) {
  const Fixture f = make_fixture(72, 18, 8);
  AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  const AttackResult result = craft_attack(f.source, f.target, options);
  const AttackReport again =
      assess_attack(result.image, f.source, f.target, options);
  EXPECT_DOUBLE_EQ(again.downscale_linf, result.report.downscale_linf);
  EXPECT_DOUBLE_EQ(again.perturbation_mse, result.report.perturbation_mse);
  EXPECT_THROW(assess_attack(Image(10, 10, 3), f.source, f.target, options),
               std::invalid_argument);
}

TEST(ScaleAttack, AttackImageIs8BitQuantised) {
  const Fixture f = make_fixture(64, 16, 9);
  AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  const AttackResult result = craft_attack(f.source, f.target, options);
  for (int y = 0; y < result.image.height(); y += 3) {
    for (int x = 0; x < result.image.width(); x += 3) {
      const float v = result.image.at(x, y, 0);
      EXPECT_FLOAT_EQ(v, std::round(v));
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 255.0f);
    }
  }
}

TEST(ScaleAttack, WrongScalerDoesNotRevealTarget) {
  // An attack crafted for bilinear must NOT reproduce the target when the
  // pipeline actually uses area averaging — the Quiring et al. defence.
  const Fixture f = make_fixture(96, 24, 10);
  AttackOptions bilinear;
  bilinear.algo = ScaleAlgo::Bilinear;
  const AttackResult result = craft_attack(f.source, f.target, bilinear);
  const Image robust_down = resize(result.image, 24, 24, ScaleAlgo::Area);
  EXPECT_GT(mse(robust_down, f.target), 400.0);
}

}  // namespace
}  // namespace decam::attack
