// Tests for the majority-vote ensemble using stub detectors with
// controllable scores, including the short-circuit voting path.
#include "core/ensemble.h"

#include <gtest/gtest.h>

#include <memory>

#include "obs/metrics.h"

namespace decam::core {
namespace {

// Stub detector returning a fixed score regardless of input.
class FixedDetector final : public Detector {
 public:
  explicit FixedDetector(double score) : score_(score) {}
  double score(const Image&) const override { return score_; }
  std::string name() const override { return "fixed"; }

 private:
  double score_;
};

EnsembleDetector::Member member(double score, double threshold,
                                Polarity polarity = Polarity::HighIsAttack) {
  return {std::make_shared<FixedDetector>(score),
          Calibration{threshold, polarity, 0.0}};
}

const Image kDummy(4, 4, 1, 0.0f);

TEST(Ensemble, UnanimousAttackVoteFlags) {
  const EnsembleDetector ensemble({member(10, 5), member(10, 5),
                                   member(10, 5)});
  EXPECT_TRUE(ensemble.is_attack(kDummy));
}

TEST(Ensemble, MajorityWinsTwoToOne) {
  const EnsembleDetector ensemble({member(10, 5), member(10, 5),
                                   member(1, 5)});
  EXPECT_TRUE(ensemble.is_attack(kDummy));
  const EnsembleDetector benign_majority({member(1, 5), member(1, 5),
                                          member(10, 5)});
  EXPECT_FALSE(benign_majority.is_attack(kDummy));
}

TEST(Ensemble, TieCountsAsBenign) {
  // Even membership with a 1-1 split: not a strict majority.
  const EnsembleDetector ensemble({member(10, 5), member(1, 5)});
  EXPECT_FALSE(ensemble.is_attack(kDummy));
}

TEST(Ensemble, MixedPolaritiesVoteCorrectly) {
  // An SSIM-like member (low = attack) agreeing with an MSE-like member.
  const EnsembleDetector ensemble(
      {member(10, 5, Polarity::HighIsAttack),
       member(0.2, 0.5, Polarity::LowIsAttack),
       member(1, 5, Polarity::HighIsAttack)});
  EXPECT_TRUE(ensemble.is_attack(kDummy));
}

TEST(Ensemble, VotesExposeIndividualDecisions) {
  const EnsembleDetector ensemble({member(10, 5), member(1, 5),
                                   member(7, 7)});
  const std::vector<bool> votes = ensemble.votes(kDummy);
  ASSERT_EQ(votes.size(), 3u);
  EXPECT_TRUE(votes[0]);
  EXPECT_FALSE(votes[1]);
  EXPECT_TRUE(votes[2]);  // score == threshold counts as attack
}

TEST(Ensemble, VoteScoresBypassesDetectors) {
  const EnsembleDetector ensemble({member(0, 5), member(0, 5),
                                   member(0, 5)});
  const std::vector<double> attack_scores = {9.0, 9.0, 1.0};
  const std::vector<double> benign_scores = {1.0, 1.0, 9.0};
  EXPECT_TRUE(ensemble.vote_scores(attack_scores));
  EXPECT_FALSE(ensemble.vote_scores(benign_scores));
  EXPECT_THROW(ensemble.vote_scores(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Ensemble, SingleMemberActsAsThatDetector) {
  const EnsembleDetector ensemble({member(10, 5)});
  EXPECT_TRUE(ensemble.is_attack(kDummy));
}

TEST(Ensemble, ValidatesConstruction) {
  EXPECT_THROW(EnsembleDetector({}), std::invalid_argument);
  std::vector<EnsembleDetector::Member> with_null;
  with_null.push_back({nullptr, Calibration{}});
  EXPECT_THROW(EnsembleDetector(std::move(with_null)), std::invalid_argument);
}

// Stub that counts how often it scores, to observe short-circuit skips.
class CountingDetector final : public Detector {
 public:
  CountingDetector(double score, std::string name)
      : score_(score), name_(std::move(name)) {}
  double score(const Image&) const override {
    ++calls;
    return score_;
  }
  double score(const AnalysisContext&) const override {
    ++calls;
    return score_;
  }
  std::string name() const override { return name_; }

  mutable int calls = 0;

 private:
  double score_;
  std::string name_;
};

struct CountingEnsemble {
  std::vector<std::shared_ptr<CountingDetector>> detectors;
  EnsembleDetector ensemble;
};

// Members vote "attack" iff their fixed score exceeds threshold 5.
CountingEnsemble counting_ensemble(const std::vector<double>& scores) {
  std::vector<std::shared_ptr<CountingDetector>> detectors;
  std::vector<EnsembleDetector::Member> members;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    detectors.push_back(std::make_shared<CountingDetector>(
        scores[i], "stub" + std::to_string(i) + "/fixed"));
    members.push_back({detectors.back(), Calibration{5.0,
                                                     Polarity::HighIsAttack,
                                                     0.0}});
  }
  return {std::move(detectors), EnsembleDetector{std::move(members)}};
}

TEST(EnsembleShortCircuit, BenignMajoritySkipsLastMember) {
  CountingEnsemble ce = counting_ensemble({1, 1, 10});
  const EnsembleDetector::Decision decision = ce.ensemble.decide(kDummy);
  EXPECT_FALSE(decision.attack);
  EXPECT_EQ(decision.evaluated, 2u);
  ASSERT_EQ(decision.scores.size(), 3u);
  EXPECT_TRUE(decision.scores[0].has_value());
  EXPECT_TRUE(decision.scores[1].has_value());
  EXPECT_FALSE(decision.scores[2].has_value());
  EXPECT_FALSE(decision.votes[2].has_value());
  EXPECT_EQ(ce.detectors[2]->calls, 0);
}

TEST(EnsembleShortCircuit, AttackMajoritySkipsLastMember) {
  CountingEnsemble ce = counting_ensemble({10, 10, 1});
  const EnsembleDetector::Decision decision = ce.ensemble.decide(kDummy);
  EXPECT_TRUE(decision.attack);
  EXPECT_EQ(decision.evaluated, 2u);
  EXPECT_FALSE(decision.scores[2].has_value());
  EXPECT_EQ(ce.detectors[2]->calls, 0);
}

TEST(EnsembleShortCircuit, SplitVoteEvaluatesEveryMember) {
  CountingEnsemble ce = counting_ensemble({10, 1, 10});
  const EnsembleDetector::Decision decision = ce.ensemble.decide(kDummy);
  EXPECT_TRUE(decision.attack);
  EXPECT_EQ(decision.evaluated, 3u);
  for (const auto& d : ce.detectors) EXPECT_EQ(d->calls, 1);
}

TEST(EnsembleShortCircuit, FiveMembersSkipTwoOnUnanimousStart) {
  CountingEnsemble ce = counting_ensemble({1, 1, 1, 10, 10});
  const EnsembleDetector::Decision decision = ce.ensemble.decide(kDummy);
  // After three benign votes the two attack votes left cannot reach 3 of 5.
  EXPECT_FALSE(decision.attack);
  EXPECT_EQ(decision.evaluated, 3u);
  EXPECT_EQ(ce.detectors[3]->calls, 0);
  EXPECT_EQ(ce.detectors[4]->calls, 0);
}

TEST(EnsembleShortCircuit, DisablingEvaluatesEveryMember) {
  CountingEnsemble ce = counting_ensemble({1, 1, 10});
  ce.ensemble.set_short_circuit(false);
  const EnsembleDetector::Decision decision = ce.ensemble.decide(kDummy);
  EXPECT_FALSE(decision.attack);
  EXPECT_EQ(decision.evaluated, 3u);
  EXPECT_TRUE(decision.scores[2].has_value());
  EXPECT_EQ(ce.detectors[2]->calls, 1);
}

TEST(EnsembleShortCircuit, DecisionMatchesFullVoteOnEveryPattern) {
  // Exhaustive 3-member vote patterns: skipping must never flip the verdict.
  for (int pattern = 0; pattern < 8; ++pattern) {
    std::vector<double> scores;
    int attack_votes = 0;
    for (int bit = 0; bit < 3; ++bit) {
      const bool attack = ((pattern >> bit) & 1) != 0;
      scores.push_back(attack ? 10.0 : 1.0);
      attack_votes += attack ? 1 : 0;
    }
    CountingEnsemble ce = counting_ensemble(scores);
    const EnsembleDetector::Decision decision = ce.ensemble.decide(kDummy);
    EXPECT_EQ(decision.attack, attack_votes >= 2) << "pattern " << pattern;
    EXPECT_EQ(decision.attack, ce.ensemble.is_attack(kDummy))
        << "pattern " << pattern;
  }
}

TEST(EnsembleShortCircuit, SkippedMembersCountInObsLayer) {
  auto& counter =
      obs::MetricsRegistry::instance().counter("battery/skip_stub2");
  const std::uint64_t before = counter.value();
  CountingEnsemble ce = counting_ensemble({1, 1, 10});
  (void)ce.ensemble.decide(kDummy);
  EXPECT_EQ(counter.value(), before + 1);
}

}  // namespace
}  // namespace decam::core
