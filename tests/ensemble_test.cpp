// Tests for the majority-vote ensemble using stub detectors with
// controllable scores.
#include "core/ensemble.h"

#include <gtest/gtest.h>

#include <memory>

namespace decam::core {
namespace {

// Stub detector returning a fixed score regardless of input.
class FixedDetector final : public Detector {
 public:
  explicit FixedDetector(double score) : score_(score) {}
  double score(const Image&) const override { return score_; }
  std::string name() const override { return "fixed"; }

 private:
  double score_;
};

EnsembleDetector::Member member(double score, double threshold,
                                Polarity polarity = Polarity::HighIsAttack) {
  return {std::make_shared<FixedDetector>(score),
          Calibration{threshold, polarity, 0.0}};
}

const Image kDummy(4, 4, 1, 0.0f);

TEST(Ensemble, UnanimousAttackVoteFlags) {
  const EnsembleDetector ensemble({member(10, 5), member(10, 5),
                                   member(10, 5)});
  EXPECT_TRUE(ensemble.is_attack(kDummy));
}

TEST(Ensemble, MajorityWinsTwoToOne) {
  const EnsembleDetector ensemble({member(10, 5), member(10, 5),
                                   member(1, 5)});
  EXPECT_TRUE(ensemble.is_attack(kDummy));
  const EnsembleDetector benign_majority({member(1, 5), member(1, 5),
                                          member(10, 5)});
  EXPECT_FALSE(benign_majority.is_attack(kDummy));
}

TEST(Ensemble, TieCountsAsBenign) {
  // Even membership with a 1-1 split: not a strict majority.
  const EnsembleDetector ensemble({member(10, 5), member(1, 5)});
  EXPECT_FALSE(ensemble.is_attack(kDummy));
}

TEST(Ensemble, MixedPolaritiesVoteCorrectly) {
  // An SSIM-like member (low = attack) agreeing with an MSE-like member.
  const EnsembleDetector ensemble(
      {member(10, 5, Polarity::HighIsAttack),
       member(0.2, 0.5, Polarity::LowIsAttack),
       member(1, 5, Polarity::HighIsAttack)});
  EXPECT_TRUE(ensemble.is_attack(kDummy));
}

TEST(Ensemble, VotesExposeIndividualDecisions) {
  const EnsembleDetector ensemble({member(10, 5), member(1, 5),
                                   member(7, 7)});
  const std::vector<bool> votes = ensemble.votes(kDummy);
  ASSERT_EQ(votes.size(), 3u);
  EXPECT_TRUE(votes[0]);
  EXPECT_FALSE(votes[1]);
  EXPECT_TRUE(votes[2]);  // score == threshold counts as attack
}

TEST(Ensemble, VoteScoresBypassesDetectors) {
  const EnsembleDetector ensemble({member(0, 5), member(0, 5),
                                   member(0, 5)});
  const std::vector<double> attack_scores = {9.0, 9.0, 1.0};
  const std::vector<double> benign_scores = {1.0, 1.0, 9.0};
  EXPECT_TRUE(ensemble.vote_scores(attack_scores));
  EXPECT_FALSE(ensemble.vote_scores(benign_scores));
  EXPECT_THROW(ensemble.vote_scores(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Ensemble, SingleMemberActsAsThatDetector) {
  const EnsembleDetector ensemble({member(10, 5)});
  EXPECT_TRUE(ensemble.is_attack(kDummy));
}

TEST(Ensemble, ValidatesConstruction) {
  EXPECT_THROW(EnsembleDetector({}), std::invalid_argument);
  std::vector<EnsembleDetector::Member> with_null;
  with_null.push_back({nullptr, Calibration{}});
  EXPECT_THROW(EnsembleDetector(std::move(with_null)), std::invalid_argument);
}

}  // namespace
}  // namespace decam::core
