// Tests for the CNN substrate: tensor semantics, numerical gradient checks
// for every layer, softmax properties, and training sanity (the network
// can actually fit a small separable dataset deterministically).
#include <gtest/gtest.h>

#include <cmath>

#include "data/rng.h"
#include "data/synth.h"
#include "imaging/draw.h"
#include "ml/classifier.h"
#include "ml/layers.h"
#include "ml/tensor.h"

namespace decam::ml {
namespace {

Tensor random_tensor(int c, int h, int w, std::uint64_t seed) {
  data::Rng rng(seed);
  Tensor t(c, h, w);
  for (float& v : t.flat()) v = static_cast<float>(rng.next_range(-1.0, 1.0));
  return t;
}

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3, 4, 1.5f);
  EXPECT_EQ(t.channels(), 2);
  EXPECT_EQ(t.height(), 3);
  EXPECT_EQ(t.width(), 4);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_FLOAT_EQ(t.at(1, 2, 3), 1.5f);
  t.at(0, 0, 0) = 7.0f;
  EXPECT_FLOAT_EQ(t.flat()[0], 7.0f);
  EXPECT_THROW(Tensor(0, 1, 1), std::invalid_argument);
}

TEST(Tensor, FromImageNormalisesAndReordersToChw) {
  Image img(2, 1, 3);
  img.at(0, 0, 0) = 255.0f;  // R of pixel (0,0)
  img.at(1, 0, 2) = 51.0f;   // B of pixel (1,0)
  const Tensor t = Tensor::from_image(img);
  EXPECT_EQ(t.channels(), 3);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(2, 0, 1), 0.2f);
  EXPECT_FLOAT_EQ(t.at(1, 0, 0), 0.0f);
}

// ---------------------------------------------------------------------
// Numerical gradient checking: perturb each input element, compare the
// finite difference of a scalar loss L = sum(g .* layer(x)) against the
// analytic backward pass.

constexpr double kEps = 1e-3;
constexpr double kTolerance = 2e-2;

double dot_loss(const Tensor& output, const Tensor& g) {
  double acc = 0.0;
  for (std::size_t i = 0; i < output.size(); ++i) {
    acc += static_cast<double>(output.flat()[i]) * g.flat()[i];
  }
  return acc;
}

TEST(GradCheck, Conv2DInputGradient) {
  data::Rng rng(1);
  Conv2D conv(2, 3, 3, rng);
  Tensor x = random_tensor(2, 6, 5, 2);
  const Tensor g = random_tensor(3, 4, 3, 3);
  const Tensor out = conv.forward(x);
  ASSERT_EQ(out.channels(), 3);
  ASSERT_EQ(out.height(), 4);
  ASSERT_EQ(out.width(), 3);
  const Tensor analytic = conv.backward(g);
  for (std::size_t i = 0; i < x.size(); i += 7) {  // sample every 7th
    Tensor x_plus = x;
    Tensor x_minus = x;
    x_plus.flat()[i] += static_cast<float>(kEps);
    x_minus.flat()[i] -= static_cast<float>(kEps);
    Conv2D probe = conv;  // value copy: same weights, fresh cache
    const double loss_plus = dot_loss(probe.forward(x_plus), g);
    const double loss_minus = dot_loss(probe.forward(x_minus), g);
    const double numeric = (loss_plus - loss_minus) / (2.0 * kEps);
    EXPECT_NEAR(analytic.flat()[i], numeric,
                kTolerance * (1.0 + std::fabs(numeric)))
        << "input index " << i;
  }
}

TEST(GradCheck, Conv2DWeightGradient) {
  data::Rng rng(4);
  const Conv2D clean = [&rng] { return Conv2D(1, 2, 3, rng); }();
  Tensor x = random_tensor(1, 5, 5, 5);
  const Tensor g = random_tensor(2, 3, 3, 6);
  for (std::size_t wi = 0; wi < 18; wi += 3) {
    Conv2D plus = clean;
    Conv2D minus = clean;
    plus.weights()[wi] += static_cast<float>(kEps);
    minus.weights()[wi] -= static_cast<float>(kEps);
    const double numeric =
        (dot_loss(plus.forward(x), g) - dot_loss(minus.forward(x), g)) /
        (2.0 * kEps);
    // Extract analytic gradient: run forward/backward on a fresh copy and
    // capture the weight delta produced by apply_gradients(lr=1).
    Conv2D fresh = clean;
    fresh.forward(x);
    fresh.backward(g);
    const float before = fresh.weights()[wi];
    fresh.apply_gradients(1.0f);
    const double analytic = before - fresh.weights()[wi];
    EXPECT_NEAR(analytic, numeric, kTolerance * (1.0 + std::fabs(numeric)))
        << "weight index " << wi;
  }
}

TEST(GradCheck, ReLUGradientMasksNegatives) {
  ReLU relu;
  Tensor x(1, 1, 4);
  x.flat() = {-1.0f, 2.0f, -3.0f, 4.0f};
  relu.forward(x);
  Tensor g(1, 1, 4);
  g.flat() = {10.0f, 10.0f, 10.0f, 10.0f};
  const Tensor grad = relu.backward(g);
  EXPECT_FLOAT_EQ(grad.flat()[0], 0.0f);
  EXPECT_FLOAT_EQ(grad.flat()[1], 10.0f);
  EXPECT_FLOAT_EQ(grad.flat()[2], 0.0f);
  EXPECT_FLOAT_EQ(grad.flat()[3], 10.0f);
}

TEST(GradCheck, MaxPoolRoutesGradientToArgmax) {
  MaxPool2 pool;
  Tensor x(1, 2, 4);
  x.flat() = {1.0f, 5.0f, 2.0f, 1.0f,
              3.0f, 0.0f, 8.0f, 2.0f};
  const Tensor out = pool.forward(x);
  ASSERT_EQ(out.width(), 2);
  ASSERT_EQ(out.height(), 1);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 8.0f);
  Tensor g(1, 1, 2);
  g.flat() = {1.0f, 2.0f};
  const Tensor grad = pool.backward(g);
  EXPECT_FLOAT_EQ(grad.at(0, 0, 1), 1.0f);  // argmax of first window
  EXPECT_FLOAT_EQ(grad.at(0, 1, 2), 2.0f);  // argmax of second window
  float total = 0.0f;
  for (float v : grad.flat()) total += v;
  EXPECT_FLOAT_EQ(total, 3.0f);  // gradient mass preserved
}

TEST(GradCheck, DenseInputGradient) {
  data::Rng rng(7);
  Dense dense(6, 4, rng);
  std::vector<float> x = {0.3f, -0.2f, 0.9f, 0.0f, -0.5f, 0.7f};
  const std::vector<float> g = {1.0f, -2.0f, 0.5f, 0.25f};
  dense.forward(x);
  const std::vector<float> analytic = dense.backward(g);
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto perturbed = [&](double delta) {
      std::vector<float> xp = x;
      xp[i] += static_cast<float>(delta);
      const std::vector<float> out = dense.forward(xp);
      double acc = 0.0;
      for (std::size_t k = 0; k < g.size(); ++k) acc += out[k] * g[k];
      return acc;
    };
    const double numeric = (perturbed(kEps) - perturbed(-kEps)) / (2.0 * kEps);
    EXPECT_NEAR(analytic[i], numeric, kTolerance * (1.0 + std::fabs(numeric)));
  }
}

TEST(Softmax, NormalisedAndStable) {
  const std::vector<float> logits = {1000.0f, 1001.0f, 999.0f};
  const std::vector<float> probs = softmax(logits);
  double total = 0.0;
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_GT(probs[1], probs[0]);
  EXPECT_GT(probs[0], probs[2]);
}

TEST(SoftmaxCrossEntropy, LossAndGradientSemantics) {
  const std::vector<float> logits = {2.0f, 0.0f, -1.0f};
  const LossResult result = softmax_cross_entropy(logits, 0);
  EXPECT_GT(result.loss, 0.0);
  // Gradient sums to zero (softmax minus one-hot).
  double total = 0.0;
  for (float gi : result.grad_logits) total += gi;
  EXPECT_NEAR(total, 0.0, 1e-6);
  EXPECT_LT(result.grad_logits[0], 0.0f);  // true-class grad negative
  EXPECT_GT(result.grad_logits[1], 0.0f);
  EXPECT_THROW(softmax_cross_entropy(logits, 5), std::invalid_argument);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  const std::vector<float> logits = {0.4f, -0.8f, 1.2f, 0.1f};
  const int label = 2;
  const LossResult analytic = softmax_cross_entropy(logits, label);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    std::vector<float> plus = logits, minus = logits;
    plus[i] += static_cast<float>(kEps);
    minus[i] -= static_cast<float>(kEps);
    const double numeric = (softmax_cross_entropy(plus, label).loss -
                            softmax_cross_entropy(minus, label).loss) /
                           (2.0 * kEps);
    EXPECT_NEAR(analytic.grad_logits[i], numeric, 1e-3);
  }
}

// ---------------------------------------------------------------------
// End-to-end training sanity.

std::vector<TrainingSample> color_blobs_dataset(int per_class,
                                                std::uint64_t seed) {
  // Two trivially separable classes: red-dominant vs blue-dominant frames.
  data::Rng rng(seed);
  std::vector<TrainingSample> samples;
  for (int i = 0; i < per_class * 2; ++i) {
    const int label = i % 2;
    Image img(32, 32, 3);
    const float main_level = static_cast<float>(rng.next_range(140.0, 240.0));
    const float other_level = static_cast<float>(rng.next_range(0.0, 90.0));
    const std::array<float, 3> color = {
        label == 0 ? main_level : other_level,
        static_cast<float>(rng.next_range(20.0, 80.0)),
        label == 1 ? main_level : other_level};
    fill_rect(img, 0, 0, 32, 32, color);
    // A little noise so the task is not literally constant.
    for (int c = 0; c < 3; ++c) {
      for (float& v : img.plane(c)) {
        v += static_cast<float>(rng.next_gaussian() * 6.0);
      }
    }
    img.clamp();
    samples.push_back({std::move(img), label});
  }
  return samples;
}

TEST(SmallCnn, LearnsASeparableTask) {
  SmallCnn model(2, 32, ScaleAlgo::Bilinear, 11);
  const auto train_set = color_blobs_dataset(20, 1);
  const auto test_set = color_blobs_dataset(10, 2);
  EXPECT_LE(model.accuracy(test_set), 0.85);  // untrained: near chance
  TrainConfig config;
  config.epochs = 4;
  config.learning_rate = 0.05f;
  model.train(train_set, config);
  EXPECT_GE(model.accuracy(test_set), 0.95);
}

TEST(SmallCnn, DeterministicGivenSeeds) {
  const auto train_set = color_blobs_dataset(6, 3);
  SmallCnn a(2, 32, ScaleAlgo::Bilinear, 5);
  SmallCnn b(2, 32, ScaleAlgo::Bilinear, 5);
  TrainConfig config;
  config.epochs = 2;
  const double loss_a = a.train(train_set, config);
  const double loss_b = b.train(train_set, config);
  EXPECT_DOUBLE_EQ(loss_a, loss_b);
  const auto pa = a.predict(train_set[0].image);
  const auto pb = b.predict(train_set[0].image);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_FLOAT_EQ(pa[i], pb[i]);
  }
}

TEST(SmallCnn, PreprocessDownscalesLargerInputs) {
  SmallCnn model(2, 32, ScaleAlgo::Bilinear, 9);
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = 128;
  data::Rng rng(10);
  const Image big = generate_scene(params, rng);
  const std::vector<float> probs = model.predict(big);
  ASSERT_EQ(probs.size(), 2u);
  double total = 0.0;
  for (float p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-5);
}

TEST(SmallCnn, ValidatesConfiguration) {
  EXPECT_THROW(SmallCnn(1, 32, ScaleAlgo::Bilinear, 1),
               std::invalid_argument);
  EXPECT_THROW(SmallCnn(2, 8, ScaleAlgo::Bilinear, 1),
               std::invalid_argument);
  SmallCnn model(2, 32, ScaleAlgo::Bilinear, 1);
  EXPECT_THROW(model.train({}, TrainConfig{}), std::invalid_argument);
  std::vector<TrainingSample> bad;
  bad.push_back({Image(40, 40, 3), 7});  // label out of range
  EXPECT_THROW(model.train(bad, TrainConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace decam::ml
