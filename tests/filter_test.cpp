// Tests for rank filters and blurs, including the attack-revealing property
// of the minimum filter the filtering detector builds on.
#include "imaging/filter.h"

#include <gtest/gtest.h>

#include "data/rng.h"

namespace decam {
namespace {

Image make_gradient(int w, int h) {
  Image img(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.at(x, y, 0) = static_cast<float>(x + y * w);
    }
  }
  return img;
}

TEST(RankFilter, MinPicksWindowMinimum) {
  const Image img = make_gradient(4, 4);
  const Image out = min_filter(img, 2);
  // Window anchored top-left: out(x,y) = min over {x,x+1}x{y,y+1}.
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(2, 2, 0), 10.0f);
  // Bottom-right uses edge replication.
  EXPECT_FLOAT_EQ(out.at(3, 3, 0), 15.0f);
}

TEST(RankFilter, MaxPicksWindowMaximum) {
  const Image img = make_gradient(4, 4);
  const Image out = max_filter(img, 2);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(2, 2, 0), 15.0f);
}

TEST(RankFilter, MedianRemovesImpulseNoise) {
  Image img(5, 5, 1, 100.0f);
  img.at(2, 2, 0) = 255.0f;  // single hot pixel
  const Image out = median_filter(img, 3);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      EXPECT_FLOAT_EQ(out.at(x, y, 0), 100.0f);
    }
  }
}

TEST(RankFilter, WindowOfOneIsIdentity) {
  data::Rng rng(3);
  Image img(6, 5, 2);
  for (int c = 0; c < 2; ++c) {
    for (float& v : img.plane(c)) {
      v = static_cast<float>(rng.next_range(0.0, 255.0));
    }
  }
  for (const RankOp op : {RankOp::Min, RankOp::Median, RankOp::Max}) {
    const Image out = rank_filter(img, 1, op);
    for (int c = 0; c < 2; ++c) {
      for (int y = 0; y < 5; ++y) {
        for (int x = 0; x < 6; ++x) {
          EXPECT_FLOAT_EQ(out.at(x, y, c), img.at(x, y, c));
        }
      }
    }
  }
}

TEST(RankFilter, OrderingInvariantMinLeMedianLeMax) {
  data::Rng rng(4);
  Image img(16, 12, 1);
  for (float& v : img.plane(0)) {
    v = static_cast<float>(rng.next_range(0.0, 255.0));
  }
  const Image mn = min_filter(img, 3);
  const Image md = median_filter(img, 3);
  const Image mx = max_filter(img, 3);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      EXPECT_LE(mn.at(x, y, 0), md.at(x, y, 0));
      EXPECT_LE(md.at(x, y, 0), mx.at(x, y, 0));
      EXPECT_LE(mn.at(x, y, 0), img.at(x, y, 0));
      EXPECT_GE(mx.at(x, y, 0), img.at(x, y, 0));
    }
  }
}

TEST(RankFilter, ChannelsFilteredIndependently) {
  Image img(3, 3, 2, 10.0f);
  img.at(1, 1, 1) = 0.0f;  // dark pixel only in channel 1
  const Image out = min_filter(img, 2);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 10.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 0.0f);
}

TEST(RankFilter, RevealsEmbeddedDarkPixelsLikeTheAttack) {
  // Sparse dark pixels on a bright field (the signature of an attack image
  // hiding a dark target) spread to whole blocks under a 2x2 min filter —
  // exactly why the filtering detector works.
  Image img(8, 8, 1, 200.0f);
  for (int y = 0; y < 8; y += 2) {
    for (int x = 0; x < 8; x += 2) img.at(x, y, 0) = 5.0f;
  }
  const Image out = min_filter(img, 2);
  int dark = 0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      if (out.at(x, y, 0) < 10.0f) ++dark;
    }
  }
  // 16 dark pixels became (almost) the whole image.
  EXPECT_GE(dark, 36);
}

TEST(RankFilter, RejectsBadWindow) {
  const Image img(4, 4, 1);
  EXPECT_THROW(rank_filter(img, 0, RankOp::Min), std::invalid_argument);
  EXPECT_THROW(rank_filter(Image(), 2, RankOp::Min), std::invalid_argument);
}

TEST(BoxBlur, AveragesNeighbourhood) {
  Image img(3, 3, 1, 0.0f);
  img.at(1, 1, 0) = 90.0f;
  const Image out = box_blur(img, 3);
  EXPECT_NEAR(out.at(1, 1, 0), 10.0f, 1e-4f);
  EXPECT_NEAR(out.at(0, 0, 0), 10.0f, 1e-4f);  // replicated borders included
}

TEST(BoxBlur, RequiresOddWindow) {
  const Image img(4, 4, 1);
  EXPECT_THROW(box_blur(img, 2), std::invalid_argument);
  EXPECT_THROW(box_blur(img, 0), std::invalid_argument);
}

TEST(GaussianBlur, PreservesConstantAndMass) {
  const Image img(9, 9, 1, 77.0f);
  const Image out = gaussian_blur(img, 1.2);
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 9; ++x) {
      EXPECT_NEAR(out.at(x, y, 0), 77.0f, 1e-3f);
    }
  }
}

TEST(GaussianBlur, SmoothsAnImpulseSymmetrically) {
  Image img(11, 11, 1, 0.0f);
  img.at(5, 5, 0) = 100.0f;
  const Image out = gaussian_blur(img, 1.0);
  EXPECT_GT(out.at(5, 5, 0), out.at(4, 5, 0));
  EXPECT_NEAR(out.at(4, 5, 0), out.at(6, 5, 0), 1e-4f);
  EXPECT_NEAR(out.at(5, 4, 0), out.at(5, 6, 0), 1e-4f);
  EXPECT_NEAR(out.at(4, 5, 0), out.at(5, 4, 0), 1e-4f);
}

TEST(GaussianBlur, RejectsNonPositiveSigma) {
  const Image img(4, 4, 1);
  EXPECT_THROW(gaussian_blur(img, 0.0), std::invalid_argument);
  EXPECT_THROW(gaussian_blur(img, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace decam
