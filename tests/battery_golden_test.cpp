// Golden per-image battery scores, pinned bit-for-bit.
//
// The rows below were captured from the pre-fusion implementation (separate
// mse() / ssim() / psnr() reductions, one pass each). The fused pair-stats
// pass (src/metrics/fused.cpp) promises bit-identical results — not merely
// close ones — because every accumulator preserves the reference
// floating-point addition order. EXPECT_EQ on doubles holds that promise to
// account, at one worker thread and at four (per-image scoring must not
// depend on the pool), and with the ensemble short circuit on and off.
#include <gtest/gtest.h>

#include <vector>

#include "common/simd.h"
#include "core/ensemble.h"
#include "core/filtering_detector.h"
#include "core/pipeline.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "metrics/ssim.h"
#include "reference_kernels.h"
#include "runtime/parallel.h"

namespace decam {
namespace {

struct GoldenRow {
  int width;
  int height;
  double values[8];  // row_header() order
};

// Captured at seed state (commit bf7edb9): 24x24 CNN geometry, Regime A
// scenes 72..96 px, data::Rng(2026), four scenes drawn in sequence.
const GoldenRow kGolden[] = {
    {81, 84,
     {3.1946383228719815, 0.98657275541471501, 43.086586637168679,
      7.1130707427003728, 0.98539203291011079, 39.610232328938572, 1,
      0.97932282480893607}},
    {85, 87,
     {5.217055056991251, 0.98218926725221156, 40.956549408943715,
      13.920351588911426, 0.98044073566642709, 36.694301563982648, 1,
      0.96921296296296278}},
    {94, 94,
     {18.607354943271304, 0.94680278870795875, 35.433957188056347,
      16.668892409838538, 0.97325145632309373, 35.911736174451867, 1,
      0.96012576915983461}},
    {88, 90,
     {1.1383306385411911, 0.99209463613642479, 47.568119356825335,
      1.3106481481481482, 0.99464093665538611, 46.955942426537376, 1,
      0.97696759259259258}},
};

core::Battery golden_battery() {
  core::ExperimentConfig config;
  config.target_width = config.target_height = 24;
  return core::Battery(config);
}

// The exact scene sequence the goldens were captured from. Scenes are drawn
// serially (the Rng stream defines them); scoring may then fan out.
std::vector<Image> golden_scenes() {
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = 72;
  params.max_side = 96;
  data::Rng rng(2026);
  std::vector<Image> scenes;
  for (std::size_t i = 0; i < std::size(kGolden); ++i) {
    scenes.push_back(generate_scene(params, rng));
  }
  return scenes;
}

void expect_rows_match_golden(const std::vector<core::ScoreRow>& rows) {
  ASSERT_EQ(rows.size(), std::size(kGolden));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GoldenRow& golden = kGolden[i];
    EXPECT_EQ(rows[i].scaling_mse, golden.values[0]) << "row " << i;
    EXPECT_EQ(rows[i].scaling_ssim, golden.values[1]) << "row " << i;
    EXPECT_EQ(rows[i].scaling_psnr, golden.values[2]) << "row " << i;
    EXPECT_EQ(rows[i].filtering_mse, golden.values[3]) << "row " << i;
    EXPECT_EQ(rows[i].filtering_ssim, golden.values[4]) << "row " << i;
    EXPECT_EQ(rows[i].filtering_psnr, golden.values[5]) << "row " << i;
    EXPECT_EQ(rows[i].csp, golden.values[6]) << "row " << i;
    EXPECT_EQ(rows[i].histogram, golden.values[7]) << "row " << i;
  }
}

std::vector<core::ScoreRow> score_all(const std::vector<Image>& scenes,
                                      int threads) {
  runtime::set_thread_count(threads);
  const core::Battery battery = golden_battery();
  return runtime::parallel_map(
      scenes, [&](const Image& scene) { return battery.score(scene); });
}

TEST(BatteryGolden, SceneGeometryMatchesCapture) {
  const std::vector<Image> scenes = golden_scenes();
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    EXPECT_EQ(scenes[i].width(), kGolden[i].width) << "scene " << i;
    EXPECT_EQ(scenes[i].height(), kGolden[i].height) << "scene " << i;
  }
}

TEST(BatteryGolden, ScoresBitIdenticalSingleThread) {
  expect_rows_match_golden(score_all(golden_scenes(), 1));
}

TEST(BatteryGolden, ScoresBitIdenticalFourThreads) {
  expect_rows_match_golden(score_all(golden_scenes(), 4));
}

// The ensemble short circuit skips detectors, never rescores them: on the
// members it does evaluate, scores must equal the short-circuit-off run
// bit for bit, and the verdict must match.
TEST(BatteryGolden, ShortCircuitPreservesEvaluatedScores) {
  runtime::set_thread_count(1);
  core::ScalingDetectorConfig scaling_config;
  scaling_config.down_width = scaling_config.down_height = 24;
  std::vector<core::EnsembleDetector::Member> members = {
      {std::make_shared<core::ScalingDetector>(scaling_config),
       core::Calibration{500.0, core::Polarity::HighIsAttack, 0.0}},
      {std::make_shared<core::FilteringDetector>(
           core::FilteringDetectorConfig{}),
       core::Calibration{100.0, core::Polarity::HighIsAttack, 0.0}},
      {std::make_shared<core::SteganalysisDetector>(),
       core::Calibration{2.0, core::Polarity::HighIsAttack, 0.0}},
  };
  core::EnsembleDetector fast{members};
  core::EnsembleDetector full{members};
  full.set_short_circuit(false);
  for (const Image& scene : golden_scenes()) {
    const auto fast_decision = fast.decide(scene);
    const auto full_decision = full.decide(scene);
    EXPECT_EQ(fast_decision.attack, full_decision.attack);
    EXPECT_EQ(full_decision.evaluated, members.size());
    ASSERT_EQ(fast_decision.scores.size(), full_decision.scores.size());
    for (std::size_t i = 0; i < fast_decision.scores.size(); ++i) {
      if (!fast_decision.scores[i].has_value()) continue;  // skipped
      EXPECT_EQ(*fast_decision.scores[i], *full_decision.scores[i])
          << "member " << i;
    }
  }
}

// A median filtering detector on an 8-bit-quantised scene takes the
// histogram median path (the grid every decoded scan image is on); its
// score must equal the naive sorted-window reference bit for bit, under
// native and forced-scalar dispatch alike.
TEST(BatteryGolden, MedianGridPathScoresBitIdentical) {
  runtime::set_thread_count(1);
  core::FilteringDetectorConfig config;
  config.window = 3;
  config.op = RankOp::Median;
  const core::FilteringDetector detector(config);
  const simd::Isa startup = simd::active_isa();
  for (const Image& scene : golden_scenes()) {
    const Image quantised = Image::from_u8(scene.to_u8(), scene.width(),
                                           scene.height(), scene.channels());
    ASSERT_EQ(classify_median_path(quantised), MedianPath::Grid8);
    const double want =
        ssim(quantised, testref::rank_filter(quantised, 3, RankOp::Median));
    EXPECT_EQ(detector.score(quantised), want);
    simd::set_active_isa(simd::Isa::Scalar);
    EXPECT_EQ(detector.score(quantised), want);
    simd::set_active_isa(startup);
  }
}

}  // namespace
}  // namespace decam
