// Round-trip and error-handling tests for the PNM/BMP codecs.
#include "imaging/image_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/rng.h"
#include "data/synth.h"

namespace decam {
namespace {

class ImageIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("decam_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static Image random_image(int w, int h, int channels, std::uint64_t seed) {
    data::Rng rng(seed);
    Image img(w, h, channels);
    for (int c = 0; c < channels; ++c) {
      for (float& v : img.plane(c)) {
        v = static_cast<float>(rng.next_int(0, 255));
      }
    }
    return img;
  }

  std::filesystem::path dir_;
};

TEST_F(ImageIoTest, PpmRoundTripColor) {
  const Image img = random_image(17, 9, 3, 1);
  write_pnm(img, path("a.ppm"));
  const Image back = read_pnm(path("a.ppm"));
  ASSERT_TRUE(back.same_shape(img));
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        EXPECT_FLOAT_EQ(back.at(x, y, c), img.at(x, y, c));
      }
    }
  }
}

TEST_F(ImageIoTest, PgmRoundTripGray) {
  const Image img = random_image(5, 31, 1, 2);
  write_pnm(img, path("a.pgm"));
  const Image back = read_pnm(path("a.pgm"));
  ASSERT_TRUE(back.same_shape(img));
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      EXPECT_FLOAT_EQ(back.at(x, y, 0), img.at(x, y, 0));
    }
  }
}

TEST_F(ImageIoTest, PnmRejectsTwoChannelImages) {
  EXPECT_THROW(write_pnm(Image(2, 2, 2), path("bad.pnm")),
               std::invalid_argument);
}

TEST_F(ImageIoTest, PnmReadRejectsMissingFile) {
  EXPECT_THROW(read_pnm(path("missing.ppm")), IoError);
}

TEST_F(ImageIoTest, PnmReadRejectsBadMagic) {
  std::ofstream out(path("bad.ppm"), std::ios::binary);
  out << "P9\n2 2\n255\nxxxx";
  out.close();
  EXPECT_THROW(read_pnm(path("bad.ppm")), IoError);
}

TEST_F(ImageIoTest, PnmReadRejectsTruncatedPixels) {
  std::ofstream out(path("short.ppm"), std::ios::binary);
  out << "P6\n4 4\n255\nabc";  // 3 bytes instead of 48
  out.close();
  EXPECT_THROW(read_pnm(path("short.ppm")), IoError);
}

TEST_F(ImageIoTest, PnmReadHandlesComments) {
  std::ofstream out(path("comment.pgm"), std::ios::binary);
  out << "P5\n# a comment line\n2 1\n# another\n255\n";
  out.put(static_cast<char>(7));
  out.put(static_cast<char>(200));
  out.close();
  const Image img = read_pnm(path("comment.pgm"));
  EXPECT_EQ(img.width(), 2);
  EXPECT_EQ(img.height(), 1);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 7.0f);
  EXPECT_FLOAT_EQ(img.at(1, 0, 0), 200.0f);
}

TEST_F(ImageIoTest, BmpRoundTripColorWithPadding) {
  // Width 3 forces a non-trivial row padding (9 bytes -> 12).
  const Image img = random_image(3, 5, 3, 3);
  write_bmp(img, path("a.bmp"));
  const Image back = read_bmp(path("a.bmp"));
  ASSERT_TRUE(back.same_shape(img));
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        EXPECT_FLOAT_EQ(back.at(x, y, c), img.at(x, y, c));
      }
    }
  }
}

TEST_F(ImageIoTest, BmpGrayReplicatesToRgb) {
  Image gray(2, 2, 1);
  gray.at(0, 0, 0) = 10.0f;
  gray.at(1, 1, 0) = 200.0f;
  write_bmp(gray, path("g.bmp"));
  const Image back = read_bmp(path("g.bmp"));
  EXPECT_EQ(back.channels(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(back.at(0, 0, c), 10.0f);
    EXPECT_FLOAT_EQ(back.at(1, 1, c), 200.0f);
  }
}

TEST_F(ImageIoTest, BmpReadRejectsGarbage) {
  std::ofstream out(path("junk.bmp"), std::ios::binary);
  out << "not a bitmap at all";
  out.close();
  EXPECT_THROW(read_bmp(path("junk.bmp")), IoError);
}

TEST_F(ImageIoTest, SyntheticSceneSurvivesPnm) {
  data::Rng rng(99);
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = 64;
  params.max_side = 96;
  const Image scene = generate_scene(params, rng);
  write_pnm(scene, path("scene.ppm"));
  const Image back = read_pnm(path("scene.ppm"));
  ASSERT_TRUE(back.same_shape(scene));
  // Scenes are already 8-bit quantised, so the round trip is lossless.
  for (int y = 0; y < scene.height(); y += 7) {
    for (int x = 0; x < scene.width(); x += 7) {
      EXPECT_FLOAT_EQ(back.at(x, y, 0), scene.at(x, y, 0));
    }
  }
}

}  // namespace
}  // namespace decam
