// Parameterised sweeps exercising the detectors across geometries, scaler
// algorithms and attack strengths — the coverage matrix the single-case
// unit tests cannot span.
#include <gtest/gtest.h>

#include <tuple>

#include "attack/scale_attack.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"

namespace decam::core {
namespace {

Image make_scene(int side, std::uint64_t seed) {
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = side;
  params.detail_probability = 0.0;
  params.flat_probability = 0.0;
  data::Rng rng(seed);
  return generate_scene(params, rng);
}

// ----------------------------------------------------------------------
// Scaling detector across (victim scaler, scene side) combinations.

using AlgoSide = std::tuple<ScaleAlgo, int>;

class ScalingSweep : public ::testing::TestWithParam<AlgoSide> {};

TEST_P(ScalingSweep, SeparatesAcrossScalersAndGeometries) {
  const auto [algo, side] = GetParam();
  const Image scene = make_scene(side, 1000 + side);
  data::Rng target_rng(2000 + side);
  const int target_side = side / 4;
  const Image target =
      data::generate_target(target_side, target_side, target_rng);
  attack::AttackOptions options;
  options.algo = algo;
  options.eps = 2.0;
  options.max_sweeps = 200;
  const attack::AttackResult result =
      attack::craft_attack(scene, target, options);

  ScalingDetectorConfig config;
  config.down_width = config.down_height = target_side;
  config.down_algo = config.up_algo = algo;
  config.metric = Metric::MSE;
  const ScalingDetector detector{config};
  EXPECT_GT(detector.score(result.image), 5.0 * detector.score(scene))
      << to_string(algo) << " side " << side;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScalingSweep,
    ::testing::Combine(::testing::Values(ScaleAlgo::Nearest,
                                         ScaleAlgo::Bilinear,
                                         ScaleAlgo::Bicubic),
                       ::testing::Values(96, 144, 200)),
    [](const ::testing::TestParamInfo<AlgoSide>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_side" +
             std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------------------------
// Steganalysis across attack strengths (eps) — the CSP harmonics come
// from the payload structure, not the solver budget, so every strength
// must be caught.

class CspEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(CspEpsSweep, HarmonicsPresentAtEveryAttackStrength) {
  const double eps = GetParam();
  const Image scene = make_scene(128, 31);
  data::Rng target_rng(32);
  const Image target = data::generate_target(32, 32, target_rng);
  attack::AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  options.eps = eps;
  const attack::AttackResult result =
      attack::craft_attack(scene, target, options);
  const SteganalysisDetector detector{};
  EXPECT_GE(detector.count_csp(result.image), 2) << "eps " << eps;
  EXPECT_EQ(detector.count_csp(scene), 1);
}

INSTANTIATE_TEST_SUITE_P(Strengths, CspEpsSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0),
                         [](const auto& info) {
                           return "eps" +
                                  std::to_string(
                                      static_cast<int>(info.param * 10));
                         });

// ----------------------------------------------------------------------
// Filtering detector across window sizes: the 2x2 default must not be a
// knife-edge choice.

class FilterWindowSweep : public ::testing::TestWithParam<int> {};

TEST_P(FilterWindowSweep, MinFilterSeparatesForSmallWindows) {
  const int window = GetParam();
  const Image scene = make_scene(128, 41);
  data::Rng target_rng(42);
  const Image target = data::generate_target(32, 32, target_rng);
  attack::AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  const attack::AttackResult result =
      attack::craft_attack(scene, target, options);
  FilteringDetectorConfig config;
  config.window = window;
  config.metric = Metric::SSIM;
  const FilteringDetector detector{config};
  EXPECT_LT(detector.score(result.image), detector.score(scene) - 0.05)
      << "window " << window;
}

INSTANTIATE_TEST_SUITE_P(Windows, FilterWindowSweep, ::testing::Values(2, 3, 4),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

// ----------------------------------------------------------------------
// Non-square inputs and targets (DAVE-2-style 200x66 geometry).

TEST(NonSquare, DetectorsHandleRectangularGeometry) {
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = 0;  // overridden below
  params.detail_probability = 0.0;
  params.flat_probability = 0.0;
  // Build a rectangular scene manually (generator draws square-ish sizes).
  data::Rng rng(51);
  params.min_side = 260;
  params.max_side = 420;
  const Image scene = generate_scene(params, rng);
  data::Rng target_rng(52);
  const Image target = data::generate_target(100, 33, target_rng);
  attack::AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  const attack::AttackResult result =
      attack::craft_attack(scene, target, options);
  EXPECT_LE(result.report.downscale_linf, options.eps + 2.5);

  ScalingDetectorConfig config;
  config.down_width = 100;
  config.down_height = 33;
  config.metric = Metric::MSE;
  const ScalingDetector detector{config};
  EXPECT_GT(detector.score(result.image), 5.0 * detector.score(scene));
  const SteganalysisDetector steg{};
  EXPECT_GE(steg.count_csp(result.image), 2);
}

}  // namespace
}  // namespace decam::core
