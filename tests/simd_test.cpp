// The runtime SIMD dispatch shim (common/simd.h): ISA naming and
// selection, table swapping, the simd/dispatch gauge, and — on hosts that
// carry a native table — bit-exact parity of every SimdOps entry against
// the normative scalar loops, including the vector-width tails.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/simd.h"
#include "data/rng.h"
#include "imaging/filter.h"
#include "obs/metrics.h"

namespace decam {
namespace {

using simd::Isa;
using simd::SimdOps;

// Restores whatever table was active on entry, so these tests cannot leak a
// forced ISA into the rest of the binary.
struct IsaGuard {
  Isa previous = simd::active_isa();
  ~IsaGuard() { simd::set_active_isa(previous); }
};

TEST(SimdDispatch, IsaNames) {
  EXPECT_STREQ(simd::to_string(Isa::Scalar), "scalar");
  EXPECT_STREQ(simd::to_string(Isa::Avx2), "avx2");
  EXPECT_STREQ(simd::to_string(Isa::Neon), "neon");
}

TEST(SimdDispatch, ActiveTableNameMatchesIsa) {
  EXPECT_STREQ(simd::ops().name, simd::to_string(simd::active_isa()));
}

TEST(SimdDispatch, SetActiveIsaRoundTrips) {
  IsaGuard guard;
  const Isa before = simd::set_active_isa(Isa::Scalar);
  EXPECT_EQ(before, guard.previous);
  EXPECT_EQ(simd::active_isa(), Isa::Scalar);
  EXPECT_STREQ(simd::ops().name, "scalar");
  EXPECT_EQ(simd::set_active_isa(before), Isa::Scalar);
}

TEST(SimdDispatch, UnavailableIsaFallsBackToScalar) {
  IsaGuard guard;
  for (const Isa isa : {Isa::Avx2, Isa::Neon}) {
    simd::set_active_isa(isa);
    const Isa got = simd::active_isa();
    EXPECT_TRUE(got == isa || got == Isa::Scalar)
        << "requested " << simd::to_string(isa) << ", got "
        << simd::to_string(got);
  }
}

TEST(SimdDispatch, GaugeTracksActiveIsa) {
  IsaGuard guard;
  obs::Gauge& gauge = obs::MetricsRegistry::instance().gauge("simd/dispatch");
  simd::set_active_isa(Isa::Scalar);
  EXPECT_EQ(gauge.value(), 0.0);
  simd::set_active_isa(guard.previous);
  EXPECT_EQ(gauge.value(),
            static_cast<double>(static_cast<int>(simd::active_isa())));
}

// --- native-vs-scalar parity of each table entry -------------------------

// Sizes straddling the AVX2 (8 floats / 4 doubles / 16 uint16) and NEON
// (4 / 2 / 8) vector widths, plus scalar-tail-only and empty cases.
const int kSizes[] = {0, 1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 33, 100};

std::vector<float> random_floats(int n, std::uint64_t seed, double lo = -2.0,
                                 double hi = 260.0) {
  data::Rng rng(seed);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (float& v : out) v = static_cast<float>(rng.next_range(lo, hi));
  return out;
}

std::vector<double> random_doubles(int n, std::uint64_t seed) {
  data::Rng rng(seed);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (double& v : out) v = rng.next_range(-1000.0, 1000.0);
  return out;
}

std::vector<std::uint16_t> random_u16(int n, std::uint64_t seed) {
  data::Rng rng(seed);
  std::vector<std::uint16_t> out(static_cast<std::size_t>(n));
  for (std::uint16_t& v : out) {
    v = static_cast<std::uint16_t>(rng.next_range(0.0, 65536.0));
  }
  return out;
}

class SimdParity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::native_available()) {
      GTEST_SKIP() << "no native SIMD table on this host";
    }
    // The tables are process-lifetime statics, so holding pointers to both
    // (regardless of which is active) is fine. The startup table may itself
    // be scalar (DECAM_SIMD=scalar); the native one is resolved explicitly.
    IsaGuard guard;
    simd::set_active_isa(Isa::Scalar);
    scalar_ = &simd::ops();
    for (const Isa isa : {Isa::Avx2, Isa::Neon}) {
      simd::set_active_isa(isa);
      if (simd::active_isa() == isa) {
        native_ = &simd::ops();
        native_isa_ = isa;
        break;
      }
    }
    ASSERT_NE(native_, nullptr);
    ASSERT_STRNE(native_->name, "scalar");
  }

  const SimdOps* scalar_ = nullptr;
  const SimdOps* native_ = nullptr;
  Isa native_isa_ = Isa::Scalar;
};

template <typename T>
void expect_bits_equal(const std::vector<T>& got, const std::vector<T>& want,
                       const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  ASSERT_EQ(0, std::memcmp(got.data(), want.data(), got.size() * sizeof(T)))
      << what;
}

TEST_F(SimdParity, HistOps) {
  for (const int n : kSizes) {
    const auto add = random_u16(n, 10u + n);
    const auto sub = random_u16(n, 20u + n);
    auto a = random_u16(n, 30u + n);
    auto b = a;
    scalar_->hist_merge_u16(a.data(), add.data(), sub.data(), n);
    native_->hist_merge_u16(b.data(), add.data(), sub.data(), n);
    expect_bits_equal(a, b, "hist_merge_u16 n=" + std::to_string(n));
    scalar_->hist_add_u16(a.data(), add.data(), n);
    native_->hist_add_u16(b.data(), add.data(), n);
    expect_bits_equal(a, b, "hist_add_u16 n=" + std::to_string(n));
  }
}

TEST_F(SimdParity, HistRank16) {
  data::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint16_t bins[16];
    std::uint32_t total = 0;
    for (std::uint16_t& b : bins) {
      b = static_cast<std::uint16_t>(
          rng.next_range(0.0, trial % 3 == 0 ? 3.0 : 65536.0));
      total += b;
    }
    const std::uint32_t ranks[] = {0u, total / 2, total ? total - 1 : 0u,
                                   total, total + 5u};
    for (const std::uint32_t rank : ranks) {
      std::uint32_t below_s = 0, below_n = 0;
      const int idx_s = scalar_->hist_rank16_u16(bins, rank, &below_s);
      const int idx_n = native_->hist_rank16_u16(bins, rank, &below_n);
      EXPECT_EQ(idx_s, idx_n) << "trial " << trial << " rank " << rank;
      EXPECT_EQ(below_s, below_n) << "trial " << trial << " rank " << rank;
      // Contract check against a naive scan.
      std::uint32_t cum = 0;
      int want = 16;
      std::uint32_t want_below = total;
      for (int i = 0; i < 16; ++i) {
        if (cum + bins[i] > rank) {
          want = i;
          want_below = cum;
          break;
        }
        cum += bins[i];
      }
      EXPECT_EQ(idx_s, want) << "trial " << trial << " rank " << rank;
      EXPECT_EQ(below_s, want_below) << "trial " << trial << " rank " << rank;
    }
  }
}

TEST_F(SimdParity, WeightedRowOps) {
  const double w = 0.62345817;
  for (const int n : kSizes) {
    const auto in = random_floats(n, 40u + n);
    std::vector<float> fa(static_cast<std::size_t>(n)),
        fb(static_cast<std::size_t>(n));
    scalar_->weighted_assign_f32(fa.data(), in.data(), w, n);
    native_->weighted_assign_f32(fb.data(), in.data(), w, n);
    expect_bits_equal(fa, fb, "weighted_assign_f32 n=" + std::to_string(n));

    std::vector<double> da(static_cast<std::size_t>(n)),
        db(static_cast<std::size_t>(n));
    scalar_->weighted_init_f64(da.data(), in.data(), w, n);
    native_->weighted_init_f64(db.data(), in.data(), w, n);
    expect_bits_equal(da, db, "weighted_init_f64 n=" + std::to_string(n));

    scalar_->weighted_add_f64(da.data(), in.data(), 1.7 * w, n);
    native_->weighted_add_f64(db.data(), in.data(), 1.7 * w, n);
    expect_bits_equal(da, db, "weighted_add_f64 n=" + std::to_string(n));

    scalar_->weighted_finish_f32(fa.data(), da.data(), in.data(), w, n);
    native_->weighted_finish_f32(fb.data(), db.data(), in.data(), w, n);
    expect_bits_equal(fa, fb, "weighted_finish_f32 n=" + std::to_string(n));
  }
}

TEST_F(SimdParity, ConvolveAndReduceOps) {
  for (const int n : kSizes) {
    const auto in = random_floats(n, 50u + n);
    const auto in2 = random_floats(n, 60u + n);
    auto da = random_doubles(n, 70u + n);
    auto db = da;
    scalar_->tap_accumulate_f32(da.data(), in.data(), 0.125f, n);
    native_->tap_accumulate_f32(db.data(), in.data(), 0.125f, n);
    expect_bits_equal(da, db, "tap_accumulate_f32 n=" + std::to_string(n));

    std::vector<float> fa(static_cast<std::size_t>(n)),
        fb(static_cast<std::size_t>(n));
    scalar_->narrow_f64_f32(fa.data(), da.data(), n);
    native_->narrow_f64_f32(fb.data(), db.data(), n);
    expect_bits_equal(fa, fb, "narrow_f64_f32 n=" + std::to_string(n));

    const auto x = random_doubles(n, 80u + n);
    scalar_->daxpy_f64(da.data(), x.data(), 0.333, n);
    native_->daxpy_f64(db.data(), x.data(), 0.333, n);
    expect_bits_equal(da, db, "daxpy_f64 n=" + std::to_string(n));

    std::vector<double> sa(static_cast<std::size_t>(n)),
        sb(static_cast<std::size_t>(n));
    scalar_->sqdiff_f64(sa.data(), in.data(), in2.data(), n);
    native_->sqdiff_f64(sb.data(), in.data(), in2.data(), n);
    expect_bits_equal(sa, sb, "sqdiff_f64 n=" + std::to_string(n));
  }
}

TEST_F(SimdParity, PairStatsTaps) {
  const std::vector<double> win = {0.05, 0.09, 0.12, 0.15, 0.18,
                                   0.15, 0.12, 0.09, 0.05};
  const int taps = static_cast<int>(win.size());
  for (const int n : kSizes) {
    const auto a = random_floats(n + taps - 1, 90u + n, 0.0, 255.0);
    const auto b = random_floats(n + taps - 1, 91u + n, 0.0, 255.0);
    std::vector<double> pa(static_cast<std::size_t>(5 * n), 0.0);
    std::vector<double> pb(static_cast<std::size_t>(5 * n), 0.0);
    const auto run = [&](const SimdOps* ops, std::vector<double>& p) {
      double* base = p.data();
      ops->pair_stats_taps(base, base + n, base + 2 * n, base + 3 * n,
                           base + 4 * n, a.data(), b.data(), win.data(), taps,
                           n);
    };
    run(scalar_, pa);
    run(native_, pb);
    expect_bits_equal(pa, pb, "pair_stats_taps n=" + std::to_string(n));
  }
}

TEST_F(SimdParity, MedianIdenticalUnderForcedIsa) {
  data::Rng rng(314);
  Image img(33, 21, 2);
  for (int c = 0; c < 2; ++c) {
    for (float& v : img.plane(c)) {
      v = static_cast<float>(static_cast<int>(rng.next_range(0.0, 256.0)));
    }
  }
  ASSERT_EQ(classify_median_path(img), MedianPath::Grid8);
  IsaGuard guard;
  for (const int k : {2, 3, 9}) {
    simd::set_active_isa(native_isa_);
    const Image native = rank_filter(img, k, RankOp::Median);
    simd::set_active_isa(Isa::Scalar);
    const Image scalar = rank_filter(img, k, RankOp::Median);
    for (int c = 0; c < 2; ++c) {
      for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
          ASSERT_EQ(native.at(x, y, c), scalar.at(x, y, c))
              << "k=" << k << " (" << x << ", " << y << ", " << c << ")";
        }
      }
    }
  }
}

TEST(MedianPathCounters, RecordRouting) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  obs::Counter& grid8 = registry.counter("rank_median/grid8");
  obs::Counter& exact = registry.counter("rank_median/exact");
  Image img(8, 8, 1);
  for (float& v : img.plane(0)) v = 3.0f;
  const std::uint64_t grid8_before = grid8.value();
  (void)rank_filter(img, 3, RankOp::Median);
  EXPECT_EQ(grid8.value(), grid8_before + 1);
  img.plane(0)[0] = 0.7f;
  const std::uint64_t exact_before = exact.value();
  (void)rank_filter(img, 3, RankOp::Median);
  EXPECT_EQ(exact.value(), exact_before + 1);
}

}  // namespace
}  // namespace decam
