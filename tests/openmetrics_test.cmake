# CTest driver for the OpenMetrics exposition end to end: produce images
# with quickstart, scan them with `decamctl scan --metrics-out`, then run
# the strict grammar validator (openmetrics_check) over the real output.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

get_filename_component(EXAMPLES_DIR ${DECAMCTL} DIRECTORY)

# 1. Produce input images (quickstart writes scene/target/attack PPMs).
execute_process(COMMAND ${EXAMPLES_DIR}/quickstart 3
                WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart failed: ${rc}")
endif()

# 2. Scan with telemetry sinks armed. Exit 3 = attack flagged (expected for
# the quickstart attack image); anything else is a scan failure.
set(METRICS ${WORK_DIR}/metrics.txt)
execute_process(COMMAND ${DECAMCTL} scan
                        ${WORK_DIR}/quickstart_out/attack.ppm
                        --width 112 --height 112
                        --metrics-out ${METRICS}
                        --stacks-out ${WORK_DIR}/stacks.txt
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "decamctl scan should flag the attack, got: ${rc}")
endif()
if(NOT EXISTS ${METRICS})
  message(FATAL_ERROR "scan did not write ${METRICS}")
endif()

# 3. The exposition must pass the strict line-grammar validator.
execute_process(COMMAND ${CHECKER} ${METRICS} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "openmetrics_check rejected ${METRICS}: ${rc}")
endif()

# 4. The collapsed-stack profile export rides the same flag set; it must
# exist and every line must be "path;to;stage <self_us>".
if(NOT EXISTS ${WORK_DIR}/stacks.txt)
  message(FATAL_ERROR "scan did not write stacks.txt")
endif()
file(STRINGS ${WORK_DIR}/stacks.txt stack_lines)
list(LENGTH stack_lines stack_count)
if(stack_count EQUAL 0)
  message(FATAL_ERROR "stacks.txt is empty")
endif()
foreach(line IN LISTS stack_lines)
  if(NOT line MATCHES "^[^ ]+ [0-9]+$")
    message(FATAL_ERROR "bad collapsed-stack line: ${line}")
  endif()
endforeach()

# 5. A deliberately corrupted exposition must be rejected (the validator is
# only trustworthy if it can fail).
file(READ ${METRICS} metrics_text)
string(REPLACE "# EOF" "" broken_text "${metrics_text}")
file(WRITE ${WORK_DIR}/broken.txt "${broken_text}")
execute_process(COMMAND ${CHECKER} ${WORK_DIR}/broken.txt
                RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "openmetrics_check accepted a truncated exposition")
endif()

message(STATUS "openmetrics end-to-end OK")
