// Tests for calibration profile persistence.
#include "core/calibration_io.h"

#include "common/error.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace decam::core {
namespace {

class CalibrationIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("decam_calib_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path path(const std::string& name) const {
    return dir_ / name;
  }
  std::filesystem::path dir_;
};

TEST_F(CalibrationIoTest, RoundTripsExactValues) {
  CalibrationProfile profile;
  profile["scaling/mse"] = {1714.9612345678901, Polarity::HighIsAttack, 0.999};
  profile["scaling/ssim"] = {0.6100000000000001, Polarity::LowIsAttack, 0.99};
  profile["steganalysis/csp"] = {2.0, Polarity::HighIsAttack, 0.0};
  save_calibrations(profile, path("p.calib"));
  const CalibrationProfile loaded = load_calibrations(path("p.calib"));
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.at("scaling/mse").threshold, 1714.9612345678901);
  EXPECT_EQ(loaded.at("scaling/mse").polarity, Polarity::HighIsAttack);
  EXPECT_DOUBLE_EQ(loaded.at("scaling/mse").train_accuracy, 0.999);
  EXPECT_DOUBLE_EQ(loaded.at("scaling/ssim").threshold, 0.6100000000000001);
  EXPECT_EQ(loaded.at("scaling/ssim").polarity, Polarity::LowIsAttack);
  EXPECT_DOUBLE_EQ(loaded.at("steganalysis/csp").threshold, 2.0);
}

TEST_F(CalibrationIoTest, EmptyProfileRoundTrips) {
  save_calibrations({}, path("empty.calib"));
  EXPECT_TRUE(load_calibrations(path("empty.calib")).empty());
}

TEST_F(CalibrationIoTest, MissingFileThrows) {
  EXPECT_THROW(load_calibrations(path("nope.calib")), decam::IoError);
}

TEST_F(CalibrationIoTest, WrongHeaderThrows) {
  std::ofstream out(path("bad.calib"));
  out << "something else\nscaling/mse high 1 0\n";
  out.close();
  EXPECT_THROW(load_calibrations(path("bad.calib")), decam::IoError);
}

TEST_F(CalibrationIoTest, MalformedLineThrows) {
  std::ofstream out(path("bad2.calib"));
  out << "decam-calibration v1\nscaling/mse sideways 1 0\n";
  out.close();
  EXPECT_THROW(load_calibrations(path("bad2.calib")), decam::IoError);
}

TEST_F(CalibrationIoTest, DuplicateNameThrows) {
  std::ofstream out(path("dup.calib"));
  out << "decam-calibration v1\na high 1 0\na low 2 0\n";
  out.close();
  EXPECT_THROW(load_calibrations(path("dup.calib")), decam::IoError);
}

TEST_F(CalibrationIoTest, WhitespaceNameRejectedOnSave) {
  CalibrationProfile profile;
  profile["has space"] = {1.0, Polarity::HighIsAttack, 0.0};
  EXPECT_THROW(save_calibrations(profile, path("x.calib")),
               std::invalid_argument);
}

TEST_F(CalibrationIoTest, BlankLinesTolerated) {
  std::ofstream out(path("blank.calib"));
  out << "decam-calibration v1\n\na high 1 0.5\n\n";
  out.close();
  const CalibrationProfile loaded = load_calibrations(path("blank.calib"));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.at("a").train_accuracy, 0.5);
}

}  // namespace
}  // namespace decam::core
