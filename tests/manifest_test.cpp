// Per-run manifest sidecars (bench/bench_common.h, schema
// `decam-run-manifest-v1`): serialisation, schema validation, tamper
// rejection, and the default path convention.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "obs/metrics.h"

namespace decam::bench::manifest {
namespace {

RunManifest sample_manifest() {
  RunManifest m;
  m.binary = "manifest_test";
  m.argv = {"--quick", "--out", "BENCH_x.json"};
  m.quick = true;
  m.seed = 42;
  m.image_width = 96;
  m.image_height = 96;
  m.threads = 2;
  return m;
}

TEST(ManifestTest, SerialisedManifestValidates) {
  const std::string doc = manifest_json(sample_manifest());
  EXPECT_EQ(validate_manifest_json(doc), "") << doc;
}

TEST(ManifestTest, DocumentCarriesRunAndBuildFields) {
  const std::string doc = manifest_json(sample_manifest());
  EXPECT_NE(doc.find("\"schema\": \"decam-run-manifest-v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"binary\": \"manifest_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(doc.find("\"quick\": true"), std::string::npos);
  EXPECT_NE(doc.find("\"type\": \""), std::string::npos);
  EXPECT_NE(doc.find("\"sanitize\": \""), std::string::npos);
}

TEST(ManifestTest, MetricSnapshotIsEmbedded) {
  obs::MetricsRegistry::instance().counter("manifest_test/hits").add(9);
  obs::MetricsRegistry::instance().histogram("manifest_test/lat").record(1.5);
  const std::string doc = manifest_json(sample_manifest());
  EXPECT_EQ(validate_manifest_json(doc), "") << doc;
  EXPECT_NE(doc.find("\"name\": \"manifest_test/hits\", \"value\": 9"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"name\": \"manifest_test/lat\""), std::string::npos)
      << doc;
}

TEST(ManifestTest, ZeroThreadsResolvesToRuntimeCount) {
  RunManifest m = sample_manifest();
  m.threads = 0;  // "resolve at serialisation time"
  const std::string doc = manifest_json(m);
  EXPECT_EQ(validate_manifest_json(doc), "") << doc;
  EXPECT_EQ(doc.find("\"threads\": 0"), std::string::npos) << doc;
}

TEST(ManifestTest, ArgvStringsAreEscaped) {
  RunManifest m = sample_manifest();
  m.argv = {"--filter", "a\"b\\c"};
  const std::string doc = manifest_json(m);
  EXPECT_EQ(validate_manifest_json(doc), "") << doc;
  EXPECT_NE(doc.find("a\\\"b\\\\c"), std::string::npos) << doc;
}

TEST(ManifestTest, TamperedDocumentsAreRejected) {
  EXPECT_NE(validate_manifest_json("not json"), "");
  EXPECT_NE(validate_manifest_json("[]"), "");
  EXPECT_NE(validate_manifest_json(
                "{\"schema\": \"decam-run-manifest-v2\"}"),
            "");
  // Structurally valid JSON missing required sections.
  const std::string no_build =
      "{\"schema\": \"decam-run-manifest-v1\", \"binary\": \"x\", "
      "\"argv\": []}";
  EXPECT_NE(validate_manifest_json(no_build), "");
  // threads must be a positive number.
  std::string doc = manifest_json(sample_manifest());
  const std::string needle = "\"threads\": 2";
  doc.replace(doc.find(needle), needle.size(), "\"threads\": 0");
  EXPECT_NE(validate_manifest_json(doc), "");
}

TEST(ManifestTest, DefaultPathUsesBinaryBasename) {
  EXPECT_EQ(default_manifest_path("/a/b/kernel_bench"),
            "MANIFEST_kernel_bench.json");
  EXPECT_EQ(default_manifest_path("table7"), "MANIFEST_table7.json");
}

TEST(ManifestTest, WriteManifestRoundTripsThroughDisk) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "decam_manifest_test.json";
  ASSERT_TRUE(write_manifest(sample_manifest(), path.string()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(validate_manifest_json(content.str()), "");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace decam::bench::manifest
