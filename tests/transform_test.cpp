// Tests for crop / flips / rotations, including the group properties
// (double flip = identity, 4 quarter turns = identity) and the
// attack-fragility property the extension bench builds on.
#include "imaging/transform.h"

#include <gtest/gtest.h>

#include "attack/scale_attack.h"
#include "data/rng.h"
#include "data/synth.h"
#include "metrics/mse.h"

namespace decam {
namespace {

Image numbered(int w, int h, int channels = 1) {
  Image img(w, h, channels);
  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        img.at(x, y, c) = static_cast<float>(c * 1000 + y * w + x);
      }
    }
  }
  return img;
}

TEST(Crop, ExtractsExactRegion) {
  const Image img = numbered(6, 5, 2);
  const Image region = crop(img, 2, 1, 3, 2);
  EXPECT_EQ(region.width(), 3);
  EXPECT_EQ(region.height(), 2);
  EXPECT_EQ(region.channels(), 2);
  EXPECT_FLOAT_EQ(region.at(0, 0, 0), img.at(2, 1, 0));
  EXPECT_FLOAT_EQ(region.at(2, 1, 1), img.at(4, 2, 1));
}

TEST(Crop, FullImageCropIsIdentity) {
  const Image img = numbered(4, 3);
  const Image copy = crop(img, 0, 0, 4, 3);
  EXPECT_DOUBLE_EQ(mse(img, copy), 0.0);
}

TEST(Crop, RejectsOutOfBoundsRectangles) {
  const Image img = numbered(4, 4);
  EXPECT_THROW(crop(img, -1, 0, 2, 2), std::invalid_argument);
  EXPECT_THROW(crop(img, 3, 0, 2, 2), std::invalid_argument);
  EXPECT_THROW(crop(img, 0, 0, 0, 2), std::invalid_argument);
  EXPECT_THROW(crop(img, 0, 3, 2, 2), std::invalid_argument);
  EXPECT_THROW(crop(Image(), 0, 0, 1, 1), std::invalid_argument);
}

TEST(Flip, HorizontalSwapsColumns) {
  const Image img = numbered(3, 2);
  const Image flipped = flip_horizontal(img);
  EXPECT_FLOAT_EQ(flipped.at(0, 0, 0), img.at(2, 0, 0));
  EXPECT_FLOAT_EQ(flipped.at(2, 1, 0), img.at(0, 1, 0));
  EXPECT_FLOAT_EQ(flipped.at(1, 0, 0), img.at(1, 0, 0));  // middle fixed
}

TEST(Flip, VerticalSwapsRows) {
  const Image img = numbered(2, 3);
  const Image flipped = flip_vertical(img);
  EXPECT_FLOAT_EQ(flipped.at(0, 0, 0), img.at(0, 2, 0));
  EXPECT_FLOAT_EQ(flipped.at(1, 2, 0), img.at(1, 0, 0));
}

TEST(Flip, DoubleFlipIsIdentity) {
  data::Rng rng(1);
  Image img(7, 5, 3);
  for (int c = 0; c < 3; ++c) {
    for (float& v : img.plane(c)) {
      v = static_cast<float>(rng.next_range(0.0, 255.0));
    }
  }
  EXPECT_DOUBLE_EQ(mse(flip_horizontal(flip_horizontal(img)), img), 0.0);
  EXPECT_DOUBLE_EQ(mse(flip_vertical(flip_vertical(img)), img), 0.0);
}

TEST(Rotate, QuarterTurnGeometry) {
  const Image img = numbered(4, 2);
  const Image cw = rotate90_cw(img);
  EXPECT_EQ(cw.width(), 2);
  EXPECT_EQ(cw.height(), 4);
  // Top-left goes to top-right under CW rotation.
  EXPECT_FLOAT_EQ(cw.at(1, 0, 0), img.at(0, 0, 0));
  const Image ccw = rotate90_ccw(img);
  EXPECT_EQ(ccw.width(), 2);
  EXPECT_EQ(ccw.height(), 4);
  EXPECT_FLOAT_EQ(ccw.at(0, 3, 0), img.at(0, 0, 0));
}

TEST(Rotate, CwThenCcwIsIdentity) {
  const Image img = numbered(5, 3, 2);
  EXPECT_DOUBLE_EQ(mse(rotate90_ccw(rotate90_cw(img)), img), 0.0);
}

TEST(Rotate, FourQuarterTurnsAreIdentity) {
  const Image img = numbered(4, 6);
  const Image once = rotate90_cw(img);
  const Image twice = rotate90_cw(once);
  const Image thrice = rotate90_cw(twice);
  const Image full = rotate90_cw(thrice);
  EXPECT_DOUBLE_EQ(mse(full, img), 0.0);
}

TEST(Transforms, OnePixelCropDestroysTheAttackPayload) {
  // The fragility the extension bench measures: the attack's payload lives
  // at exact grid positions; shifting the grid by one pixel leaves the
  // scaler reading mostly-original pixels.
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = 97;  // 1 px to spare after the crop
  data::Rng scene_rng(2);
  data::Rng target_rng(3);
  const Image scene = generate_scene(params, scene_rng);
  const Image target = data::generate_target(24, 24, target_rng);
  attack::AttackOptions options;
  options.algo = ScaleAlgo::Nearest;
  const attack::AttackResult result =
      attack::craft_attack(scene, target, options);
  const Image uncropped_view = resize(result.image, 24, 24, options.algo);
  const Image cropped = crop(result.image, 1, 1, 96, 96);
  const Image cropped_view = resize(cropped, 24, 24, options.algo);
  EXPECT_LT(mse(uncropped_view, target), 2.0);     // attack works
  EXPECT_GT(mse(cropped_view, target), 500.0);     // ...until the 1px crop
}

}  // namespace
}  // namespace decam
