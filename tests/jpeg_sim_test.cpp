// Tests for the JPEG recompression simulator: quantisation-table scaling,
// quality monotonicity, DCT round-trip fidelity at high quality, and the
// attack-destruction property the post-processing bench measures.
#include "imaging/jpeg_sim.h"

#include <gtest/gtest.h>

#include "attack/scale_attack.h"
#include "data/rng.h"
#include "data/synth.h"
#include "metrics/mse.h"

namespace decam {
namespace {

Image noise_image(int w, int h, std::uint64_t seed) {
  data::Rng rng(seed);
  Image img(w, h, 1);
  for (float& v : img.plane(0)) {
    v = static_cast<float>(rng.next_int(0, 255));
  }
  return img;
}

TEST(JpegQuantTable, Quality50IsTheBaseTable) {
  const auto table = jpeg_quant_table(50);
  EXPECT_EQ(table[0], 16);
  EXPECT_EQ(table[63], 99);
}

TEST(JpegQuantTable, HigherQualityMeansFinerQuantisation) {
  const auto q90 = jpeg_quant_table(90);
  const auto q30 = jpeg_quant_table(30);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_LE(q90[i], q30[i]) << "coefficient " << i;
    EXPECT_GE(q90[i], 1);
    EXPECT_LE(q30[i], 255);
  }
}

TEST(JpegQuantTable, Quality100IsNearLossless) {
  const auto table = jpeg_quant_table(100);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(table[i], 1);
}

TEST(JpegQuantTable, RejectsOutOfRangeQuality) {
  EXPECT_THROW(jpeg_quant_table(0), std::invalid_argument);
  EXPECT_THROW(jpeg_quant_table(101), std::invalid_argument);
}

TEST(JpegRoundtrip, Quality100AlmostIdentity) {
  const Image img = noise_image(32, 24, 1);
  const Image out = jpeg_roundtrip(img, 100);
  ASSERT_TRUE(out.same_shape(img));
  // Unit quantisation: error bounded by DCT rounding (~0.5 per coeff).
  EXPECT_LT(mse(img, out), 1.0);
}

TEST(JpegRoundtrip, ErrorGrowsAsQualityDrops) {
  data::Rng rng(2);
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = 96;
  const Image img = generate_scene(params, rng);
  const double e90 = mse(img, jpeg_roundtrip(img, 90));
  const double e50 = mse(img, jpeg_roundtrip(img, 50));
  const double e10 = mse(img, jpeg_roundtrip(img, 10));
  EXPECT_LT(e90, e50);
  EXPECT_LT(e50, e10);
  EXPECT_GT(e10, 10.0);  // visibly lossy
}

TEST(JpegRoundtrip, ConstantBlocksSurviveExactly) {
  const Image img(16, 16, 3, 128.0f);
  const Image out = jpeg_roundtrip(img, 50);
  EXPECT_LT(mse(img, out), 1e-6);
}

TEST(JpegRoundtrip, NonMultipleOf8GeometryHandled) {
  const Image img = noise_image(37, 29, 3);
  const Image out = jpeg_roundtrip(img, 75);
  ASSERT_TRUE(out.same_shape(img));
  EXPECT_GE(out.min_value(), 0.0f);
  EXPECT_LE(out.max_value(), 255.0f);
}

TEST(JpegRoundtrip, SmoothGradientBarelyChanges) {
  Image img(64, 64, 1);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      img.at(x, y, 0) = static_cast<float>(x * 2 + y);
    }
  }
  EXPECT_LT(mse(img, jpeg_roundtrip(img, 75)), 12.0);
}

TEST(JpegRoundtrip, AttackPayloadDegradesGracefullyWithQuality) {
  // The deployment finding behind bench/extension_postprocessing: the
  // payload is NOT brittle to recompression — it degrades like ordinary
  // image content, surviving moderate quality and dissolving only under
  // aggressive compression. Recompression alone is not a defence.
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = 128;
  data::Rng scene_rng(3);
  data::Rng target_rng(4);
  const Image scene = generate_scene(params, scene_rng);
  const Image target = data::generate_target(32, 32, target_rng);
  attack::AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  const attack::AttackResult result =
      attack::craft_attack(scene, target, options);
  auto payload_error = [&](int quality) {
    const Image view =
        resize(jpeg_roundtrip(result.image, quality), 32, 32, options.algo);
    return mse(view, target);
  };
  const double e75 = payload_error(75);
  const double e20 = payload_error(20);
  const double e5 = payload_error(5);
  EXPECT_LT(e75, 20.0);   // survives typical upload recompression
  EXPECT_GT(e20, e75);    // monotone degradation...
  EXPECT_GT(e5, 200.0);   // ...until aggressive compression dissolves it
}

}  // namespace
}  // namespace decam
