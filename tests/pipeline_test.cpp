// Tests for the experiment pipeline: battery scoring, column projection,
// cache round trip and cache invalidation. Uses tiny sizes to stay fast.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "data/rng.h"
#include "data/synth.h"

namespace decam::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.n_train = 3;
  config.n_eval = 3;
  config.target_width = config.target_height = 24;
  config.min_side = 96;
  config.max_side = 120;
  config.seed = 7;
  return config;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("decam_pipeline_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(PipelineTest, ProducesRequestedCounts) {
  const ExperimentConfig config = tiny_config();
  const ExperimentData data = run_experiment(config, {}, /*verbose=*/false);
  EXPECT_EQ(data.train_benign.size(), 3u);
  EXPECT_EQ(data.train_attack.size(), 3u);
  EXPECT_EQ(data.eval_benign.size(), 3u);
  EXPECT_EQ(data.eval_attack_white.size(), 3u);
  EXPECT_EQ(data.eval_attack_black.size(), 3u);
  EXPECT_EQ(data.attack_quality.size(), 3u);
}

TEST_F(PipelineTest, ScoresSeparateClassesEvenAtTinyScale) {
  const ExperimentData data =
      run_experiment(tiny_config(), {}, /*verbose=*/false);
  for (std::size_t i = 0; i < data.train_benign.size(); ++i) {
    EXPECT_GT(data.train_attack[i].scaling_mse,
              data.train_benign[i].scaling_mse);
    EXPECT_LT(data.train_attack[i].scaling_ssim,
              data.train_benign[i].scaling_ssim);
  }
}

TEST_F(PipelineTest, AttackQualityIsAcceptable) {
  const ExperimentData data =
      run_experiment(tiny_config(), {}, /*verbose=*/false);
  for (const AttackQualityRow& row : data.attack_quality) {
    EXPECT_LE(row.downscale_linf, tiny_config().attack_eps + 2.5);
    // Mean local SSIM at ratio ~4 lands well below perceptual intuition;
    // the strong separation claims live in the scale_attack tests.
    EXPECT_GT(row.source_ssim, 0.04);
  }
}

TEST_F(PipelineTest, CacheRoundTripsExactly) {
  const ExperimentConfig config = tiny_config();
  const ExperimentData data = run_experiment(config, dir_, /*verbose=*/false);
  // Second call must hit the cache and return identical values.
  const ExperimentData cached =
      run_experiment(config, dir_, /*verbose=*/false);
  ASSERT_EQ(cached.train_benign.size(), data.train_benign.size());
  for (std::size_t i = 0; i < data.train_benign.size(); ++i) {
    EXPECT_DOUBLE_EQ(cached.train_benign[i].scaling_mse,
                     data.train_benign[i].scaling_mse);
    EXPECT_DOUBLE_EQ(cached.train_benign[i].csp, data.train_benign[i].csp);
  }
  ASSERT_EQ(cached.attack_quality.size(), data.attack_quality.size());
  EXPECT_DOUBLE_EQ(cached.attack_quality[0].source_ssim,
                   data.attack_quality[0].source_ssim);
}

TEST_F(PipelineTest, CacheKeyedByConfig) {
  ExperimentConfig config = tiny_config();
  const ExperimentData data = run_experiment(config, dir_, /*verbose=*/false);
  (void)data;
  // Different seed -> cache miss -> new data (detectably different scores).
  config.seed = 8;
  const ExperimentData other =
      run_experiment(config, dir_, /*verbose=*/false);
  bool any_difference = false;
  for (std::size_t i = 0; i < other.train_benign.size(); ++i) {
    if (other.train_benign[i].scaling_mse !=
        data.train_benign[i].scaling_mse) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(PipelineTest, LoadRejectsMismatchedConfig) {
  const ExperimentConfig config = tiny_config();
  const ExperimentData data = run_experiment(config, {}, /*verbose=*/false);
  const auto file = dir_ / "exp.tsv";
  save_experiment(data, file);
  ExperimentConfig other = config;
  other.n_train = 4;
  EXPECT_FALSE(load_experiment(other, file).has_value());
  EXPECT_TRUE(load_experiment(config, file).has_value());
  EXPECT_FALSE(load_experiment(config, dir_ / "missing.tsv").has_value());
}

TEST_F(PipelineTest, ColumnProjectionExtractsMember) {
  ExperimentData data;
  ScoreRow row1;
  row1.scaling_mse = 5.0;
  ScoreRow row2;
  row2.scaling_mse = 7.0;
  data.train_benign = {row1, row2};
  const auto column =
      ExperimentData::column(data.train_benign, &ScoreRow::scaling_mse);
  ASSERT_EQ(column.size(), 2u);
  EXPECT_DOUBLE_EQ(column[0], 5.0);
  EXPECT_DOUBLE_EQ(column[1], 7.0);
}

TEST_F(PipelineTest, ConfigCacheKeyChangesWithEveryField) {
  const ExperimentConfig base = tiny_config();
  ExperimentConfig variant = base;
  EXPECT_EQ(base.cache_key(), variant.cache_key());
  variant.n_eval = 99;
  EXPECT_NE(base.cache_key(), variant.cache_key());
  variant = base;
  variant.white_box_algo = ScaleAlgo::Bicubic;
  EXPECT_NE(base.cache_key(), variant.cache_key());
  variant = base;
  variant.attack_eps = 3.0;
  EXPECT_NE(base.cache_key(), variant.cache_key());
}

TEST_F(PipelineTest, BatteryPsnrAndHistogramPopulated) {
  const ExperimentConfig config = tiny_config();
  const Battery battery(config);
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = config.min_side;
  params.max_side = config.max_side;
  data::Rng rng(1);
  const Image scene = generate_scene(params, rng);
  const ScoreRow row = battery.score(scene);
  EXPECT_GT(row.scaling_psnr, 0.0);
  EXPECT_GT(row.filtering_psnr, 0.0);
  EXPECT_GT(row.histogram, 0.0);
  EXPECT_LE(row.histogram, 1.0);
  EXPECT_GE(row.csp, 1.0);
}

TEST_F(PipelineTest, RejectsNonPositiveCounts) {
  ExperimentConfig config = tiny_config();
  config.n_train = 0;
  EXPECT_THROW(run_experiment(config, {}, false), std::invalid_argument);
}

}  // namespace
}  // namespace decam::core
