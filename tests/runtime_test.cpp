// Tests for the runtime layer (src/runtime): pool lifecycle, parallel_for
// index coverage under contention, exception propagation, serial
// degradation (size-1 pools and DECAM_THREADS=1), nested parallelism, and
// parallel_map ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace decam::runtime {
namespace {

// Restores DECAM_THREADS and the global pool override after a test that
// touches either, so test order stays irrelevant.
class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* env = std::getenv("DECAM_THREADS");
    saved_env_ = env != nullptr ? std::optional<std::string>(env)
                                : std::nullopt;
  }
  void TearDown() override {
    if (saved_env_) {
      ::setenv("DECAM_THREADS", saved_env_->c_str(), 1);
    } else {
      ::unsetenv("DECAM_THREADS");
    }
    set_thread_count(0);
  }

 private:
  std::optional<std::string> saved_env_;
};

TEST_F(RuntimeTest, PoolStartsAndJoinsCleanly) {
  for (const int size : {1, 2, 4, 8}) {
    ThreadPool pool(size);
    EXPECT_EQ(pool.size(), size);
  }
  ThreadPool clamped_zero(0);
  EXPECT_EQ(clamped_zero.size(), 1);
  ThreadPool clamped_negative(-3);
  EXPECT_EQ(clamped_negative.size(), 1);
}

TEST_F(RuntimeTest, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool: workers drain the queue, then join
  EXPECT_EQ(ran.load(), 64);
}

TEST_F(RuntimeTest, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(pool, 0, kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(RuntimeTest, ParallelForHonoursRangeOffsets) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(200);
  parallel_for(pool, 100, 200, [&](std::size_t i) {
    ASSERT_GE(i, 100u);
    ASSERT_LT(i, 200u);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (std::size_t i = 100; i < 200; ++i) EXPECT_EQ(hits[i].load(), 1);
  // Empty and inverted ranges are no-ops.
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
  parallel_for(pool, 7, 3, [](std::size_t) { FAIL(); });
}

TEST_F(RuntimeTest, WorkerExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 1000,
                   [](std::size_t i) {
                     if (i == 137) throw std::runtime_error("lane failed");
                   }),
      std::runtime_error);
  // The pool survives a failed region and is immediately reusable.
  std::atomic<int> count{0};
  parallel_for(pool, 0, 100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST_F(RuntimeTest, SizeOnePoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;  // no synchronisation: the loop is serial
  parallel_for(pool, 0, 64,
               [&](std::size_t) { ids.insert(std::this_thread::get_id()); });
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

TEST_F(RuntimeTest, EnvThreadCountParsing) {
  ::setenv("DECAM_THREADS", "3", 1);
  EXPECT_EQ(env_thread_count(), 3);
  EXPECT_EQ(default_thread_count(), 3);
  ::setenv("DECAM_THREADS", "0", 1);
  EXPECT_EQ(env_thread_count(), 0);
  ::setenv("DECAM_THREADS", "-2", 1);
  EXPECT_EQ(env_thread_count(), 0);
  ::setenv("DECAM_THREADS", "banana", 1);
  EXPECT_EQ(env_thread_count(), 0);
  ::setenv("DECAM_THREADS", "4x", 1);
  EXPECT_EQ(env_thread_count(), 0);
  ::setenv("DECAM_THREADS", "", 1);
  EXPECT_EQ(env_thread_count(), 0);
  ::unsetenv("DECAM_THREADS");
  EXPECT_EQ(env_thread_count(), 0);
  EXPECT_EQ(default_thread_count(), hardware_thread_count());
}

TEST_F(RuntimeTest, EnvThreadCountOneDegradesToSerial) {
  ::setenv("DECAM_THREADS", "1", 1);
  set_thread_count(0);  // follow the env override
  ASSERT_EQ(thread_count(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(16);
  parallel_for(0, 16, [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : ids) EXPECT_EQ(id, caller);
}

TEST_F(RuntimeTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  parallel_for(pool, 0, 8, [&](std::size_t) {
    // From a worker lane this degrades to the serial loop instead of
    // re-entering the queue the lane itself is draining.
    parallel_for(pool, 0, 8, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST_F(RuntimeTest, ParallelMapPreservesInputOrder) {
  ThreadPool pool(4);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  const std::vector<int> doubled =
      parallel_map(pool, items, [](int v) { return 2 * v; });
  ASSERT_EQ(doubled.size(), items.size());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(doubled[static_cast<std::size_t>(i)], 2 * i);
  }
}

TEST_F(RuntimeTest, SetThreadCountControlsGlobalPool) {
  ::unsetenv("DECAM_THREADS");
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3);
  EXPECT_EQ(global_pool().size(), 3);
  set_thread_count(0);
  EXPECT_EQ(thread_count(), default_thread_count());
}

}  // namespace
}  // namespace decam::runtime
