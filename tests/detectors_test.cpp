// Behavioural tests of the three Decamouflage detectors plus the histogram
// baseline: benign vs attack score separation on small synthetic fixtures.
#include <gtest/gtest.h>

#include "attack/scale_attack.h"
#include "core/filtering_detector.h"
#include "core/histogram_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"

namespace decam::core {
namespace {

struct Pair {
  Image benign;
  Image attack;
};

// Small but realistic fixture: 128px scene, 32px target, bilinear attack.
// Tail cases (halftone stripes, flat frames) are disabled: they are the
// EXPECTED false-positive sources (see HalftoneTail tests below); these
// fixtures validate behaviour on typical photographs.
Pair make_pair(std::uint64_t seed) {
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = 128;
  params.detail_probability = 0.0;
  params.flat_probability = 0.0;
  data::Rng scene_rng(seed);
  data::Rng target_rng(seed + 77);
  const Image scene = generate_scene(params, scene_rng);
  const Image target = data::generate_target(32, 32, target_rng);
  attack::AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  options.eps = 2.0;
  return {scene, attack::craft_attack(scene, target, options).image};
}

ScalingDetectorConfig scaling_config(Metric metric) {
  ScalingDetectorConfig config;
  config.down_width = config.down_height = 32;
  config.metric = metric;
  return config;
}

TEST(ScalingDetector, MseSeparatesBenignFromAttack) {
  const ScalingDetector detector{scaling_config(Metric::MSE)};
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Pair pair = make_pair(seed);
    EXPECT_GT(detector.score(pair.attack), 3.0 * detector.score(pair.benign))
        << "seed " << seed;
  }
}

TEST(ScalingDetector, SsimSeparatesBenignFromAttack) {
  const ScalingDetector detector{scaling_config(Metric::SSIM)};
  for (std::uint64_t seed : {4ull, 5ull, 6ull}) {
    const Pair pair = make_pair(seed);
    EXPECT_LT(detector.score(pair.attack), detector.score(pair.benign) - 0.1)
        << "seed " << seed;
  }
}

TEST(ScalingDetector, RoundTripHasInputGeometry) {
  const ScalingDetector detector{scaling_config(Metric::MSE)};
  const Pair pair = make_pair(7);
  const Image round = detector.round_trip(pair.benign);
  EXPECT_TRUE(round.same_shape(pair.benign));
}

TEST(ScalingDetector, RejectsInputsSmallerThanTarget) {
  const ScalingDetector detector{scaling_config(Metric::MSE)};
  EXPECT_THROW(detector.score(Image(16, 16, 3)), std::invalid_argument);
}

TEST(ScalingDetector, ConfigValidation) {
  ScalingDetectorConfig bad;
  bad.down_width = 0;
  EXPECT_THROW(ScalingDetector{bad}, std::invalid_argument);
  bad = {};
  bad.metric = Metric::CSP;
  EXPECT_THROW(ScalingDetector{bad}, std::invalid_argument);
}

TEST(ScalingDetector, NameEncodesMetric) {
  EXPECT_EQ(ScalingDetector{scaling_config(Metric::MSE)}.name(),
            "scaling/mse");
  EXPECT_EQ(ScalingDetector{scaling_config(Metric::SSIM)}.name(),
            "scaling/ssim");
}

TEST(FilteringDetector, MseSeparatesBenignFromAttack) {
  FilteringDetectorConfig config;
  config.metric = Metric::MSE;
  const FilteringDetector detector{config};
  for (std::uint64_t seed : {8ull, 9ull}) {
    const Pair pair = make_pair(seed);
    EXPECT_GT(detector.score(pair.attack), 1.5 * detector.score(pair.benign))
        << "seed " << seed;
  }
}

TEST(FilteringDetector, SsimSeparatesBenignFromAttack) {
  FilteringDetectorConfig config;
  config.metric = Metric::SSIM;
  const FilteringDetector detector{config};
  for (std::uint64_t seed : {10ull, 11ull}) {
    const Pair pair = make_pair(seed);
    EXPECT_LT(detector.score(pair.attack), detector.score(pair.benign) - 0.05)
        << "seed " << seed;
  }
}

TEST(FilteringDetector, FilteredImageMatchesMinFilter) {
  FilteringDetectorConfig config;
  const FilteringDetector detector{config};
  const Pair pair = make_pair(12);
  const Image f = detector.filtered(pair.benign);
  const Image expected = min_filter(pair.benign, config.window);
  EXPECT_TRUE(f.same_shape(expected));
  EXPECT_FLOAT_EQ(f.at(5, 5, 0), expected.at(5, 5, 0));
}

TEST(FilteringDetector, NameEncodesOpAndMetric) {
  FilteringDetectorConfig config;
  config.metric = Metric::SSIM;
  EXPECT_EQ(FilteringDetector{config}.name(), "filtering/min/ssim");
  config.op = RankOp::Max;
  config.metric = Metric::MSE;
  EXPECT_EQ(FilteringDetector{config}.name(), "filtering/max/mse");
}

TEST(FilteringDetector, ConfigValidation) {
  FilteringDetectorConfig bad;
  bad.window = 0;
  EXPECT_THROW(FilteringDetector{bad}, std::invalid_argument);
  bad = {};
  bad.metric = Metric::CSP;
  EXPECT_THROW(FilteringDetector{bad}, std::invalid_argument);
}

TEST(SteganalysisDetector, BenignImagesHaveOneCsp) {
  const SteganalysisDetector detector{};
  for (std::uint64_t seed : {13ull, 14ull, 15ull, 16ull}) {
    const Pair pair = make_pair(seed);
    EXPECT_EQ(detector.count_csp(pair.benign), 1) << "seed " << seed;
  }
}

TEST(SteganalysisDetector, AttackImagesHaveMultipleCsp) {
  const SteganalysisDetector detector{};
  for (std::uint64_t seed : {17ull, 18ull, 19ull, 20ull}) {
    const Pair pair = make_pair(seed);
    EXPECT_GE(detector.count_csp(pair.attack), 2) << "seed " << seed;
  }
}

TEST(SteganalysisDetector, ScoreEqualsCount) {
  const SteganalysisDetector detector{};
  const Pair pair = make_pair(21);
  EXPECT_DOUBLE_EQ(detector.score(pair.benign),
                   static_cast<double>(detector.count_csp(pair.benign)));
}

TEST(SteganalysisDetector, BinarySpectrumIsBinaryAndInputSized) {
  const SteganalysisDetector detector{};
  const Pair pair = make_pair(22);
  const Image binary = detector.binary_spectrum(pair.attack);
  EXPECT_EQ(binary.width(), pair.attack.width());
  EXPECT_EQ(binary.height(), pair.attack.height());
  EXPECT_EQ(binary.channels(), 1);
  for (int y = 0; y < binary.height(); y += 11) {
    for (int x = 0; x < binary.width(); x += 11) {
      const float v = binary.at(x, y, 0);
      EXPECT_TRUE(v == 0.0f || v == 255.0f);
    }
  }
}

TEST(SteganalysisDetector, ConfigValidation) {
  SteganalysisDetectorConfig bad;
  bad.radius_fraction = 0.0;
  EXPECT_THROW(SteganalysisDetector{bad}, std::invalid_argument);
  bad = {};
  bad.binarize_k = 0.0;
  EXPECT_THROW(SteganalysisDetector{bad}, std::invalid_argument);
  bad = {};
  bad.min_blob_area = -1;
  EXPECT_THROW(SteganalysisDetector{bad}, std::invalid_argument);
}

TEST(HistogramDetector, ScoresAreValidSimilaritiesWithExpectedDirection) {
  // The baseline the paper rejects. On our synthetic scenes the direction
  // is as expected (attack downscales have a different histogram), but the
  // paper's point — that the metric is unreliable and evadable — is shown
  // by the histogram-preserving adaptive attack in the ablation bench, not
  // by this unit test.
  HistogramDetectorConfig config;
  config.down_width = config.down_height = 32;
  const HistogramDetector detector{config};
  const Pair pair = make_pair(23);
  const double benign_score = detector.score(pair.benign);
  const double attack_score = detector.score(pair.attack);
  EXPECT_GE(benign_score, 0.0);
  EXPECT_LE(benign_score, 1.0 + 1e-12);
  EXPECT_GE(attack_score, 0.0);
  EXPECT_LE(attack_score, 1.0 + 1e-12);
  EXPECT_LT(attack_score, benign_score);
}

TEST(HistogramDetector, Name) {
  HistogramDetectorConfig config;
  EXPECT_EQ(HistogramDetector{config}.name(), "histogram/intersection");
}

TEST(HalftoneTail, StripedBenignImagesCanFakeCspHarmonics) {
  // A benign image containing a strong fine-period stripe field has real
  // periodic energy — the CSP detector may legitimately see >1 centered
  // spectrum point. This is the false-positive class behind the paper's
  // 1.7% steganalysis FRR; the ensemble absorbs it (the other two methods
  // still vote benign).
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = 128;
  params.detail_probability = 0.0;
  params.flat_probability = 0.0;
  data::Rng rng(41);
  Image scene = generate_scene(params, rng);
  // Strong stripes of period 3 over a bounded region (a blind or scanned
  // print); the finite window spreads each harmonic into a visible blob.
  for (int y = 24; y < 112; ++y) {
    for (int x = 16; x < 104; ++x) {
      const float delta = (x % 3 == 0) ? 40.0f : -20.0f;
      for (int c = 0; c < 3; ++c) scene.at(x, y, c) += delta;
    }
  }
  scene.clamp();
  const SteganalysisDetector steg{};
  EXPECT_GE(steg.count_csp(scene), 2);  // stripes look periodic — expected

  // The spatial-domain methods still score it as benign-like: its round
  // trip is lossy but nowhere near attack levels.
  ScalingDetectorConfig config;
  config.down_width = config.down_height = 32;
  config.metric = Metric::MSE;
  const ScalingDetector scaling{config};
  const Pair reference = make_pair(42);
  EXPECT_LT(scaling.score(scene), 0.5 * scaling.score(reference.attack));
}

TEST(MetricNames, ToString) {
  EXPECT_STREQ(to_string(Metric::MSE), "mse");
  EXPECT_STREQ(to_string(Metric::SSIM), "ssim");
  EXPECT_STREQ(to_string(Metric::CSP), "csp");
}

}  // namespace
}  // namespace decam::core
