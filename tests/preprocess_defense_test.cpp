// Property tests for the preprocessing-defense family (ISSUE 10 satellite):
// the algebraic contracts the matrix bench and `decamctl scan --defense`
// lean on. Shape preservation, squeeze integrality + exact idempotence
// (every bit count, including the awkward non-power-step ones), bounded
// output range, the spec grammar round-trip, DefendedDetector naming and
// score semantics, and bit-identical defended scores across thread counts.
#include "core/preprocess_defense.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace decam::core {
namespace {

Image noisy_image(int w, int h, int channels, std::uint64_t seed) {
  data::Rng rng(seed);
  Image img(w, h, channels);
  for (int c = 0; c < channels; ++c) {
    for (float& v : img.plane(c)) {
      v = static_cast<float>(rng.next_range(0.0, 255.0));
    }
  }
  return img;
}

bool bit_identical(const Image& a, const Image& b) {
  if (!a.same_shape(b)) return false;
  for (int c = 0; c < a.channels(); ++c) {
    if (std::memcmp(a.plane(c).data(), b.plane(c).data(),
                    a.plane_size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

const std::vector<std::string> kSpecs = {"squeeze1", "squeeze4", "squeeze7",
                                         "median3",  "gauss0.8", "jpeg75",
                                         "squeeze4+jpeg75"};

TEST(PreprocessDefense, EveryTransformPreservesShape) {
  const Image img = noisy_image(37, 23, 3, 1);
  for (const std::string& spec : kSpecs) {
    const Image out = DefenseChain::parse(spec).apply(img);
    EXPECT_TRUE(out.same_shape(img)) << spec;
  }
}

TEST(PreprocessDefense, EveryTransformStaysInRange) {
  // Out-of-range inputs must come back clamped into [0, 255] too: defenses
  // sit directly in front of detectors that assume 8-bit-range pixels.
  Image img = noisy_image(21, 19, 1, 2);
  img.at(3, 4, 0) = -40.0f;
  img.at(5, 6, 0) = 300.0f;
  for (const std::string& spec : kSpecs) {
    const Image out = DefenseChain::parse(spec).apply(img);
    for (const float v : out.plane(0)) {
      ASSERT_GE(v, 0.0f) << spec;
      ASSERT_LE(v, 255.0f) << spec;
    }
  }
}

TEST(PreprocessDefense, SqueezeOutputIsIntegralAtEveryBitCount) {
  const Image img = noisy_image(16, 16, 3, 3);
  for (int bits = 1; bits <= 8; ++bits) {
    const Image out = bit_depth_squeeze(img, bits);
    int distinct = 0;
    std::vector<bool> seen(256, false);
    for (int c = 0; c < 3; ++c) {
      for (const float v : out.plane(c)) {
        ASSERT_EQ(v, std::round(v)) << "bits=" << bits;
        const int iv = static_cast<int>(v);
        ASSERT_GE(iv, 0);
        ASSERT_LE(iv, 255);
        if (!seen[static_cast<std::size_t>(iv)]) {
          seen[static_cast<std::size_t>(iv)] = true;
          ++distinct;
        }
      }
    }
    EXPECT_LE(distinct, 1 << bits) << "bits=" << bits;
  }
}

TEST(PreprocessDefense, SqueezeIsExactlyIdempotent) {
  // The non-power-of-two steps (bits 3, 5, 6, 7 have step 255/(2^b - 1)
  // non-integral) are where a naive re-quantisation would drift.
  const Image img = noisy_image(24, 18, 3, 4);
  for (int bits = 1; bits <= 8; ++bits) {
    const Image once = bit_depth_squeeze(img, bits);
    const Image twice = bit_depth_squeeze(once, bits);
    EXPECT_TRUE(bit_identical(once, twice)) << "bits=" << bits;
  }
}

TEST(PreprocessDefense, SqueezeEightBitsFixesIntegralImages) {
  Image img = noisy_image(12, 12, 1, 5);
  for (float& v : img.plane(0)) v = std::round(v);
  EXPECT_TRUE(bit_identical(img, bit_depth_squeeze(img, 8)));
}

TEST(PreprocessDefense, SqueezeRejectsBadBitCounts) {
  const Image img = noisy_image(4, 4, 1, 6);
  EXPECT_THROW(bit_depth_squeeze(img, 0), std::invalid_argument);
  EXPECT_THROW(bit_depth_squeeze(img, 9), std::invalid_argument);
}

TEST(PreprocessDefense, SpecGrammarRoundTrips) {
  for (const std::string& spec :
       {"none", "squeeze4", "median3", "gauss0.8", "jpeg75",
        "squeeze4+jpeg75", "median5+gauss1.5+jpeg90"}) {
    const DefenseChain chain = DefenseChain::parse(spec);
    EXPECT_EQ(chain.name(), spec);
    // The canonical name parses back to an identically-behaving chain.
    const DefenseChain again = DefenseChain::parse(chain.name());
    EXPECT_EQ(again.name(), chain.name());
    EXPECT_EQ(again.steps().size(), chain.steps().size());
  }
  EXPECT_TRUE(DefenseChain::parse("none").empty());
}

TEST(PreprocessDefense, SpecGrammarRejectsGarbage) {
  for (const std::string& spec :
       {"", "pixmask", "squeeze", "squeeze0", "squeeze9", "squeeze4x",
        "median2.5", "median17", "gauss0", "gauss-1", "jpeg0", "jpeg101",
        "squeeze4+", "+jpeg75", "none+jpeg75", "jpeg75 "}) {
    EXPECT_THROW(DefenseChain::parse(spec), std::invalid_argument)
        << "spec '" << spec << "'";
  }
}

TEST(PreprocessDefense, EmptyChainIsIdentity) {
  const Image img = noisy_image(9, 7, 3, 7);
  EXPECT_TRUE(bit_identical(img, DefenseChain().apply(img)));
  EXPECT_EQ(DefenseChain().name(), "none");
}

TEST(PreprocessDefense, DefendedDetectorScoresThroughTheChain) {
  const Image img = noisy_image(64, 64, 3, 8);
  ScalingDetectorConfig config;
  config.down_width = config.down_height = 16;
  const auto inner = std::make_shared<ScalingDetector>(config);
  const DefenseChain chain = DefenseChain::parse("squeeze3");
  const DefendedDetector defended(inner, chain);

  EXPECT_EQ(defended.name(), "squeeze3>" + inner->name());
  EXPECT_DOUBLE_EQ(defended.score(img), inner->score(chain.apply(img)));

  // The context overload must recompute from the raw input — a context's
  // cached intermediates describe the UNdefended image.
  const AnalysisContext context(img, AnalysisContextSpec{});
  EXPECT_DOUBLE_EQ(defended.score(context), defended.score(img));
}

TEST(PreprocessDefense, EmptyChainDefendedDetectorMatchesInner) {
  const Image img = noisy_image(48, 48, 1, 9);
  FilteringDetectorConfig config;
  const auto inner = std::make_shared<FilteringDetector>(config);
  const DefendedDetector defended(inner, DefenseChain());
  EXPECT_EQ(defended.name(), "none>" + inner->name());
  EXPECT_DOUBLE_EQ(defended.score(img), inner->score(img));
}

// The battery_determinism ctest pins the defended decamctl scan end to end;
// this is the unit-level version: chain application and defended scores are
// bit-identical whether the surrounding fan-out runs 1 lane or 4.
TEST(PreprocessDefense, DefendedScoresBitIdenticalAcrossThreadCounts) {
  std::vector<Image> images;
  for (int i = 0; i < 6; ++i) images.push_back(noisy_image(40, 40, 3, 10 + i));

  ScalingDetectorConfig config;
  config.down_width = config.down_height = 10;
  const auto inner = std::make_shared<ScalingDetector>(config);

  auto run = [&](int threads) {
    runtime::set_thread_count(threads);
    std::vector<std::vector<double>> per_spec;
    for (const std::string& spec : kSpecs) {
      const DefendedDetector defended(inner, DefenseChain::parse(spec));
      per_spec.push_back(runtime::parallel_map(
          images, [&](const Image& img) { return defended.score(img); }));
    }
    return per_spec;
  };

  const auto one = run(1);
  const auto four = run(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t s = 0; s < one.size(); ++s) {
    for (std::size_t i = 0; i < images.size(); ++i) {
      // Bitwise, not approximate: the determinism contract is exactness.
      EXPECT_EQ(one[s][i], four[s][i]) << kSpecs[s] << " image " << i;
    }
  }
}

}  // namespace
}  // namespace decam::core
