// Tests for the centered log-magnitude spectrum — the signal the
// steganalysis detector thresholds.
#include "signal/spectrum.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "data/noise.h"
#include "data/rng.h"

namespace decam {
namespace {

TEST(Spectrum, OutputGeometryMatchesInput) {
  const Image img(20, 14, 1, 50.0f);
  const Image spec = centered_log_spectrum(img);
  EXPECT_EQ(spec.width(), 20);
  EXPECT_EQ(spec.height(), 14);
  EXPECT_EQ(spec.channels(), 1);
}

TEST(Spectrum, NormalisedToFullRange) {
  data::Rng rng(1);
  Image img(32, 32, 1);
  for (float& v : img.plane(0)) {
    v = static_cast<float>(rng.next_range(0.0, 255.0));
  }
  const Image spec = centered_log_spectrum(img);
  EXPECT_NEAR(spec.min_value(), 0.0f, 1e-4f);
  EXPECT_NEAR(spec.max_value(), 255.0f, 1e-3f);
}

TEST(Spectrum, DcPeakSitsAtCentre) {
  data::Rng rng(2);
  data::NoiseParams params;
  Image img = value_noise(64, 64, params, rng);
  const Image spec = centered_log_spectrum(img);
  // Peak should be the centre pixel (32, 32) for even sizes.
  float best = -1.0f;
  int bx = -1, by = -1;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (spec.at(x, y, 0) > best) {
        best = spec.at(x, y, 0);
        bx = x;
        by = y;
      }
    }
  }
  EXPECT_EQ(bx, 32);
  EXPECT_EQ(by, 32);
}

TEST(Spectrum, PeriodicGridCreatesHarmonicPeaks) {
  // A grid with period 4 embedded in a flat image must produce bright
  // points at +-N/4 from the centre — the CSP signature of attack images.
  constexpr int n = 64;
  Image img(n, n, 1, 128.0f);
  for (int y = 0; y < n; y += 4) {
    for (int x = 0; x < n; x += 4) img.at(x, y, 0) = 255.0f;
  }
  const Image spec = centered_log_spectrum(img);
  const int centre = n / 2;
  const float at_harmonic = spec.at(centre + n / 4, centre, 0);
  const float off_harmonic = spec.at(centre + n / 4 + 2, centre + 3, 0);
  EXPECT_GT(at_harmonic, 200.0f);
  EXPECT_LT(off_harmonic, at_harmonic * 0.3f);
}

TEST(Spectrum, NaturalNoiseHasEnergyConcentratedAtLowFrequencies) {
  data::Rng rng(3);
  data::NoiseParams params;
  params.octaves = 5;
  const Image img = value_noise(96, 96, params, rng);
  const std::vector<double> logmag = centered_log_magnitudes(img);
  const int n = 96;
  const int centre = n / 2;
  // Mean log-magnitude in a small disc around DC vs far corona.
  double near_sum = 0.0, far_sum = 0.0;
  int near_count = 0, far_count = 0;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const double d = std::hypot(x - centre, y - centre);
      const double v = logmag[static_cast<std::size_t>(y) * n + x];
      if (d > 0.5 && d < 8.0) {
        near_sum += v;
        ++near_count;
      } else if (d > 32.0 && d < 46.0) {
        far_sum += v;
        ++far_count;
      }
    }
  }
  EXPECT_GT(near_sum / near_count, far_sum / far_count + 1.0);
}

TEST(Spectrum, ColorInputUsesLuma) {
  data::Rng rng(4);
  data::NoiseParams params;
  const Image gray = value_noise(32, 32, params, rng);
  const Image rgb = [&] {
    Image out(32, 32, 3);
    for (int c = 0; c < 3; ++c) {
      auto dst = out.plane(c);
      auto src = gray.plane(0);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    return out;
  }();
  const Image spec_gray = centered_log_spectrum(gray);
  const Image spec_rgb = centered_log_spectrum(rgb);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      EXPECT_NEAR(spec_gray.at(x, y, 0), spec_rgb.at(x, y, 0), 2e-2f);
    }
  }
}

}  // namespace
}  // namespace decam
