// Tests for the FFT substrate: known transforms, inverse round trips for
// power-of-two and Bluestein sizes, 2-D separability, Parseval, fftshift.
#include "signal/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "data/rng.h"

namespace decam {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  data::Rng rng(seed);
  std::vector<Complex> signal(n);
  for (auto& v : signal) {
    v = Complex(rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0));
  }
  return signal;
}

TEST(Fft, ImpulseTransformsToConstant) {
  std::vector<Complex> signal(8, Complex(0, 0));
  signal[0] = Complex(1, 0);
  const auto freq = fft(signal);
  for (const Complex& bin : freq) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToImpulse) {
  const std::vector<Complex> signal(16, Complex(2.0, 0));
  const auto freq = fft(signal);
  EXPECT_NEAR(freq[0].real(), 32.0, 1e-9);
  for (std::size_t k = 1; k < freq.size(); ++k) {
    EXPECT_NEAR(std::abs(freq[k]), 0.0, 1e-9);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  constexpr std::size_t n = 32;
  constexpr int tone = 5;
  std::vector<Complex> signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * std::numbers::pi * tone *
                         static_cast<double>(i) / static_cast<double>(n);
    signal[i] = Complex(std::cos(phase), std::sin(phase));
  }
  const auto freq = fft(signal);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = k == tone ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(freq[k]), expected, 1e-8) << "bin " << k;
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, n * 13 + 1);
  const auto back = ifft(fft(signal));
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), signal[i].real(), 1e-8) << "n=" << n;
    EXPECT_NEAR(back[i].imag(), signal[i].imag(), 1e-8) << "n=" << n;
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, n * 7 + 3);
  const auto freq = fft(signal);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const auto& v : signal) time_energy += std::norm(v);
  for (const auto& v : freq) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-6 * time_energy * static_cast<double>(n));
}

// Mixes powers of two, primes (Bluestein), and highly composite sizes.
INSTANTIATE_TEST_SUITE_P(VariousLengths, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 3, 5, 7, 13,
                                           97, 101, 6, 12, 60, 100, 224, 299),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Fft, LinearityHolds) {
  const auto a = random_signal(24, 1);
  const auto b = random_signal(24, 2);
  std::vector<Complex> sum(24);
  for (std::size_t i = 0; i < 24; ++i) sum[i] = 3.0 * a[i] + 2.0 * b[i];
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fsum = fft(sum);
  for (std::size_t i = 0; i < 24; ++i) {
    const Complex expected = 3.0 * fa[i] + 2.0 * fb[i];
    EXPECT_NEAR(std::abs(fsum[i] - expected), 0.0, 1e-8);
  }
}

TEST(Fft, RejectsEmptySignal) {
  std::vector<Complex> empty;
  EXPECT_THROW(fft(empty, false), std::invalid_argument);
}

TEST(Fft2d, RoundTripOnRectangularGrid) {
  const int w = 12, h = 7;  // rectangular with a Bluestein dimension
  auto grid = random_signal(static_cast<std::size_t>(w) * h, 42);
  const auto original = grid;
  fft2d(grid, w, h, false);
  fft2d(grid, w, h, true);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i].real(), original[i].real(), 1e-8);
    EXPECT_NEAR(grid[i].imag(), original[i].imag(), 1e-8);
  }
}

TEST(Fft2d, DcBinIsImageSum) {
  Image img(6, 4, 1);
  double sum = 0.0;
  data::Rng rng(5);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 6; ++x) {
      const double v = rng.next_range(0.0, 255.0);
      img.at(x, y, 0) = static_cast<float>(v);
      sum += v;
    }
  }
  const auto freq = fft2d(img);
  EXPECT_NEAR(freq[0].real(), sum, 1e-5);
  EXPECT_NEAR(freq[0].imag(), 0.0, 1e-6);
}

TEST(Fft2d, HorizontalCosineProducesSymmetricPeaks) {
  constexpr int n = 16;
  Image img(n, n, 1);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      img.at(x, y, 0) = static_cast<float>(
          std::cos(2.0 * std::numbers::pi * 3.0 * x / n));
    }
  }
  const auto freq = fft2d(img);
  // Energy at (kx=3, ky=0) and (kx=13, ky=0) only.
  for (int ky = 0; ky < n; ++ky) {
    for (int kx = 0; kx < n; ++kx) {
      const double mag = std::abs(freq[static_cast<std::size_t>(ky) * n + kx]);
      if (ky == 0 && (kx == 3 || kx == n - 3)) {
        // Float-image inputs limit precision to ~1e-5 relative.
        EXPECT_NEAR(mag, n * n / 2.0, 1e-4);
      } else {
        EXPECT_NEAR(mag, 0.0, 1e-4);
      }
    }
  }
}

TEST(Fft2d, RejectsSizeMismatch) {
  std::vector<Complex> grid(10);
  EXPECT_THROW(fft2d(grid, 3, 4, false), std::invalid_argument);
  EXPECT_THROW(fft2d(grid, 0, 10, false), std::invalid_argument);
}

TEST(FftShift, MovesDcToCentreAndIsSelfInverseForEvenSizes) {
  const int w = 4, h = 4;
  std::vector<Complex> grid(16, Complex(0, 0));
  grid[0] = Complex(1, 0);  // DC at top-left
  auto shifted = grid;
  fftshift(shifted, w, h);
  EXPECT_NEAR(shifted[2 * 4 + 2].real(), 1.0, 1e-12);  // centre (2,2)
  fftshift(shifted, w, h);
  EXPECT_NEAR(shifted[0].real(), 1.0, 1e-12);
}

TEST(FftShift, OddSizesMapDcToCentrePixel) {
  const int w = 5, h = 3;
  std::vector<Complex> grid(15, Complex(0, 0));
  grid[0] = Complex(1, 0);
  fftshift(grid, w, h);
  EXPECT_NEAR(grid[1 * 5 + 2].real(), 1.0, 1e-12);  // (2, 1)
}

}  // namespace
}  // namespace decam
