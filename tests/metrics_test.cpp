// Tests for MSE, PSNR, SSIM (both variants) and the histogram metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "data/noise.h"
#include "data/rng.h"
#include "metrics/histogram.h"
#include "metrics/mse.h"
#include "metrics/ssim.h"

namespace decam {
namespace {

Image noise_image(int w, int h, int channels, std::uint64_t seed) {
  data::Rng rng(seed);
  Image img(w, h, channels);
  for (int c = 0; c < channels; ++c) {
    for (float& v : img.plane(c)) {
      v = static_cast<float>(rng.next_range(0.0, 255.0));
    }
  }
  return img;
}

TEST(Mse, ZeroForIdenticalImages) {
  const Image img = noise_image(8, 8, 3, 1);
  EXPECT_DOUBLE_EQ(mse(img, img), 0.0);
}

TEST(Mse, KnownValue) {
  Image a(2, 1, 1);
  Image b(2, 1, 1);
  a.at(0, 0, 0) = 0.0f;
  b.at(0, 0, 0) = 3.0f;   // diff 3 -> 9
  a.at(1, 0, 0) = 10.0f;
  b.at(1, 0, 0) = 6.0f;   // diff 4 -> 16
  EXPECT_DOUBLE_EQ(mse(a, b), (9.0 + 16.0) / 2.0);
}

TEST(Mse, SymmetricAndShapeChecked) {
  const Image a = noise_image(5, 7, 1, 2);
  const Image b = noise_image(5, 7, 1, 3);
  EXPECT_DOUBLE_EQ(mse(a, b), mse(b, a));
  EXPECT_THROW(mse(a, noise_image(7, 5, 1, 4)), std::invalid_argument);
}

TEST(Mse, GrowsWithPerturbationMagnitude) {
  const Image base = noise_image(16, 16, 1, 5);
  Image small_shift = base;
  Image big_shift = base;
  small_shift *= 1.0f;
  for (float& v : small_shift.plane(0)) v += 2.0f;
  for (float& v : big_shift.plane(0)) v += 20.0f;
  EXPECT_LT(mse(base, small_shift), mse(base, big_shift));
  EXPECT_NEAR(mse(base, small_shift), 4.0, 1e-6);
  EXPECT_NEAR(mse(base, big_shift), 400.0, 1e-3);
}

TEST(Psnr, InfiniteForIdenticalImages) {
  const Image img = noise_image(8, 8, 1, 6);
  EXPECT_TRUE(std::isinf(psnr(img, img)));
}

TEST(Psnr, MatchesClosedFormForUniformError) {
  Image a(4, 4, 1, 100.0f);
  Image b(4, 4, 1, 110.0f);  // MSE = 100
  EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0), 1e-9);
}

TEST(Psnr, DecreasesAsErrorGrows) {
  const Image base(8, 8, 1, 128.0f);
  Image mild(8, 8, 1, 130.0f);
  Image harsh(8, 8, 1, 168.0f);
  EXPECT_GT(psnr(base, mild), psnr(base, harsh));
}

TEST(Ssim, OneForIdenticalImages) {
  const Image img = noise_image(32, 32, 3, 7);
  EXPECT_NEAR(ssim(img, img), 1.0, 1e-9);
  EXPECT_NEAR(ssim_global(img, img), 1.0, 1e-9);
}

TEST(Ssim, BoundedAndSymmetric) {
  const Image a = noise_image(24, 24, 1, 8);
  const Image b = noise_image(24, 24, 1, 9);
  const double s = ssim(a, b);
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
  EXPECT_NEAR(s, ssim(b, a), 1e-12);
}

TEST(Ssim, DropsUnderStructuralDestruction) {
  data::Rng rng(10);
  data::NoiseParams params;
  // Fine-grained texture: with the default 96-px lattice a 48-px image is
  // a near-flat gradient and even unrelated gradients score high.
  params.base_period = 12.0;
  const Image img = value_noise(48, 48, params, rng);
  // Mild constant brightness shift barely moves SSIM...
  Image shifted = img;
  for (float& v : shifted.plane(0)) v = std::min(v + 8.0f, 255.0f);
  // ...while shuffling structure destroys it.
  const Image unrelated = value_noise(48, 48, params, rng);
  EXPECT_GT(ssim(img, shifted), 0.85);
  EXPECT_LT(ssim(img, unrelated), 0.35);
  EXPECT_LT(ssim(img, unrelated), ssim(img, shifted));
}

TEST(Ssim, OrderingMatchesDegradationStrength) {
  data::Rng rng(11);
  data::NoiseParams params;
  const Image img = value_noise(40, 40, params, rng);
  Image weak = img;
  Image strong = img;
  data::Rng noise_rng(12);
  for (float& v : weak.plane(0)) {
    v += static_cast<float>(noise_rng.next_gaussian() * 5.0);
  }
  for (float& v : strong.plane(0)) {
    v += static_cast<float>(noise_rng.next_gaussian() * 40.0);
  }
  EXPECT_GT(ssim(img, weak), ssim(img, strong));
}

TEST(Ssim, MultichannelAveragesPlanes) {
  const Image a = noise_image(16, 16, 3, 13);
  Image b = a;
  // Corrupt only one channel; SSIM must fall but stay above the
  // all-channels-corrupted value.
  data::Rng rng(14);
  for (float& v : b.plane(0)) {
    v = static_cast<float>(rng.next_range(0.0, 255.0));
  }
  Image c = a;
  data::Rng rng2(15);
  for (int ch = 0; ch < 3; ++ch) {
    for (float& v : c.plane(ch)) {
      v = static_cast<float>(rng2.next_range(0.0, 255.0));
    }
  }
  EXPECT_GT(ssim(a, b), ssim(a, c));
  EXPECT_LT(ssim(a, b), 1.0);
}

TEST(Ssim, ShapeMismatchThrows) {
  EXPECT_THROW(ssim(Image(4, 4, 1), Image(4, 5, 1)), std::invalid_argument);
  EXPECT_THROW(ssim_global(Image(4, 4, 1), Image(4, 4, 3)),
               std::invalid_argument);
}

TEST(Histogram, NormalisedPerChannel) {
  const Image img = noise_image(16, 16, 3, 16);
  const auto hist = color_histogram(img, 32);
  ASSERT_EQ(hist.size(), 96u);
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0;
    for (int b = 0; b < 32; ++b) sum += hist[static_cast<std::size_t>(c) * 32 + b];
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Histogram, BinsPlacedCorrectly) {
  Image img(2, 1, 1);
  img.at(0, 0, 0) = 0.0f;    // bin 0
  img.at(1, 0, 0) = 255.0f;  // top bin
  const auto hist = color_histogram(img, 4);
  EXPECT_DOUBLE_EQ(hist[0], 0.5);
  EXPECT_DOUBLE_EQ(hist[3], 0.5);
  EXPECT_DOUBLE_EQ(hist[1], 0.0);
}

TEST(Histogram, IntersectionIsOneForIdenticalAndDropsWithDivergence) {
  const Image a = noise_image(16, 16, 1, 17);
  const auto ha = color_histogram(a, 16);
  EXPECT_NEAR(histogram_intersection(ha, ha), 1.0, 1e-12);
  Image b(16, 16, 1, 255.0f);  // everything in the top bin
  const auto hb = color_histogram(b, 16);
  EXPECT_LT(histogram_intersection(ha, hb), 0.3);
}

TEST(Histogram, Chi2ZeroForIdenticalPositiveOtherwise) {
  const Image a = noise_image(16, 16, 1, 18);
  const Image b = noise_image(16, 16, 1, 19);
  const auto ha = color_histogram(a, 16);
  const auto hb = color_histogram(b, 16);
  EXPECT_NEAR(histogram_chi2(ha, ha), 0.0, 1e-12);
  EXPECT_GT(histogram_chi2(ha, hb), 0.0);
  EXPECT_THROW(histogram_chi2(ha, std::vector<double>(3, 0.1)),
               std::invalid_argument);
}

TEST(Histogram, RejectsBadBins) {
  const Image img = noise_image(4, 4, 1, 20);
  EXPECT_THROW(color_histogram(img, 0), std::invalid_argument);
  EXPECT_THROW(color_histogram(img, 257), std::invalid_argument);
}

}  // namespace
}  // namespace decam
