// Strict line-grammar validator for the OpenMetrics text expositions decam
// binaries write (obs/openmetrics.h). Run as a ctest against real decamctl
// output (tests/openmetrics_test.cmake), and by hand:
//
//   openmetrics_check metrics.txt
//
// Validates the subset of the OpenMetrics 1.0 text format the exporter
// emits — which is also the subset a scraper must be able to rely on:
//  - every line is metadata (`# TYPE f <counter|gauge|histogram>`,
//    `# UNIT f <unit>`, `# EOF`) or a sample (`name[{labels}] value`);
//    no blank lines, no other comments;
//  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, values parse as floats;
//  - every sample belongs to a family declared by a preceding TYPE line,
//    with the suffix its type mandates (counters `_total`; histograms
//    `_bucket`/`_count`/`_sum`; gauges bare);
//  - TYPE is declared at most once per family, UNIT only for a declared
//    family whose name ends with the unit;
//  - histogram buckets carry exactly one le="..." label with strictly
//    increasing bounds and non-decreasing cumulative counts, end with a
//    `+Inf` bucket, and agree with the `_count` sample;
//  - the exposition ends with exactly one `# EOF`, nothing after it.
//
// Exits 0 when the file conforms, 1 with one line per violation otherwise.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

struct HistogramState {
  double last_le = -1.0;
  long long last_cumulative = -1;
  bool saw_inf = false;
  long long inf_count = 0;
  bool saw_count = false;
  long long count_value = 0;
  bool saw_sum = false;
};

struct Checker {
  std::map<std::string, std::string> families;  // name -> type
  std::map<std::string, HistogramState> histograms;
  int errors = 0;
  int line_no = 0;

  void fail(const std::string& message) {
    std::fprintf(stderr, "line %d: %s\n", line_no, message.c_str());
    ++errors;
  }

  static bool valid_name(const std::string& name) {
    if (name.empty()) return false;
    auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
             c == ':';
    };
    if (!head(name[0])) return false;
    for (const char c : name) {
      if (!head(c) && !(c >= '0' && c <= '9')) return false;
    }
    return true;
  }

  static bool valid_float(const std::string& text) {
    if (text.empty()) return false;
    char* end = nullptr;
    (void)std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size();
  }

  void check_metadata(const std::string& line) {
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string::npos) return fail("TYPE without a type");
      const std::string name = rest.substr(0, space);
      const std::string type = rest.substr(space + 1);
      if (!valid_name(name)) return fail("invalid family name: " + name);
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail("unknown metric type: " + type);
      }
      if (families.count(name) != 0) {
        return fail("duplicate TYPE for family " + name);
      }
      families[name] = type;
      return;
    }
    if (line.rfind("# UNIT ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string::npos) return fail("UNIT without a unit");
      const std::string name = rest.substr(0, space);
      const std::string unit = rest.substr(space + 1);
      const auto family = families.find(name);
      if (family == families.end()) {
        return fail("UNIT for undeclared family " + name);
      }
      if (name.size() <= unit.size() + 1 ||
          name.compare(name.size() - unit.size() - 1, unit.size() + 1,
                       "_" + unit) != 0) {
        return fail("family " + name + " does not end with unit " + unit);
      }
      return;
    }
    fail("unrecognised comment line: " + line);
  }

  // Splits `sample` into (name, labels, value); empty labels when absent.
  void check_sample(const std::string& line) {
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      return fail("sample without a value: " + line);
    }
    const std::string value_text = line.substr(space + 1);
    if (!valid_float(value_text)) {
      return fail("unparseable sample value: " + value_text);
    }
    std::string name = line.substr(0, space);
    std::string labels;
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      if (name.back() != '}') return fail("unterminated label set: " + line);
      labels = name.substr(brace + 1, name.size() - brace - 2);
      name = name.substr(0, brace);
    }
    if (!valid_name(name)) return fail("invalid sample name: " + name);

    // Resolve the family: longest declared prefix whose mandated suffix
    // matches what remains of the sample name.
    const struct {
      const char* suffix;
      const char* type;
    } kSuffixes[] = {{"_total", "counter"}, {"_bucket", "histogram"},
                     {"_count", "histogram"}, {"_sum", "histogram"},
                     {"", "gauge"}};
    for (const auto& [suffix, type] : kSuffixes) {
      const std::string s = suffix;
      if (name.size() <= s.size() ||
          name.compare(name.size() - s.size(), s.size(), s) != 0) {
        continue;
      }
      const std::string family = name.substr(0, name.size() - s.size());
      const auto declared = families.find(family);
      if (declared == families.end() || declared->second != type) continue;
      if (s == "_bucket") return check_bucket(family, labels, value_text);
      if (!labels.empty()) {
        return fail("unexpected labels on " + name);
      }
      if (s == "_count") {
        HistogramState& state = histograms[family];
        state.saw_count = true;
        state.count_value = std::atoll(value_text.c_str());
        return;
      }
      if (s == "_sum") {
        histograms[family].saw_sum = true;
        return;
      }
      return;  // counter/gauge sample, fully checked
    }
    fail("sample does not match any declared family: " + name);
  }

  void check_bucket(const std::string& family, const std::string& labels,
                    const std::string& value_text) {
    const std::string prefix = "le=\"";
    if (labels.rfind(prefix, 0) != 0 || labels.back() != '"') {
      return fail("bucket of " + family + " without an le label");
    }
    const std::string le =
        labels.substr(prefix.size(), labels.size() - prefix.size() - 1);
    HistogramState& state = histograms[family];
    const long long cumulative = std::atoll(value_text.c_str());
    if (cumulative < state.last_cumulative) {
      return fail("bucket counts of " + family + " decreased");
    }
    state.last_cumulative = cumulative;
    if (le == "+Inf") {
      if (state.saw_inf) return fail("duplicate +Inf bucket in " + family);
      state.saw_inf = true;
      state.inf_count = cumulative;
      return;
    }
    if (state.saw_inf) {
      return fail("finite bucket after +Inf in " + family);
    }
    if (!valid_float(le)) return fail("unparseable le bound: " + le);
    const double bound = std::strtod(le.c_str(), nullptr);
    if (bound <= state.last_le) {
      return fail("le bounds of " + family + " not increasing");
    }
    state.last_le = bound;
  }

  void finish() {
    ++line_no;
    for (const auto& [family, state] : histograms) {
      if (!state.saw_inf) fail(family + ": histogram without +Inf bucket");
      if (!state.saw_count) fail(family + ": histogram without _count");
      if (!state.saw_sum) fail(family + ": histogram without _sum");
      if (state.saw_inf && state.saw_count &&
          state.inf_count != state.count_value) {
        fail(family + ": +Inf bucket disagrees with _count");
      }
    }
    for (const auto& [family, type] : families) {
      if (type == "histogram" && histograms.count(family) == 0) {
        fail(family + ": histogram family without samples");
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s METRICS_FILE\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", argv[1]);
    return 2;
  }

  Checker checker;
  std::string line;
  bool saw_eof = false;
  while (std::getline(in, line)) {
    ++checker.line_no;
    if (saw_eof) {
      checker.fail("content after # EOF");
      break;
    }
    if (line.empty()) {
      checker.fail("blank line");
      continue;
    }
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line[0] == '#') {
      checker.check_metadata(line);
    } else {
      checker.check_sample(line);
    }
  }
  if (!saw_eof) {
    ++checker.line_no;
    checker.fail("missing terminating # EOF");
  }
  checker.finish();

  if (checker.errors > 0) {
    std::fprintf(stderr, "%s: %d violation%s\n", argv[1], checker.errors,
                 checker.errors == 1 ? "" : "s");
    return 1;
  }
  std::printf("%s: conformant OpenMetrics exposition\n", argv[1]);
  return 0;
}
