// Tests for white-box threshold search and black-box percentile
// calibration.
#include "core/calibration.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/rng.h"

namespace decam::core {
namespace {

TEST(IsAttack, RespectsPolarity) {
  const Calibration high{10.0, Polarity::HighIsAttack, 0.0};
  EXPECT_TRUE(is_attack(10.0, high));
  EXPECT_TRUE(is_attack(11.0, high));
  EXPECT_FALSE(is_attack(9.9, high));
  const Calibration low{10.0, Polarity::LowIsAttack, 0.0};
  EXPECT_TRUE(is_attack(10.0, low));
  EXPECT_TRUE(is_attack(9.0, low));
  EXPECT_FALSE(is_attack(10.1, low));
}

TEST(WhiteBox, PerfectlySeparableDataGetsPerfectAccuracy) {
  const std::vector<double> benign = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> attack = {10.0, 11.0, 12.0};
  const WhiteBoxResult result = calibrate_white_box(benign, attack);
  EXPECT_DOUBLE_EQ(result.calibration.train_accuracy, 1.0);
  EXPECT_EQ(result.calibration.polarity, Polarity::HighIsAttack);
  EXPECT_GT(result.calibration.threshold, 4.0);
  EXPECT_LE(result.calibration.threshold, 10.0);
}

TEST(WhiteBox, DetectsLowIsAttackPolarity) {
  // SSIM-like scores: attacks are LOW.
  const std::vector<double> benign = {0.95, 0.97, 0.99};
  const std::vector<double> attack = {0.2, 0.3, 0.4};
  const WhiteBoxResult result = calibrate_white_box(benign, attack);
  EXPECT_EQ(result.calibration.polarity, Polarity::LowIsAttack);
  EXPECT_DOUBLE_EQ(result.calibration.train_accuracy, 1.0);
  EXPECT_GE(result.calibration.threshold, 0.4);
  EXPECT_LT(result.calibration.threshold, 0.95);
}

TEST(WhiteBox, OverlappingDataPicksBestTradeoff) {
  const std::vector<double> benign = {1, 2, 3, 4, 5, 6};
  const std::vector<double> attack = {5, 6, 7, 8, 9, 10};
  const WhiteBoxResult result = calibrate_white_box(benign, attack);
  // Optimum: threshold in (4, 5] flags {5..10} -> 2 benign misclassified
  // (5, 6) and all attacks caught: accuracy 10/12. Verify the search found
  // an assignment at least that good.
  EXPECT_GE(result.calibration.train_accuracy, 10.0 / 12.0 - 1e-12);
}

TEST(WhiteBox, TraceCoversCandidateRangeAndContainsOptimum) {
  const std::vector<double> benign = {1.0, 2.0};
  const std::vector<double> attack = {5.0, 9.0};
  const WhiteBoxResult result = calibrate_white_box(benign, attack);
  ASSERT_FALSE(result.trace.empty());
  double best = 0.0;
  for (const ThresholdProbe& probe : result.trace) {
    best = std::max(best, probe.accuracy);
  }
  EXPECT_DOUBLE_EQ(best, result.calibration.train_accuracy);
  // Trace thresholds are ascending.
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LT(result.trace[i - 1].threshold, result.trace[i].threshold);
  }
}

TEST(WhiteBox, ThrowsOnEmptyClass) {
  const std::vector<double> some = {1.0};
  const std::vector<double> none;
  EXPECT_THROW(calibrate_white_box(none, some), std::invalid_argument);
  EXPECT_THROW(calibrate_white_box(some, none), std::invalid_argument);
}

TEST(WhiteBox, IdenticalClassesGiveHalfAccuracy) {
  const std::vector<double> same = {5.0, 5.0, 5.0};
  const WhiteBoxResult result = calibrate_white_box(same, same);
  EXPECT_NEAR(result.calibration.train_accuracy, 0.5, 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> values = {0.0, 10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile_of(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of(values, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(values, 50.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile_of(values, 25.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(values, 12.5), 5.0);
}

TEST(Percentile, HandlesUnsortedInputAndSingleElement) {
  const std::vector<double> values = {30.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile_of(values, 50.0), 20.0);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(percentile_of(one, 3.0), 7.0);
  EXPECT_THROW(percentile_of(std::vector<double>{}, 10.0),
               std::invalid_argument);
  EXPECT_THROW(percentile_of(one, 101.0), std::invalid_argument);
}

TEST(BlackBox, HighPolarityUsesUpperTail) {
  // MSE-like: benign scores cluster low; threshold = (100-p)th percentile.
  std::vector<double> benign;
  for (int i = 0; i <= 100; ++i) benign.push_back(static_cast<double>(i));
  const Calibration c = calibrate_black_box(benign, 2.0,
                                            Polarity::HighIsAttack);
  EXPECT_NEAR(c.threshold, 98.0, 1e-9);
  EXPECT_FALSE(is_attack(50.0, c));
  EXPECT_TRUE(is_attack(99.0, c));
}

TEST(BlackBox, LowPolarityUsesLowerTail) {
  std::vector<double> benign;
  for (int i = 0; i <= 100; ++i) benign.push_back(static_cast<double>(i));
  const Calibration c = calibrate_black_box(benign, 2.0, Polarity::LowIsAttack);
  EXPECT_NEAR(c.threshold, 2.0, 1e-9);
  EXPECT_TRUE(is_attack(1.0, c));
  EXPECT_FALSE(is_attack(50.0, c));
}

TEST(BlackBox, FrrOnTrainingDataTracksPercentile) {
  // By construction ~p% of benign training samples fall beyond the
  // threshold — the paper's observed FRR ~= percentile effect.
  data::Rng rng(1);
  std::vector<double> benign(1000);
  for (double& v : benign) v = rng.next_gaussian() * 10.0 + 100.0;
  for (double pct : {1.0, 2.0, 3.0}) {
    const Calibration c =
        calibrate_black_box(benign, pct, Polarity::HighIsAttack);
    int rejected = 0;
    for (double v : benign) {
      if (is_attack(v, c)) ++rejected;
    }
    EXPECT_NEAR(static_cast<double>(rejected) / benign.size(), pct / 100.0,
                0.01);
  }
}

TEST(BlackBox, ValidatesPercentile) {
  const std::vector<double> benign = {1.0, 2.0};
  EXPECT_THROW(calibrate_black_box(benign, 0.0, Polarity::HighIsAttack),
               std::invalid_argument);
  EXPECT_THROW(calibrate_black_box(benign, 51.0, Polarity::HighIsAttack),
               std::invalid_argument);
}

TEST(ScoreStats, ComputesMoments) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const ScoreStats stats = score_stats(values);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_NEAR(stats.stddev, 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 9.0);
  EXPECT_THROW(score_stats(std::vector<double>{}), std::invalid_argument);
}

TEST(ScoreStats, SingleSampleHasZeroStddev) {
  const std::vector<double> one = {3.0};
  const ScoreStats stats = score_stats(one);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
}

}  // namespace
}  // namespace decam::core
