// Tests for ROC curve construction, AUC and the Youden threshold.
#include "core/roc.h"

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "data/rng.h"

namespace decam::core {
namespace {

TEST(Roc, PerfectSeparationGivesAucOne) {
  const std::vector<double> benign = {1.0, 2.0, 3.0};
  const std::vector<double> attack = {10.0, 11.0, 12.0};
  const RocCurve curve = roc_curve(benign, attack, Polarity::HighIsAttack);
  EXPECT_DOUBLE_EQ(curve.auc, 1.0);
  // The curve starts at (0, 0) and ends at (1, 1).
  EXPECT_DOUBLE_EQ(curve.points.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.points.back().true_positive_rate, 1.0);
}

TEST(Roc, InvertedSeparationGivesAucZero) {
  // Attack scores LOWER but polarity declared HighIsAttack: worst case.
  const std::vector<double> benign = {10.0, 11.0};
  const std::vector<double> attack = {1.0, 2.0};
  const RocCurve curve = roc_curve(benign, attack, Polarity::HighIsAttack);
  EXPECT_DOUBLE_EQ(curve.auc, 0.0);
  // Declaring the correct polarity fixes it.
  const RocCurve fixed = roc_curve(benign, attack, Polarity::LowIsAttack);
  EXPECT_DOUBLE_EQ(fixed.auc, 1.0);
}

TEST(Roc, IdenticalDistributionsGiveHalf) {
  const std::vector<double> same = {1.0, 2.0, 3.0, 4.0};
  const RocCurve curve = roc_curve(same, same, Polarity::HighIsAttack);
  EXPECT_NEAR(curve.auc, 0.5, 1e-12);
}

TEST(Roc, AucMatchesMannWhitneyOnRandomData) {
  data::Rng rng(3);
  std::vector<double> benign(60), attack(50);
  for (double& v : benign) v = rng.next_gaussian();
  for (double& v : attack) v = rng.next_gaussian() + 1.0;
  const RocCurve curve = roc_curve(benign, attack, Polarity::HighIsAttack);
  // Brute-force U statistic.
  double u = 0.0;
  for (double a : attack) {
    for (double b : benign) {
      if (a > b) {
        u += 1.0;
      } else if (a == b) {
        u += 0.5;
      }
    }
  }
  const double expected = u / (attack.size() * benign.size());
  EXPECT_NEAR(curve.auc, expected, 1e-9);
}

TEST(Roc, TiesAcrossClassesHandled) {
  const std::vector<double> benign = {1.0, 2.0, 2.0};
  const std::vector<double> attack = {2.0, 3.0};
  const RocCurve curve = roc_curve(benign, attack, Polarity::HighIsAttack);
  // Mann-Whitney by hand: pairs (2 vs 1)=1, (2 vs 2)=.5, (2 vs 2)=.5,
  // (3 vs all)=3 -> 5 / 6.
  EXPECT_NEAR(curve.auc, 5.0 / 6.0, 1e-12);
}

TEST(Roc, MonotoneNonDecreasingCurve) {
  data::Rng rng(4);
  std::vector<double> benign(40), attack(40);
  for (double& v : benign) v = rng.next_double();
  for (double& v : attack) v = rng.next_double() + 0.3;
  const RocCurve curve = roc_curve(benign, attack, Polarity::HighIsAttack);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].false_positive_rate,
              curve.points[i - 1].false_positive_rate);
    EXPECT_GE(curve.points[i].true_positive_rate,
              curve.points[i - 1].true_positive_rate);
  }
}

TEST(Roc, RejectsEmptyClasses) {
  const std::vector<double> some = {1.0};
  EXPECT_THROW(roc_curve({}, some, Polarity::HighIsAttack),
               std::invalid_argument);
  EXPECT_THROW(roc_curve(some, {}, Polarity::HighIsAttack),
               std::invalid_argument);
}

TEST(Youden, PicksTheSeparatingThreshold) {
  const std::vector<double> benign = {1.0, 2.0, 3.0};
  const std::vector<double> attack = {8.0, 9.0};
  const RocCurve curve = roc_curve(benign, attack, Polarity::HighIsAttack);
  const Calibration c = youden_threshold(curve, Polarity::HighIsAttack);
  // The chosen threshold classifies the training data perfectly.
  const DetectionStats stats = evaluate(benign, attack, c);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 1.0);
}

TEST(Youden, LowPolarityThresholdWorksEndToEnd) {
  const std::vector<double> benign = {0.9, 0.95, 0.99};
  const std::vector<double> attack = {0.1, 0.2};
  const RocCurve curve = roc_curve(benign, attack, Polarity::LowIsAttack);
  EXPECT_DOUBLE_EQ(curve.auc, 1.0);
  const Calibration c = youden_threshold(curve, Polarity::LowIsAttack);
  const DetectionStats stats = evaluate(benign, attack, c);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 1.0);
}

TEST(Youden, RejectsEmptyCurve) {
  EXPECT_THROW(youden_threshold(RocCurve{}, Polarity::HighIsAttack),
               std::invalid_argument);
}

}  // namespace
}  // namespace decam::core
