// Retained reference implementations of the imaging kernels, kept verbatim
// in spirit from the pre-optimization library (naive per-pixel window
// rebuilds, at_clamped addressing, column-strided vertical resize). The
// production code in src/imaging/ replaced these with O(1)-per-pixel
// algorithms; kernel_parity_test.cpp holds the fast paths to these
// definitions — exact for rank filters, within a documented last-ulp
// tolerance for the blurs and resize.
//
// These are deliberately slow and obvious. Do not "optimize" them: their
// only job is to be trivially auditable.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "imaging/filter.h"
#include "imaging/kernels.h"
#include "imaging/scale.h"

namespace decam::testref {

// k x k rank filter, window anchored top-left covering
// {x..x+k-1} x {y..y+k-1}, clamped-border reads, per-pixel window rebuild.
// Matches the original rank_filter including the Median convention
// (nth_element at window.size() / 2, i.e. the upper median for even k*k).
inline Image rank_filter(const Image& img, int k, RankOp op) {
  Image out(img.width(), img.height(), img.channels());
  std::vector<float> window;
  window.reserve(static_cast<std::size_t>(k) * k);
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        window.clear();
        for (int dy = 0; dy < k; ++dy) {
          for (int dx = 0; dx < k; ++dx) {
            window.push_back(img.at_clamped(x + dx, y + dy, c));
          }
        }
        float value = 0.0f;
        switch (op) {
          case RankOp::Min:
            value = *std::min_element(window.begin(), window.end());
            break;
          case RankOp::Max:
            value = *std::max_element(window.begin(), window.end());
            break;
          case RankOp::Median: {
            auto mid = window.begin() + window.size() / 2;
            std::nth_element(window.begin(), mid, window.end());
            value = *mid;
            break;
          }
        }
        out.at(x, y, c) = value;
      }
    }
  }
  return out;
}

// Horizontal then vertical pass with a normalised odd-length 1-D kernel,
// per-pixel at_clamped reads, double accumulation in ascending tap order,
// one final cast — the accumulator contract documented in imaging/filter.h.
inline Image separable_convolve(const Image& img,
                                const std::vector<float>& kernel) {
  const int radius = static_cast<int>(kernel.size() / 2);
  Image mid(img.width(), img.height(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        double acc = 0.0;
        for (int i = -radius; i <= radius; ++i) {
          acc += kernel[static_cast<std::size_t>(i + radius)] *
                 img.at_clamped(x + i, y, c);
        }
        mid.at(x, y, c) = static_cast<float>(acc);
      }
    }
  }
  Image out(img.width(), img.height(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        double acc = 0.0;
        for (int i = -radius; i <= radius; ++i) {
          acc += kernel[static_cast<std::size_t>(i + radius)] *
                 mid.at_clamped(x, y + i, c);
        }
        out.at(x, y, c) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

inline Image box_blur(const Image& img, int k) {
  std::vector<float> kernel(static_cast<std::size_t>(k), 1.0f / k);
  return separable_convolve(img, kernel);
}

inline Image gaussian_blur(const Image& img, double sigma) {
  const int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double w = std::exp(-(i * i) / (2.0 * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(w);
    sum += w;
  }
  for (float& w : kernel) w = static_cast<float>(w / sum);
  return separable_convolve(img, kernel);
}

// Separable resize in the original formulation: horizontal pass per row,
// then a column-strided vertical pass applying the same tap tables the
// production resize uses. Per output sample: double accumulation over taps
// in ascending source order, one final cast.
inline Image resize(const Image& src, int out_width, int out_height,
                    ScaleAlgo algo) {
  const KernelTable horiz = make_kernel_table(src.width(), out_width, algo);
  const KernelTable vert = make_kernel_table(src.height(), out_height, algo);
  Image mid(out_width, src.height(), src.channels());
  for (int c = 0; c < src.channels(); ++c) {
    for (int y = 0; y < src.height(); ++y) {
      for (int x = 0; x < out_width; ++x) {
        double acc = 0.0;
        for (const Tap& tap : horiz.row(x)) {
          acc += static_cast<double>(tap.weight) * src.at(tap.index, y, c);
        }
        mid.at(x, y, c) = static_cast<float>(acc);
      }
    }
  }
  Image out(out_width, out_height, src.channels());
  for (int c = 0; c < src.channels(); ++c) {
    for (int y = 0; y < out_height; ++y) {
      for (int x = 0; x < out_width; ++x) {
        double acc = 0.0;
        for (const Tap& tap : vert.row(y)) {
          acc += static_cast<double>(tap.weight) * mid.at(x, tap.index, c);
        }
        out.at(x, y, c) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

}  // namespace decam::testref
