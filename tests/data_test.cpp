// Tests for the deterministic RNG, value noise and scene/target/portrait
// generators (determinism, statistics, regime separation).
#include <gtest/gtest.h>

#include <cmath>

#include "data/noise.h"
#include "data/rng.h"
#include "data/synth.h"
#include "data/trigger.h"
#include "metrics/mse.h"

namespace decam::data {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, IntRespectsBoundsAndCoversRange) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.next_int(5, 5), 5);
  EXPECT_THROW(rng.next_int(2, 1), std::invalid_argument);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(10);
  int hits = 0;
  constexpr int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent1(11);
  Rng parent2(11);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(ValueNoise, DeterministicAndInRange) {
  NoiseParams params;
  Rng rng1(20);
  Rng rng2(20);
  const Image a = value_noise(48, 32, params, rng1);
  const Image b = value_noise(48, 32, params, rng2);
  EXPECT_DOUBLE_EQ(mse(a, b), 0.0);
  EXPECT_GE(a.min_value(), 0.0f);
  EXPECT_LE(a.max_value(), 255.0f);
}

TEST(ValueNoise, HasSpatialCorrelation) {
  // Neighbouring pixels must be far more similar than distant ones —
  // the defining property separating value noise from white noise.
  NoiseParams params;
  Rng rng(21);
  const Image img = value_noise(128, 128, params, rng);
  double neighbour_diff = 0.0, distant_diff = 0.0;
  int count = 0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      neighbour_diff += std::abs(img.at(x, y, 0) - img.at(x + 1, y, 0));
      distant_diff += std::abs(img.at(x, y, 0) - img.at(x + 64, y + 64, 0));
      ++count;
    }
  }
  EXPECT_LT(neighbour_diff / count, 0.3 * distant_diff / count);
}

TEST(ValueNoise, RgbChannelsCorrelateWithLuma) {
  NoiseParams params;
  Rng rng(22);
  const Image img = value_noise_rgb(64, 64, params, rng);
  ASSERT_EQ(img.channels(), 3);
  // Channels should be correlated (shared luma field): compute Pearson r
  // between channel 0 and channel 1.
  double mean0 = 0.0, mean1 = 0.0;
  const auto p0 = img.plane(0);
  const auto p1 = img.plane(1);
  for (std::size_t i = 0; i < p0.size(); ++i) {
    mean0 += p0[i];
    mean1 += p1[i];
  }
  mean0 /= static_cast<double>(p0.size());
  mean1 /= static_cast<double>(p1.size());
  double cov = 0.0, var0 = 0.0, var1 = 0.0;
  for (std::size_t i = 0; i < p0.size(); ++i) {
    cov += (p0[i] - mean0) * (p1[i] - mean1);
    var0 += (p0[i] - mean0) * (p0[i] - mean0);
    var1 += (p1[i] - mean1) * (p1[i] - mean1);
  }
  const double r = cov / std::sqrt(var0 * var1);
  EXPECT_GT(r, 0.5);
}

TEST(ValueNoise, RejectsBadParams) {
  NoiseParams params;
  params.octaves = 0;
  Rng rng(23);
  EXPECT_THROW(value_noise(8, 8, params, rng), std::invalid_argument);
  params.octaves = 3;
  params.base_period = 0.5;
  EXPECT_THROW(value_noise(8, 8, params, rng), std::invalid_argument);
}

TEST(Scenes, GeneratorIsDeterministicPerSeed) {
  const auto set1 = generate_dataset(Regime::A, 3, 99);
  const auto set2 = generate_dataset(Regime::A, 3, 99);
  ASSERT_EQ(set1.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(set1[i].same_shape(set2[i]));
    EXPECT_DOUBLE_EQ(mse(set1[i], set2[i]), 0.0);
  }
}

TEST(Scenes, RegimesProduceDifferentImages) {
  const auto a = generate_dataset(Regime::A, 2, 7);
  const auto b = generate_dataset(Regime::B, 2, 7);
  // Same seed, different regimes: shapes and/or content must differ.
  const bool differs = !a[0].same_shape(b[0]) || mse(a[0], b[0]) > 1.0;
  EXPECT_TRUE(differs);
}

TEST(Scenes, GeometryWithinConfiguredBounds) {
  SceneParams params = scene_params(Regime::B);
  params.min_side = 100;
  params.max_side = 140;
  Rng rng(31);
  for (int i = 0; i < 5; ++i) {
    const Image scene = generate_scene(params, rng);
    EXPECT_GE(scene.width(), 100);
    EXPECT_LE(scene.width(), 140);
    EXPECT_GE(scene.height(), 100);
    EXPECT_LE(scene.height(), 140);
    EXPECT_EQ(scene.channels(), 3);
    EXPECT_GE(scene.min_value(), 0.0f);
    EXPECT_LE(scene.max_value(), 255.0f);
  }
}

TEST(Scenes, EightBitQuantised) {
  SceneParams params = scene_params(Regime::A);
  params.min_side = 64;
  params.max_side = 80;
  Rng rng(32);
  const Image scene = generate_scene(params, rng);
  for (int y = 0; y < scene.height(); y += 5) {
    for (int x = 0; x < scene.width(); x += 5) {
      const float v = scene.at(x, y, 0);
      EXPECT_FLOAT_EQ(v, std::round(v));
    }
  }
}

TEST(Targets, DeterministicAndSized) {
  const auto t1 = generate_targets(32, 24, 2, 5);
  const auto t2 = generate_targets(32, 24, 2, 5);
  ASSERT_EQ(t1.size(), 2u);
  EXPECT_EQ(t1[0].width(), 32);
  EXPECT_EQ(t1[0].height(), 24);
  EXPECT_DOUBLE_EQ(mse(t1[0], t2[0]), 0.0);
  EXPECT_DOUBLE_EQ(mse(t1[1], t2[1]), 0.0);
  EXPECT_GT(mse(t1[0], t1[1]), 1.0);  // distinct targets
}

TEST(Targets, HighContrastContent) {
  Rng rng(33);
  const Image target = generate_target(64, 64, rng);
  EXPECT_GT(target.max_value() - target.min_value(), 100.0f);
}

TEST(Trigger, StampChangesOnlyACentralRegion) {
  Rng rng(34);
  const Image portrait = generate_portrait(128, rng);
  const Image stamped = stamp_trigger(portrait);
  ASSERT_TRUE(stamped.same_shape(portrait));
  // Corners untouched.
  EXPECT_FLOAT_EQ(stamped.at(0, 0, 0), portrait.at(0, 0, 0));
  EXPECT_FLOAT_EQ(stamped.at(127, 127, 2), portrait.at(127, 127, 2));
  // Something changed overall.
  EXPECT_GT(mse(portrait, stamped), 1.0);
}

TEST(Trigger, PortraitIsPlausiblyFaceLike) {
  Rng rng(35);
  const Image portrait = generate_portrait(96, rng);
  EXPECT_EQ(portrait.channels(), 3);
  EXPECT_EQ(portrait.width(), 96);
  // Central face region is brighter than the image's darkest features.
  EXPECT_GT(portrait.at(48, 38, 0), 60.0f);
  EXPECT_THROW(generate_portrait(32, rng), std::invalid_argument);
}

}  // namespace
}  // namespace decam::data
