// Tests for the CoeffMatrix linear-operator view of the scalers.
#include "attack/coeff_matrix.h"

#include <gtest/gtest.h>

#include "data/rng.h"
#include "imaging/scale.h"

namespace decam::attack {
namespace {

TEST(CoeffMatrix, DimensionsMatchKernelTable) {
  const CoeffMatrix m = CoeffMatrix::for_scaling(10, 4, ScaleAlgo::Bilinear);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 10);
}

TEST(CoeffMatrix, RowsSumToOneForAllAlgorithms) {
  for (const ScaleAlgo algo :
       {ScaleAlgo::Nearest, ScaleAlgo::Bilinear, ScaleAlgo::Bicubic,
        ScaleAlgo::Area, ScaleAlgo::Lanczos4}) {
    const CoeffMatrix m = CoeffMatrix::for_scaling(37, 11, algo);
    for (int r = 0; r < m.rows(); ++r) {
      EXPECT_NEAR(m.row_sum(r), 1.0, 1e-5) << to_string(algo) << " row " << r;
    }
  }
}

TEST(CoeffMatrix, DenseAccessMatchesTaps) {
  const CoeffMatrix m = CoeffMatrix::for_scaling(8, 4, ScaleAlgo::Bilinear);
  for (int r = 0; r < m.rows(); ++r) {
    double taps_sum = 0.0;
    for (int c = 0; c < m.cols(); ++c) taps_sum += m.at(r, c);
    EXPECT_NEAR(taps_sum, 1.0, 1e-6);
  }
  // Half-scale bilinear: row 0 blends columns 0 and 1 at 1/2.
  EXPECT_NEAR(m.at(0, 0), 0.5, 1e-6);
  EXPECT_NEAR(m.at(0, 1), 0.5, 1e-6);
  EXPECT_NEAR(m.at(0, 2), 0.0, 1e-12);
  EXPECT_THROW(m.at(-1, 0), std::invalid_argument);
  EXPECT_THROW(m.at(0, 99), std::invalid_argument);
}

TEST(CoeffMatrix, MultiplyMatchesApplyKernel) {
  data::Rng rng(1);
  const CoeffMatrix m = CoeffMatrix::for_scaling(23, 9, ScaleAlgo::Bicubic);
  std::vector<double> x(23);
  std::vector<float> xf(23);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.next_range(0.0, 255.0);
    xf[i] = static_cast<float>(x[i]);
  }
  const std::vector<double> y = m.multiply(x);
  std::vector<float> yf(9);
  apply_kernel(m.table(), xf.data(), 1, yf.data(), 1);
  for (int r = 0; r < 9; ++r) {
    EXPECT_NEAR(y[static_cast<std::size_t>(r)], yf[r], 1e-3);
  }
  EXPECT_THROW(m.multiply(std::vector<double>(5, 0.0)),
               std::invalid_argument);
}

TEST(CoeffMatrix, RowNormSquaredIsCached) {
  const CoeffMatrix m = CoeffMatrix::for_scaling(16, 4, ScaleAlgo::Bilinear);
  for (int r = 0; r < m.rows(); ++r) {
    double expected = 0.0;
    for (const Tap& tap : m.row_taps(r)) {
      expected += static_cast<double>(tap.weight) * tap.weight;
    }
    EXPECT_DOUBLE_EQ(m.row_norm_sq(r), expected);
    EXPECT_GT(m.row_norm_sq(r), 0.0);
  }
  EXPECT_THROW(m.row_norm_sq(99), std::invalid_argument);
}

TEST(CoeffMatrix, OperatorAgreesWithResizeRowwise) {
  // Multiplying each image row by R^T must equal the horizontal pass of
  // resize(): the attack's model and the deployed scaler cannot drift.
  data::Rng rng(2);
  Image img(20, 1, 1);
  for (float& v : img.plane(0)) {
    v = static_cast<float>(rng.next_range(0.0, 255.0));
  }
  const Image resized = resize(img, 7, 1, ScaleAlgo::Lanczos4);
  const CoeffMatrix R = CoeffMatrix::for_scaling(20, 7, ScaleAlgo::Lanczos4);
  std::vector<double> x(20);
  for (int i = 0; i < 20; ++i) x[static_cast<std::size_t>(i)] = img.at(i, 0, 0);
  const auto y = R.multiply(x);
  for (int i = 0; i < 7; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], resized.at(i, 0, 0), 1e-3);
  }
}

}  // namespace
}  // namespace decam::attack
