// Tests for the multi-geometry offline scanner: detection of attacks at
// unknown target geometries, geometry attribution, and benign pass-through.
#include "core/multiscale.h"

#include <gtest/gtest.h>

#include "attack/scale_attack.h"
#include "data/rng.h"
#include "data/synth.h"

namespace decam::core {
namespace {

Image make_scene(int side, std::uint64_t seed) {
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = side;
  params.detail_probability = 0.0;
  params.flat_probability = 0.0;
  data::Rng rng(seed);
  return generate_scene(params, rng);
}

MultiScaleConfig test_config() {
  MultiScaleConfig config;
  config.candidate_sides = {24, 32, 48, 64};
  config.scaling_calibration = {400.0, Polarity::HighIsAttack, 0.0};
  return config;
}

class MultiScaleAcrossGeometries : public ::testing::TestWithParam<int> {};

TEST_P(MultiScaleAcrossGeometries, FlagsAttackAtUnknownGeometry) {
  const int target_side = GetParam();
  const Image scene = make_scene(192, 100 + target_side);
  data::Rng target_rng(7);
  const Image target =
      data::generate_target(target_side, target_side, target_rng);
  attack::AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  const attack::AttackResult result =
      attack::craft_attack(scene, target, options);
  const MultiScaleScanner scanner{test_config()};
  const MultiScaleReport report = scanner.scan(result.image);
  EXPECT_TRUE(report.flagged) << "target side " << target_side;
}

INSTANTIATE_TEST_SUITE_P(TargetGeometries, MultiScaleAcrossGeometries,
                         ::testing::Values(24, 32, 48, 64),
                         [](const auto& info) {
                           return "side" + std::to_string(info.param);
                         });

TEST(MultiScale, BenignImagesPass) {
  const MultiScaleScanner scanner{test_config()};
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const MultiScaleReport report = scanner.scan(make_scene(160, seed));
    EXPECT_FALSE(report.flagged) << "seed " << seed;
    EXPECT_EQ(report.triggered_side, 0);
    EXPECT_EQ(report.csp_count, 1);
  }
}

TEST(MultiScale, AttributesTheAttackedGeometry) {
  // The probe AT the attack's geometry should be among the firing ones;
  // probes far from it read mostly original pixels.
  const Image scene = make_scene(192, 11);
  data::Rng target_rng(12);
  const Image target = data::generate_target(32, 32, target_rng);
  attack::AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  const attack::AttackResult result =
      attack::craft_attack(scene, target, options);
  const MultiScaleScanner scanner{test_config()};
  const MultiScaleReport report = scanner.scan(result.image);
  ASSERT_TRUE(report.flagged);
  // triggered_side records the FIRST firing probe in candidate order; the
  // 32-geometry probe must fire, so the attribution is <= 32.
  EXPECT_GT(report.triggered_side, 0);
  EXPECT_LE(report.triggered_side, 32);
}

TEST(MultiScale, SkipsGeometriesLargerThanInput) {
  MultiScaleConfig config = test_config();
  config.candidate_sides = {24, 500};  // 500 > input: must be skipped
  const MultiScaleScanner scanner{config};
  const MultiScaleReport report = scanner.scan(make_scene(160, 13));
  EXPECT_FALSE(report.flagged);
}

TEST(MultiScale, WorstScoreTracksMostAttackLikeProbe) {
  const Image scene = make_scene(160, 14);
  const MultiScaleScanner scanner{test_config()};
  const MultiScaleReport benign_report = scanner.scan(scene);
  data::Rng target_rng(15);
  const Image target = data::generate_target(32, 32, target_rng);
  attack::AttackOptions options;
  options.algo = ScaleAlgo::Bilinear;
  const Image attack_img = attack::craft_attack(scene, target, options).image;
  const MultiScaleReport attack_report = scanner.scan(attack_img);
  EXPECT_GT(attack_report.worst_score, 10.0 * benign_report.worst_score);
}

TEST(MultiScale, ValidatesConfig) {
  MultiScaleConfig bad;
  bad.candidate_sides = {};
  EXPECT_THROW(MultiScaleScanner{bad}, std::invalid_argument);
  bad = test_config();
  bad.candidate_sides = {0};
  EXPECT_THROW(MultiScaleScanner{bad}, std::invalid_argument);
  bad = test_config();
  bad.metric = Metric::CSP;
  EXPECT_THROW(MultiScaleScanner{bad}, std::invalid_argument);
  const MultiScaleScanner scanner{test_config()};
  EXPECT_THROW(scanner.scan(Image()), std::invalid_argument);
}

}  // namespace
}  // namespace decam::core
