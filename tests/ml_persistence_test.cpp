// Tests for SmallCnn persistence (save/load) and the confusion matrix.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "data/rng.h"
#include "imaging/draw.h"
#include "ml/classifier.h"

namespace decam::ml {
namespace {

class MlPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("decam_ml_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path path(const std::string& name) const {
    return dir_ / name;
  }
  std::filesystem::path dir_;
};

std::vector<TrainingSample> tiny_dataset(int per_class, std::uint64_t seed) {
  data::Rng rng(seed);
  std::vector<TrainingSample> samples;
  for (int i = 0; i < per_class * 2; ++i) {
    const int label = i % 2;
    Image img(32, 32, 3);
    const std::array<float, 3> color = {
        label == 0 ? 220.0f : 30.0f,
        static_cast<float>(rng.next_range(30.0, 70.0)),
        label == 1 ? 220.0f : 30.0f};
    fill_rect(img, 0, 0, 32, 32, color);
    for (int c = 0; c < 3; ++c) {
      for (float& v : img.plane(c)) {
        v += static_cast<float>(rng.next_gaussian() * 5.0);
      }
    }
    img.clamp();
    samples.push_back({std::move(img), label});
  }
  return samples;
}

TEST_F(MlPersistenceTest, SaveLoadReproducesPredictionsExactly) {
  const auto train = tiny_dataset(10, 1);
  SmallCnn original(2, 32, ScaleAlgo::Bilinear, 3);
  TrainConfig config;
  config.epochs = 2;
  original.train(train, config);
  original.save(path("model.txt"));

  // A DIFFERENTLY seeded model must diverge before load and match after.
  SmallCnn restored(2, 32, ScaleAlgo::Bilinear, 99);
  const auto before = restored.predict(train[0].image);
  const auto target = original.predict(train[0].image);
  bool differs = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (std::abs(before[i] - target[i]) > 1e-6f) differs = true;
  }
  EXPECT_TRUE(differs);
  restored.load(path("model.txt"));
  const auto after = restored.predict(train[0].image);
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_NEAR(after[i], target[i], 1e-6f);
  }
}

TEST_F(MlPersistenceTest, LoadRejectsArchitectureMismatch) {
  SmallCnn model(2, 32, ScaleAlgo::Bilinear, 1);
  model.save(path("m.txt"));
  SmallCnn bigger(3, 32, ScaleAlgo::Bilinear, 1);
  EXPECT_THROW(bigger.load(path("m.txt")), IoError);
  SmallCnn wider(2, 48, ScaleAlgo::Bilinear, 1);
  EXPECT_THROW(wider.load(path("m.txt")), IoError);
}

TEST_F(MlPersistenceTest, LoadRejectsGarbageAndMissingFiles) {
  SmallCnn model(2, 32, ScaleAlgo::Bilinear, 1);
  EXPECT_THROW(model.load(path("missing.txt")), IoError);
  std::ofstream out(path("junk.txt"));
  out << "hello world\n";
  out.close();
  EXPECT_THROW(model.load(path("junk.txt")), IoError);
}

TEST_F(MlPersistenceTest, TruncatedModelFileRejected) {
  SmallCnn model(2, 32, ScaleAlgo::Bilinear, 1);
  model.save(path("full.txt"));
  // Truncate roughly in half.
  std::ifstream in(path("full.txt"));
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path("half.txt"));
  out << contents.substr(0, contents.size() / 2);
  out.close();
  SmallCnn other(2, 32, ScaleAlgo::Bilinear, 2);
  EXPECT_THROW(other.load(path("half.txt")), IoError);
}

TEST_F(MlPersistenceTest, ConfusionMatrixRowsSumToClassCounts) {
  const auto train = tiny_dataset(12, 5);
  SmallCnn model(2, 32, ScaleAlgo::Bilinear, 7);
  TrainConfig config;
  config.epochs = 3;
  config.learning_rate = 0.05f;
  model.train(train, config);
  const auto matrix = model.confusion(train);
  ASSERT_EQ(matrix.size(), 2u);
  for (int label = 0; label < 2; ++label) {
    int row_total = 0;
    for (int predicted = 0; predicted < 2; ++predicted) {
      row_total += matrix[static_cast<std::size_t>(label)]
                         [static_cast<std::size_t>(predicted)];
    }
    EXPECT_EQ(row_total, 12);
  }
  // After training the separable task, the diagonal dominates.
  EXPECT_GE(matrix[0][0] + matrix[1][1], 20);
  EXPECT_THROW(model.confusion({}), std::invalid_argument);
}

}  // namespace
}  // namespace decam::ml
