// Tests for 2-D resize(): identity, separability against the explicit
// operator, known geometric cases and the round-trip helper.
#include "imaging/scale.h"

#include <gtest/gtest.h>

#include <cmath>

#include "attack/coeff_matrix.h"
#include "data/rng.h"

namespace decam {
namespace {

Image noise_image(int w, int h, int channels, std::uint64_t seed) {
  data::Rng rng(seed);
  Image img(w, h, channels);
  for (int c = 0; c < channels; ++c) {
    for (float& v : img.plane(c)) {
      v = static_cast<float>(rng.next_range(0.0, 255.0));
    }
  }
  return img;
}

class ResizeIdentity : public ::testing::TestWithParam<ScaleAlgo> {};

TEST_P(ResizeIdentity, SameSizeResizeIsExact) {
  const Image img = noise_image(23, 17, 3, 7);
  const Image out = resize(img, 23, 17, GetParam());
  ASSERT_TRUE(out.same_shape(img));
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        EXPECT_NEAR(out.at(x, y, c), img.at(x, y, c), 1e-3f)
            << "at " << x << "," << y << "," << c;
      }
    }
  }
}

TEST_P(ResizeIdentity, ConstantImageStaysConstant) {
  const Image img(40, 30, 1, 99.0f);
  const Image out = resize(img, 13, 11, GetParam());
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      EXPECT_NEAR(out.at(x, y, 0), 99.0f, 1e-3f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ResizeIdentity,
                         ::testing::Values(ScaleAlgo::Nearest,
                                           ScaleAlgo::Bilinear,
                                           ScaleAlgo::Bicubic, ScaleAlgo::Area,
                                           ScaleAlgo::Lanczos4),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

class ResizeOperatorEquivalence
    : public ::testing::TestWithParam<ScaleAlgo> {};

TEST_P(ResizeOperatorEquivalence, MatchesExplicitLinearOperator) {
  // resize(X) must equal L X R^T computed with the CoeffMatrix view —
  // the attack's model of the scaler and the actual scaler must agree.
  const ScaleAlgo algo = GetParam();
  const Image img = noise_image(19, 13, 1, 11);
  const int out_w = 7, out_h = 5;
  const Image fast = resize(img, out_w, out_h, algo);

  const attack::CoeffMatrix R =
      attack::CoeffMatrix::for_scaling(img.width(), out_w, algo);
  const attack::CoeffMatrix L =
      attack::CoeffMatrix::for_scaling(img.height(), out_h, algo);
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      double acc = 0.0;
      for (const Tap& ty : L.row_taps(oy)) {
        for (const Tap& tx : R.row_taps(ox)) {
          acc += static_cast<double>(ty.weight) * tx.weight *
                 img.at(tx.index, ty.index, 0);
        }
      }
      EXPECT_NEAR(fast.at(ox, oy, 0), acc, 1e-3)
          << to_string(algo) << " at " << ox << "," << oy;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ResizeOperatorEquivalence,
                         ::testing::Values(ScaleAlgo::Nearest,
                                           ScaleAlgo::Bilinear,
                                           ScaleAlgo::Bicubic, ScaleAlgo::Area,
                                           ScaleAlgo::Lanczos4),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Resize, NearestDownscalePicksTopLeftOfEachBlock) {
  Image img(4, 4, 1);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) img.at(x, y, 0) = static_cast<float>(y * 4 + x);
  }
  const Image out = resize(img, 2, 2, ScaleAlgo::Nearest);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0), 8.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1, 0), 10.0f);
}

TEST(Resize, BilinearHalfScaleAveragesBlocks) {
  Image img(4, 2, 1);
  img.at(0, 0, 0) = 0.0f;
  img.at(1, 0, 0) = 100.0f;
  img.at(2, 0, 0) = 50.0f;
  img.at(3, 0, 0) = 150.0f;
  img.at(0, 1, 0) = 200.0f;
  img.at(1, 1, 0) = 100.0f;
  img.at(2, 1, 0) = 250.0f;
  img.at(3, 1, 0) = 50.0f;
  const Image out = resize(img, 2, 1, ScaleAlgo::Bilinear);
  EXPECT_NEAR(out.at(0, 0, 0), (0 + 100 + 200 + 100) / 4.0f, 1e-3f);
  EXPECT_NEAR(out.at(1, 0, 0), (50 + 150 + 250 + 50) / 4.0f, 1e-3f);
}

TEST(Resize, UpscaleInterpolatesBetweenSamples) {
  Image img(2, 1, 1);
  img.at(0, 0, 0) = 0.0f;
  img.at(1, 0, 0) = 100.0f;
  const Image out = resize(img, 4, 1, ScaleAlgo::Bilinear);
  // Half-pixel mapping: centres at -0.25, 0.25, 0.75, 1.25 (clamped).
  EXPECT_NEAR(out.at(0, 0, 0), 0.0f, 1e-3f);
  EXPECT_NEAR(out.at(1, 0, 0), 25.0f, 1e-3f);
  EXPECT_NEAR(out.at(2, 0, 0), 75.0f, 1e-3f);
  EXPECT_NEAR(out.at(3, 0, 0), 100.0f, 1e-3f);
}

TEST(Resize, ChannelsAreIndependent) {
  Image img(8, 8, 3);
  for (int c = 0; c < 3; ++c) {
    for (float& v : img.plane(c)) v = static_cast<float>(50 * c);
  }
  const Image out = resize(img, 3, 3, ScaleAlgo::Bicubic);
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 3; ++x) {
        EXPECT_NEAR(out.at(x, y, c), 50.0f * c, 1e-3f);
      }
    }
  }
}

TEST(Resize, SquareConvenienceOverload) {
  const Image img = noise_image(30, 20, 1, 5);
  const Image a = resize(img, 10, ScaleAlgo::Bilinear);
  const Image b = resize(img, 10, 10, ScaleAlgo::Bilinear);
  ASSERT_TRUE(a.same_shape(b));
  EXPECT_FLOAT_EQ(a.at(5, 5, 0), b.at(5, 5, 0));
}

TEST(Resize, RejectsEmptyAndBadGeometry) {
  EXPECT_THROW(resize(Image(), 4, 4, ScaleAlgo::Bilinear),
               std::invalid_argument);
  const Image img = noise_image(8, 8, 1, 1);
  EXPECT_THROW(resize(img, 0, 4, ScaleAlgo::Bilinear), std::invalid_argument);
  EXPECT_THROW(resize(img, 4, -1, ScaleAlgo::Bilinear), std::invalid_argument);
}

TEST(ScaleRoundTrip, PreservesGeometryAndSmoothContent) {
  // A smooth gradient survives the round trip almost exactly — this is the
  // benign-image premise of the scaling detection method.
  Image img(64, 48, 1);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) {
      img.at(x, y, 0) = static_cast<float>(x * 2 + y);
    }
  }
  const Image round = scale_round_trip(img, 32, 24, ScaleAlgo::Bilinear,
                                       ScaleAlgo::Bilinear);
  ASSERT_TRUE(round.same_shape(img));
  double max_err = 0.0;
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) {
      max_err = std::max(max_err,
                         std::abs(static_cast<double>(round.at(x, y, 0)) -
                                  img.at(x, y, 0)));
    }
  }
  EXPECT_LT(max_err, 3.0);
}

TEST(Resize, LanczosOvershootsStepEdgesUnlikeBilinear) {
  // Negative lobes make Lanczos overshoot a step edge; bilinear cannot.
  Image img(32, 1, 1);
  for (int x = 0; x < 32; ++x) img.at(x, 0, 0) = x < 16 ? 0.0f : 200.0f;
  const Image lanczos = resize(img, 64, 1, ScaleAlgo::Lanczos4);
  const Image bilinear = resize(img, 64, 1, ScaleAlgo::Bilinear);
  float lanczos_max = lanczos.max_value();
  float bilinear_max = bilinear.max_value();
  EXPECT_GT(lanczos_max, 200.0f + 1.0f);
  EXPECT_LE(bilinear_max, 200.0f + 1e-3f);
}

}  // namespace
}  // namespace decam
