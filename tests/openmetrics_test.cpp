// OpenMetrics exposition (obs/openmetrics.h): name sanitization, the
// counter/gauge/histogram encodings, cumulative bucket arithmetic, and the
// terminating EOF marker.
#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace decam::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool contains_line(const std::string& text, const std::string& line) {
  for (const std::string& l : lines_of(text)) {
    if (l == line) return true;
  }
  return false;
}

class OpenMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::instance().reset(); }
};

TEST_F(OpenMetricsTest, NamesAreSanitizedAndPrefixed) {
  EXPECT_EQ(openmetrics_name("kernel_cache/hits"),
            "decam_kernel_cache_hits");
  EXPECT_EQ(openmetrics_name("battery/score"), "decam_battery_score");
  EXPECT_EQ(openmetrics_name("weird name-with.bytes"),
            "decam_weird_name_with_bytes");
  // Colons and underscores are legal and survive.
  EXPECT_EQ(openmetrics_name("a:b_c"), "decam_a:b_c");
}

TEST_F(OpenMetricsTest, CounterGainsTotalSuffixAndTypeLine) {
  MetricsRegistry::instance().counter("omtest/clicks").add(42);
  const std::string text = export_openmetrics();
  EXPECT_TRUE(
      contains_line(text, "# TYPE decam_omtest_clicks counter"))
      << text;
  EXPECT_TRUE(contains_line(text, "decam_omtest_clicks_total 42")) << text;
}

TEST_F(OpenMetricsTest, GaugeIsExportedBare) {
  MetricsRegistry::instance().gauge("omtest/depth").set(7.5);
  const std::string text = export_openmetrics();
  EXPECT_TRUE(contains_line(text, "# TYPE decam_omtest_depth gauge")) << text;
  EXPECT_TRUE(contains_line(text, "decam_omtest_depth 7.5")) << text;
}

TEST_F(OpenMetricsTest, ExpositionEndsWithSingleEofMarker) {
  MetricsRegistry::instance().counter("omtest/one").add();
  const std::string text = export_openmetrics();
  const std::vector<std::string> lines = lines_of(text);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");
  int eof_count = 0;
  for (const std::string& line : lines) {
    if (line == "# EOF") ++eof_count;
    EXPECT_FALSE(line.empty()) << "blank line in exposition";
  }
  EXPECT_EQ(eof_count, 1);
}

TEST_F(OpenMetricsTest, HistogramBucketsAreCumulativeInSeconds) {
  Histogram& histogram =
      MetricsRegistry::instance().histogram("omtest/lat");
  histogram.record(0.5);   // ms
  histogram.record(2.0);
  histogram.record(8.0);
  const std::string text = export_openmetrics();
  EXPECT_TRUE(
      contains_line(text, "# TYPE decam_omtest_lat_seconds histogram"))
      << text;
  EXPECT_TRUE(contains_line(text, "# UNIT decam_omtest_lat_seconds seconds"))
      << text;

  // Walk the bucket samples: le values and cumulative counts must both be
  // non-decreasing, and the mandatory +Inf bucket equals the total count.
  double prev_le = 0.0;
  long prev_count = -1;
  bool saw_inf = false;
  for (const std::string& line : lines_of(text)) {
    const std::string prefix = "decam_omtest_lat_seconds_bucket{le=\"";
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t close = line.find('"', prefix.size());
    ASSERT_NE(close, std::string::npos);
    const std::string le = line.substr(prefix.size(), close - prefix.size());
    const long count = std::stol(line.substr(close + 2));
    EXPECT_GE(count, prev_count) << line;
    prev_count = count;
    if (le == "+Inf") {
      saw_inf = true;
      EXPECT_EQ(count, 3);
    } else {
      const double le_value = std::stod(le);
      EXPECT_GT(le_value, prev_le) << line;
      prev_le = le_value;
      EXPECT_LT(le_value, 1.0);  // seconds, not milliseconds
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_TRUE(contains_line(text, "decam_omtest_lat_seconds_count 3"))
      << text;
  // Sum converted to seconds: 10.5 ms.
  EXPECT_TRUE(contains_line(text, "decam_omtest_lat_seconds_sum 0.0105"))
      << text;
}

TEST_F(OpenMetricsTest, EmptyHistogramStillWellFormed) {
  (void)MetricsRegistry::instance().histogram("omtest/idle");
  const std::string text = export_openmetrics();
  EXPECT_TRUE(
      contains_line(text, "decam_omtest_idle_seconds_bucket{le=\"+Inf\"} 0"))
      << text;
  EXPECT_TRUE(contains_line(text, "decam_omtest_idle_seconds_count 0"))
      << text;
}

TEST_F(OpenMetricsTest, WriteOpenMetricsProducesReadableFile) {
  MetricsRegistry::instance().counter("omtest/file").add(5);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "decam_omtest_metrics.txt";
  write_openmetrics(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_TRUE(contains_line(content.str(), "decam_omtest_file_total 5"));
  std::filesystem::remove(path);
}

TEST_F(OpenMetricsTest, SignalDumpIsNoOpWithoutSignal) {
  // No SIGUSR1 arrived: the service call must not write anything.
  EXPECT_FALSE(service_openmetrics_signal_dump());
}

}  // namespace
}  // namespace decam::obs
