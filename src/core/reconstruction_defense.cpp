#include "core/reconstruction_defense.h"

#include <algorithm>
#include <vector>

#include "attack/critical_pixels.h"

namespace decam::core {

Image reconstruct_critical_pixels(const Image& input,
                                  const ReconstructionConfig& config) {
  DECAM_REQUIRE(!input.empty(), "reconstruction of empty image");
  DECAM_REQUIRE(config.target_width > 0 && config.target_height > 0,
                "target geometry must be positive");
  DECAM_REQUIRE(config.neighbourhood >= 1, "neighbourhood must be >= 1");
  const Image mask = attack::critical_mask(
      input.width(), input.height(), config.target_width,
      config.target_height, config.algo);
  Image out = input;
  std::vector<float> clean;
  std::vector<float> any;
  const int radius = config.neighbourhood;
  for (int y = 0; y < input.height(); ++y) {
    for (int x = 0; x < input.width(); ++x) {
      if (mask.at(x, y, 0) == 0.0f) continue;  // not attacker-controlled
      for (int c = 0; c < input.channels(); ++c) {
        clean.clear();
        any.clear();
        for (int dy = -radius; dy <= radius; ++dy) {
          for (int dx = -radius; dx <= radius; ++dx) {
            const int nx = std::clamp(x + dx, 0, input.width() - 1);
            const int ny = std::clamp(y + dy, 0, input.height() - 1);
            const float value = input.at(nx, ny, c);
            any.push_back(value);
            if (mask.at(nx, ny, 0) == 0.0f) clean.push_back(value);
          }
        }
        std::vector<float>& pool = clean.empty() ? any : clean;
        auto mid = pool.begin() + pool.size() / 2;
        std::nth_element(pool.begin(), mid, pool.end());
        out.at(x, y, c) = *mid;
      }
    }
  }
  return out;
}

}  // namespace decam::core
