#include "core/steganalysis_detector.h"

#include <algorithm>
#include <cmath>

#include "cv/connected_components.h"
#include "cv/threshold.h"
#include "obs/span.h"
#include "signal/spectrum.h"

namespace decam::core {

SteganalysisDetector::SteganalysisDetector(SteganalysisDetectorConfig config)
    : config_(config) {
  DECAM_REQUIRE(config.radius_fraction > 0.0 && config.radius_fraction <= 1.5,
                "radius fraction out of range");
  DECAM_REQUIRE(config.binarize_k > 0.0, "binarize_k must be positive");
  DECAM_REQUIRE(config.min_blob_area >= 0,
                "min_blob_area must be >= 0 (0 selects the automatic floor)");
}

Image SteganalysisDetector::binary_spectrum(const Image& input) const {
  return binarize_spectrum(
      centered_log_spectrum(input, AnalysisContext::spectrum_workspace()));
}

Image SteganalysisDetector::binarize_spectrum(const Image& spectrum) const {
  // The spectrum has the same dimensions as the image it came from, so the
  // low-pass radius can be derived from it directly.
  const double radius = config_.radius_fraction *
                        std::min(spectrum.width(), spectrum.height()) / 2.0;
  const Image masked = circular_low_pass(spectrum, radius);

  // Adaptive level from the statistics INSIDE the mask: mean + k*std. The
  // DC peak and attack harmonics sit many sigma above the natural 1/f
  // falloff, so this level isolates them regardless of image content.
  const double cx = (masked.width() - 1) / 2.0;
  const double cy = (masked.height() - 1) / 2.0;
  const double r2 = radius * radius;
  double sum = 0.0, sum_sq = 0.0;
  std::size_t count = 0;
  for (int y = 0; y < masked.height(); ++y) {
    for (int x = 0; x < masked.width(); ++x) {
      const double dx = x - cx;
      const double dy = y - cy;
      if (dx * dx + dy * dy > r2) continue;
      const double v = masked.at(x, y, 0);
      sum += v;
      sum_sq += v * v;
      ++count;
    }
  }
  DECAM_REQUIRE(count > 0, "low-pass mask left no pixels");
  const double mean = sum / static_cast<double>(count);
  const double variance =
      std::max(sum_sq / static_cast<double>(count) - mean * mean, 0.0);
  const double level = mean + config_.binarize_k * std::sqrt(variance);
  return binarize(masked, static_cast<float>(std::min(level, 254.0)));
}

int SteganalysisDetector::count_csp(const Image& input) const {
  return count_csp_in(
      centered_log_spectrum(input, AnalysisContext::spectrum_workspace()));
}

int SteganalysisDetector::count_csp_in(const Image& spectrum) const {
  int min_area = config_.min_blob_area;
  if (min_area == 0) {
    // Benign spectral speckles scale with image area (~plane/8000 at the
    // sizes we evaluate) while the harmonic copies of even small embedded
    // targets stay above ~plane/3400; the floor sits between the two. The
    // spectrum and the input share dimensions, so the floor is identical.
    min_area = std::max<int>(
        6, static_cast<int>(static_cast<long long>(spectrum.width()) *
                            spectrum.height() / 4500));
  }
  return count_blobs(binarize_spectrum(spectrum), min_area);
}

double SteganalysisDetector::score(const Image& input) const {
  DECAM_SPAN("detector/steganalysis/csp");
  return static_cast<double>(count_csp(input));
}

double SteganalysisDetector::score(const AnalysisContext& context) const {
  if (!context.has_spectrum()) {
    return score(context.input());
  }
  DECAM_SPAN("detector/steganalysis/csp");
  return static_cast<double>(count_csp_in(context.spectrum()));
}

double SteganalysisDetector::score(AnalysisContext& context) const {
  context.ensure(AnalysisStage::Spectrum);
  return score(static_cast<const AnalysisContext&>(context));
}

void SteganalysisDetector::prime(AnalysisContextSpec& spec) const {
  spec.spectrum = true;
}

std::string SteganalysisDetector::name() const { return "steganalysis/csp"; }

}  // namespace decam::core
