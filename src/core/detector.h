// Common interface of Decamouflage's detection methods.
//
// A Detector maps an input image to a scalar score; a Calibration
// (core/calibration.h) turns scores into attack/benign decisions. Keeping
// score and decision separate is what lets one code path serve both the
// white-box threshold search (needs raw scores of both classes) and the
// black-box percentile calibration (needs benign scores only), and lets the
// ensemble combine heterogeneous methods.
#pragma once

#include <memory>
#include <string>

#include "imaging/image.h"

namespace decam::core {

/// The similarity metric a spatial-domain detector reduces its image pair
/// with. CSP is the steganalysis detector's count metric.
enum class Metric { MSE, SSIM, CSP };

const char* to_string(Metric metric);

class Detector {
 public:
  virtual ~Detector() = default;

  /// Scalar detection score for one image. Higher-is-attack vs
  /// lower-is-attack depends on the method+metric; Calibration carries the
  /// polarity.
  virtual double score(const Image& input) const = 0;

  /// Human-readable method name ("scaling/mse", ...).
  virtual std::string name() const = 0;
};

}  // namespace decam::core
