// Common interface of Decamouflage's detection methods.
//
// A Detector maps an input image to a scalar score; a Calibration
// (core/calibration.h) turns scores into attack/benign decisions. Keeping
// score and decision separate is what lets one code path serve both the
// white-box threshold search (needs raw scores of both classes) and the
// black-box percentile calibration (needs benign scores only), and lets the
// ensemble combine heterogeneous methods.
#pragma once

#include <memory>
#include <string>

#include "core/analysis_context.h"
#include "imaging/image.h"

namespace decam::core {

/// The similarity metric a spatial-domain detector reduces its image pair
/// with. CSP is the steganalysis detector's count metric.
enum class Metric { MSE, SSIM, CSP };

const char* to_string(Metric metric);

class Detector {
 public:
  virtual ~Detector() = default;

  /// Scalar detection score for one image. Higher-is-attack vs
  /// lower-is-attack depends on the method+metric; Calibration carries the
  /// polarity.
  virtual double score(const Image& input) const = 0;

  /// Scores through a prebuilt AnalysisContext. Detectors override this to
  /// reuse matching intermediates; the default recomputes from the input,
  /// so a context built for a different configuration is never wrong, only
  /// slower.
  virtual double score(const AnalysisContext& context) const {
    return score(context.input());
  }

  /// Staged scoring: materialises the plan stages this detector consumes
  /// (AnalysisContext::ensure) before scoring, so a Deferred context only
  /// ever pays for the detectors that actually run — the short-circuit
  /// ensemble vote's fast path. The default builds nothing and scores
  /// through the const overload.
  virtual double score(AnalysisContext& context) const {
    return score(static_cast<const AnalysisContext&>(context));
  }

  /// Extends `spec` with the intermediates this detector can reuse, so one
  /// context serves a whole ensemble (EnsembleDetector::context_spec()).
  virtual void prime(AnalysisContextSpec& spec) const { (void)spec; }

  /// Human-readable method name ("scaling/mse", ...).
  virtual std::string name() const = 0;
};

}  // namespace decam::core
