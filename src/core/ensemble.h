// Majority-vote ensemble (paper Section V-E): the three detection methods
// vote independently and the majority decides. This both lifts accuracy
// above the best single method and hardens adaptive attacks, which now have
// to fool spatial- and frequency-domain methods simultaneously.
#pragma once

#include <memory>
#include <vector>

#include "core/calibration.h"
#include "core/detector.h"

namespace decam::core {

class EnsembleDetector {
 public:
  struct Member {
    std::shared_ptr<const Detector> detector;
    Calibration calibration;
  };

  /// At least one member; an odd count avoids ties (a tie counts as
  /// benign — the conservative choice for FRR).
  explicit EnsembleDetector(std::vector<Member> members);

  /// True when a strict majority of members flags the image.
  bool is_attack(const Image& input) const;
  bool is_attack(const AnalysisContext& context) const;

  /// Individual member votes (for diagnostics and the examples).
  std::vector<bool> votes(const Image& input) const;
  std::vector<bool> votes(const AnalysisContext& context) const;

  /// The union of intermediates the members can reuse: each member primes
  /// the spec in turn, so one AnalysisContext built from the result serves
  /// every member (mismatched members silently recompute).
  AnalysisContextSpec context_spec() const;

  /// Majority decision from precomputed member scores, in member order.
  /// Lets the benches reuse cached scores instead of re-running detectors.
  bool vote_scores(std::span<const double> member_scores) const;

  const std::vector<Member>& members() const { return members_; }

 private:
  std::vector<Member> members_;
};

}  // namespace decam::core
