// Majority-vote ensemble (paper Section V-E): the three detection methods
// vote independently and the majority decides. This both lifts accuracy
// above the best single method and hardens adaptive attacks, which now have
// to fool spatial- and frequency-domain methods simultaneously.
//
// Short-circuit voting: members are evaluated in order and the tally stops
// as soon as the remaining members cannot change the outcome (two of three
// already agree). Skipped members never score — and, on the deferred
// context path, never build their intermediates — so the decided-early case
// costs a strict subset of the full battery. The decision itself is
// unchanged (a decided strict majority is final by definition); skipping
// only removes scores, which decide() reports as nullopt and the
// `battery/skip_<method>` counters account for. Exact-ROC runs that need
// every score disable it with set_short_circuit(false).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/calibration.h"
#include "core/detector.h"

namespace decam::core {

class EnsembleDetector {
 public:
  struct Member {
    std::shared_ptr<const Detector> detector;
    Calibration calibration;
  };

  /// One member's outcome plus the overall verdict. `scores[i]` /
  /// `votes[i]` are nullopt when member i was skipped by the short circuit.
  struct Decision {
    bool attack = false;
    std::vector<std::optional<double>> scores;
    std::vector<std::optional<bool>> votes;
    std::size_t evaluated = 0;  // members actually scored
  };

  /// At least one member; an odd count avoids ties (a tie counts as
  /// benign — the conservative choice for FRR).
  explicit EnsembleDetector(std::vector<Member> members);

  /// True when a strict majority of members flags the image.
  bool is_attack(const Image& input) const;
  bool is_attack(const AnalysisContext& context) const;

  /// Full evaluation with per-member outcomes. From an Image the context is
  /// built Deferred, so skipped members never build their intermediates;
  /// the staged overload reuses whatever `context` already holds.
  Decision decide(const Image& input) const;
  Decision decide(AnalysisContext& context) const;

  /// Individual member votes (for diagnostics and the examples). Always
  /// evaluates every member, regardless of the short-circuit setting.
  std::vector<bool> votes(const Image& input) const;
  std::vector<bool> votes(const AnalysisContext& context) const;

  /// The union of intermediates the members can reuse: each member primes
  /// the spec in turn, so one AnalysisContext built from the result serves
  /// every member (mismatched members silently recompute).
  AnalysisContextSpec context_spec() const;

  /// Majority decision from precomputed member scores, in member order.
  /// Lets the benches reuse cached scores instead of re-running detectors.
  bool vote_scores(std::span<const double> member_scores) const;

  /// Enables/disables short-circuit voting (default: enabled). Disable for
  /// exact-ROC runs that must record every member's score.
  void set_short_circuit(bool enabled) { short_circuit_ = enabled; }
  bool short_circuit() const { return short_circuit_; }

  const std::vector<Member>& members() const { return members_; }

 private:
  template <typename ScoreMember>
  Decision decide_impl(ScoreMember&& score_member) const;

  std::vector<Member> members_;
  bool short_circuit_ = true;
};

}  // namespace decam::core
