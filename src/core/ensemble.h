// Majority-vote ensemble (paper Section V-E): the three detection methods
// vote independently and the majority decides. This both lifts accuracy
// above the best single method and hardens adaptive attacks, which now have
// to fool spatial- and frequency-domain methods simultaneously.
#pragma once

#include <memory>
#include <vector>

#include "core/calibration.h"
#include "core/detector.h"

namespace decam::core {

class EnsembleDetector {
 public:
  struct Member {
    std::shared_ptr<const Detector> detector;
    Calibration calibration;
  };

  /// At least one member; an odd count avoids ties (a tie counts as
  /// benign — the conservative choice for FRR).
  explicit EnsembleDetector(std::vector<Member> members);

  /// True when a strict majority of members flags the image.
  bool is_attack(const Image& input) const;

  /// Individual member votes (for diagnostics and the examples).
  std::vector<bool> votes(const Image& input) const;

  /// Majority decision from precomputed member scores, in member order.
  /// Lets the benches reuse cached scores instead of re-running detectors.
  bool vote_scores(std::span<const double> member_scores) const;

  const std::vector<Member>& members() const { return members_; }

 private:
  std::vector<Member> members_;
};

}  // namespace decam::core
