// Steganalysis detection (paper Section III-C, Algorithm 3): treat the
// attack's hidden pixels as steganographic payload and look for them in the
// frequency domain. The attack writes target pixels on a regular sampling
// grid, which shows up as Dirac-like harmonics in the DFT; after centering,
// log-scaling, low-pass masking and binarisation, benign images leave one
// bright blob (the DC peak plus its natural 1/f skirt) while attack images
// leave several — the "centered spectrum points" (CSP).
//
// The score is the CSP count itself; the paper's fixed threshold is 2
// (>= 2 blobs => attack) and needs no per-dataset calibration.
#pragma once

#include "core/detector.h"

namespace decam::core {

struct SteganalysisDetectorConfig {
  // Low-pass radius as a fraction of min(width, height)/2 — D_T of Eq. (7).
  double radius_fraction = 0.95;
  // Binarisation level: mean + k*std of the masked spectrum magnitudes.
  // 2.5 keeps the harmonic copies of the target's spectral lobe while the
  // benign 1/f skirt stays below (validated in tests/detectors_test.cpp).
  double binarize_k = 2.5;
  // Ignore blobs smaller than this many pixels. 0 = automatic: the
  // harmonic copies grow with image area, and so do benign speckles, so
  // the floor scales as max(6, width*height/4500).
  int min_blob_area = 0;
};

class SteganalysisDetector final : public Detector {
 public:
  explicit SteganalysisDetector(SteganalysisDetectorConfig config = {});

  /// Returns the CSP count as a double (integer-valued).
  double score(const Image& input) const override;
  /// Consumes the context's precomputed log-spectrum when present.
  double score(const AnalysisContext& context) const override;
  /// Staged scoring: materialises the spectrum stage first.
  double score(AnalysisContext& context) const override;
  void prime(AnalysisContextSpec& spec) const override;
  std::string name() const override;

  /// Integer CSP count.
  int count_csp(const Image& input) const;

  /// The binary spectrum the blobs are counted in (for visualisation).
  Image binary_spectrum(const Image& input) const;

  /// Mask + binarise an already-computed centered log-spectrum (same
  /// dimensions as the image it came from).
  Image binarize_spectrum(const Image& spectrum) const;

  /// Count blobs in an already-computed centered log-spectrum.
  int count_csp_in(const Image& spectrum) const;

  const SteganalysisDetectorConfig& config() const { return config_; }

 private:
  SteganalysisDetectorConfig config_;
};

}  // namespace decam::core
