// Multi-geometry scanning for the OFFLINE threat model. An online guard
// knows its own pipeline's input size, but a data curator sanitising a
// corpus for future training (the paper's backdoor scenario) may not know
// which model — hence which input geometry — an attacker targeted. A
// scaling attack only reveals itself when probed near ITS geometry (the
// round trip at other sizes reads mostly benign pixels), so the curator
// probes the standard geometries of the paper's Table 1 and flags an image
// if ANY probe fires.
//
// The steganalysis detector is geometry-free (the harmonics encode the
// ratio), so the multi-scale scanner pairs the geometry sweep of the
// scaling method with a single CSP pass.
#pragma once

#include <vector>

#include "core/calibration.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"

namespace decam::core {

struct MultiScaleConfig {
  // Candidate CNN input geometries to probe (paper Table 1 defaults).
  std::vector<int> candidate_sides = {32, 64, 96, 112, 224};
  ScaleAlgo algo = ScaleAlgo::Bilinear;
  Metric metric = Metric::MSE;
  // Per-geometry scaling threshold (shared; scores are comparable because
  // the metric is a per-pixel average), plus the universal CSP rule.
  Calibration scaling_calibration{500.0, Polarity::HighIsAttack, 0.0};
  Calibration csp_calibration{2.0, Polarity::HighIsAttack, 0.0};
};

struct MultiScaleReport {
  bool flagged = false;
  int triggered_side = 0;      // geometry whose probe fired (0 = none)
  double worst_score = 0.0;    // most attack-like scaling score seen
  bool csp_fired = false;
  int csp_count = 0;
};

class MultiScaleScanner {
 public:
  explicit MultiScaleScanner(MultiScaleConfig config);

  /// Probes every candidate geometry smaller than the input; flags when
  /// any scaling probe or the CSP rule fires.
  MultiScaleReport scan(const Image& input) const;

  const MultiScaleConfig& config() const { return config_; }

 private:
  MultiScaleConfig config_;
  SteganalysisDetector steganalysis_;
};

}  // namespace decam::core
