// AnalysisContext — the expensive per-image intermediates every detection
// method reads, computed once and shared (DESIGN.md §8).
//
// Battery::score used to rebuild the round trip / filtered image / spectrum
// inside each stage, and EnsembleDetector re-ran the full image pipeline per
// member. The context makes that sharing explicit: a caller builds one
// context per input image (eagerly, on its own thread — no hidden caches,
// nothing lazily mutated under const), then any number of detectors and
// metrics score against it.
//
// Ownership: the context borrows `input` (non-owning pointer) and owns every
// derived image. Keep the input alive for the context's lifetime; contexts
// are scoped to scoring one image and are cheap to move, never copied
// implicitly (Image is value-semantic, so copying would duplicate planes).
//
// Config matching: intermediates are only valid for the spec they were built
// with. Detectors check *_matches() and fall back to recomputing from
// input() when a shared context was built for a different geometry/scaler/
// filter — correctness never depends on the spec lining up.
#pragma once

#include <cstdint>
#include <optional>

#include "imaging/filter.h"
#include "imaging/image.h"
#include "imaging/scale.h"
#include "signal/spectrum.h"

namespace decam::core {

/// What to precompute. Defaults request nothing; detectors extend a spec via
/// Detector::prime() and the Battery derives one from its ExperimentConfig.
struct AnalysisContextSpec {
  int down_width = 0;   // > 0 enables the downscale + round trip
  int down_height = 0;
  ScaleAlgo down_algo = ScaleAlgo::Bilinear;  // victim pipeline's scaler
  ScaleAlgo up_algo = ScaleAlgo::Bilinear;    // reconstruction scaler
  int filter_window = 0;  // > 0 enables the rank-filtered image
  RankOp filter_op = RankOp::Min;
  bool spectrum = false;  // centered log-magnitude spectrum (steganalysis)
};

class AnalysisContext {
 public:
  /// Eagerly builds every intermediate `spec` requests, on the calling
  /// thread. Build cost is recorded into the `context/*` registry
  /// histograms.
  AnalysisContext(const Image& input, const AnalysisContextSpec& spec);

  /// Releases this context's contribution to the live-bytes gauge
  /// (`mem/analysis_context_bytes` — the derived images of every context
  /// currently alive, across threads).
  ~AnalysisContext();

  AnalysisContext(AnalysisContext&& other) noexcept;
  AnalysisContext& operator=(AnalysisContext&&) = delete;
  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  const Image& input() const { return *input_; }
  const AnalysisContextSpec& spec() const { return spec_; }

  bool has_downscaled() const { return downscaled_.has_value(); }
  bool has_round_trip() const { return round_trip_.has_value(); }
  bool has_filtered() const { return filtered_.has_value(); }
  bool has_spectrum() const { return spectrum_.has_value(); }

  /// The pipeline's view: input resized to (down_width, down_height).
  const Image& downscaled() const;
  /// Downscale-then-upscale reconstruction at the input geometry.
  const Image& round_trip() const;
  /// Rank-filtered input (filter_window, filter_op).
  const Image& filtered() const;
  /// Centered log-magnitude spectrum of the input.
  const Image& spectrum() const;

  /// True when round_trip() exists and was built with exactly this
  /// geometry + scaler pair.
  bool round_trip_matches(int down_width, int down_height, ScaleAlgo down,
                          ScaleAlgo up) const;
  /// True when downscaled() exists for exactly this geometry + scaler.
  bool downscale_matches(int down_width, int down_height,
                         ScaleAlgo algo) const;
  /// True when filtered() exists for exactly this window + op.
  bool filter_matches(int window, RankOp op) const;

  /// Per-thread spectrum scratch (complex frequency plane + shifted
  /// log-magnitude buffer) shared by every context built on this thread.
  /// Detectors scoring without a context reuse it through this accessor,
  /// so a dataset sweep allocates the FFT buffers once per worker, not
  /// once per image.
  static SpectrumWorkspace& spectrum_workspace();

 private:
  const Image* input_;
  AnalysisContextSpec spec_;
  std::optional<Image> downscaled_;
  std::optional<Image> round_trip_;
  std::optional<Image> filtered_;
  std::optional<Image> spectrum_;
  std::uint64_t bytes_ = 0;  // this context's share of the live-bytes gauge
};

}  // namespace decam::core
