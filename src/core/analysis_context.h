// AnalysisContext — the expensive per-image intermediates every detection
// method reads, computed through an explicit staged analysis plan and
// shared (DESIGN.md §8, §11).
//
// Battery::score used to rebuild the round trip / filtered image / spectrum
// inside each stage, and EnsembleDetector re-ran the full image pipeline per
// member. The context makes that sharing explicit: a caller builds one
// context per input image (on its own thread — no hidden global caches),
// then any number of detectors and metrics score against it.
//
// Staging: the spec expands to an ordered AnalysisPlan of stages (round
// trip, rank filter, spectrum). An Eager context (the default, and the
// previous behaviour) materialises every planned stage in the constructor.
// A Deferred context records the plan and materialises a stage the first
// time ensure(stage) is called — the short-circuit ensemble vote uses this
// so a detector skipped by an already-decided majority never pays for its
// intermediates. ensure() is non-const and must be called before the const
// accessors; accessors never build behind the caller's back.
//
// Ownership: the context borrows `input` (non-owning pointer) and owns every
// derived image. Keep the input alive for the context's lifetime; contexts
// are scoped to scoring one image and are cheap to move, never copied
// implicitly (Image is value-semantic, so copying would duplicate planes).
//
// Config matching: intermediates are only valid for the spec they were built
// with. Detectors check *_matches() and fall back to recomputing from
// input() when a shared context was built for a different geometry/scaler/
// filter — correctness never depends on the spec lining up.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "imaging/filter.h"
#include "imaging/image.h"
#include "imaging/scale.h"
#include "signal/spectrum.h"

namespace decam::core {

/// Where the spectrum stage takes its input. The paper's steganalysis
/// detector transforms the input image; RoundTrip substitutes the
/// reconstruction (same geometry, already resident from the scaling stage)
/// for callers that trade exact paper scores for one less full-image read —
/// never the default, and only honoured when the round trip exists at the
/// input geometry ("where shapes allow").
enum class SpectrumSource { Input, RoundTrip };

/// What to precompute. Defaults request nothing; detectors extend a spec via
/// Detector::prime() and the Battery derives one from its ExperimentConfig.
struct AnalysisContextSpec {
  int down_width = 0;   // > 0 enables the downscale + round trip
  int down_height = 0;
  ScaleAlgo down_algo = ScaleAlgo::Bilinear;  // victim pipeline's scaler
  ScaleAlgo up_algo = ScaleAlgo::Bilinear;    // reconstruction scaler
  int filter_window = 0;  // > 0 enables the rank-filtered image
  RankOp filter_op = RankOp::Min;
  bool spectrum = false;  // centered log-magnitude spectrum (steganalysis)
  SpectrumSource spectrum_source = SpectrumSource::Input;
};

/// One stage of the analysis plan.
enum class AnalysisStage { RoundTrip, Filter, Spectrum };

const char* to_string(AnalysisStage stage);

class AnalysisContext {
 public:
  enum class Build {
    Eager,     // materialise every planned stage in the constructor
    Deferred,  // record the plan; stages build on first ensure()
  };

  /// Builds the stages `spec` requests on the calling thread (all of them
  /// when `build` is Eager, none yet when Deferred). Build cost is recorded
  /// into the `context/*` registry histograms as each stage materialises.
  AnalysisContext(const Image& input, const AnalysisContextSpec& spec,
                  Build build = Build::Eager);

  /// Releases this context's contribution to the live-bytes gauge
  /// (`mem/analysis_context_bytes` — the derived images of every context
  /// currently alive, across threads).
  ~AnalysisContext();

  AnalysisContext(AnalysisContext&& other) noexcept;
  AnalysisContext& operator=(AnalysisContext&&) = delete;
  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  const Image& input() const { return *input_; }
  const AnalysisContextSpec& spec() const { return spec_; }

  /// The ordered stages this context's spec requests (build order). A
  /// Deferred context materialises a suffix-free subset of this plan: only
  /// the stages ensure()d so far.
  const std::vector<AnalysisStage>& plan() const { return plan_; }

  /// Materialises one planned stage (no-op when already built or when the
  /// spec never requested it). Deferred contexts call this — directly or
  /// through Detector::score(AnalysisContext&) — before the accessors.
  void ensure(AnalysisStage stage);
  /// Materialises every planned stage (what the Eager constructor does).
  void ensure_all();

  bool has_downscaled() const { return downscaled_.has_value(); }
  bool has_round_trip() const { return round_trip_.has_value(); }
  bool has_filtered() const { return filtered_.has_value(); }
  bool has_spectrum() const { return spectrum_.has_value(); }

  /// The pipeline's view: input resized to (down_width, down_height).
  const Image& downscaled() const;
  /// Downscale-then-upscale reconstruction at the input geometry.
  const Image& round_trip() const;
  /// Rank-filtered input (filter_window, filter_op).
  const Image& filtered() const;
  /// Centered log-magnitude spectrum (of the input, unless the spec opted
  /// into SpectrumSource::RoundTrip).
  const Image& spectrum() const;

  /// True when round_trip() exists and was built with exactly this
  /// geometry + scaler pair.
  bool round_trip_matches(int down_width, int down_height, ScaleAlgo down,
                          ScaleAlgo up) const;
  /// True when downscaled() exists for exactly this geometry + scaler.
  bool downscale_matches(int down_width, int down_height,
                         ScaleAlgo algo) const;
  /// True when filtered() exists for exactly this window + op.
  bool filter_matches(int window, RankOp op) const;
  /// True when spectrum() exists and transforms the input image itself
  /// (the paper's semantics — false for a RoundTrip-sourced spectrum).
  bool spectrum_matches_input() const;

  /// Per-thread spectrum scratch (complex frequency plane + shifted
  /// log-magnitude buffer) shared by every context built on this thread.
  /// Detectors scoring without a context reuse it through this accessor,
  /// so a dataset sweep allocates the FFT buffers once per worker, not
  /// once per image.
  static SpectrumWorkspace& spectrum_workspace();

 private:
  void build_round_trip();
  void build_filter();
  void build_spectrum();
  void add_bytes(std::uint64_t bytes);

  const Image* input_;
  AnalysisContextSpec spec_;
  std::vector<AnalysisStage> plan_;
  std::optional<Image> downscaled_;
  std::optional<Image> round_trip_;
  std::optional<Image> filtered_;
  std::optional<Image> spectrum_;
  bool spectrum_from_round_trip_ = false;
  std::uint64_t bytes_ = 0;  // this context's share of the live-bytes gauge
};

}  // namespace decam::core
