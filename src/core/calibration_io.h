// Persistence for calibrated deployments: a Decamouflage installation
// calibrates once (offline, possibly on another machine) and ships the
// thresholds to its online guards as a small text profile. The format is
// line-oriented and versioned:
//
//   decam-calibration v1
//   <name> <polarity> <threshold> <train_accuracy>
//   ...
//
// where <name> is the detector name the thresholds belong to (e.g.
// "scaling/mse") and <polarity> is "high" or "low".
#pragma once

#include <filesystem>
#include <map>
#include <string>

#include "core/calibration.h"

namespace decam::core {

using CalibrationProfile = std::map<std::string, Calibration>;

/// Writes the profile; throws IoError on failure.
void save_calibrations(const CalibrationProfile& profile,
                       const std::filesystem::path& file);

/// Reads a profile; throws IoError on missing/corrupt files.
CalibrationProfile load_calibrations(const std::filesystem::path& file);

}  // namespace decam::core
