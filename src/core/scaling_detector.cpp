#include "core/scaling_detector.h"

#include "metrics/mse.h"
#include "metrics/ssim.h"
#include "obs/span.h"

namespace decam::core {

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::MSE: return "mse";
    case Metric::SSIM: return "ssim";
    case Metric::CSP: return "csp";
  }
  return "?";
}

ScalingDetector::ScalingDetector(ScalingDetectorConfig config)
    : config_(config) {
  DECAM_REQUIRE(config.down_width > 0 && config.down_height > 0,
                "downscale geometry must be positive");
  DECAM_REQUIRE(config.metric == Metric::MSE || config.metric == Metric::SSIM,
                "scaling detector uses MSE or SSIM");
}

Image ScalingDetector::round_trip(const Image& input) const {
  return scale_round_trip(input, config_.down_width, config_.down_height,
                          config_.down_algo, config_.up_algo);
}

double ScalingDetector::score(const Image& input) const {
  DECAM_SPAN(config_.metric == Metric::MSE ? "detector/scaling/mse"
                                           : "detector/scaling/ssim");
  DECAM_REQUIRE(input.width() > config_.down_width &&
                    input.height() > config_.down_height,
                "input must be larger than the CNN geometry");
  const Image round = round_trip(input);
  return config_.metric == Metric::MSE ? mse(input, round)
                                       : ssim(input, round);
}

double ScalingDetector::score(const AnalysisContext& context) const {
  if (!context.round_trip_matches(config_.down_width, config_.down_height,
                                  config_.down_algo, config_.up_algo)) {
    return score(context.input());
  }
  DECAM_SPAN(config_.metric == Metric::MSE ? "detector/scaling/mse"
                                           : "detector/scaling/ssim");
  const Image& input = context.input();
  DECAM_REQUIRE(input.width() > config_.down_width &&
                    input.height() > config_.down_height,
                "input must be larger than the CNN geometry");
  return config_.metric == Metric::MSE ? mse(input, context.round_trip())
                                       : ssim(input, context.round_trip());
}

double ScalingDetector::score(AnalysisContext& context) const {
  context.ensure(AnalysisStage::RoundTrip);
  return score(static_cast<const AnalysisContext&>(context));
}

void ScalingDetector::prime(AnalysisContextSpec& spec) const {
  spec.down_width = config_.down_width;
  spec.down_height = config_.down_height;
  spec.down_algo = config_.down_algo;
  spec.up_algo = config_.up_algo;
}

std::string ScalingDetector::name() const {
  return std::string("scaling/") + to_string(config_.metric);
}

}  // namespace decam::core
