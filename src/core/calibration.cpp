#include "core/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace decam::core {
namespace {

// Accuracy of a (threshold, polarity) rule on the two score sets.
double rule_accuracy(std::span<const double> benign,
                     std::span<const double> attack, double threshold,
                     Polarity polarity) {
  std::size_t correct = 0;
  for (double s : benign) {
    if (!is_attack(s, {threshold, polarity, 0.0})) ++correct;
  }
  for (double s : attack) {
    if (is_attack(s, {threshold, polarity, 0.0})) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(benign.size() + attack.size());
}

}  // namespace

bool is_attack(double score, const Calibration& calibration) {
  return calibration.polarity == Polarity::HighIsAttack
             ? score >= calibration.threshold
             : score <= calibration.threshold;
}

WhiteBoxResult calibrate_white_box(std::span<const double> benign_scores,
                                   std::span<const double> attack_scores) {
  DECAM_REQUIRE(!benign_scores.empty() && !attack_scores.empty(),
                "white-box calibration needs both classes");

  // Candidate thresholds: midpoints between adjacent values of the pooled
  // sorted scores (plus the extremes). Any threshold between the same two
  // data points classifies identically, so this candidate set is complete.
  std::vector<double> pooled;
  pooled.reserve(benign_scores.size() + attack_scores.size());
  pooled.insert(pooled.end(), benign_scores.begin(), benign_scores.end());
  pooled.insert(pooled.end(), attack_scores.begin(), attack_scores.end());
  std::sort(pooled.begin(), pooled.end());
  pooled.erase(std::unique(pooled.begin(), pooled.end()), pooled.end());

  std::vector<double> candidates;
  candidates.reserve(pooled.size() + 1);
  candidates.push_back(pooled.front() - 1.0);
  for (std::size_t i = 0; i + 1 < pooled.size(); ++i) {
    candidates.push_back(0.5 * (pooled[i] + pooled[i + 1]));
  }
  candidates.push_back(pooled.back() + 1.0);

  WhiteBoxResult result;
  result.trace.reserve(candidates.size());
  double best_accuracy = -1.0;
  for (double threshold : candidates) {
    const double acc_high = rule_accuracy(benign_scores, attack_scores,
                                          threshold, Polarity::HighIsAttack);
    const double acc_low = rule_accuracy(benign_scores, attack_scores,
                                         threshold, Polarity::LowIsAttack);
    const bool high_wins = acc_high >= acc_low;
    const double accuracy = high_wins ? acc_high : acc_low;
    result.trace.push_back({threshold, accuracy});
    if (accuracy > best_accuracy) {
      best_accuracy = accuracy;
      result.calibration.threshold = threshold;
      result.calibration.polarity =
          high_wins ? Polarity::HighIsAttack : Polarity::LowIsAttack;
    }
  }
  result.calibration.train_accuracy = best_accuracy;
  return result;
}

double percentile_of(std::span<const double> scores, double p) {
  DECAM_REQUIRE(!scores.empty(), "percentile of empty sample");
  DECAM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::vector<double> sorted(scores.begin(), scores.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Calibration calibrate_black_box(std::span<const double> benign_scores,
                                double percentile, Polarity polarity) {
  DECAM_REQUIRE(percentile > 0.0 && percentile <= 50.0,
                "percentile must be in (0, 50]");
  Calibration calibration;
  calibration.polarity = polarity;
  calibration.threshold =
      polarity == Polarity::HighIsAttack
          ? percentile_of(benign_scores, 100.0 - percentile)
          : percentile_of(benign_scores, percentile);
  return calibration;
}

ScoreStats score_stats(std::span<const double> scores) {
  DECAM_REQUIRE(!scores.empty(), "stats of empty sample");
  ScoreStats stats;
  stats.min = stats.max = scores[0];
  double sum = 0.0;
  for (double s : scores) {
    sum += s;
    stats.min = std::min(stats.min, s);
    stats.max = std::max(stats.max, s);
  }
  stats.mean = sum / static_cast<double>(scores.size());
  double var = 0.0;
  for (double s : scores) {
    var += (s - stats.mean) * (s - stats.mean);
  }
  stats.stddev = scores.size() > 1
                     ? std::sqrt(var / static_cast<double>(scores.size() - 1))
                     : 0.0;
  return stats;
}

}  // namespace decam::core
