// Negative baseline: Xiao et al. suggested (without experiments) comparing
// the color histogram of the input with that of its downscaled form. Both
// Quiring et al. and the Decamouflage paper report the metric does not
// separate the classes; we ship it so bench/ablation_histogram can
// reproduce that negative result instead of taking it on faith.
#pragma once

#include "core/detector.h"
#include "imaging/scale.h"

namespace decam::core {

struct HistogramDetectorConfig {
  int down_width = 224;
  int down_height = 224;
  ScaleAlgo algo = ScaleAlgo::Bilinear;
  int bins = 32;
};

class HistogramDetector final : public Detector {
 public:
  explicit HistogramDetector(HistogramDetectorConfig config);

  /// Histogram-intersection similarity between input and downscaled input.
  double score(const Image& input) const override;
  /// Reuses the context's downscaled image when geometry+algo match.
  double score(const AnalysisContext& context) const override;
  void prime(AnalysisContextSpec& spec) const override;
  std::string name() const override;

 private:
  HistogramDetectorConfig config_;
};

}  // namespace decam::core
