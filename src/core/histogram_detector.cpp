#include "core/histogram_detector.h"

#include "metrics/histogram.h"

namespace decam::core {

HistogramDetector::HistogramDetector(HistogramDetectorConfig config)
    : config_(config) {
  DECAM_REQUIRE(config.down_width > 0 && config.down_height > 0,
                "downscale geometry must be positive");
  DECAM_REQUIRE(config.bins > 0 && config.bins <= 256, "bad bin count");
}

double HistogramDetector::score(const Image& input) const {
  const Image down =
      resize(input, config_.down_width, config_.down_height, config_.algo);
  const auto h_in = color_histogram(input, config_.bins);
  const auto h_down = color_histogram(down, config_.bins);
  return histogram_intersection(h_in, h_down);
}

std::string HistogramDetector::name() const { return "histogram/intersection"; }

}  // namespace decam::core
