#include "core/histogram_detector.h"

#include "metrics/histogram.h"

namespace decam::core {

HistogramDetector::HistogramDetector(HistogramDetectorConfig config)
    : config_(config) {
  DECAM_REQUIRE(config.down_width > 0 && config.down_height > 0,
                "downscale geometry must be positive");
  DECAM_REQUIRE(config.bins > 0 && config.bins <= 256, "bad bin count");
}

double HistogramDetector::score(const Image& input) const {
  const Image down =
      resize(input, config_.down_width, config_.down_height, config_.algo);
  const auto h_in = color_histogram(input, config_.bins);
  const auto h_down = color_histogram(down, config_.bins);
  return histogram_intersection(h_in, h_down);
}

double HistogramDetector::score(const AnalysisContext& context) const {
  if (!context.downscale_matches(config_.down_width, config_.down_height,
                                 config_.algo)) {
    return score(context.input());
  }
  const auto h_in = color_histogram(context.input(), config_.bins);
  const auto h_down = color_histogram(context.downscaled(), config_.bins);
  return histogram_intersection(h_in, h_down);
}

void HistogramDetector::prime(AnalysisContextSpec& spec) const {
  // Only claim the downscale slot when nobody with an up-algo has; the
  // scaling detector's round trip produces the same downscaled image.
  if (spec.down_width == 0) {
    spec.down_width = config_.down_width;
    spec.down_height = config_.down_height;
    spec.down_algo = config_.algo;
  }
}

std::string HistogramDetector::name() const { return "histogram/intersection"; }

}  // namespace decam::core
