#include "core/ensemble.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace decam::core {
namespace {

// Skip counters are keyed by the detection method — the first segment of the
// detector name ("scaling/mse" -> "battery/skip_scaling") — so the three
// paper methods share stable counter names regardless of metric choice.
std::string skip_counter_name(const Detector& detector) {
  std::string name = detector.name();
  if (const std::size_t slash = name.find('/'); slash != std::string::npos) {
    name.resize(slash);
  }
  return "battery/skip_" + name;
}

}  // namespace

EnsembleDetector::EnsembleDetector(std::vector<Member> members)
    : members_(std::move(members)) {
  DECAM_REQUIRE(!members_.empty(), "ensemble needs at least one member");
  for (const Member& member : members_) {
    DECAM_REQUIRE(member.detector != nullptr, "null detector in ensemble");
  }
}

AnalysisContextSpec EnsembleDetector::context_spec() const {
  AnalysisContextSpec spec;
  for (const Member& member : members_) {
    member.detector->prime(spec);
  }
  return spec;
}

std::vector<bool> EnsembleDetector::votes(const Image& input) const {
  const AnalysisContext context(input, context_spec());
  return votes(context);
}

std::vector<bool> EnsembleDetector::votes(const AnalysisContext& context) const {
  DECAM_SPAN("ensemble/votes");
  std::vector<bool> result;
  result.reserve(members_.size());
  for (const Member& member : members_) {
    result.push_back(
        core::is_attack(member.detector->score(context), member.calibration));
  }
  return result;
}

// Shared tally: evaluates members in order via `score_member(i)` and stops as
// soon as the outcome is decided (when short-circuiting is on). With m
// members, `attack > m/2` can no longer change once reached, and can no
// longer be reached once `attack + remaining <= m/2`; in either state the
// remaining members are skipped and accounted through battery/skip_*.
template <typename ScoreMember>
EnsembleDetector::Decision EnsembleDetector::decide_impl(
    ScoreMember&& score_member) const {
  Decision decision;
  const std::size_t m = members_.size();
  decision.scores.resize(m);
  decision.votes.resize(m);

  std::size_t attack_votes = 0;
  std::size_t i = 0;
  for (; i < m; ++i) {
    if (short_circuit_) {
      const std::size_t remaining = m - i;
      const bool decided_attack = 2 * attack_votes > m;
      const bool decided_benign = 2 * (attack_votes + remaining) <= m;
      if (decided_attack || decided_benign) break;
    }
    const double score = score_member(i);
    const bool vote = core::is_attack(score, members_[i].calibration);
    decision.scores[i] = score;
    decision.votes[i] = vote;
    attack_votes += vote ? 1 : 0;
  }
  decision.evaluated = i;
  for (; i < m; ++i) {
    obs::MetricsRegistry::instance()
        .counter(skip_counter_name(*members_[i].detector))
        .add();
  }
  decision.attack = 2 * attack_votes > m;
  return decision;
}

EnsembleDetector::Decision EnsembleDetector::decide(const Image& input) const {
  // Deferred build: a member skipped by the short circuit never triggers the
  // construction of its intermediate (round trip / filter / spectrum).
  AnalysisContext context(input, context_spec(), AnalysisContext::Build::Deferred);
  return decide(context);
}

EnsembleDetector::Decision EnsembleDetector::decide(
    AnalysisContext& context) const {
  DECAM_SPAN("ensemble/decide");
  return decide_impl(
      [&](std::size_t i) { return members_[i].detector->score(context); });
}

bool EnsembleDetector::is_attack(const Image& input) const {
  const AnalysisContext context(input, context_spec());
  return is_attack(context);
}

bool EnsembleDetector::is_attack(const AnalysisContext& context) const {
  DECAM_SPAN("ensemble/is_attack");
  // The context is already built, so scoring order cannot save intermediate
  // construction — but the short circuit still skips whole detector passes.
  return decide_impl([&](std::size_t i) {
           return members_[i].detector->score(context);
         })
      .attack;
}

bool EnsembleDetector::vote_scores(std::span<const double> member_scores) const {
  DECAM_REQUIRE(member_scores.size() == members_.size(),
                "score count must match member count");
  std::size_t attack_votes = 0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (core::is_attack(member_scores[i], members_[i].calibration)) {
      ++attack_votes;
    }
  }
  return 2 * attack_votes > members_.size();
}

}  // namespace decam::core
