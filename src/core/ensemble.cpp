#include "core/ensemble.h"

#include "common/error.h"
#include "obs/span.h"

namespace decam::core {

EnsembleDetector::EnsembleDetector(std::vector<Member> members)
    : members_(std::move(members)) {
  DECAM_REQUIRE(!members_.empty(), "ensemble needs at least one member");
  for (const Member& member : members_) {
    DECAM_REQUIRE(member.detector != nullptr, "null detector in ensemble");
  }
}

AnalysisContextSpec EnsembleDetector::context_spec() const {
  AnalysisContextSpec spec;
  for (const Member& member : members_) {
    member.detector->prime(spec);
  }
  return spec;
}

std::vector<bool> EnsembleDetector::votes(const Image& input) const {
  const AnalysisContext context(input, context_spec());
  return votes(context);
}

std::vector<bool> EnsembleDetector::votes(const AnalysisContext& context) const {
  DECAM_SPAN("ensemble/votes");
  std::vector<bool> result;
  result.reserve(members_.size());
  for (const Member& member : members_) {
    result.push_back(
        core::is_attack(member.detector->score(context), member.calibration));
  }
  return result;
}

bool EnsembleDetector::is_attack(const Image& input) const {
  const AnalysisContext context(input, context_spec());
  return is_attack(context);
}

bool EnsembleDetector::is_attack(const AnalysisContext& context) const {
  DECAM_SPAN("ensemble/is_attack");
  std::size_t attack_votes = 0;
  for (const Member& member : members_) {
    if (core::is_attack(member.detector->score(context), member.calibration)) {
      ++attack_votes;
    }
  }
  return 2 * attack_votes > members_.size();
}

bool EnsembleDetector::vote_scores(std::span<const double> member_scores) const {
  DECAM_REQUIRE(member_scores.size() == members_.size(),
                "score count must match member count");
  std::size_t attack_votes = 0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (core::is_attack(member_scores[i], members_[i].calibration)) {
      ++attack_votes;
    }
  }
  return 2 * attack_votes > members_.size();
}

}  // namespace decam::core
