#include "core/calibration_io.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace decam::core {

void save_calibrations(const CalibrationProfile& profile,
                       const std::filesystem::path& file) {
  std::ofstream out(file);
  if (!out) throw IoError(file.string() + ": cannot open for writing");
  out.precision(17);
  out << "decam-calibration v1\n";
  for (const auto& [name, calibration] : profile) {
    DECAM_REQUIRE(name.find_first_of(" \t\n") == std::string::npos,
                  "calibration names must not contain whitespace");
    out << name << ' '
        << (calibration.polarity == Polarity::HighIsAttack ? "high" : "low")
        << ' ' << calibration.threshold << ' '
        << calibration.train_accuracy << '\n';
  }
  if (!out) throw IoError(file.string() + ": short write");
}

CalibrationProfile load_calibrations(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) throw IoError(file.string() + ": cannot open for reading");
  std::string header;
  if (!std::getline(in, header) || header != "decam-calibration v1") {
    throw IoError(file.string() + ": not a decam calibration profile");
  }
  CalibrationProfile profile;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string name, polarity;
    Calibration calibration;
    if (!(fields >> name >> polarity >> calibration.threshold >>
          calibration.train_accuracy) ||
        (polarity != "high" && polarity != "low")) {
      throw IoError(file.string() + ": malformed profile line: " + line);
    }
    calibration.polarity =
        polarity == "high" ? Polarity::HighIsAttack : Polarity::LowIsAttack;
    if (!profile.emplace(name, calibration).second) {
      throw IoError(file.string() + ": duplicate entry: " + name);
    }
  }
  return profile;
}

}  // namespace decam::core
