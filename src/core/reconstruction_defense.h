// The PREVENTION baseline Decamouflage argues against: Quiring et al.'s
// image-reconstruction defence. Before the pipeline's resize, every pixel
// the scaler reads (the "critical" set the attacker controls) is replaced
// by a robust statistic of its non-critical neighbourhood, cleansing any
// embedded target pixels.
//
// It works — the attack's payload never reaches the model — but it
// modifies EVERY input, including benign ones, degrading what the CNN
// sees. bench/ablation_prevention_quality quantifies that trade, which is
// the paper's motivation for detecting instead of preventing.
#pragma once

#include "imaging/image.h"
#include "imaging/kernels.h"

namespace decam::core {

struct ReconstructionConfig {
  int target_width = 224;   // the pipeline geometry being protected
  int target_height = 224;
  ScaleAlgo algo = ScaleAlgo::Bilinear;
  int neighbourhood = 2;    // radius of the median window, in pixels
};

/// Returns a copy of `input` with every critical pixel replaced by the
/// median of the NON-critical pixels within the neighbourhood window
/// (falling back to the full-window median where no clean neighbour
/// exists, e.g. ratios < 2 where every pixel is critical).
Image reconstruct_critical_pixels(const Image& input,
                                  const ReconstructionConfig& config);

}  // namespace decam::core
