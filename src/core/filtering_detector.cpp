#include "core/filtering_detector.h"

#include "metrics/mse.h"
#include "metrics/ssim.h"
#include "obs/span.h"

namespace decam::core {

FilteringDetector::FilteringDetector(FilteringDetectorConfig config)
    : config_(config) {
  DECAM_REQUIRE(config.window >= 1, "filter window must be >= 1");
  DECAM_REQUIRE(config.metric == Metric::MSE || config.metric == Metric::SSIM,
                "filtering detector uses MSE or SSIM");
}

Image FilteringDetector::filtered(const Image& input) const {
  return rank_filter(input, config_.window, config_.op);
}

double FilteringDetector::score(const Image& input) const {
  DECAM_SPAN(config_.metric == Metric::MSE ? "detector/filtering/mse"
                                           : "detector/filtering/ssim");
  const Image f = filtered(input);
  return config_.metric == Metric::MSE ? mse(input, f) : ssim(input, f);
}

double FilteringDetector::score(const AnalysisContext& context) const {
  if (!context.filter_matches(config_.window, config_.op)) {
    return score(context.input());
  }
  DECAM_SPAN(config_.metric == Metric::MSE ? "detector/filtering/mse"
                                           : "detector/filtering/ssim");
  const Image& input = context.input();
  return config_.metric == Metric::MSE ? mse(input, context.filtered())
                                       : ssim(input, context.filtered());
}

double FilteringDetector::score(AnalysisContext& context) const {
  context.ensure(AnalysisStage::Filter);
  return score(static_cast<const AnalysisContext&>(context));
}

void FilteringDetector::prime(AnalysisContextSpec& spec) const {
  spec.filter_window = config_.window;
  spec.filter_op = config_.op;
}

std::string FilteringDetector::name() const {
  const char* op = config_.op == RankOp::Min
                       ? "min"
                       : (config_.op == RankOp::Max ? "max" : "median");
  return std::string("filtering/") + op + "/" + to_string(config_.metric);
}

}  // namespace decam::core
