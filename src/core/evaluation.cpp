#include "core/evaluation.h"

#include "common/error.h"

namespace decam::core {
namespace {

double ratio(long num, long den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

double DetectionStats::accuracy() const {
  return ratio(true_positives + true_negatives,
               true_positives + true_negatives + false_positives +
                   false_negatives);
}

double DetectionStats::precision() const {
  return ratio(true_positives, true_positives + false_positives);
}

double DetectionStats::recall() const {
  return ratio(true_positives, true_positives + false_negatives);
}

double DetectionStats::far() const {
  return ratio(false_negatives, true_positives + false_negatives);
}

double DetectionStats::frr() const {
  return ratio(false_positives, true_negatives + false_positives);
}

DetectionStats evaluate(std::span<const double> benign_scores,
                        std::span<const double> attack_scores,
                        const Calibration& calibration) {
  DetectionStats stats;
  for (double s : benign_scores) {
    if (is_attack(s, calibration)) {
      ++stats.false_positives;
    } else {
      ++stats.true_negatives;
    }
  }
  for (double s : attack_scores) {
    if (is_attack(s, calibration)) {
      ++stats.true_positives;
    } else {
      ++stats.false_negatives;
    }
  }
  return stats;
}

DetectionStats evaluate_flags(const std::vector<bool>& benign_flagged,
                              const std::vector<bool>& attack_flagged) {
  DetectionStats stats;
  for (bool flagged : benign_flagged) {
    if (flagged) {
      ++stats.false_positives;
    } else {
      ++stats.true_negatives;
    }
  }
  for (bool flagged : attack_flagged) {
    if (flagged) {
      ++stats.true_positives;
    } else {
      ++stats.false_negatives;
    }
  }
  return stats;
}

}  // namespace decam::core
