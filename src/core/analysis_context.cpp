#include "core/analysis_context.h"

#include <atomic>

#include "obs/memstats.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "signal/spectrum.h"

namespace decam::core {
namespace {

// Derived-image bytes of every AnalysisContext currently alive, across all
// threads — each context adds its share at construction and removes it on
// destruction, so sampling is one relaxed load.
std::atomic<std::uint64_t> g_context_bytes{0};

std::uint64_t image_bytes(const std::optional<Image>& image) {
  return image.has_value() ? image->size() * sizeof(float) : 0;
}

}  // namespace

const char* to_string(AnalysisStage stage) {
  switch (stage) {
    case AnalysisStage::RoundTrip: return "round_trip";
    case AnalysisStage::Filter: return "filter";
    case AnalysisStage::Spectrum: return "spectrum";
  }
  return "?";
}

AnalysisContext::AnalysisContext(const Image& input,
                                 const AnalysisContextSpec& spec, Build build)
    : input_(&input), spec_(spec) {
  DECAM_REQUIRE(!input.empty(), "analysis context of empty image");
  if (spec.down_width > 0 && spec.down_height > 0) {
    plan_.push_back(AnalysisStage::RoundTrip);
  }
  if (spec.filter_window > 0) plan_.push_back(AnalysisStage::Filter);
  if (spec.spectrum) plan_.push_back(AnalysisStage::Spectrum);

  static const bool source_registered = [] {
    obs::register_memory_source("analysis_context", [] {
      return g_context_bytes.load(std::memory_order_relaxed);
    });
    return true;
  }();
  (void)source_registered;

  if (build == Build::Eager) ensure_all();
}

void AnalysisContext::ensure_all() {
  for (const AnalysisStage stage : plan_) ensure(stage);
}

void AnalysisContext::ensure(AnalysisStage stage) {
  switch (stage) {
    case AnalysisStage::RoundTrip:
      if (spec_.down_width > 0 && spec_.down_height > 0 && !round_trip_) {
        build_round_trip();
      }
      return;
    case AnalysisStage::Filter:
      if (spec_.filter_window > 0 && !filtered_) build_filter();
      return;
    case AnalysisStage::Spectrum:
      if (spec_.spectrum && !spectrum_) build_spectrum();
      return;
  }
}

void AnalysisContext::build_round_trip() {
  static auto& round_trip_hist =
      obs::MetricsRegistry::instance().histogram("context/round_trip");
  // One downscale serves both the pipeline view (histogram baseline) and
  // the round trip — resize(resize(I)) is exactly scale_round_trip.
  obs::ScopedTimer timer(round_trip_hist, "context/round_trip");
  RoundTripImages images =
      scale_round_trip_full(*input_, spec_.down_width, spec_.down_height,
                            spec_.down_algo, spec_.up_algo);
  downscaled_ = std::move(images.down);
  round_trip_ = std::move(images.up);
  add_bytes(image_bytes(downscaled_) + image_bytes(round_trip_));
}

void AnalysisContext::build_filter() {
  static auto& filter_hist =
      obs::MetricsRegistry::instance().histogram("context/filter");
  obs::ScopedTimer timer(filter_hist, "context/filter");
  filtered_ = rank_filter(*input_, spec_.filter_window, spec_.filter_op);
  add_bytes(image_bytes(filtered_));
}

void AnalysisContext::build_spectrum() {
  static auto& spectrum_hist =
      obs::MetricsRegistry::instance().histogram("context/spectrum");
  obs::ScopedTimer timer(spectrum_hist, "context/spectrum");
  // RoundTrip sourcing is opt-in and only honoured when the reconstruction
  // actually exists at the input geometry; the fallback keeps the paper's
  // input-spectrum semantics rather than forcing a build order.
  const Image* source = input_;
  if (spec_.spectrum_source == SpectrumSource::RoundTrip &&
      round_trip_.has_value() && round_trip_->same_shape(*input_)) {
    source = &*round_trip_;
    spectrum_from_round_trip_ = true;
  }
  spectrum_ = centered_log_spectrum(*source, spectrum_workspace());
  add_bytes(image_bytes(spectrum_));
}

void AnalysisContext::add_bytes(std::uint64_t bytes) {
  bytes_ += bytes;
  g_context_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

AnalysisContext::~AnalysisContext() {
  g_context_bytes.fetch_sub(bytes_, std::memory_order_relaxed);
}

AnalysisContext::AnalysisContext(AnalysisContext&& other) noexcept
    : input_(other.input_),
      spec_(other.spec_),
      plan_(std::move(other.plan_)),
      downscaled_(std::move(other.downscaled_)),
      round_trip_(std::move(other.round_trip_)),
      filtered_(std::move(other.filtered_)),
      spectrum_(std::move(other.spectrum_)),
      spectrum_from_round_trip_(other.spectrum_from_round_trip_),
      bytes_(other.bytes_) {
  // The moved-from context must not release our share in its destructor.
  other.bytes_ = 0;
}

SpectrumWorkspace& AnalysisContext::spectrum_workspace() {
  return thread_spectrum_workspace();
}

const Image& AnalysisContext::downscaled() const {
  DECAM_REQUIRE(has_downscaled(), "context built without a downscale");
  return *downscaled_;
}

const Image& AnalysisContext::round_trip() const {
  DECAM_REQUIRE(has_round_trip(), "context built without a round trip");
  return *round_trip_;
}

const Image& AnalysisContext::filtered() const {
  DECAM_REQUIRE(has_filtered(), "context built without a filtered image");
  return *filtered_;
}

const Image& AnalysisContext::spectrum() const {
  DECAM_REQUIRE(has_spectrum(), "context built without a spectrum");
  return *spectrum_;
}

bool AnalysisContext::round_trip_matches(int down_width, int down_height,
                                         ScaleAlgo down, ScaleAlgo up) const {
  return has_round_trip() && spec_.down_width == down_width &&
         spec_.down_height == down_height && spec_.down_algo == down &&
         spec_.up_algo == up;
}

bool AnalysisContext::downscale_matches(int down_width, int down_height,
                                        ScaleAlgo algo) const {
  return has_downscaled() && spec_.down_width == down_width &&
         spec_.down_height == down_height && spec_.down_algo == algo;
}

bool AnalysisContext::filter_matches(int window, RankOp op) const {
  return has_filtered() && spec_.filter_window == window &&
         spec_.filter_op == op;
}

bool AnalysisContext::spectrum_matches_input() const {
  return has_spectrum() && !spectrum_from_round_trip_;
}

}  // namespace decam::core
