// Scaling detection (paper Section III-A, Algorithm 1): downscale the input
// to the CNN's geometry with the victim pipeline's scaler, upscale back,
// and measure how much survived the round trip. Benign images change
// little; attack images come back looking like the upscaled target.
#pragma once

#include "core/detector.h"
#include "imaging/scale.h"

namespace decam::core {

struct ScalingDetectorConfig {
  int down_width = 224;   // CNN input geometry (Table 1 of the paper)
  int down_height = 224;
  ScaleAlgo down_algo = ScaleAlgo::Bilinear;  // victim pipeline's scaler
  ScaleAlgo up_algo = ScaleAlgo::Bilinear;    // reconstruction scaler
  Metric metric = Metric::MSE;  // MSE or SSIM
};

class ScalingDetector final : public Detector {
 public:
  explicit ScalingDetector(ScalingDetectorConfig config);

  double score(const Image& input) const override;
  /// Reuses the context's round trip when it matches this geometry+scaler
  /// pair; recomputes otherwise.
  double score(const AnalysisContext& context) const override;
  /// Staged scoring: materialises the round-trip stage first.
  double score(AnalysisContext& context) const override;
  void prime(AnalysisContextSpec& spec) const override;
  std::string name() const override;

  /// The round-tripped image S (exposed for examples/visualisation).
  Image round_trip(const Image& input) const;

  const ScalingDetectorConfig& config() const { return config_; }

 private:
  ScalingDetectorConfig config_;
};

}  // namespace decam::core
