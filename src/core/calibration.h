// Threshold selection — the paper's RQ.3.
//
// White-box ("gradient descent" in the paper's terminology): with scored
// benign AND attack training sets, sort all candidate midpoints between
// adjacent scores and pick the threshold/polarity maximising training
// accuracy. This is an exhaustive 1-D search, which dominates any local
// descent and is what the paper's procedure converges to.
//
// Black-box: with benign scores only, take a percentile of the benign
// distribution as the decision boundary (paper uses 1/2/3 %); the tail side
// is chosen by the declared polarity (MSE grows under attack, SSIM shrinks).
#pragma once

#include <span>
#include <vector>

namespace decam::core {

/// Which side of the threshold is classified as an attack.
enum class Polarity {
  HighIsAttack,  // score >= threshold => attack (MSE, CSP)
  LowIsAttack,   // score <= threshold => attack (SSIM)
};

struct Calibration {
  double threshold = 0.0;
  Polarity polarity = Polarity::HighIsAttack;
  double train_accuracy = 0.0;  // accuracy on the calibration data
                                // (white-box only; 0 for black-box)
};

/// One probe of the white-box search (for the threshold-search figure).
struct ThresholdProbe {
  double threshold = 0.0;
  double accuracy = 0.0;
};

struct WhiteBoxResult {
  Calibration calibration;
  std::vector<ThresholdProbe> trace;  // every candidate evaluated, sorted
};

/// Decision rule shared by every consumer.
bool is_attack(double score, const Calibration& calibration);

/// White-box search over both polarities. Throws if either set is empty.
WhiteBoxResult calibrate_white_box(std::span<const double> benign_scores,
                                   std::span<const double> attack_scores);

/// Black-box percentile calibration. `percentile` is in (0, 50]; for
/// HighIsAttack the threshold is the (100-p)th percentile of the benign
/// scores, for LowIsAttack the p-th.
Calibration calibrate_black_box(std::span<const double> benign_scores,
                                double percentile, Polarity polarity);

/// Summary statistics the black-box tables report alongside accuracy.
struct ScoreStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};
ScoreStats score_stats(std::span<const double> scores);

/// Linear-interpolated percentile (p in [0, 100]) of a sample.
double percentile_of(std::span<const double> scores, double p);

}  // namespace decam::core
