// Confusion-matrix evaluation with the five measures every table in the
// paper reports: accuracy, precision, recall, FAR (attack images accepted
// as benign) and FRR (benign images rejected as attacks).
#pragma once

#include <span>
#include <vector>

#include "core/calibration.h"

namespace decam::core {

struct DetectionStats {
  long true_positives = 0;   // attacks flagged as attacks
  long false_positives = 0;  // benign flagged as attacks
  long true_negatives = 0;   // benign passed as benign
  long false_negatives = 0;  // attacks passed as benign

  double accuracy() const;
  double precision() const;
  double recall() const;
  /// False acceptance rate: fraction of ATTACK images accepted as benign.
  double far() const;
  /// False rejection rate: fraction of BENIGN images rejected as attacks.
  double frr() const;
};

/// Applies the calibration to both score sets and tallies the confusion
/// matrix. Attack scores are the positive class.
DetectionStats evaluate(std::span<const double> benign_scores,
                        std::span<const double> attack_scores,
                        const Calibration& calibration);

/// Tallies pre-made boolean decisions (used by the ensemble, whose votes
/// are not a scalar score). Takes vectors because std::vector<bool> is
/// bit-packed and cannot form a span.
DetectionStats evaluate_flags(const std::vector<bool>& benign_flagged,
                              const std::vector<bool>& attack_flagged);

}  // namespace decam::core
