// ROC analysis for detector scores — an extension beyond the paper's
// fixed-threshold tables: the full receiver operating characteristic and
// its AUC quantify how separable the two score distributions are
// independent of any threshold choice, which makes detector/metric
// comparisons (bench/extension_roc) robust to calibration details.
#pragma once

#include <span>
#include <vector>

#include "core/calibration.h"

namespace decam::core {

struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;   // recall
  double false_positive_rate = 0.0;  // FRR against benign
};

struct RocCurve {
  std::vector<RocPoint> points;  // sorted by ascending FPR
  double auc = 0.0;              // area under the curve, in [0, 1]
};

/// Builds the ROC of a score-based detector. `polarity` states which tail
/// is attack (as in Calibration). Ties are handled by the standard
/// rank-based construction; AUC equals the Mann-Whitney U statistic.
RocCurve roc_curve(std::span<const double> benign_scores,
                   std::span<const double> attack_scores, Polarity polarity);

/// The threshold on the curve minimising (1-TPR) + FPR (Youden-optimal for
/// equal priors), as a ready-to-use Calibration.
Calibration youden_threshold(const RocCurve& curve, Polarity polarity);

}  // namespace decam::core
