#include "core/pipeline.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "attack/scale_attack.h"
#include "core/steganalysis_detector.h"
#include "data/synth.h"
#include "imaging/filter.h"
#include "metrics/fused.h"
#include "metrics/histogram.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/parallel.h"

namespace decam::core {
namespace {

// FNV-1a over the config's textual identity.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char ch : text) {
    hash ^= ch;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string row_header() {
  return "scaling_mse\tscaling_ssim\tscaling_psnr\tfiltering_mse\t"
         "filtering_ssim\tfiltering_psnr\tcsp\thistogram";
}

void write_rows(std::ostream& out, const std::string& section,
                const std::vector<ScoreRow>& rows) {
  out << "[" << section << "] " << rows.size() << "\n";
  for (const ScoreRow& r : rows) {
    out << r.scaling_mse << '\t' << r.scaling_ssim << '\t' << r.scaling_psnr
        << '\t' << r.filtering_mse << '\t' << r.filtering_ssim << '\t'
        << r.filtering_psnr << '\t' << r.csp << '\t' << r.histogram << '\n';
  }
}

bool read_rows(std::istream& in, const std::string& section,
               std::vector<ScoreRow>& rows) {
  std::string line;
  if (!std::getline(in, line)) return false;
  std::istringstream header(line);
  std::string tag;
  std::size_t count = 0;
  header >> tag >> count;
  if (tag != "[" + section + "]") return false;
  rows.resize(count);
  for (ScoreRow& r : rows) {
    if (!std::getline(in, line)) return false;
    std::istringstream fields(line);
    if (!(fields >> r.scaling_mse >> r.scaling_ssim >> r.scaling_psnr >>
          r.filtering_mse >> r.filtering_ssim >> r.filtering_psnr >> r.csp >>
          r.histogram)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ExperimentConfig::cache_key() const {
  std::ostringstream key;
  key << "v8|" << n_train << '|' << n_eval << '|' << target_width << 'x'
      << target_height << '|' << min_side << '-' << max_side << '|'
      << to_string(white_box_algo) << '|' << attack_eps << '|' << seed;
  return key.str();
}

std::vector<double> ExperimentData::column(const std::vector<ScoreRow>& rows,
                                           double ScoreRow::* member) {
  std::vector<double> values;
  values.reserve(rows.size());
  for (const ScoreRow& row : rows) values.push_back(row.*member);
  return values;
}

Battery::Battery(const ExperimentConfig& config)
    : target_width(config.target_width),
      target_height(config.target_height),
      pipeline_algo(config.white_box_algo) {}

AnalysisContextSpec Battery::context_spec() const {
  AnalysisContextSpec spec;
  spec.down_width = target_width;
  spec.down_height = target_height;
  spec.down_algo = pipeline_algo;
  spec.up_algo = pipeline_algo;
  spec.filter_window = 2;  // paper's 2x2 minimum filter
  spec.filter_op = RankOp::Min;
  spec.spectrum = true;
  return spec;
}

ScoreRow Battery::score(const Image& input) const {
  const AnalysisContext context(input, context_spec());
  return score(context);
}

ScoreRow Battery::score(const AnalysisContext& context) const {
  // Stage histograms are resolved once; recording afterwards is lock-free.
  // They time the metric reductions only — intermediate construction is
  // timed by the context/* histograms at build time.
  static auto& registry = obs::MetricsRegistry::instance();
  static auto& scaling_hist = registry.histogram("battery/scaling");
  static auto& filtering_hist = registry.histogram("battery/filtering");
  static auto& steganalysis_hist = registry.histogram("battery/steganalysis");
  static auto& histogram_hist = registry.histogram("battery/histogram");
  static auto& images_scored = registry.counter("battery/images_scored");

  const Image& input = context.input();
  ScoreRow row;
  {
    // Scaling method: one round trip feeds MSE, SSIM and the PSNR appendix,
    // all from a single fused traversal of the (input, round-trip) pair.
    obs::ScopedTimer timer(scaling_hist, "battery/scaling");
    std::optional<Image> local;
    const Image& round =
        context.round_trip_matches(target_width, target_height, pipeline_algo,
                                   pipeline_algo)
            ? context.round_trip()
            : local.emplace(scale_round_trip(input, target_width,
                                             target_height, pipeline_algo,
                                             pipeline_algo));
    const PairStats stats = pair_stats(input, round);
    row.scaling_mse = stats.mse;
    row.scaling_ssim = stats.ssim;
    row.scaling_psnr = stats.psnr;
  }
  {
    // Filtering method: 2x2 minimum filter, per the paper.
    obs::ScopedTimer timer(filtering_hist, "battery/filtering");
    std::optional<Image> local;
    const Image& filtered = context.filter_matches(2, RankOp::Min)
                                ? context.filtered()
                                : local.emplace(min_filter(input, 2));
    const PairStats stats = pair_stats(input, filtered);
    row.filtering_mse = stats.mse;
    row.filtering_ssim = stats.ssim;
    row.filtering_psnr = stats.psnr;
  }
  {
    // Steganalysis method (consumes the context's spectrum when present).
    obs::ScopedTimer timer(steganalysis_hist, "battery/steganalysis");
    const SteganalysisDetector steg{SteganalysisDetectorConfig{}};
    row.csp = context.has_spectrum()
                  ? static_cast<double>(steg.count_csp_in(context.spectrum()))
                  : steg.score(input);
  }
  {
    // Histogram baseline (shares the downscale geometry).
    obs::ScopedTimer timer(histogram_hist, "battery/histogram");
    std::optional<Image> local;
    const Image& down =
        context.downscale_matches(target_width, target_height, pipeline_algo)
            ? context.downscaled()
            : local.emplace(
                  resize(input, target_width, target_height, pipeline_algo));
    row.histogram = histogram_intersection(color_histogram(input, 32),
                                           color_histogram(down, 32));
  }
  images_scored.add();
  return row;
}

std::filesystem::path default_cache_dir() {
  if (const char* env = std::getenv("DECAM_CACHE_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  return std::filesystem::current_path() / "decam_cache";
}

void save_experiment(const ExperimentData& data,
                     const std::filesystem::path& file) {
  std::ofstream out(file);
  if (!out) throw IoError(file.string() + ": cannot open for writing");
  out.precision(17);  // doubles must survive the text round trip exactly
  out << "decam-experiment\n" << data.config.cache_key() << "\n"
      << "# " << row_header() << "\n";
  write_rows(out, "train_benign", data.train_benign);
  write_rows(out, "train_attack", data.train_attack);
  write_rows(out, "eval_benign", data.eval_benign);
  write_rows(out, "eval_attack_white", data.eval_attack_white);
  write_rows(out, "eval_attack_black", data.eval_attack_black);
  out << "[attack_quality] " << data.attack_quality.size() << "\n";
  for (const AttackQualityRow& r : data.attack_quality) {
    out << r.downscale_linf << '\t' << r.source_ssim << '\n';
  }
  if (!out) throw IoError(file.string() + ": short write");
}

std::optional<ExperimentData> load_experiment(
    const ExperimentConfig& config, const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != "decam-experiment") return std::nullopt;
  if (!std::getline(in, line) || line != config.cache_key()) return std::nullopt;
  if (!std::getline(in, line)) return std::nullopt;  // header comment
  ExperimentData data;
  data.config = config;
  if (!read_rows(in, "train_benign", data.train_benign)) return std::nullopt;
  if (!read_rows(in, "train_attack", data.train_attack)) return std::nullopt;
  if (!read_rows(in, "eval_benign", data.eval_benign)) return std::nullopt;
  if (!read_rows(in, "eval_attack_white", data.eval_attack_white)) {
    return std::nullopt;
  }
  if (!read_rows(in, "eval_attack_black", data.eval_attack_black)) {
    return std::nullopt;
  }
  if (!std::getline(in, line)) return std::nullopt;
  {
    std::istringstream header(line);
    std::string tag;
    std::size_t count = 0;
    header >> tag >> count;
    if (tag != "[attack_quality]") return std::nullopt;
    data.attack_quality.resize(count);
    for (AttackQualityRow& r : data.attack_quality) {
      if (!std::getline(in, line)) return std::nullopt;
      std::istringstream fields(line);
      if (!(fields >> r.downscale_linf >> r.source_ssim)) return std::nullopt;
    }
  }
  return data;
}

namespace {

// The black-box attacker pool. Any functioning attack must target the
// deployed pipeline's scaler (the defender knows its own pipeline), so the
// defender's uncertainty in the black-box setting is about the CRAFTING
// process: how tight the attacker's quadratic program is, and whether the
// attacker replaces the whole view or only a REGION of it (a localized
// attack leaves most of the downscaled view benign, weakening every global
// detection score — the hard case for the defender).
struct BlackBoxVariant {
  double eps;
  int max_sweeps;
  bool localized;
};
constexpr BlackBoxVariant kBlackBoxPool[] = {{1.0, 240, false},
                                             {2.0, 120, false},
                                             {4.0, 60, false},
                                             {2.0, 120, true}};

// Localized attack target: the source's own (benign) downscale with one
// random quadrant replaced by attacker content.
Image localized_target(const Image& scene, const Image& full_target,
                       ScaleAlgo algo, data::Rng& rng) {
  Image target =
      resize(scene, full_target.width(), full_target.height(), algo);
  target.clamp();
  const int qw = full_target.width() / 2;
  const int qh = full_target.height() / 2;
  const int qx = rng.next_bool() ? 0 : full_target.width() - qw;
  const int qy = rng.next_bool() ? 0 : full_target.height() - qh;
  for (int c = 0; c < target.channels(); ++c) {
    for (int y = 0; y < qh; ++y) {
      for (int x = 0; x < qw; ++x) {
        target.at(qx + x, qy + y, c) = full_target.at(qx + x, qy + y, c);
      }
    }
  }
  return target;
}

// Progress lines go through obs::log so every message carries a monotonic
// elapsed-ms timestamp (ISSUE: replaces the raw fprintf/"\r" spinner).
void progress(bool verbose, const char* format, auto... args) {
  if (verbose) obs::log(format, args...);
}

}  // namespace

ExperimentData run_experiment(const ExperimentConfig& config,
                              const std::filesystem::path& cache_dir,
                              bool verbose) {
  DECAM_REQUIRE(config.n_train > 0 && config.n_eval > 0,
                "dataset sizes must be positive");
  std::filesystem::path cache_file;
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    char name[64];
    std::snprintf(name, sizeof(name), "experiment_%016" PRIx64 ".tsv",
                  fnv1a(config.cache_key()));
    cache_file = cache_dir / name;
    std::optional<ExperimentData> cached;
    {
      DECAM_SPAN("pipeline/cache_load");
      cached = load_experiment(config, cache_file);
    }
    if (cached) {
      obs::MetricsRegistry::instance().counter("pipeline/cache_hits").add();
      progress(verbose, "[pipeline] loaded cache %s",
               cache_file.string().c_str());
      return *cached;
    }
    obs::MetricsRegistry::instance().counter("pipeline/cache_misses").add();
  }

  ExperimentData data;
  data.config = config;
  const Battery battery(config);

  data::SceneParams params_a = data::scene_params(data::Regime::A);
  data::SceneParams params_b = data::scene_params(data::Regime::B);
  params_a.min_side = params_b.min_side = config.min_side;
  params_a.max_side = params_b.max_side = config.max_side;

  attack::AttackOptions white_opts;
  white_opts.algo = config.white_box_algo;
  white_opts.eps = config.attack_eps;

  auto craft_and_score =
      [&](const data::SceneParams& scene_params, std::uint64_t seed_salt,
          int count, const char* label, std::vector<ScoreRow>& benign_rows,
          std::vector<ScoreRow>* white_rows, std::vector<ScoreRow>* black_rows,
          std::vector<AttackQualityRow>* quality_rows) {
        // Determinism contract (DESIGN.md §8): Rng::fork() is
        // Rng(next_u64()), so drawing the per-index seeds serially up front
        // and re-seeding inside the parallel body reproduces the serial
        // fork sequence exactly. Results land in index-ordered slots, so
        // the row vectors — and the cache TSV written from them — are
        // byte-identical at any thread count.
        data::Rng scene_rng(config.seed ^ seed_salt);
        data::Rng target_rng(config.seed ^ seed_salt ^ 0x7A26E7ull);
        const auto n = static_cast<std::size_t>(count);
        std::vector<std::uint64_t> scene_seeds(n);
        std::vector<std::uint64_t> target_seeds(n);
        for (std::size_t i = 0; i < n; ++i) {
          scene_seeds[i] = scene_rng.next_u64();
          target_seeds[i] = target_rng.next_u64();
        }
        benign_rows.resize(n);
        if (white_rows != nullptr) white_rows->resize(n);
        if (black_rows != nullptr) black_rows->resize(n);
        if (quality_rows != nullptr) quality_rows->resize(n);
        std::atomic<int> completed{0};
        runtime::parallel_for(std::size_t{0}, n, [&](std::size_t i) {
          data::Rng scene_child(scene_seeds[i]);
          data::Rng target_child(target_seeds[i]);
          const Image scene = generate_scene(scene_params, scene_child);
          const Image target = data::generate_target(
              config.target_width, config.target_height, target_child);
          benign_rows[i] = battery.score(scene);
          if (white_rows != nullptr) {
            const attack::AttackResult white =
                attack::craft_attack(scene, target, white_opts);
            (*white_rows)[i] = battery.score(white.image);
            if (quality_rows != nullptr) {
              (*quality_rows)[i] = {white.report.downscale_linf,
                                    white.report.source_ssim};
            }
          }
          if (black_rows != nullptr) {
            const BlackBoxVariant& variant =
                kBlackBoxPool[i % std::size(kBlackBoxPool)];
            attack::AttackOptions black_opts = white_opts;
            black_opts.eps = variant.eps;
            black_opts.max_sweeps = variant.max_sweeps;
            data::Rng quadrant_rng = target_child.fork();
            const Image black_target =
                variant.localized
                    ? localized_target(scene, target, black_opts.algo,
                                       quadrant_rng)
                    : target;
            const attack::AttackResult black =
                attack::craft_attack(scene, black_target, black_opts);
            (*black_rows)[i] = battery.score(black.image);
          }
          const int done =
              completed.fetch_add(1, std::memory_order_relaxed) + 1;
          if (done % 20 == 0 || done == count) {
            progress(verbose, "[pipeline] %s %d/%d", label, done, count);
          }
        });
      };

  craft_and_score(params_a, 0x57A1Bull, config.n_train, "calibration set",
                  data.train_benign, &data.train_attack, nullptr, nullptr);
  craft_and_score(params_b, 0xE7A1Bull, config.n_eval, "evaluation set",
                  data.eval_benign, &data.eval_attack_white,
                  &data.eval_attack_black, &data.attack_quality);

  if (!cache_file.empty()) {
    DECAM_SPAN("pipeline/cache_save");
    save_experiment(data, cache_file);
    progress(verbose, "[pipeline] cached to %s",
             cache_file.string().c_str());
  }
  return data;
}

}  // namespace decam::core
