// Filtering detection (paper Section III-B, Algorithm 2): run a small
// minimum filter over the input and compare against the original. The
// attack's embedded target pixels are extreme values relative to their
// neighbourhood, so the minimum filter smears them across the image and the
// filtered result diverges sharply from the input; benign images only
// darken slightly.
#pragma once

#include "core/detector.h"
#include "imaging/filter.h"

namespace decam::core {

struct FilteringDetectorConfig {
  int window = 2;              // k of the k x k rank filter (paper: 2)
  RankOp op = RankOp::Min;     // paper compares Min/Median/Max; Min wins
  Metric metric = Metric::SSIM;
};

class FilteringDetector final : public Detector {
 public:
  explicit FilteringDetector(FilteringDetectorConfig config);

  double score(const Image& input) const override;
  /// Reuses the context's filtered image when window+op match.
  double score(const AnalysisContext& context) const override;
  /// Staged scoring: materialises the filter stage first.
  double score(AnalysisContext& context) const override;
  void prime(AnalysisContextSpec& spec) const override;
  std::string name() const override;

  /// The filtered image F (exposed for examples/visualisation).
  Image filtered(const Image& input) const;

  const FilteringDetectorConfig& config() const { return config_; }

 private:
  FilteringDetectorConfig config_;
};

}  // namespace decam::core
