#include "core/roc.h"

#include <algorithm>

#include "common/error.h"

namespace decam::core {

RocCurve roc_curve(std::span<const double> benign_scores,
                   std::span<const double> attack_scores, Polarity polarity) {
  DECAM_REQUIRE(!benign_scores.empty() && !attack_scores.empty(),
                "roc_curve needs both classes");

  // Map scores so that HIGHER always means MORE attack-like.
  const double sign = polarity == Polarity::HighIsAttack ? 1.0 : -1.0;
  struct Sample {
    double value;
    bool is_attack;
  };
  std::vector<Sample> samples;
  samples.reserve(benign_scores.size() + attack_scores.size());
  for (double s : benign_scores) samples.push_back({sign * s, false});
  for (double s : attack_scores) samples.push_back({sign * s, true});
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.value > b.value; });

  RocCurve curve;
  const double n_attack = static_cast<double>(attack_scores.size());
  const double n_benign = static_cast<double>(benign_scores.size());
  long tp = 0, fp = 0;
  curve.points.push_back({samples.front().value + 1.0, 0.0, 0.0});
  std::size_t i = 0;
  while (i < samples.size()) {
    // Consume all samples tied at this value before emitting a point.
    const double value = samples[i].value;
    while (i < samples.size() && samples[i].value == value) {
      if (samples[i].is_attack) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    curve.points.push_back({sign * value, tp / n_attack, fp / n_benign});
  }
  // Trapezoidal AUC over the FPR axis.
  double auc = 0.0;
  for (std::size_t k = 1; k < curve.points.size(); ++k) {
    const double dx = curve.points[k].false_positive_rate -
                      curve.points[k - 1].false_positive_rate;
    const double avg_y = 0.5 * (curve.points[k].true_positive_rate +
                                curve.points[k - 1].true_positive_rate);
    auc += dx * avg_y;
  }
  curve.auc = auc;
  return curve;
}

Calibration youden_threshold(const RocCurve& curve, Polarity polarity) {
  DECAM_REQUIRE(!curve.points.empty(), "empty ROC curve");
  const RocPoint* best = &curve.points.front();
  double best_j = -2.0;
  for (const RocPoint& point : curve.points) {
    const double j = point.true_positive_rate - point.false_positive_rate;
    if (j > best_j) {
      best_j = j;
      best = &point;
    }
  }
  return Calibration{best->threshold, polarity, 0.0};
}

}  // namespace decam::core
