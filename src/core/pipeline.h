// End-to-end experiment pipeline shared by every bench binary.
//
// One experiment = the paper's two-stage protocol:
//   stage 1  generate the calibration dataset (regime A stand-in for the
//            NeurIPS-2017 images), craft attack images, score everything;
//   stage 2  generate the UNSEEN evaluation dataset (regime B stand-in for
//            Caltech-256), craft attacks two ways — with the white-box
//            (known) scaler and with a mixed black-box scaler pool — and
//            score everything.
//
// Scoring runs the full battery once per image, sharing the expensive
// intermediates (round trip, filtered image, spectrum) across metrics, and
// the whole result is cached on disk as TSV keyed by a config hash: the
// first bench to run pays the generation cost, the rest reuse it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/detector.h"
#include "imaging/scale.h"

namespace decam::core {

struct ExperimentConfig {
  int n_train = 60;          // images per class, calibration set
  int n_eval = 60;           // images per class, evaluation set
  int target_width = 112;    // CNN input geometry
  int target_height = 112;
  int min_side = 320;        // scene geometry bounds (both regimes share
  int max_side = 640;        //   these so runtimes stay laptop-scale)
  ScaleAlgo white_box_algo = ScaleAlgo::Bilinear;  // attacker's known scaler
  double attack_eps = 2.0;   // allowed |scale(A)-T| per pixel
  std::uint64_t seed = 42;

  /// Stable identity of this configuration (cache key component).
  std::string cache_key() const;
};

/// Full score battery for one image. Sharing the round trip / filtered
/// image / spectrum across metrics is what keeps the pipeline fast.
struct ScoreRow {
  double scaling_mse = 0.0;
  double scaling_ssim = 0.0;
  double scaling_psnr = 0.0;     // appendix: shown NOT to separate
  double filtering_mse = 0.0;
  double filtering_ssim = 0.0;
  double filtering_psnr = 0.0;   // appendix
  double csp = 0.0;
  double histogram = 0.0;        // Xiao's rejected baseline
};

/// Per-attack-image quality diagnostics (from attack/scale_attack.h).
struct AttackQualityRow {
  double downscale_linf = 0.0;
  double source_ssim = 0.0;
};

struct ExperimentData {
  ExperimentConfig config;
  std::vector<ScoreRow> train_benign;
  std::vector<ScoreRow> train_attack;        // white-box scaler
  std::vector<ScoreRow> eval_benign;
  std::vector<ScoreRow> eval_attack_white;   // crafted with the known scaler
  std::vector<ScoreRow> eval_attack_black;   // crafted with a mixed pool
  std::vector<AttackQualityRow> attack_quality;  // eval white-box attacks

  /// Projects one score column out of a row set.
  static std::vector<double> column(const std::vector<ScoreRow>& rows,
                                    double ScoreRow::* member);
};

/// Detector battery configuration derived from an ExperimentConfig.
struct Battery {
  explicit Battery(const ExperimentConfig& config);

  /// Builds an AnalysisContext from context_spec() and scores it.
  ScoreRow score(const Image& input) const;

  /// Scores a prebuilt context; every stage reuses the context's
  /// intermediates when they match this battery's configuration and
  /// recomputes otherwise.
  ScoreRow score(const AnalysisContext& context) const;

  /// The intermediates the battery consumes: round trip at the CNN
  /// geometry, 2x2 minimum filter, centered log-spectrum.
  AnalysisContextSpec context_spec() const;

  int target_width;
  int target_height;
  ScaleAlgo pipeline_algo;  // the deployed pre-processing scaler
};

/// Runs (or loads from cache) the full experiment. `cache_dir` empty
/// disables caching. Progress lines go to stderr when `verbose`.
ExperimentData run_experiment(const ExperimentConfig& config,
                              const std::filesystem::path& cache_dir,
                              bool verbose = true);

/// Cache location honouring $DECAM_CACHE_DIR, defaulting to
/// <current_path>/decam_cache.
std::filesystem::path default_cache_dir();

/// (De)serialisation, exposed for tests.
void save_experiment(const ExperimentData& data,
                     const std::filesystem::path& file);
std::optional<ExperimentData> load_experiment(
    const ExperimentConfig& config, const std::filesystem::path& file);

}  // namespace decam::core
