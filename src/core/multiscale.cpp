#include "core/multiscale.h"

#include <algorithm>

namespace decam::core {

MultiScaleScanner::MultiScaleScanner(MultiScaleConfig config)
    : config_(std::move(config)), steganalysis_(SteganalysisDetectorConfig{}) {
  DECAM_REQUIRE(!config_.candidate_sides.empty(),
                "need at least one candidate geometry");
  for (int side : config_.candidate_sides) {
    DECAM_REQUIRE(side > 0, "candidate geometry must be positive");
  }
  DECAM_REQUIRE(config_.metric == Metric::MSE ||
                    config_.metric == Metric::SSIM,
                "scaling probes use MSE or SSIM");
}

MultiScaleReport MultiScaleScanner::scan(const Image& input) const {
  DECAM_REQUIRE(!input.empty(), "scan of empty image");
  MultiScaleReport report;
  const bool high_is_attack =
      config_.scaling_calibration.polarity == Polarity::HighIsAttack;
  bool first = true;
  for (int side : config_.candidate_sides) {
    if (side >= input.width() || side >= input.height()) continue;
    ScalingDetectorConfig probe_config;
    probe_config.down_width = probe_config.down_height = side;
    probe_config.down_algo = probe_config.up_algo = config_.algo;
    probe_config.metric = config_.metric;
    const ScalingDetector probe{probe_config};
    const double score = probe.score(input);
    const bool worse = first || (high_is_attack ? score > report.worst_score
                                                : score < report.worst_score);
    if (worse) report.worst_score = score;
    first = false;
    if (is_attack(score, config_.scaling_calibration) &&
        report.triggered_side == 0) {
      report.triggered_side = side;
    }
  }
  report.csp_count = steganalysis_.count_csp(input);
  report.csp_fired =
      is_attack(static_cast<double>(report.csp_count),
                config_.csp_calibration);
  report.flagged = report.triggered_side != 0 || report.csp_fired;
  return report;
}

}  // namespace decam::core
