#include "core/preprocess_defense.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/error.h"
#include "imaging/filter.h"
#include "imaging/jpeg_sim.h"

namespace decam::core {
namespace {

// Step parameter validation lives in one place so the DefenseChain
// constructor (programmatic use) and parse() (spec strings) reject the same
// inputs with the same message.
void validate_step(const DefenseStep& step) {
  switch (step.kind) {
    case DefenseKind::Squeeze: {
      const int bits = static_cast<int>(step.param);
      if (step.param != bits || bits < 1 || bits > 8) {
        throw std::invalid_argument(
            "defense: squeeze bits must be an integer in [1, 8]");
      }
      return;
    }
    case DefenseKind::Median: {
      const int k = static_cast<int>(step.param);
      if (step.param != k || k < 1 || k > 15) {
        throw std::invalid_argument(
            "defense: median window must be an integer in [1, 15]");
      }
      return;
    }
    case DefenseKind::Gaussian:
      if (!(step.param > 0.0) || step.param > 16.0) {
        throw std::invalid_argument(
            "defense: gauss sigma must be in (0, 16]");
      }
      return;
    case DefenseKind::Jpeg: {
      const int quality = static_cast<int>(step.param);
      if (step.param != quality || quality < 1 || quality > 100) {
        throw std::invalid_argument(
            "defense: jpeg quality must be an integer in [1, 100]");
      }
      return;
    }
  }
  throw std::invalid_argument("defense: unknown step kind");
}

Image apply_step(const Image& input, const DefenseStep& step) {
  switch (step.kind) {
    case DefenseKind::Squeeze:
      return bit_depth_squeeze(input, static_cast<int>(step.param));
    case DefenseKind::Median:
      return median_filter(input, static_cast<int>(step.param));
    case DefenseKind::Gaussian:
      return gaussian_blur(input, step.param);
    case DefenseKind::Jpeg:
      return jpeg_roundtrip(input, static_cast<int>(step.param));
  }
  DECAM_ASSERT(false);
  return input;
}

// Integer parameters print without a decimal point; gauss sigmas print with
// just enough digits to round-trip through parse() ("0.8", not "0.800000").
std::string param_string(const DefenseStep& step) {
  if (step.kind != DefenseKind::Gaussian) {
    return std::to_string(static_cast<int>(step.param));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", step.param);
  return buf;
}

}  // namespace

const char* to_string(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::Squeeze: return "squeeze";
    case DefenseKind::Median: return "median";
    case DefenseKind::Gaussian: return "gauss";
    case DefenseKind::Jpeg: return "jpeg";
  }
  return "?";
}

Image bit_depth_squeeze(const Image& input, int bits) {
  if (bits < 1 || bits > 8) {
    throw std::invalid_argument("bit_depth_squeeze: bits must be in [1, 8]");
  }
  const int levels = (1 << bits) - 1;  // highest level index
  const double step = 255.0 / levels;
  Image out = input;
  out.clamp();
  for (int c = 0; c < out.channels(); ++c) {
    for (float& v : out.plane(c)) {
      // Snap to the nearest of the 2^bits levels, then round the level
      // value itself to the 8-bit integer grid so squeezed images stay
      // eligible for the Grid8 histogram median. Idempotent: adjacent
      // integer levels are >= 2 apart (bits <= 7), so the +-0.5 integer
      // rounding never moves a value into a different level's basin; for
      // bits == 8 step == 1 and both roundings are exact.
      const double level = std::round(static_cast<double>(v) / step);
      v = static_cast<float>(std::round(level * step));
    }
  }
  return out;
}

DefenseChain::DefenseChain(std::vector<DefenseStep> steps)
    : steps_(std::move(steps)) {
  for (const DefenseStep& step : steps_) validate_step(step);
}

DefenseChain DefenseChain::parse(const std::string& spec) {
  if (spec == "none") return DefenseChain{};
  std::vector<DefenseStep> steps;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find('+', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(pos, end - pos);
    DefenseStep step;
    std::size_t name_len = 0;
    if (token.rfind("squeeze", 0) == 0) {
      step.kind = DefenseKind::Squeeze;
      name_len = 7;
    } else if (token.rfind("median", 0) == 0) {
      step.kind = DefenseKind::Median;
      name_len = 6;
    } else if (token.rfind("gauss", 0) == 0) {
      step.kind = DefenseKind::Gaussian;
      name_len = 5;
    } else if (token.rfind("jpeg", 0) == 0) {
      step.kind = DefenseKind::Jpeg;
      name_len = 4;
    } else {
      throw std::invalid_argument("defense: unknown step '" + token +
                                  "' in spec '" + spec + "'");
    }
    const std::string param = token.substr(name_len);
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(param, &consumed);
    } catch (const std::exception&) {
      throw std::invalid_argument("defense: bad parameter in step '" + token +
                                  "' of spec '" + spec + "'");
    }
    if (consumed != param.size()) {
      throw std::invalid_argument("defense: bad parameter in step '" + token +
                                  "' of spec '" + spec + "'");
    }
    step.param = value;
    validate_step(step);
    steps.push_back(step);
    pos = end + 1;
  }
  return DefenseChain{std::move(steps)};
}

Image DefenseChain::apply(const Image& input) const {
  Image out = input;
  for (const DefenseStep& step : steps_) out = apply_step(out, step);
  return out;
}

std::string DefenseChain::name() const {
  if (steps_.empty()) return "none";
  std::string out;
  for (const DefenseStep& step : steps_) {
    if (!out.empty()) out += '+';
    out += to_string(step.kind);
    out += param_string(step);
  }
  return out;
}

DefendedDetector::DefendedDetector(std::shared_ptr<const Detector> inner,
                                   DefenseChain chain)
    : inner_(std::move(inner)), chain_(std::move(chain)) {
  DECAM_ASSERT(inner_ != nullptr);
}

double DefendedDetector::score(const Image& input) const {
  if (chain_.empty()) return inner_->score(input);
  return inner_->score(chain_.apply(input));
}

double DefendedDetector::score(const AnalysisContext& context) const {
  // The context's intermediates describe the RAW input; after the defense
  // transform they are stale, so score from the pixels alone. With an empty
  // chain the intermediates are still valid — pass them through.
  if (chain_.empty()) return inner_->score(context);
  return score(context.input());
}

std::string DefendedDetector::name() const {
  return chain_.name() + ">" + inner_->name();
}

}  // namespace decam::core
