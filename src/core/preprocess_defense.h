// Preprocessing defenses — the pixmask-style family of cheap input
// transforms a deployment can run BEFORE the CNN's resize in the hope of
// destroying an image-scaling payload (or, wrapped around a detector
// battery, before scoring): bit-depth squeezing, median smoothing, Gaussian
// smoothing, and JPEG requantization through imaging/jpeg_sim.
//
// Unlike the Quiring reconstruction defence (reconstruction_defense.h),
// which surgically rewrites exactly the critical pixels, these transforms
// are attack-agnostic and touch EVERY pixel — which is precisely why the
// adversary-aware matrix (bench/matrix_adaptive) sweeps them: a defense
// that damages the payload also damages benign inputs and shifts every
// detector's score distribution, so thresholds calibrated on raw images do
// not automatically transfer. DefendedDetector makes that wrapping explicit.
//
// Determinism contract: every transform is a pure per-image function of its
// input — no RNG, no global state — and is computed with the same
// fixed-order arithmetic as the library kernels it delegates to
// (rank_filter, gaussian_blur, jpeg_roundtrip). Defense-wrapped scans are
// therefore bit-identical across thread counts, which
// tests/battery_determinism_test.cmake pins end to end.
//
// Bit-exactness caveat (DESIGN.md §13): smoothing and JPEG requantization
// produce non-integral float pixels, so a defended image generally leaves
// the 8-bit integer grid — downstream rank medians take the exact
// sorted-window path instead of the histogram fast path, and detector
// scores are NOT comparable to calibrations made on undefended images.
// bit_depth_squeeze is the exception: its output is again exactly integral
// in [0, 255] (and the transform is idempotent), so it keeps the fast
// median path eligible.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "imaging/image.h"

namespace decam::core {

enum class DefenseKind {
  Squeeze,   // bit-depth squeezing to `param` bits (1..8)
  Median,    // param x param median filter
  Gaussian,  // Gaussian blur, sigma = param
  Jpeg,      // JPEG requantization at quality = param (1..100)
};

const char* to_string(DefenseKind kind);

struct DefenseStep {
  DefenseKind kind = DefenseKind::Squeeze;
  double param = 0.0;
};

/// Quantises every pixel to `bits` bits of depth (1 <= bits <= 8): the
/// [0, 255] range is mapped onto 2^bits near-evenly spaced INTEGER levels
/// (round(i * 255/(2^bits-1))) and each value snaps to the nearest level.
/// Values outside [0, 255] are clamped first. Output pixels are always
/// exactly integral in [0, 255] — squeezed images keep the Grid8 median
/// fast path — and re-applying the squeeze is an exact no-op (idempotence
/// is pinned in tests/preprocess_defense_test.cpp).
Image bit_depth_squeeze(const Image& input, int bits);

/// An ordered list of defense steps applied left to right. Parsed from a
/// compact spec string so benches and `decamctl scan --defense=<spec>` share
/// one grammar:
///
///   spec    := "none" | step ("+" step)*
///   step    := "squeeze" BITS | "median" K | "gauss" SIGMA | "jpeg" QUALITY
///
/// e.g. "squeeze4", "median3", "gauss0.8", "squeeze5+jpeg75". parse()
/// throws std::invalid_argument on anything else; name() returns the
/// canonical spec (round-trips through parse()).
class DefenseChain {
 public:
  DefenseChain() = default;
  explicit DefenseChain(std::vector<DefenseStep> steps);

  static DefenseChain parse(const std::string& spec);

  /// Applies every step in order. An empty chain returns the input copy.
  Image apply(const Image& input) const;

  /// Canonical spec string ("none" for the empty chain).
  std::string name() const;

  bool empty() const { return steps_.empty(); }
  const std::vector<DefenseStep>& steps() const { return steps_; }

 private:
  std::vector<DefenseStep> steps_;
};

/// A detector scored through a defense chain: score(x) of the wrapped
/// detector on chain.apply(x). The context overloads intentionally recompute
/// from the (transformed) input instead of reusing shared intermediates —
/// a context built for the RAW image holds the wrong round trip / filtered
/// image / spectrum for the defended view, and silently consuming it would
/// change the score. name() is "<chain>><inner>", e.g.
/// "squeeze4>scaling/mse".
class DefendedDetector final : public Detector {
 public:
  DefendedDetector(std::shared_ptr<const Detector> inner, DefenseChain chain);

  double score(const Image& input) const override;
  double score(const AnalysisContext& context) const override;
  std::string name() const override;

  const DefenseChain& chain() const { return chain_; }
  const Detector& inner() const { return *inner_; }

 private:
  std::shared_ptr<const Detector> inner_;
  DefenseChain chain_;
};

}  // namespace decam::core
