// Color histograms and histogram-distance measures.
//
// Xiao et al. proposed comparing color histograms of the input and its
// downscaled form as a detection heuristic; both Quiring et al. and this
// paper found the metric does not separate benign from attack images. We
// implement it as the negative baseline (core/histogram_detector.h and the
// ablation bench) so the claim can be reproduced, not just asserted.
#pragma once

#include <vector>

#include "imaging/image.h"

namespace decam {

/// Per-channel histogram with `bins` buckets over [0, 255], normalised so
/// each channel's buckets sum to 1. Layout: channel-major, bins per channel.
std::vector<double> color_histogram(const Image& img, int bins = 32);

/// Histogram intersection similarity in [0, 1] (1 = identical histograms).
double histogram_intersection(const std::vector<double>& h1,
                              const std::vector<double>& h2);

/// Symmetric chi-square distance (>= 0, 0 = identical).
double histogram_chi2(const std::vector<double>& h1,
                      const std::vector<double>& h2);

}  // namespace decam
