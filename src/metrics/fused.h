// Fused pair statistics — MSE, windowed SSIM and PSNR of one (reference,
// reconstruction) image pair from a single tiled traversal.
//
// The battery's scaling and filtering stages each reduce the same pair with
// three metrics; computed separately that is seven full-image sweeps (MSE,
// five Gaussian filter passes inside SSIM, and PSNR re-running MSE). The
// fused pass reads each source pixel once per Gaussian tap and nothing
// else: the horizontal pass produces, per pixel, the five windowed sums
// SSIM needs (μ_a, μ_b, a², b², ab) interleaved in a ring of 11 rows, the
// vertical pass folds them into the SSIM map sum while the rows are still
// cache-hot, and the squared-difference accumulator for MSE rides along in
// the same row walk. PSNR is derived from the MSE value.
//
// Bit-exactness contract: every accumulator preserves the reference
// implementations' floating-point addition order (flat data order for MSE,
// per-tap then row-major order for SSIM), so pair_stats() returns exactly
// the values of mse() / ssim() / psnr() called separately. The golden
// battery tests and the 1-vs-N-thread determinism suite pin this down.
#pragma once

#include <vector>

#include "imaging/image.h"

namespace decam {

/// The three reductions of one image pair.
struct PairStats {
  double mse = 0.0;
  double ssim = 0.0;
  double psnr = 0.0;
};

/// Reusable scratch for the fused pass. One per thread (pair_stats() uses
/// the calling thread's); sized on first use and reused across images.
/// `ring` holds 11 rows of the five horizontal window-sum planes (stat-major
/// per row, so each vertical tap is a contiguous vectorizable sweep);
/// `a_pad`/`b_pad` are the edge-replicated source rows the horizontal taps
/// read, `sq` the per-row squared differences of the MSE walk, and `vacc`
/// the five vertical accumulator planes.
struct PairStatsWorkspace {
  std::vector<double> ring;
  std::vector<float> a_pad;
  std::vector<float> b_pad;
  std::vector<double> sq;
  std::vector<double> vacc;
};

/// The calling thread's default workspace.
PairStatsWorkspace& thread_pair_stats_workspace();

/// MSE + mean windowed SSIM + PSNR of (a, b) in one traversal. Shapes must
/// match; results are bit-identical to mse(a, b), ssim(a, b), psnr(a, b).
PairStats pair_stats(const Image& a, const Image& b);

/// Scratch-reusing overload of the above.
PairStats pair_stats(const Image& a, const Image& b,
                     PairStatsWorkspace& workspace);

}  // namespace decam
