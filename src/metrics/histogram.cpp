#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>

namespace decam {

std::vector<double> color_histogram(const Image& img, int bins) {
  DECAM_REQUIRE(!img.empty(), "histogram of empty image");
  DECAM_REQUIRE(bins > 0 && bins <= 256, "bins must be in [1, 256]");
  std::vector<double> hist(
      static_cast<std::size_t>(img.channels()) * bins, 0.0);
  const double scale = bins / 256.0;
  for (int c = 0; c < img.channels(); ++c) {
    const auto plane = img.plane(c);
    for (float v : plane) {
      const int bin = std::clamp(
          static_cast<int>(std::clamp(v, 0.0f, 255.0f) * scale), 0, bins - 1);
      hist[static_cast<std::size_t>(c) * bins + bin] += 1.0;
    }
    const double inv = 1.0 / static_cast<double>(plane.size());
    for (int b = 0; b < bins; ++b) {
      hist[static_cast<std::size_t>(c) * bins + b] *= inv;
    }
  }
  return hist;
}

double histogram_intersection(const std::vector<double>& h1,
                              const std::vector<double>& h2) {
  DECAM_REQUIRE(h1.size() == h2.size(), "histogram size mismatch");
  DECAM_REQUIRE(!h1.empty(), "empty histograms");
  double inter = 0.0;
  double norm = 0.0;
  for (std::size_t i = 0; i < h1.size(); ++i) {
    inter += std::min(h1[i], h2[i]);
    norm += h1[i];
  }
  return norm > 0.0 ? inter / norm : 0.0;
}

double histogram_chi2(const std::vector<double>& h1,
                      const std::vector<double>& h2) {
  DECAM_REQUIRE(h1.size() == h2.size(), "histogram size mismatch");
  DECAM_REQUIRE(!h1.empty(), "empty histograms");
  double total = 0.0;
  for (std::size_t i = 0; i < h1.size(); ++i) {
    const double s = h1[i] + h2[i];
    if (s > 0.0) {
      const double d = h1[i] - h2[i];
      total += d * d / s;
    }
  }
  return 0.5 * total;
}

}  // namespace decam
