#include "metrics/mse.h"

#include <cmath>
#include <limits>

namespace decam {

double mse(const Image& a, const Image& b) {
  DECAM_REQUIRE(a.same_shape(b), "mse: shape mismatch");
  DECAM_REQUIRE(!a.empty(), "mse of empty images");
  const float* pa = a.data();
  const float* pb = b.data();
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
    sum += d * d;
  }
  return sum / static_cast<double>(a.size());
}

double psnr(const Image& a, const Image& b) {
  const double err = mse(a, b);
  if (err == 0.0) return std::numeric_limits<double>::infinity();
  constexpr double peak = 255.0;
  return 10.0 * std::log10(peak * peak / err);
}

}  // namespace decam
