#include "metrics/fused.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace decam {
namespace {

constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
constexpr int kRadius = 5;       // 11-tap Gaussian, sigma 1.5 (ssim.cpp)
constexpr int kTaps = 2 * kRadius + 1;
constexpr int kStats = 5;        // mu_a, mu_b, m_aa, m_bb, m_ab per pixel

// Same window as metrics/ssim.cpp — normalised 11-tap Gaussian.
const std::array<double, kTaps>& ssim_window() {
  static const std::array<double, kTaps> window = [] {
    std::array<double, kTaps> w{};
    constexpr double kSigma = 1.5;
    double sum = 0.0;
    for (int i = -kRadius; i <= kRadius; ++i) {
      const double v = std::exp(-(i * i) / (2.0 * kSigma * kSigma));
      w[static_cast<std::size_t>(i + kRadius)] = v;
      sum += v;
    }
    for (double& v : w) v /= sum;
    return w;
  }();
  return window;
}

// One plane of the fused pass. `mse_sum` threads through all planes so the
// squared differences accumulate in flat data order, exactly like mse().
// Returns the plane's SSIM map sum (row-major accumulation, as in
// ssim_plane()); divide by the pixel count for the plane mean.
double fused_plane(std::span<const float> a, std::span<const float> b,
                   int width, int height, std::vector<double>& ring,
                   double& mse_sum) {
  const std::array<double, kTaps>& win = ssim_window();
  const std::size_t row_doubles =
      static_cast<std::size_t>(width) * kStats;
  ring.resize(row_doubles * kTaps);

  // Horizontal pass for source row y: per pixel, the five 11-tap windowed
  // sums, each accumulated in tap order (identical to filtering the
  // precomputed value/product planes). The MSE row sum rides along so the
  // pair is read exactly once per tap and once for the difference.
  const auto compute_mid_row = [&](int y) {
    const std::size_t base = static_cast<std::size_t>(y) * width;
    double* mid = ring.data() + static_cast<std::size_t>(y % kTaps) *
                                    row_doubles;
    for (int x = 0; x < width; ++x) {
      double acc_a = 0.0, acc_b = 0.0;
      double acc_aa = 0.0, acc_bb = 0.0, acc_ab = 0.0;
      for (int i = -kRadius; i <= kRadius; ++i) {
        const double w = win[static_cast<std::size_t>(i + kRadius)];
        const std::size_t sx =
            static_cast<std::size_t>(std::clamp(x + i, 0, width - 1));
        const double da = a[base + sx];
        const double db = b[base + sx];
        acc_a += w * da;
        acc_b += w * db;
        acc_aa += w * (da * da);
        acc_bb += w * (db * db);
        acc_ab += w * (da * db);
      }
      double* out = mid + static_cast<std::size_t>(x) * kStats;
      out[0] = acc_a;
      out[1] = acc_b;
      out[2] = acc_aa;
      out[3] = acc_bb;
      out[4] = acc_ab;
    }
    for (int x = 0; x < width; ++x) {
      const double d = static_cast<double>(a[base + x]) -
                       static_cast<double>(b[base + x]);
      mse_sum += d * d;
    }
  };

  double total = 0.0;
  int next_mid = 0;
  for (int y = 0; y < height; ++y) {
    // The vertical window of output row y reads mid rows y-5..y+5 (edge
    // replicated); rows enter the ring in order, at most 11 live at once.
    const int last_needed = std::min(y + kRadius, height - 1);
    for (; next_mid <= last_needed; ++next_mid) compute_mid_row(next_mid);

    const double* rows[kTaps];
    for (int i = -kRadius; i <= kRadius; ++i) {
      const int sy = std::clamp(y + i, 0, height - 1);
      rows[i + kRadius] =
          ring.data() + static_cast<std::size_t>(sy % kTaps) * row_doubles;
    }
    for (int x = 0; x < width; ++x) {
      const std::size_t col = static_cast<std::size_t>(x) * kStats;
      double mu_a = 0.0, mu_b = 0.0;
      double m_aa = 0.0, m_bb = 0.0, m_ab = 0.0;
      for (int i = 0; i < kTaps; ++i) {
        const double w = win[static_cast<std::size_t>(i)];
        const double* mid = rows[i] + col;
        mu_a += w * mid[0];
        mu_b += w * mid[1];
        m_aa += w * mid[2];
        m_bb += w * mid[3];
        m_ab += w * mid[4];
      }
      const double va = m_aa - mu_a * mu_a;
      const double vb = m_bb - mu_b * mu_b;
      const double cov = m_ab - mu_a * mu_b;
      const double num = (2.0 * mu_a * mu_b + kC1) * (2.0 * cov + kC2);
      const double den =
          (mu_a * mu_a + mu_b * mu_b + kC1) * (va + vb + kC2);
      total += num / den;
    }
  }
  return total;
}

}  // namespace

PairStatsWorkspace& thread_pair_stats_workspace() {
  thread_local PairStatsWorkspace workspace;
  return workspace;
}

PairStats pair_stats(const Image& a, const Image& b,
                     PairStatsWorkspace& workspace) {
  DECAM_REQUIRE(a.same_shape(b), "pair_stats: shape mismatch");
  DECAM_REQUIRE(!a.empty(), "pair_stats of empty images");
  const std::size_t n = a.plane_size();
  double mse_sum = 0.0;
  double ssim_total = 0.0;
  for (int c = 0; c < a.channels(); ++c) {
    ssim_total += fused_plane(a.plane(c), b.plane(c), a.width(), a.height(),
                              workspace.ring, mse_sum) /
                  static_cast<double>(n);
  }
  PairStats stats;
  stats.mse = mse_sum / static_cast<double>(a.size());
  stats.ssim = ssim_total / a.channels();
  if (stats.mse == 0.0) {
    stats.psnr = std::numeric_limits<double>::infinity();
  } else {
    constexpr double peak = 255.0;
    stats.psnr = 10.0 * std::log10(peak * peak / stats.mse);
  }
  return stats;
}

PairStats pair_stats(const Image& a, const Image& b) {
  return pair_stats(a, b, thread_pair_stats_workspace());
}

}  // namespace decam
