#include "metrics/fused.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/simd.h"

namespace decam {
namespace {

constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
constexpr int kRadius = 5;       // 11-tap Gaussian, sigma 1.5 (ssim.cpp)
constexpr int kTaps = 2 * kRadius + 1;
constexpr int kStats = 5;        // mu_a, mu_b, m_aa, m_bb, m_ab planes

// Same window as metrics/ssim.cpp — normalised 11-tap Gaussian.
const std::array<double, kTaps>& ssim_window() {
  static const std::array<double, kTaps> window = [] {
    std::array<double, kTaps> w{};
    constexpr double kSigma = 1.5;
    double sum = 0.0;
    for (int i = -kRadius; i <= kRadius; ++i) {
      const double v = std::exp(-(i * i) / (2.0 * kSigma * kSigma));
      w[static_cast<std::size_t>(i + kRadius)] = v;
      sum += v;
    }
    for (double& v : w) v /= sum;
    return w;
  }();
  return window;
}

// One plane of the fused pass. `mse_sum` threads through all planes so the
// squared differences accumulate in flat data order, exactly like mse().
// Returns the plane's SSIM map sum (row-major accumulation, as in
// ssim_plane()); divide by the pixel count for the plane mean.
//
// Every windowed sum is accumulated per tap in ascending order starting
// from 0.0, so restructuring the loops into per-tap plane sweeps (the SIMD
// row ops of common/simd.h) leaves each accumulator's addition sequence —
// and therefore every output bit — unchanged.
double fused_plane(std::span<const float> a, std::span<const float> b,
                   int width, int height, PairStatsWorkspace& ws,
                   double& mse_sum) {
  const std::array<double, kTaps>& win = ssim_window();
  const simd::SimdOps& ops = simd::ops();
  const std::size_t w_sz = static_cast<std::size_t>(width);
  const std::size_t pad_sz = w_sz + 2 * kRadius;
  // One ring row holds the five horizontal window-sum planes stat-major:
  // mu_a at 0, mu_b at width, m_aa at 2*width, m_bb, m_ab.
  const std::size_t row_doubles = w_sz * kStats;
  ws.ring.resize(row_doubles * kTaps);
  ws.a_pad.resize(pad_sz);
  ws.b_pad.resize(pad_sz);
  ws.sq.resize(w_sz);
  ws.vacc.resize(row_doubles);

  // Horizontal pass for source row y: per pixel, the five 11-tap windowed
  // sums over the edge-replicated row (a_pad[kRadius + x] = a[x], so tap t
  // of output pixel x reads pad[x + t] = clamp(x + t - kRadius)). The MSE
  // row sum rides along so the pair is read exactly once per tap and once
  // for the difference.
  const auto compute_mid_row = [&](int y) {
    const std::size_t base = static_cast<std::size_t>(y) * w_sz;
    std::fill(ws.a_pad.begin(), ws.a_pad.begin() + kRadius, a[base]);
    std::fill(ws.b_pad.begin(), ws.b_pad.begin() + kRadius, b[base]);
    std::copy(a.begin() + base, a.begin() + base + w_sz,
              ws.a_pad.begin() + kRadius);
    std::copy(b.begin() + base, b.begin() + base + w_sz,
              ws.b_pad.begin() + kRadius);
    std::fill(ws.a_pad.end() - kRadius, ws.a_pad.end(), a[base + w_sz - 1]);
    std::fill(ws.b_pad.end() - kRadius, ws.b_pad.end(), b[base + w_sz - 1]);

    double* mid = ws.ring.data() +
                  static_cast<std::size_t>(y % kTaps) * row_doubles;
    std::fill(mid, mid + row_doubles, 0.0);
    ops.pair_stats_taps(mid, mid + w_sz, mid + 2 * w_sz, mid + 3 * w_sz,
                        mid + 4 * w_sz, ws.a_pad.data(), ws.b_pad.data(),
                        win.data(), kTaps, width);

    ops.sqdiff_f64(ws.sq.data(), a.data() + base, b.data() + base, width);
    for (int x = 0; x < width; ++x) mse_sum += ws.sq[x];
  };

  double total = 0.0;
  int next_mid = 0;
  for (int y = 0; y < height; ++y) {
    // The vertical window of output row y reads mid rows y-5..y+5 (edge
    // replicated); rows enter the ring in order, at most 11 live at once.
    const int last_needed = std::min(y + kRadius, height - 1);
    for (; next_mid <= last_needed; ++next_mid) compute_mid_row(next_mid);

    std::fill(ws.vacc.begin(), ws.vacc.end(), 0.0);
    for (int i = 0; i < kTaps; ++i) {
      const int sy = std::clamp(y + i - kRadius, 0, height - 1);
      const double* mid =
          ws.ring.data() + static_cast<std::size_t>(sy % kTaps) * row_doubles;
      const double tw = win[static_cast<std::size_t>(i)];
      for (int p = 0; p < kStats; ++p) {
        ops.daxpy_f64(ws.vacc.data() + static_cast<std::size_t>(p) * w_sz,
                      mid + static_cast<std::size_t>(p) * w_sz, tw, width);
      }
    }
    const double* mu_a_p = ws.vacc.data();
    const double* mu_b_p = mu_a_p + w_sz;
    const double* m_aa_p = mu_a_p + 2 * w_sz;
    const double* m_bb_p = mu_a_p + 3 * w_sz;
    const double* m_ab_p = mu_a_p + 4 * w_sz;
    for (int x = 0; x < width; ++x) {
      const double mu_a = mu_a_p[x];
      const double mu_b = mu_b_p[x];
      const double va = m_aa_p[x] - mu_a * mu_a;
      const double vb = m_bb_p[x] - mu_b * mu_b;
      const double cov = m_ab_p[x] - mu_a * mu_b;
      const double num = (2.0 * mu_a * mu_b + kC1) * (2.0 * cov + kC2);
      const double den =
          (mu_a * mu_a + mu_b * mu_b + kC1) * (va + vb + kC2);
      total += num / den;
    }
  }
  return total;
}

}  // namespace

PairStatsWorkspace& thread_pair_stats_workspace() {
  thread_local PairStatsWorkspace workspace;
  return workspace;
}

PairStats pair_stats(const Image& a, const Image& b,
                     PairStatsWorkspace& workspace) {
  DECAM_REQUIRE(a.same_shape(b), "pair_stats: shape mismatch");
  DECAM_REQUIRE(!a.empty(), "pair_stats of empty images");
  const std::size_t n = a.plane_size();
  double mse_sum = 0.0;
  double ssim_total = 0.0;
  for (int c = 0; c < a.channels(); ++c) {
    ssim_total += fused_plane(a.plane(c), b.plane(c), a.width(), a.height(),
                              workspace, mse_sum) /
                  static_cast<double>(n);
  }
  PairStats stats;
  stats.mse = mse_sum / static_cast<double>(a.size());
  stats.ssim = ssim_total / a.channels();
  if (stats.mse == 0.0) {
    stats.psnr = std::numeric_limits<double>::infinity();
  } else {
    constexpr double peak = 255.0;
    stats.psnr = 10.0 * std::log10(peak * peak / stats.mse);
  }
  return stats;
}

PairStats pair_stats(const Image& a, const Image& b) {
  return pair_stats(a, b, thread_pair_stats_workspace());
}

}  // namespace decam
