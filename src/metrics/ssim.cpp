#include "metrics/ssim.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace decam {
namespace {

constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);

// 11-tap Gaussian (sigma = 1.5) used by the reference SSIM implementation.
std::vector<double> ssim_window() {
  constexpr int kRadius = 5;
  constexpr double kSigma = 1.5;
  std::vector<double> w(2 * kRadius + 1);
  double sum = 0.0;
  for (int i = -kRadius; i <= kRadius; ++i) {
    const double v = std::exp(-(i * i) / (2.0 * kSigma * kSigma));
    w[static_cast<std::size_t>(i + kRadius)] = v;
    sum += v;
  }
  for (double& v : w) v /= sum;
  return w;
}

// Separable Gaussian filtering of a single plane held as doubles, with edge
// replication. Keeping this local avoids an Image->double conversion dance.
std::vector<double> gauss_filter(const std::vector<double>& src, int width,
                                 int height, const std::vector<double>& win) {
  const int radius = static_cast<int>(win.size() / 2);
  std::vector<double> mid(src.size());
  std::vector<double> out(src.size());
  auto clamp_x = [width](int x) { return std::clamp(x, 0, width - 1); };
  auto clamp_y = [height](int y) { return std::clamp(y, 0, height - 1); };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double acc = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        acc += win[static_cast<std::size_t>(i + radius)] *
               src[static_cast<std::size_t>(y) * width + clamp_x(x + i)];
      }
      mid[static_cast<std::size_t>(y) * width + x] = acc;
    }
  }
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double acc = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        acc += win[static_cast<std::size_t>(i + radius)] *
               mid[static_cast<std::size_t>(clamp_y(y + i)) * width + x];
      }
      out[static_cast<std::size_t>(y) * width + x] = acc;
    }
  }
  return out;
}

double ssim_plane(std::span<const float> a, std::span<const float> b,
                  int width, int height) {
  const std::vector<double> win = ssim_window();
  const std::size_t n = a.size();
  std::vector<double> da(n), db(n), daa(n), dbb(n), dab(n);
  for (std::size_t i = 0; i < n; ++i) {
    da[i] = a[i];
    db[i] = b[i];
    daa[i] = da[i] * da[i];
    dbb[i] = db[i] * db[i];
    dab[i] = da[i] * db[i];
  }
  const std::vector<double> mu_a = gauss_filter(da, width, height, win);
  const std::vector<double> mu_b = gauss_filter(db, width, height, win);
  const std::vector<double> m_aa = gauss_filter(daa, width, height, win);
  const std::vector<double> m_bb = gauss_filter(dbb, width, height, win);
  const std::vector<double> m_ab = gauss_filter(dab, width, height, win);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double va = m_aa[i] - mu_a[i] * mu_a[i];
    const double vb = m_bb[i] - mu_b[i] * mu_b[i];
    const double cov = m_ab[i] - mu_a[i] * mu_b[i];
    const double num = (2.0 * mu_a[i] * mu_b[i] + kC1) * (2.0 * cov + kC2);
    const double den =
        (mu_a[i] * mu_a[i] + mu_b[i] * mu_b[i] + kC1) * (va + vb + kC2);
    total += num / den;
  }
  return total / static_cast<double>(n);
}

}  // namespace

double ssim(const Image& a, const Image& b) {
  DECAM_REQUIRE(a.same_shape(b), "ssim: shape mismatch");
  DECAM_REQUIRE(!a.empty(), "ssim of empty images");
  double total = 0.0;
  for (int c = 0; c < a.channels(); ++c) {
    total += ssim_plane(a.plane(c), b.plane(c), a.width(), a.height());
  }
  return total / a.channels();
}

double ssim_global(const Image& a, const Image& b) {
  DECAM_REQUIRE(a.same_shape(b), "ssim_global: shape mismatch");
  DECAM_REQUIRE(!a.empty(), "ssim_global of empty images");
  const float* pa = a.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
  double mu_a = 0.0, mu_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mu_a += pa[i];
    mu_b += pb[i];
  }
  mu_a /= static_cast<double>(n);
  mu_b /= static_cast<double>(n);
  double var_a = 0.0, var_b = 0.0, cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ea = pa[i] - mu_a;
    const double eb = pb[i] - mu_b;
    var_a += ea * ea;
    var_b += eb * eb;
    cov += ea * eb;
  }
  var_a /= static_cast<double>(n - 1);
  var_b /= static_cast<double>(n - 1);
  cov /= static_cast<double>(n - 1);
  const double num = (2.0 * mu_a * mu_b + kC1) * (2.0 * cov + kC2);
  const double den = (mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2);
  return num / den;
}

}  // namespace decam
