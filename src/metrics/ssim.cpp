#include "metrics/ssim.h"

#include "metrics/fused.h"

namespace decam {
namespace {

constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);

}  // namespace

double ssim(const Image& a, const Image& b) {
  DECAM_REQUIRE(a.same_shape(b), "ssim: shape mismatch");
  DECAM_REQUIRE(!a.empty(), "ssim of empty images");
  // One implementation for all callers: the fused tiled pass of
  // metrics/fused.cpp (its windowed sums preserve the reference
  // accumulation order, see the header contract there). The MSE that rides
  // along is two flops per pixel — not worth a second code path.
  return pair_stats(a, b).ssim;
}

double ssim_global(const Image& a, const Image& b) {
  DECAM_REQUIRE(a.same_shape(b), "ssim_global: shape mismatch");
  DECAM_REQUIRE(!a.empty(), "ssim_global of empty images");
  const float* pa = a.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
  double mu_a = 0.0, mu_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mu_a += pa[i];
    mu_b += pb[i];
  }
  mu_a /= static_cast<double>(n);
  mu_b /= static_cast<double>(n);
  double var_a = 0.0, var_b = 0.0, cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ea = pa[i] - mu_a;
    const double eb = pb[i] - mu_b;
    var_a += ea * ea;
    var_b += eb * eb;
    cov += ea * eb;
  }
  var_a /= static_cast<double>(n - 1);
  var_b /= static_cast<double>(n - 1);
  cov /= static_cast<double>(n - 1);
  const double num = (2.0 * mu_a * mu_b + kC1) * (2.0 * cov + kC2);
  const double den = (mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2);
  return num / den;
}

}  // namespace decam
