// Structural Similarity Index (Wang, Bovik, Sheikh, Simoncelli 2004) —
// the paper's second similarity score (Eq. 6). Two variants:
//
//  * ssim()        — the standard mean-SSIM map: local statistics under an
//                    11x11 Gaussian window (sigma 1.5), averaged over the
//                    image. This is what scikit-image / MATLAB compute and
//                    what the paper's thresholds (e.g. 0.61) refer to.
//  * ssim_global() — single-window SSIM over the whole image; cheaper,
//                    exposed for the runtime ablation bench.
//
// Color images are scored per channel and averaged, matching the common
// multichannel=True convention.
#pragma once

#include "imaging/image.h"

namespace decam {

/// Mean local SSIM in [-1, 1]; 1 iff the images are identical.
double ssim(const Image& a, const Image& b);

/// Whole-image single-window SSIM.
double ssim_global(const Image& a, const Image& b);

}  // namespace decam
