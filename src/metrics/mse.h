// Pixel-difference metrics: MSE (the paper's primary scaling/filtering
// score, Eq. 5) and PSNR (evaluated in the paper's appendix and shown NOT
// to separate benign from attack images — we reproduce that negative result
// in bench/fig15_psnr_overlap).
#pragma once

#include "imaging/image.h"

namespace decam {

/// Mean squared error over all pixels and channels. Shapes must match.
double mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB, Eq. (9): 10*log10((L-1)^2 / MSE) with
/// L = 256 intensity levels. Returns +inf for identical images.
double psnr(const Image& a, const Image& b);

}  // namespace decam
