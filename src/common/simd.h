// Runtime-dispatched SIMD kernel core.
//
// The per-tap inner loops of the imaging/metrics hot paths (resize tap
// application, separable convolution, the fused pair-stats walk, and the
// running-histogram merge of the median filter) funnel through a table of
// function pointers resolved once at startup: AVX2 on x86-64 hosts that
// support it, NEON on aarch64, and a portable scalar fallback everywhere.
// `DECAM_SIMD=scalar|avx2|neon` overrides the choice per process (an
// unavailable request falls back to scalar with a warning), and benches and
// tests can swap the active table with set_active_isa() to measure or
// verify a specific variant.
//
// Bit-exactness contract: every operation in the table is specified as an
// exact elementwise IEEE sequence (the comments below are the contract) and
// every variant — scalar included — must produce bit-identical results for
// the same inputs. The per-ISA translation units are compiled with
// -ffp-contract=off and use explicit multiply/add intrinsics (never FMA),
// so a vector lane performs exactly the operations the scalar loop does.
// The simd_dispatch ctest re-runs the kernel parity suite with the scalar
// table forced to hold each variant to that promise.
//
// Observability: the resolved ISA is exported as the `simd/dispatch` gauge
// (0 = scalar, 1 = avx2, 2 = neon) so a `decamctl scan --stats` shows which
// kernel core a run actually used.
#pragma once

#include <cstdint>

namespace decam::simd {

enum class Isa { Scalar = 0, Avx2 = 1, Neon = 2 };

const char* to_string(Isa isa);

/// One set of vectorized kernel primitives. All pointers are non-null in
/// every table; `n` is the element count and buffers may be unaligned.
struct SimdOps {
  const char* name;  // matches to_string() of the owning Isa

  /// dst[i] += add[i] - sub[i] over uint16 bins (mod 2^16; exact whenever
  /// the true result fits, which histogram counts do by construction).
  void (*hist_merge_u16)(std::uint16_t* dst, const std::uint16_t* add,
                         const std::uint16_t* sub, int n);
  /// dst[i] += add[i] (same arithmetic as hist_merge_u16 without the sub).
  void (*hist_add_u16)(std::uint16_t* dst, const std::uint16_t* add, int n);
  /// One level of the two-level histogram median descent: the smallest
  /// index i in [0, 16) whose inclusive prefix sum bins[0] + ... + bins[i]
  /// exceeds `rank`, or 16 when the 16-bin total does not. `*below`
  /// receives the prefix sum before that index (0 when i == 0, the total
  /// when i == 16). Branch-free in every variant — the select runs per
  /// output pixel and a data-dependent early exit would mispredict more
  /// than it saves. Integer-exact, so parity across variants is trivial.
  int (*hist_rank16_u16)(const std::uint16_t* bins, std::uint32_t rank,
                         std::uint32_t* below);

  /// out[i] = (float)(w * (double)in[i])
  void (*weighted_assign_f32)(float* out, const float* in, double w, int n);
  /// acc[i] = w * (double)in[i]
  void (*weighted_init_f64)(double* acc, const float* in, double w, int n);
  /// acc[i] += w * (double)in[i]   (double product, then double add)
  void (*weighted_add_f64)(double* acc, const float* in, double w, int n);
  /// out[i] = (float)(acc[i] + w * (double)in[i])
  void (*weighted_finish_f32)(float* out, const double* acc, const float* in,
                              double w, int n);

  /// acc[i] += (double)(kw * in[i])  — FLOAT product, double accumulate:
  /// the separable-convolution contract of imaging/filter.h.
  void (*tap_accumulate_f32)(double* acc, const float* in, float kw, int n);
  /// out[i] = (float)acc[i]
  void (*narrow_f64_f32)(float* out, const double* acc, int n);
  /// acc[i] += w * in[i] (all double; double product, then double add)
  void (*daxpy_f64)(double* acc, const double* in, double w, int n);
  /// out[i] = d * d with d = (double)a[i] - (double)b[i]
  void (*sqdiff_f64)(double* out, const float* a, const float* b, int n);

  /// The fused pair-stats horizontal pass (metrics/fused.cpp): for each tap
  /// t in ascending order with weight w = win[t], and per element i:
  ///   da = (double)a_pad[i + t], db = (double)b_pad[i + t]
  ///   mu_a[i] += w * da;        mu_b[i] += w * db;
  ///   m_aa[i] += w * (da * da); m_bb[i] += w * (db * db);
  ///   m_ab[i] += w * (da * db);
  /// Callers zero the five planes first (0 + v == v keeps the order exact).
  void (*pair_stats_taps)(double* mu_a, double* mu_b, double* m_aa,
                          double* m_bb, double* m_ab, const float* a_pad,
                          const float* b_pad, const double* win, int taps,
                          int n);
};

/// The active table. Resolved once (cpuid + DECAM_SIMD) on first use;
/// subsequent calls are one relaxed atomic load.
const SimdOps& ops();

/// The ISA the active table implements.
Isa active_isa();

/// Swaps the active table (benches measuring `…/scalar` variants, parity
/// tests). Returns the previous ISA. Requesting an ISA this host cannot run
/// falls back to Scalar. Not intended for concurrent use with hot loops in
/// flight on other threads.
Isa set_active_isa(Isa isa);

/// True when the build carries a native (non-scalar) variant for this host
/// and the CPU supports it, regardless of the active selection.
bool native_available();

}  // namespace decam::simd
