// Scalar reference variant of the SIMD kernel table. Compiled with
// -ffp-contract=off (src/CMakeLists.txt): the loops below are the
// normative elementwise sequences of common/simd.h, and no compiler may
// fuse a multiply-add into an FMA here — that would change roundings and
// break bit-parity with the vector variants, which use explicit
// multiply/add instructions for the same reason.
#include "common/simd_kernels.h"

namespace decam::simd::detail {
namespace {

void hist_merge_u16(std::uint16_t* dst, const std::uint16_t* add,
                    const std::uint16_t* sub, int n) {
  for (int i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint16_t>(dst[i] + add[i] - sub[i]);
  }
}

void hist_add_u16(std::uint16_t* dst, const std::uint16_t* add, int n) {
  for (int i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint16_t>(dst[i] + add[i]);
  }
}

int hist_rank16_u16(const std::uint16_t* bins, std::uint32_t rank,
                    std::uint32_t* below) {
  std::uint32_t cum = 0;
  std::uint32_t pre = 0;
  int idx = 0;
  for (int i = 0; i < 16; ++i) {
    cum += bins[i];
    const bool le = cum <= rank;
    idx += le ? 1 : 0;
    pre = le ? cum : pre;
  }
  *below = pre;
  return idx;
}

void weighted_assign_f32(float* out, const float* in, double w, int n) {
  for (int i = 0; i < n; ++i) {
    out[i] = static_cast<float>(w * static_cast<double>(in[i]));
  }
}

void weighted_init_f64(double* acc, const float* in, double w, int n) {
  for (int i = 0; i < n; ++i) acc[i] = w * static_cast<double>(in[i]);
}

void weighted_add_f64(double* acc, const float* in, double w, int n) {
  for (int i = 0; i < n; ++i) {
    const double p = w * static_cast<double>(in[i]);
    acc[i] += p;
  }
}

void weighted_finish_f32(float* out, const double* acc, const float* in,
                         double w, int n) {
  for (int i = 0; i < n; ++i) {
    const double p = w * static_cast<double>(in[i]);
    out[i] = static_cast<float>(acc[i] + p);
  }
}

void tap_accumulate_f32(double* acc, const float* in, float kw, int n) {
  for (int i = 0; i < n; ++i) {
    const float p = kw * in[i];  // float product (imaging/filter.h contract)
    acc[i] += static_cast<double>(p);
  }
}

void narrow_f64_f32(float* out, const double* acc, int n) {
  for (int i = 0; i < n; ++i) out[i] = static_cast<float>(acc[i]);
}

void daxpy_f64(double* acc, const double* in, double w, int n) {
  for (int i = 0; i < n; ++i) {
    const double p = w * in[i];
    acc[i] += p;
  }
}

void sqdiff_f64(double* out, const float* a, const float* b, int n) {
  for (int i = 0; i < n; ++i) {
    const double d =
        static_cast<double>(a[i]) - static_cast<double>(b[i]);
    out[i] = d * d;
  }
}

void pair_stats_taps(double* mu_a, double* mu_b, double* m_aa, double* m_bb,
                     double* m_ab, const float* a_pad, const float* b_pad,
                     const double* win, int taps, int n) {
  for (int t = 0; t < taps; ++t) {
    const double w = win[t];
    const float* a = a_pad + t;
    const float* b = b_pad + t;
    for (int i = 0; i < n; ++i) {
      const double da = static_cast<double>(a[i]);
      const double db = static_cast<double>(b[i]);
      mu_a[i] += w * da;
      mu_b[i] += w * db;
      m_aa[i] += w * (da * da);
      m_bb[i] += w * (db * db);
      m_ab[i] += w * (da * db);
    }
  }
}

}  // namespace

const SimdOps& scalar_ops() {
  static const SimdOps ops = {
      "scalar",        hist_merge_u16,    hist_add_u16,
      hist_rank16_u16,
      weighted_assign_f32, weighted_init_f64, weighted_add_f64,
      weighted_finish_f32, tap_accumulate_f32, narrow_f64_f32,
      daxpy_f64,       sqdiff_f64,        pair_stats_taps,
  };
  return ops;
}

}  // namespace decam::simd::detail
