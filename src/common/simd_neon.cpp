// NEON (aarch64) variant of the SIMD kernel table. Only compiled on
// aarch64, where NEON with float64x2 arithmetic is baseline.
//
// Same bit-parity contract as the AVX2 table: explicit vmulq/vaddq pairs,
// never vfmaq, and the TU is compiled with -ffp-contract=off. aarch64 would
// otherwise contract multiply-adds into FMAs and diverge from the scalar
// table.
#include "common/simd_kernels.h"

#ifdef DECAM_SIMD_HAVE_NEON

#include <arm_neon.h>

namespace decam::simd::detail {
namespace {

void hist_merge_u16(std::uint16_t* dst, const std::uint16_t* add,
                    const std::uint16_t* sub, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint16x8_t d = vld1q_u16(dst + i);
    const uint16x8_t a = vld1q_u16(add + i);
    const uint16x8_t s = vld1q_u16(sub + i);
    vst1q_u16(dst + i, vsubq_u16(vaddq_u16(d, a), s));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<std::uint16_t>(dst[i] + add[i] - sub[i]);
  }
}

void hist_add_u16(std::uint16_t* dst, const std::uint16_t* add, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    vst1q_u16(dst + i, vaddq_u16(vld1q_u16(dst + i), vld1q_u16(add + i)));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint16_t>(dst[i] + add[i]);
}

int hist_rank16_u16(const std::uint16_t* bins, std::uint32_t rank,
                    std::uint32_t* below) {
  // Inclusive u32 prefix sums of the 16 bins across four quads (lane-shift
  // adds plus a carried quad total), then a branch-free count of prefixes
  // <= rank; integer-exact, so parity with the other variants is trivial.
  const uint16x8_t v0 = vld1q_u16(bins);
  const uint16x8_t v1 = vld1q_u16(bins + 8);
  uint32x4_t q[4] = {vmovl_u16(vget_low_u16(v0)), vmovl_u16(vget_high_u16(v0)),
                     vmovl_u16(vget_low_u16(v1)),
                     vmovl_u16(vget_high_u16(v1))};
  const uint32x4_t zero = vdupq_n_u32(0);
  std::uint32_t carry = 0;
  std::uint32_t pre[17];
  pre[0] = 0;
  int idx = 0;
  const uint32x4_t rankv = vdupq_n_u32(rank);
  for (int s = 0; s < 4; ++s) {
    uint32x4_t x = q[s];
    x = vaddq_u32(x, vextq_u32(zero, x, 3));  // shift left one lane
    x = vaddq_u32(x, vextq_u32(zero, x, 2));  // shift left two lanes
    x = vaddq_u32(x, vdupq_n_u32(carry));
    carry = vgetq_lane_u32(x, 3);
    vst1q_u32(pre + 1 + 4 * s, x);
    const uint32x4_t le = vcleq_u32(x, rankv);  // all-ones lanes where <=
    idx += static_cast<int>(vaddvq_u32(vshrq_n_u32(le, 31)));
  }
  *below = pre[idx];
  return idx;
}

// Widen two float lanes to a float64x2.
inline float64x2_t widen(const float* p) {
  return vcvt_f64_f32(vld1_f32(p));
}

void weighted_assign_f32(float* out, const float* in, double w, int n) {
  const float64x2_t wv = vdupq_n_f64(w);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1_f32(out + i, vcvt_f32_f64(vmulq_f64(wv, widen(in + i))));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(w * static_cast<double>(in[i]));
  }
}

void weighted_init_f64(double* acc, const float* in, double w, int n) {
  const float64x2_t wv = vdupq_n_f64(w);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(acc + i, vmulq_f64(wv, widen(in + i)));
  }
  for (; i < n; ++i) acc[i] = w * static_cast<double>(in[i]);
}

void weighted_add_f64(double* acc, const float* in, double w, int n) {
  const float64x2_t wv = vdupq_n_f64(w);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t p = vmulq_f64(wv, widen(in + i));
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), p));
  }
  for (; i < n; ++i) {
    const double p = w * static_cast<double>(in[i]);
    acc[i] += p;
  }
}

void weighted_finish_f32(float* out, const double* acc, const float* in,
                         double w, int n) {
  const float64x2_t wv = vdupq_n_f64(w);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t p = vmulq_f64(wv, widen(in + i));
    vst1_f32(out + i, vcvt_f32_f64(vaddq_f64(vld1q_f64(acc + i), p)));
  }
  for (; i < n; ++i) {
    const double p = w * static_cast<double>(in[i]);
    out[i] = static_cast<float>(acc[i] + p);
  }
}

void tap_accumulate_f32(double* acc, const float* in, float kw, int n) {
  const float32x2_t kwv = vdup_n_f32(kw);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    // Float product first (imaging/filter.h contract), then widen and add.
    const float32x2_t p = vmul_f32(kwv, vld1_f32(in + i));
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), vcvt_f64_f32(p)));
  }
  for (; i < n; ++i) {
    const float p = kw * in[i];
    acc[i] += static_cast<double>(p);
  }
}

void narrow_f64_f32(float* out, const double* acc, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1_f32(out + i, vcvt_f32_f64(vld1q_f64(acc + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<float>(acc[i]);
}

void daxpy_f64(double* acc, const double* in, double w, int n) {
  const float64x2_t wv = vdupq_n_f64(w);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t p = vmulq_f64(wv, vld1q_f64(in + i));
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), p));
  }
  for (; i < n; ++i) {
    const double p = w * in[i];
    acc[i] += p;
  }
}

void sqdiff_f64(double* out, const float* a, const float* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vsubq_f64(widen(a + i), widen(b + i));
    vst1q_f64(out + i, vmulq_f64(d, d));
  }
  for (; i < n; ++i) {
    const double d =
        static_cast<double>(a[i]) - static_cast<double>(b[i]);
    out[i] = d * d;
  }
}

void pair_stats_taps(double* mu_a, double* mu_b, double* m_aa, double* m_bb,
                     double* m_ab, const float* a_pad, const float* b_pad,
                     const double* win, int taps, int n) {
  for (int t = 0; t < taps; ++t) {
    const double w = win[t];
    const float64x2_t wv = vdupq_n_f64(w);
    const float* a = a_pad + t;
    const float* b = b_pad + t;
    int i = 0;
    for (; i + 2 <= n; i += 2) {
      const float64x2_t da = widen(a + i);
      const float64x2_t db = widen(b + i);
      vst1q_f64(mu_a + i,
                vaddq_f64(vld1q_f64(mu_a + i), vmulq_f64(wv, da)));
      vst1q_f64(mu_b + i,
                vaddq_f64(vld1q_f64(mu_b + i), vmulq_f64(wv, db)));
      vst1q_f64(m_aa + i,
                vaddq_f64(vld1q_f64(m_aa + i),
                          vmulq_f64(wv, vmulq_f64(da, da))));
      vst1q_f64(m_bb + i,
                vaddq_f64(vld1q_f64(m_bb + i),
                          vmulq_f64(wv, vmulq_f64(db, db))));
      vst1q_f64(m_ab + i,
                vaddq_f64(vld1q_f64(m_ab + i),
                          vmulq_f64(wv, vmulq_f64(da, db))));
    }
    for (; i < n; ++i) {
      const double da = static_cast<double>(a[i]);
      const double db = static_cast<double>(b[i]);
      mu_a[i] += w * da;
      mu_b[i] += w * db;
      m_aa[i] += w * (da * da);
      m_bb[i] += w * (db * db);
      m_ab[i] += w * (da * db);
    }
  }
}

}  // namespace

const SimdOps& neon_ops() {
  static const SimdOps ops = {
      "neon",          hist_merge_u16,    hist_add_u16,
      hist_rank16_u16,
      weighted_assign_f32, weighted_init_f64, weighted_add_f64,
      weighted_finish_f32, tap_accumulate_f32, narrow_f64_f32,
      daxpy_f64,       sqdiff_f64,        pair_stats_taps,
  };
  return ops;
}

}  // namespace decam::simd::detail

#endif  // DECAM_SIMD_HAVE_NEON
