// Error handling primitives shared by every decam library.
//
// Policy (see DESIGN.md §5):
//   * Caller mistakes (bad sizes, out-of-range parameters) throw
//     std::invalid_argument via DECAM_REQUIRE.
//   * Environment failures (file I/O) throw decam::IoError.
//   * Internal invariants use DECAM_ASSERT, which aborts with a message —
//     these indicate bugs in this library, never in user code.
#pragma once

#include <stdexcept>
#include <string>

namespace decam {

/// Thrown when reading or writing image files fails (missing file, short
/// read, malformed header, ...).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 const std::string& msg);
[[noreturn]] void assert_failed(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace decam

/// Validate a caller-supplied precondition; throws std::invalid_argument.
#define DECAM_REQUIRE(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::decam::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)

/// Check an internal invariant; aborts on failure (library bug).
#define DECAM_ASSERT(cond)                                            \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::decam::detail::assert_failed(#cond, __FILE__, __LINE__);      \
    }                                                                 \
  } while (false)
