// AVX2 variant of the SIMD kernel table. Only compiled on x86-64 (the
// dispatcher additionally checks cpuid before selecting it).
//
// Bit-parity with the scalar table is part of the contract (common/simd.h):
// every lane performs exactly the scalar sequence — note the explicit
// _mm256_mul_pd / _mm256_add_pd pairs instead of FMA, and the float
// multiply before widening in tap_accumulate_f32. The TU is compiled with
// -ffp-contract=off so the compiler cannot re-fuse what we deliberately
// keep separate.
#include "common/simd_kernels.h"

#ifdef DECAM_SIMD_HAVE_AVX2

#include <immintrin.h>

namespace decam::simd::detail {
namespace {

void hist_merge_u16(std::uint16_t* dst, const std::uint16_t* add,
                    const std::uint16_t* sub, int n) {
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(add + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sub + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_sub_epi16(_mm256_add_epi16(d, a), s));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<std::uint16_t>(dst[i] + add[i] - sub[i]);
  }
}

void hist_add_u16(std::uint16_t* dst, const std::uint16_t* add, int n) {
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(add + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi16(d, a));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint16_t>(dst[i] + add[i]);
}

int hist_rank16_u16(const std::uint16_t* bins, std::uint32_t rank,
                    std::uint32_t* below) {
  // Same branch-free scalar scan as the scalar table. A vector prefix-sum
  // formulation was measured slower here: extracting the `below` prefix
  // needs a store-then-narrow-reload of the prefix vector, and the
  // store-forwarding stall costs more than sixteen scalar adds.
  std::uint32_t cum = 0;
  std::uint32_t pre = 0;
  int idx = 0;
  for (int i = 0; i < 16; ++i) {
    cum += bins[i];
    const bool le = cum <= rank;
    idx += le ? 1 : 0;
    pre = le ? cum : pre;
  }
  *below = pre;
  return idx;
}

void weighted_assign_f32(float* out, const float* in, double w, int n) {
  const __m256d wv = _mm256_set1_pd(w);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(in + i));
    _mm_storeu_ps(out + i, _mm256_cvtpd_ps(_mm256_mul_pd(wv, v)));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(w * static_cast<double>(in[i]));
  }
}

void weighted_init_f64(double* acc, const float* in, double w, int n) {
  const __m256d wv = _mm256_set1_pd(w);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(in + i));
    _mm256_storeu_pd(acc + i, _mm256_mul_pd(wv, v));
  }
  for (; i < n; ++i) acc[i] = w * static_cast<double>(in[i]);
}

void weighted_add_f64(double* acc, const float* in, double w, int n) {
  const __m256d wv = _mm256_set1_pd(w);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(in + i));
    const __m256d a = _mm256_loadu_pd(acc + i);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(a, _mm256_mul_pd(wv, v)));
  }
  for (; i < n; ++i) {
    const double p = w * static_cast<double>(in[i]);
    acc[i] += p;
  }
}

void weighted_finish_f32(float* out, const double* acc, const float* in,
                         double w, int n) {
  const __m256d wv = _mm256_set1_pd(w);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(in + i));
    const __m256d a = _mm256_loadu_pd(acc + i);
    _mm_storeu_ps(out + i,
                  _mm256_cvtpd_ps(_mm256_add_pd(a, _mm256_mul_pd(wv, v))));
  }
  for (; i < n; ++i) {
    const double p = w * static_cast<double>(in[i]);
    out[i] = static_cast<float>(acc[i] + p);
  }
}

void tap_accumulate_f32(double* acc, const float* in, float kw, int n) {
  const __m128 kwv = _mm_set1_ps(kw);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    // Float product first — the imaging/filter.h accumulator contract —
    // then widen and add in double.
    const __m128 p = _mm_mul_ps(kwv, _mm_loadu_ps(in + i));
    const __m256d a = _mm256_loadu_pd(acc + i);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(a, _mm256_cvtps_pd(p)));
  }
  for (; i < n; ++i) {
    const float p = kw * in[i];
    acc[i] += static_cast<double>(p);
  }
}

void narrow_f64_f32(float* out, const double* acc, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i, _mm256_cvtpd_ps(_mm256_loadu_pd(acc + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<float>(acc[i]);
}

void daxpy_f64(double* acc, const double* in, double w, int n) {
  const __m256d wv = _mm256_set1_pd(w);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(in + i);
    const __m256d a = _mm256_loadu_pd(acc + i);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(a, _mm256_mul_pd(wv, v)));
  }
  for (; i < n; ++i) {
    const double p = w * in[i];
    acc[i] += p;
  }
}

void sqdiff_f64(double* out, const float* a, const float* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d da = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d db = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    const __m256d d = _mm256_sub_pd(da, db);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(d, d));
  }
  for (; i < n; ++i) {
    const double d =
        static_cast<double>(a[i]) - static_cast<double>(b[i]);
    out[i] = d * d;
  }
}

void pair_stats_taps(double* mu_a, double* mu_b, double* m_aa, double* m_bb,
                     double* m_ab, const float* a_pad, const float* b_pad,
                     const double* win, int taps, int n) {
  for (int t = 0; t < taps; ++t) {
    const double w = win[t];
    const __m256d wv = _mm256_set1_pd(w);
    const float* a = a_pad + t;
    const float* b = b_pad + t;
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d da = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
      const __m256d db = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
      _mm256_storeu_pd(
          mu_a + i,
          _mm256_add_pd(_mm256_loadu_pd(mu_a + i), _mm256_mul_pd(wv, da)));
      _mm256_storeu_pd(
          mu_b + i,
          _mm256_add_pd(_mm256_loadu_pd(mu_b + i), _mm256_mul_pd(wv, db)));
      _mm256_storeu_pd(
          m_aa + i,
          _mm256_add_pd(_mm256_loadu_pd(m_aa + i),
                        _mm256_mul_pd(wv, _mm256_mul_pd(da, da))));
      _mm256_storeu_pd(
          m_bb + i,
          _mm256_add_pd(_mm256_loadu_pd(m_bb + i),
                        _mm256_mul_pd(wv, _mm256_mul_pd(db, db))));
      _mm256_storeu_pd(
          m_ab + i,
          _mm256_add_pd(_mm256_loadu_pd(m_ab + i),
                        _mm256_mul_pd(wv, _mm256_mul_pd(da, db))));
    }
    for (; i < n; ++i) {
      const double da = static_cast<double>(a[i]);
      const double db = static_cast<double>(b[i]);
      mu_a[i] += w * da;
      mu_b[i] += w * db;
      m_aa[i] += w * (da * da);
      m_bb[i] += w * (db * db);
      m_ab[i] += w * (da * db);
    }
  }
}

}  // namespace

const SimdOps& avx2_ops() {
  static const SimdOps ops = {
      "avx2",          hist_merge_u16,    hist_add_u16,
      hist_rank16_u16,
      weighted_assign_f32, weighted_init_f64, weighted_add_f64,
      weighted_finish_f32, tap_accumulate_f32, narrow_f64_f32,
      daxpy_f64,       sqdiff_f64,        pair_stats_taps,
  };
  return ops;
}

}  // namespace decam::simd::detail

#endif  // DECAM_SIMD_HAVE_AVX2
