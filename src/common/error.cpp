#include "common/error.h"

#include <cstdio>
#include <cstdlib>

namespace decam::detail {

void require_failed(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement `" + expr + "` failed: " + msg);
}

void assert_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "%s:%d: internal invariant `%s` violated\n", file, line,
               expr);
  std::abort();
}

}  // namespace decam::detail
