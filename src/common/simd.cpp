// Runtime ISA selection for the SIMD kernel tables (common/simd.h).
//
// Resolution order, decided exactly once per process:
//   1. DECAM_SIMD=scalar|avx2|neon — explicit override. Requesting a
//      variant this build/host cannot run warns on stderr and falls back
//      to scalar (never to a different native ISA: an override exists to
//      pin behaviour, not to guess).
//   2. Native detection: AVX2 via cpuid on x86-64 builds that carry the
//      AVX2 table, NEON on aarch64 builds (baseline there).
//   3. Scalar.
// The choice is exported as the `simd/dispatch` gauge (Isa enum value) so
// stats dumps and OpenMetrics scrapes record which core a run used.
#include "common/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/simd_kernels.h"
#include "obs/metrics.h"

namespace decam::simd {
namespace {

bool cpu_has_avx2() {
#if defined(DECAM_SIMD_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const SimdOps* table_for(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return &detail::scalar_ops();
    case Isa::Avx2:
#ifdef DECAM_SIMD_HAVE_AVX2
      return &detail::avx2_ops();
#else
      return nullptr;
#endif
    case Isa::Neon:
#ifdef DECAM_SIMD_HAVE_NEON
      return &detail::neon_ops();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool isa_runnable(Isa isa) {
  if (isa == Isa::Scalar) return true;
  if (table_for(isa) == nullptr) return false;
  if (isa == Isa::Avx2) return cpu_has_avx2();
  return true;  // NEON tables only exist on aarch64, where NEON is baseline
}

Isa native_isa() {
#ifdef DECAM_SIMD_HAVE_AVX2
  if (cpu_has_avx2()) return Isa::Avx2;
#endif
#ifdef DECAM_SIMD_HAVE_NEON
  return Isa::Neon;
#else
  return Isa::Scalar;
#endif
}

void publish_isa(Isa isa) {
  obs::MetricsRegistry::instance()
      .gauge("simd/dispatch")
      .set(static_cast<double>(static_cast<int>(isa)));
}

Isa resolve_startup_isa() {
  Isa isa = native_isa();
  if (const char* env = std::getenv("DECAM_SIMD"); env && *env) {
    if (std::strcmp(env, "scalar") == 0) {
      isa = Isa::Scalar;
    } else if (std::strcmp(env, "avx2") == 0 || std::strcmp(env, "neon") == 0) {
      const Isa wanted = env[0] == 'a' ? Isa::Avx2 : Isa::Neon;
      if (isa_runnable(wanted)) {
        isa = wanted;
      } else {
        std::fprintf(stderr,
                     "decam: DECAM_SIMD=%s not available on this host/build, "
                     "using scalar\n",
                     env);
        isa = Isa::Scalar;
      }
    } else {
      std::fprintf(stderr,
                   "decam: unknown DECAM_SIMD value '%s' "
                   "(want scalar|avx2|neon), using native dispatch\n",
                   env);
    }
  }
  publish_isa(isa);
  return isa;
}

struct ActiveTable {
  std::atomic<const SimdOps*> ops;
  std::atomic<int> isa;
  ActiveTable() {
    const Isa startup = resolve_startup_isa();
    ops.store(table_for(startup), std::memory_order_relaxed);
    isa.store(static_cast<int>(startup), std::memory_order_relaxed);
  }
};

ActiveTable& active() {
  static ActiveTable table;
  return table;
}

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return "scalar";
    case Isa::Avx2:
      return "avx2";
    case Isa::Neon:
      return "neon";
  }
  return "unknown";
}

const SimdOps& ops() {
  return *active().ops.load(std::memory_order_relaxed);
}

Isa active_isa() {
  return static_cast<Isa>(active().isa.load(std::memory_order_relaxed));
}

Isa set_active_isa(Isa isa) {
  ActiveTable& table = active();
  const Isa previous =
      static_cast<Isa>(table.isa.load(std::memory_order_relaxed));
  if (!isa_runnable(isa)) isa = Isa::Scalar;
  table.ops.store(table_for(isa), std::memory_order_relaxed);
  table.isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  publish_isa(isa);
  return previous;
}

bool native_available() { return native_isa() != Isa::Scalar; }

}  // namespace decam::simd
