// Internal: the per-ISA kernel tables linked into decam_simd. Which tables
// exist is decided at configure time (src/CMakeLists.txt adds the AVX2
// translation unit on x86-64 and the NEON one on aarch64) and communicated
// with the DECAM_SIMD_HAVE_* definitions; the dispatcher (simd.cpp) only
// references tables that were actually compiled.
#pragma once

#include "common/simd.h"

namespace decam::simd::detail {

/// Portable fallback, compiled with -ffp-contract=off so its arithmetic is
/// the exact elementwise sequence of the SimdOps contract on every host.
const SimdOps& scalar_ops();

#ifdef DECAM_SIMD_HAVE_AVX2
/// AVX2 table (x86-64 only; callers must verify cpu support first).
const SimdOps& avx2_ops();
#endif

#ifdef DECAM_SIMD_HAVE_NEON
/// NEON table (aarch64 only; NEON is baseline there).
const SimdOps& neon_ops();
#endif

}  // namespace decam::simd::detail
