#include "attack/scale_attack.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "metrics/mse.h"
#include "metrics/ssim.h"

namespace decam::attack {
namespace {

// Exact nearest-neighbour attack: the scaler reads exactly one source pixel
// per output pixel, so overwriting those pixels with the target values
// reproduces T exactly while leaving every other pixel untouched.
Image craft_nearest(const Image& source, const Image& target) {
  const KernelTable horiz =
      make_kernel_table(source.width(), target.width(), ScaleAlgo::Nearest);
  const KernelTable vert =
      make_kernel_table(source.height(), target.height(), ScaleAlgo::Nearest);
  Image attack = source;
  for (int c = 0; c < source.channels(); ++c) {
    for (int ty = 0; ty < target.height(); ++ty) {
      const int sy = vert.row(ty)[0].index;
      for (int tx = 0; tx < target.width(); ++tx) {
        const int sx = horiz.row(tx)[0].index;
        attack.at(sx, sy, c) = target.at(tx, ty, c);
      }
    }
  }
  return attack;
}

// Stage helper: runs one 1-D QP per line. `get`/`set` abstract row vs
// column access so both stages share the loop.
struct StageStats {
  bool converged = true;
};

}  // namespace

AttackResult craft_attack(const Image& source, const Image& target,
                          const AttackOptions& options) {
  DECAM_REQUIRE(!source.empty() && !target.empty(),
                "attack needs non-empty images");
  DECAM_REQUIRE(source.channels() == target.channels(),
                "source/target channel mismatch");
  DECAM_REQUIRE(target.width() < source.width() &&
                    target.height() < source.height(),
                "target must be smaller than source (downscaling attack)");

  AttackResult result;
  StageStats stats;

  if (options.algo == ScaleAlgo::Nearest) {
    result.image = craft_nearest(source, target);
  } else {
    const CoeffMatrix CR = CoeffMatrix::for_scaling(
        source.width(), target.width(), options.algo);
    const CoeffMatrix CL = CoeffMatrix::for_scaling(
        source.height(), target.height(), options.algo);

    QpOptions qp;
    // Split the pixel budget between the two stages; stage errors compose
    // roughly additively through the row-stochastic second operator.
    qp.eps = options.eps / 2.0;
    qp.max_sweeps = options.max_sweeps;
    qp.tolerance = options.tolerance / 2.0;

    result.image = source;
    Image& attack = result.image;

    for (int c = 0; c < source.channels(); ++c) {
      // Stage 1 (horizontal): attack the vertically pre-scaled source so
      // that A1 * CR^T == T. A1 has target height and source width.
      Image pre(source.width(), target.height(), 1);
      {
        const float* src_plane = source.plane(c).data();
        float* pre_plane = pre.plane(0).data();
        for (int x = 0; x < source.width(); ++x) {
          apply_kernel(CL.table(), src_plane + x, source.width(),
                       pre_plane + x, source.width());
        }
      }
      Image a1(source.width(), target.height(), 1);
      std::vector<double> s_line(static_cast<std::size_t>(source.width()));
      std::vector<double> t_line(static_cast<std::size_t>(target.width()));
      for (int y = 0; y < target.height(); ++y) {
        const auto pre_row = pre.row(y, 0);
        for (int x = 0; x < source.width(); ++x) {
          s_line[static_cast<std::size_t>(x)] = pre_row[x];
        }
        for (int x = 0; x < target.width(); ++x) {
          t_line[static_cast<std::size_t>(x)] = target.at(x, y, c);
        }
        const QpResult qp_result = solve_attack_qp(CR, s_line, t_line, qp);
        stats.converged = stats.converged && qp_result.converged;
        auto a1_row = a1.row(y, 0);
        for (int x = 0; x < source.width(); ++x) {
          a1_row[x] = static_cast<float>(
              qp_result.x[static_cast<std::size_t>(x)]);
        }
      }

      // Stage 2 (vertical): attack each source column so CL * A == A1.
      std::vector<double> s_col(static_cast<std::size_t>(source.height()));
      std::vector<double> t_col(static_cast<std::size_t>(target.height()));
      for (int x = 0; x < source.width(); ++x) {
        for (int y = 0; y < source.height(); ++y) {
          s_col[static_cast<std::size_t>(y)] = source.at(x, y, c);
        }
        for (int y = 0; y < target.height(); ++y) {
          t_col[static_cast<std::size_t>(y)] = a1.at(x, y, 0);
        }
        const QpResult qp_result = solve_attack_qp(CL, s_col, t_col, qp);
        stats.converged = stats.converged && qp_result.converged;
        for (int y = 0; y < source.height(); ++y) {
          attack.at(x, y, c) = static_cast<float>(
              qp_result.x[static_cast<std::size_t>(y)]);
        }
      }
    }
  }

  // Quantise to 8-bit like a real attack image saved to disk.
  result.image.clamp();
  for (int c = 0; c < result.image.channels(); ++c) {
    for (float& v : result.image.plane(c)) v = std::round(v);
  }
  result.report = assess_attack(result.image, source, target, options);
  result.report.converged = stats.converged;
  return result;
}

AttackReport assess_attack(const Image& attack_image, const Image& source,
                           const Image& target, const AttackOptions& options) {
  DECAM_REQUIRE(attack_image.same_shape(source),
                "attack image must match source shape");
  AttackReport report;
  const Image downscaled =
      resize(attack_image, target.width(), target.height(), options.algo);
  const Image diff = absdiff(downscaled, target);
  report.downscale_linf = diff.max_value();
  report.downscale_mse = mse(downscaled, target);
  report.perturbation_mse = mse(attack_image, source);
  report.source_ssim = ssim(attack_image, source);
  report.converged = true;
  return report;
}

}  // namespace decam::attack
