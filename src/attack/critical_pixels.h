// Which source pixels does the scaler actually read? The attack only
// controls the model's view through those "critical" pixels; everything
// else is invisible to the CNN. Both the adaptive attacks (mask their
// noise to non-critical pixels) and the Quiring-style reconstruction
// defence (cleanse exactly the critical pixels) need this set.
#pragma once

#include <vector>

#include "attack/coeff_matrix.h"
#include "imaging/image.h"

namespace decam::attack {

/// Per-input-index flag: true when some output sample has a tap there.
std::vector<bool> critical_indices(const CoeffMatrix& matrix);

/// 1-channel 0/255 mask of the pixels read by `algo` when resizing
/// src_w x src_h down to dst_w x dst_h (separable: a pixel is critical iff
/// its column AND its row are).
Image critical_mask(int src_w, int src_h, int dst_w, int dst_h,
                    ScaleAlgo algo);

/// Fraction of source pixels the scaler reads — the attacker's footprint
/// (e.g. ~1/16 for bilinear at ratio 4).
double critical_fraction(int src_w, int src_h, int dst_w, int dst_h,
                         ScaleAlgo algo);

}  // namespace decam::attack
