// Adaptive attacks — the paper's §6 discussion made concrete. An attacker
// aware of a SPECIFIC Decamouflage method can try to suppress exactly the
// signal that method thresholds:
//
//  * noise_masked_attack targets the STEGANALYSIS detector: after crafting
//    a normal attack, it sprays random noise over the NON-critical pixels
//    (which the scaler never reads, so scale(A) is untouched), trying to
//    raise the spectral floor over the harmonic peaks the CSP count keys
//    on. Empirically the move FAILS (see tests/adaptive_defense_test.cpp
//    and bench/ablation_adaptive): the harmonics are produced by the
//    critical-pixel deltas themselves, which the attacker cannot soften
//    without losing the payload, and they tower over any noise floor the
//    remaining pixels can raise — while the added noise degrades the
//    attack's stealth and feeds the scaling/filtering detectors.
//
//  * off_grid_spread_attack targets the FILTERING (and partly the scaling)
//    detector, following Quiring & Rieck's observation that the payload
//    need not sit on isolated sampling points. After crafting the base
//    attack it blends every pixel toward the attack's own round-trip
//    reconstruction, weighted by (1 - coefficient influence): pixels the
//    scaler reads heavily stay put (the downscaled target is approximately
//    preserved), while the unread neighbourhood around each critical pixel
//    moves toward the payload value. The critical pixels stop being
//    isolated extremes, so the min-filter residual — exactly what the
//    filtering detector thresholds — shrinks. Pushed hard enough the same
//    blend also drags the input toward its round trip and starts eroding
//    the scaling detector's MSE, which is why the ensemble still holds
//    (bench/matrix_adaptive quantifies the trade-off per spread setting).
//
//  * jpeg_robust_attack targets DEPLOYMENT, not a detector: real upload
//    pipelines recompress before resizing, and a vanilla attack's payload
//    sits in exactly the high-frequency structure JPEG quantises away. The
//    attack re-solves the QP in a fixed-point loop against an adjusted
//    target: craft, push through imaging/jpeg_sim at the configured
//    quality, measure the post-JPEG downscale error, pre-compensate the
//    target by that error, repeat until the payload survives requantisation
//    (or the round budget runs out).
//
//  * histogram-matched targets are provided by bench/ablation_histogram:
//    they DO defeat Xiao's histogram heuristic — but not Decamouflage.
//
// Together: the adaptive moves that beat the weak baseline or a single
// method don't dent the ensemble, and the attacker's levers against one
// method strengthen the evidence seen by the others. bench/matrix_adaptive
// sweeps all of these against the preprocessing defenses
// (core/preprocess_defense.h) and every detector.
#pragma once

#include "attack/scale_attack.h"
#include "data/rng.h"

namespace decam::attack {

struct NoiseMaskOptions {
  AttackOptions base;          // the underlying attack to adapt
  double noise_amplitude = 24.0;  // uniform +-amplitude on masked pixels
  std::uint64_t seed = 1;
};

/// Crafts `base` attack, then adds uniform noise to every pixel the scaler
/// does not read. The returned report is re-assessed on the final image
/// (downscale error is unchanged by construction; source SSIM drops).
AttackResult noise_masked_attack(const Image& source, const Image& target,
                                 const NoiseMaskOptions& options);

struct OffGridOptions {
  AttackOptions base;   // the underlying attack to adapt
  double spread = 0.5;  // blend strength toward the round trip, in [0, 1]
};

/// Blends `attack_image` toward its own round-trip reconstruction through
/// the (target_w, target_h, algo) scaler, each pixel weighted by
/// spread * (1 - its normalised coefficient influence). Heavily-read pixels
/// are left alone, unread pixels blend at full `spread`. Output is rounded
/// and clamped to the 8-bit grid like every crafted attack. Exposed
/// separately so benches and tests can re-spread a cached base attack.
Image spread_off_grid(const Image& attack_image, int target_w, int target_h,
                      ScaleAlgo algo, double spread);

/// Crafts `base` attack, then applies spread_off_grid. The report is
/// re-assessed on the final image: downscale_linf grows slightly (weakly
/// read taps moved), source_ssim typically improves (the spread smooths the
/// isolated payload deltas the human eye would catch too).
AttackResult off_grid_spread_attack(const Image& source, const Image& target,
                                    const OffGridOptions& options);

struct JpegRobustOptions {
  AttackOptions base;       // the underlying attack to re-solve each round
  int quality = 75;         // JPEG quality the payload must survive
  int max_rounds = 6;       // fixed-point iteration budget (>= 1)
  // Damped pre-compensation: a full step (1.0) overshoots — JPEG's
  // quantisation is non-linear, so the measured error is only a first-order
  // signal. 0.5 empirically converges several intensity levels lower.
  double step = 0.5;
  double survive_linf = 24.0;  // post-JPEG |scale(J)-T|_inf acceptance bound
};

struct JpegRobustResult {
  AttackResult attack;          // final attack image, assessed pre-JPEG
  int rounds = 0;               // QP solves actually spent
  double post_jpeg_linf = 0.0;  // |scale(jpeg(A)) - T|_inf at the end
  double post_jpeg_mse = 0.0;   // MSE(scale(jpeg(A)), T) at the end
  bool survived = false;        // post_jpeg_linf <= survive_linf
};

/// Iteratively re-solves the scaling-attack QP through jpeg_roundtrip until
/// the downscale of the RECOMPRESSED attack stays within `survive_linf` of
/// the target, pre-compensating the QP's target by the measured post-JPEG
/// error each round. Keeps the best (lowest post-JPEG error) iterate.
JpegRobustResult jpeg_robust_attack(const Image& source, const Image& target,
                                    const JpegRobustOptions& options);

}  // namespace decam::attack
