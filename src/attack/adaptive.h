// Adaptive attacks — the paper's §6 discussion made concrete. An attacker
// aware of a SPECIFIC Decamouflage method can try to suppress exactly the
// signal that method thresholds:
//
//  * noise_masked_attack targets the STEGANALYSIS detector: after crafting
//    a normal attack, it sprays random noise over the NON-critical pixels
//    (which the scaler never reads, so scale(A) is untouched), trying to
//    raise the spectral floor over the harmonic peaks the CSP count keys
//    on. Empirically the move FAILS (see tests/adaptive_defense_test.cpp
//    and bench/ablation_adaptive): the harmonics are produced by the
//    critical-pixel deltas themselves, which the attacker cannot soften
//    without losing the payload, and they tower over any noise floor the
//    remaining pixels can raise — while the added noise degrades the
//    attack's stealth and feeds the scaling/filtering detectors.
//
//  * histogram-matched targets are provided by bench/ablation_histogram:
//    they DO defeat Xiao's histogram heuristic — but not Decamouflage.
//
// Together: the adaptive moves that beat the weak baseline don't dent the
// ensemble, and the attacker's levers against one method strengthen the
// evidence seen by the others.
#pragma once

#include "attack/scale_attack.h"
#include "data/rng.h"

namespace decam::attack {

struct NoiseMaskOptions {
  AttackOptions base;          // the underlying attack to adapt
  double noise_amplitude = 24.0;  // uniform +-amplitude on masked pixels
  std::uint64_t seed = 1;
};

/// Crafts `base` attack, then adds uniform noise to every pixel the scaler
/// does not read. The returned report is re-assessed on the final image
/// (downscale error is unchanged by construction; source SSIM drops).
AttackResult noise_masked_attack(const Image& source, const Image& target,
                                 const NoiseMaskOptions& options);

}  // namespace decam::attack
