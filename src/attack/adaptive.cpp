#include "attack/adaptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "attack/coeff_matrix.h"
#include "attack/critical_pixels.h"
#include "imaging/jpeg_sim.h"
#include "imaging/scale.h"

namespace decam::attack {
namespace {

// Per-input-index coefficient mass of a 1-D resample, normalised to [0, 1]
// by the heaviest index. |weight| so bicubic's negative lobes count as
// influence, not cancellation.
std::vector<double> normalized_influence(int in_size, int out_size,
                                         ScaleAlgo algo) {
  const CoeffMatrix m = CoeffMatrix::for_scaling(in_size, out_size, algo);
  std::vector<double> mass(static_cast<std::size_t>(in_size), 0.0);
  for (int r = 0; r < m.rows(); ++r) {
    for (const Tap& tap : m.row_taps(r)) {
      mass[static_cast<std::size_t>(tap.index)] += std::abs(tap.weight);
    }
  }
  double peak = 0.0;
  for (double v : mass) peak = std::max(peak, v);
  if (peak > 0.0) {
    for (double& v : mass) v /= peak;
  }
  return mass;
}

}  // namespace

AttackResult noise_masked_attack(const Image& source, const Image& target,
                                 const NoiseMaskOptions& options) {
  DECAM_REQUIRE(options.noise_amplitude >= 0.0,
                "noise amplitude must be non-negative");
  AttackResult result = craft_attack(source, target, options.base);
  const Image mask =
      critical_mask(source.width(), source.height(), target.width(),
                    target.height(), options.base.algo);
  data::Rng rng(options.seed);
  for (int c = 0; c < result.image.channels(); ++c) {
    for (int y = 0; y < result.image.height(); ++y) {
      for (int x = 0; x < result.image.width(); ++x) {
        if (mask.at(x, y, 0) != 0.0f) continue;  // scaler reads this pixel
        float& v = result.image.at(x, y, c);
        v += static_cast<float>(rng.next_range(-options.noise_amplitude,
                                               options.noise_amplitude));
        v = std::round(std::clamp(v, 0.0f, 255.0f));
      }
    }
  }
  result.report =
      assess_attack(result.image, source, target, options.base);
  return result;
}

Image spread_off_grid(const Image& attack_image, int target_w, int target_h,
                      ScaleAlgo algo, double spread) {
  DECAM_REQUIRE(spread >= 0.0 && spread <= 1.0, "spread must be in [0, 1]");
  if (spread == 0.0) return attack_image;
  const Image recon = resize(
      resize(attack_image, target_w, target_h, algo), attack_image.width(),
      attack_image.height(), algo);
  const std::vector<double> col_influence =
      normalized_influence(attack_image.width(), target_w, algo);
  const std::vector<double> row_influence =
      normalized_influence(attack_image.height(), target_h, algo);
  Image out = attack_image;
  for (int c = 0; c < out.channels(); ++c) {
    for (int y = 0; y < out.height(); ++y) {
      const double ry = row_influence[static_cast<std::size_t>(y)];
      for (int x = 0; x < out.width(); ++x) {
        // A pixel's pull toward the reconstruction scales with how little
        // the scaler reads it: heavily-tapped pixels carry the payload and
        // stay put, unread pixels take the full spread.
        const double influence =
            col_influence[static_cast<std::size_t>(x)] * ry;
        const double f = spread * (1.0 - influence);
        float& v = out.at(x, y, c);
        const double blended =
            static_cast<double>(v) +
            f * (static_cast<double>(recon.at(x, y, c)) -
                 static_cast<double>(v));
        v = std::round(std::clamp(static_cast<float>(blended), 0.0f, 255.0f));
      }
    }
  }
  return out;
}

AttackResult off_grid_spread_attack(const Image& source, const Image& target,
                                    const OffGridOptions& options) {
  AttackResult result = craft_attack(source, target, options.base);
  result.image = spread_off_grid(result.image, target.width(),
                                 target.height(), options.base.algo,
                                 options.spread);
  result.report = assess_attack(result.image, source, target, options.base);
  return result;
}

JpegRobustResult jpeg_robust_attack(const Image& source, const Image& target,
                                    const JpegRobustOptions& options) {
  DECAM_REQUIRE(options.quality >= 1 && options.quality <= 100,
                "jpeg quality must be in [1, 100]");
  DECAM_REQUIRE(options.max_rounds >= 1, "need at least one round");
  DECAM_REQUIRE(options.step > 0.0, "compensation step must be positive");

  JpegRobustResult best;
  best.post_jpeg_linf = std::numeric_limits<double>::infinity();

  // Fixed-point loop on the QP's target: craft against T_adj, recompress,
  // measure how far the recompressed payload landed from the REAL target,
  // and pre-compensate T_adj by that error for the next solve.
  Image adjusted = target;
  for (int round = 1; round <= options.max_rounds; ++round) {
    AttackResult candidate = craft_attack(source, adjusted, options.base);
    const Image recompressed =
        jpeg_roundtrip(candidate.image, options.quality);
    const Image landed = resize(recompressed, target.width(),
                                target.height(), options.base.algo);
    double linf = 0.0;
    double sq_sum = 0.0;
    for (int c = 0; c < target.channels(); ++c) {
      for (int y = 0; y < target.height(); ++y) {
        for (int x = 0; x < target.width(); ++x) {
          const double err = static_cast<double>(landed.at(x, y, c)) -
                             static_cast<double>(target.at(x, y, c));
          linf = std::max(linf, std::abs(err));
          sq_sum += err * err;
        }
      }
    }
    const double mse =
        sq_sum / (static_cast<double>(target.size()));
    if (linf < best.post_jpeg_linf) {
      best.attack = std::move(candidate);
      best.post_jpeg_linf = linf;
      best.post_jpeg_mse = mse;
      best.rounds = round;
    }
    if (best.post_jpeg_linf <= options.survive_linf) break;
    if (round == options.max_rounds) break;
    // Pre-compensate: wherever JPEG pushed the landed payload up, aim lower
    // next round (and vice versa). Clamped to the valid intensity range.
    for (int c = 0; c < adjusted.channels(); ++c) {
      for (int y = 0; y < adjusted.height(); ++y) {
        for (int x = 0; x < adjusted.width(); ++x) {
          const double err = static_cast<double>(landed.at(x, y, c)) -
                             static_cast<double>(target.at(x, y, c));
          float& v = adjusted.at(x, y, c);
          v = std::clamp(
              static_cast<float>(static_cast<double>(v) - options.step * err),
              0.0f, 255.0f);
        }
      }
    }
  }
  // Report the BEST iterate against the real target (the loop assessed it
  // against the adjusted one inside craft_attack).
  best.attack.report =
      assess_attack(best.attack.image, source, target, options.base);
  best.survived = best.post_jpeg_linf <= options.survive_linf;
  return best;
}

}  // namespace decam::attack
