#include "attack/adaptive.h"

#include <algorithm>
#include <cmath>

#include "attack/critical_pixels.h"

namespace decam::attack {

AttackResult noise_masked_attack(const Image& source, const Image& target,
                                 const NoiseMaskOptions& options) {
  DECAM_REQUIRE(options.noise_amplitude >= 0.0,
                "noise amplitude must be non-negative");
  AttackResult result = craft_attack(source, target, options.base);
  const Image mask =
      critical_mask(source.width(), source.height(), target.width(),
                    target.height(), options.base.algo);
  data::Rng rng(options.seed);
  for (int c = 0; c < result.image.channels(); ++c) {
    for (int y = 0; y < result.image.height(); ++y) {
      for (int x = 0; x < result.image.width(); ++x) {
        if (mask.at(x, y, 0) != 0.0f) continue;  // scaler reads this pixel
        float& v = result.image.at(x, y, c);
        v += static_cast<float>(rng.next_range(-options.noise_amplitude,
                                               options.noise_amplitude));
        v = std::round(std::clamp(v, 0.0f, 255.0f));
      }
    }
  }
  result.report =
      assess_attack(result.image, source, target, options.base);
  return result;
}

}  // namespace decam::attack
