// Box-constrained 1-D attack QP:
//
//     minimise   || x - s ||_2^2
//     subject to | C x - t |_inf <= eps,   lo <= x <= hi
//
// This is exactly Eq. (1) of the paper restricted to one axis — the
// separable two-stage decomposition in scale_attack.cpp reduces the full
// 2-D problem to many instances of this QP (one per row, then one per
// column), the same decomposition Xiao et al.'s reference attack uses.
//
// Because the objective is a Euclidean projection of s onto the
// intersection of convex sets (one slab per output sample plus the box), we
// solve it with Dykstra's alternating-projection algorithm: each slab
// projection has a closed form touching only the row's taps, so a full
// sweep costs O(rows * taps) and typically a few dozen sweeps reach
// sub-pixel feasibility.
#pragma once

#include <vector>

#include "attack/coeff_matrix.h"

namespace decam::attack {

struct QpOptions {
  double eps = 1.0;          // allowed |Cx - t| per output sample
  double lo = 0.0;           // box lower bound
  double hi = 255.0;         // box upper bound
  int max_sweeps = 120;      // Dykstra iterations over all constraints
  double tolerance = 0.25;   // stop when max violation falls below this
};

struct QpResult {
  std::vector<double> x;      // solution
  double max_violation = 0;   // max over outputs of max(0, |Cx-t| - eps)
  double delta_norm_sq = 0;   // ||x - s||^2
  int sweeps_used = 0;
  bool converged = false;     // max_violation <= tolerance
};

/// Solves the QP above. `s` must have C.cols() entries, `t` C.rows().
/// Throws std::invalid_argument on size mismatches.
QpResult solve_attack_qp(const CoeffMatrix& C, const std::vector<double>& s,
                         const std::vector<double>& t,
                         const QpOptions& options = {});

}  // namespace decam::attack
