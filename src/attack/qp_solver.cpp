#include "attack/qp_solver.h"

#include <algorithm>
#include <cmath>

namespace decam::attack {

QpResult solve_attack_qp(const CoeffMatrix& C, const std::vector<double>& s,
                         const std::vector<double>& t,
                         const QpOptions& options) {
  DECAM_REQUIRE(s.size() == static_cast<std::size_t>(C.cols()),
                "source length must equal C.cols()");
  DECAM_REQUIRE(t.size() == static_cast<std::size_t>(C.rows()),
                "target length must equal C.rows()");
  DECAM_REQUIRE(options.eps >= 0.0, "eps must be non-negative");
  DECAM_REQUIRE(options.lo <= options.hi, "box bounds inverted");
  DECAM_REQUIRE(options.max_sweeps >= 1, "need at least one sweep");

  const int rows = C.rows();
  const int cols = C.cols();

  // Dykstra corrections: one short vector per slab (stored flattened on the
  // row's tap support) and one full vector for the box constraint.
  std::vector<std::size_t> offsets(static_cast<std::size_t>(rows) + 1, 0);
  for (int r = 0; r < rows; ++r) {
    offsets[static_cast<std::size_t>(r) + 1] =
        offsets[static_cast<std::size_t>(r)] + C.row_taps(r).size();
  }
  std::vector<double> slab_corr(offsets.back(), 0.0);
  std::vector<double> box_corr(static_cast<std::size_t>(cols), 0.0);

  QpResult result;
  result.x = s;
  std::vector<double>& x = result.x;

  auto max_violation = [&]() {
    double worst = 0.0;
    for (int r = 0; r < rows; ++r) {
      double v = 0.0;
      for (const Tap& tap : C.row_taps(r)) {
        v += static_cast<double>(tap.weight) *
             x[static_cast<std::size_t>(tap.index)];
      }
      const double err = std::fabs(v - t[static_cast<std::size_t>(r)]);
      worst = std::max(worst, err - options.eps);
    }
    for (double xv : x) {
      worst = std::max(worst, options.lo - xv);
      worst = std::max(worst, xv - options.hi);
    }
    return std::max(worst, 0.0);
  };

  // Projection of y (restricted to a row's taps) onto slab INTERSECT box:
  //   x(lambda) = clamp(y + lambda * w, lo, hi)
  // g(lambda) = w . x(lambda) is monotone non-decreasing (each term has
  // derivative w_k^2 or 0), so the lambda placing g on the violated slab
  // face is found by bisection. Making each slab projection box-aware is
  // what keeps Dykstra fast when the optimum sits on a box corner — the
  // plain slab/box alternation crawls there.
  std::vector<double> y_buf;
  auto project_slab_box = [&](std::span<const Tap> taps, double lower,
                              double upper, std::vector<double>& y) {
    auto g_of = [&](double lambda) {
      double g = 0.0;
      for (std::size_t k = 0; k < taps.size(); ++k) {
        const double w = taps[k].weight;
        g += w * std::clamp(y[k] + lambda * w, options.lo, options.hi);
      }
      return g;
    };
    const double g0 = g_of(0.0);
    double face = 0.0;
    if (g0 > upper) {
      face = upper;
    } else if (g0 < lower) {
      face = lower;
    } else {
      // Slab satisfied by the box projection of y; the projection onto
      // slab INTERSECT box is then just the box clamp of y.
      for (double& v : y) v = std::clamp(v, options.lo, options.hi);
      return;
    }
    // Bracket lambda. A tap of weight w crosses the whole box once
    // |lambda| reaches span/|w|, so the smallest tap weight bounds the
    // lambda at which g() saturates.
    const double span = options.hi - options.lo + 510.0;
    double lambda_lo = 0.0, lambda_hi = 0.0;
    double min_abs_w = 1.0;
    for (const Tap& tap : taps) {
      min_abs_w = std::min(min_abs_w, std::fabs(static_cast<double>(tap.weight)));
    }
    const double big = span / std::max(min_abs_w, 1e-9) + span;
    if (g0 > upper) {
      lambda_lo = -big;
      lambda_hi = 0.0;
    } else {
      lambda_lo = 0.0;
      lambda_hi = big;
    }
    for (int iter = 0; iter < 64; ++iter) {
      const double mid = 0.5 * (lambda_lo + lambda_hi);
      if (g_of(mid) >= face) {
        lambda_hi = mid;
      } else {
        lambda_lo = mid;
      }
    }
    // After 64 halvings the bracket is ~1e-16 wide: its midpoint is the
    // root, or the saturation endpoint when the face is unreachable inside
    // the box (best-effort point).
    const double lambda = 0.5 * (lambda_lo + lambda_hi);
    for (std::size_t k = 0; k < taps.size(); ++k) {
      y[k] = std::clamp(y[k] + lambda * taps[k].weight, options.lo,
                        options.hi);
    }
  };

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    // Slab-within-box constraints, one Dykstra step each.
    for (int r = 0; r < rows; ++r) {
      const auto taps = C.row_taps(r);
      const std::size_t base = offsets[static_cast<std::size_t>(r)];
      // y = x + correction (on the support only).
      y_buf.resize(taps.size());
      for (std::size_t k = 0; k < taps.size(); ++k) {
        const std::size_t idx = static_cast<std::size_t>(taps[k].index);
        y_buf[k] = x[idx] + slab_corr[base + k];
      }
      const double target = t[static_cast<std::size_t>(r)];
      project_slab_box(taps, target - options.eps, target + options.eps,
                       y_buf);
      for (std::size_t k = 0; k < taps.size(); ++k) {
        const std::size_t idx = static_cast<std::size_t>(taps[k].index);
        const double y_before = x[idx] + slab_corr[base + k];
        x[idx] = y_buf[k];
        slab_corr[base + k] = y_before - y_buf[k];
      }
    }
    // Box constraint.
    for (int j = 0; j < cols; ++j) {
      const std::size_t idx = static_cast<std::size_t>(j);
      const double y = x[idx] + box_corr[idx];
      const double projected = std::clamp(y, options.lo, options.hi);
      box_corr[idx] = y - projected;
      x[idx] = projected;
    }
    result.sweeps_used = sweep + 1;
    const double violation = max_violation();
    if (violation <= options.tolerance) {
      result.max_violation = violation;
      result.converged = true;
      break;
    }
    result.max_violation = violation;
  }

  double delta = 0.0;
  for (int j = 0; j < cols; ++j) {
    const double d = x[static_cast<std::size_t>(j)] -
                     s[static_cast<std::size_t>(j)];
    delta += d * d;
  }
  result.delta_norm_sq = delta;
  return result;
}

}  // namespace decam::attack
