// The image-scaling attack (Xiao et al., USENIX Security 2019), Eq. (1) of
// the Decamouflage paper:
//
//     A = O + Δ,   minimise ||Δ||_2^2
//     subject to  || scale(O + Δ) - T ||_inf <= eps,  A in [0, 255]
//
// Implemented with the standard separable decomposition: because
// scale(X) = L X R^T, the 2-D problem splits into a horizontal stage (one
// QP per row of the vertically pre-scaled source, matching T) followed by a
// vertical stage (one QP per source column, matching the stage-1 result).
// Each 1-D QP is solved by attack/qp_solver.h. Nearest-neighbour scaling
// has an exact closed form (overwrite precisely the sampled pixels) used as
// a fast path.
#pragma once

#include "attack/qp_solver.h"
#include "imaging/image.h"
#include "imaging/scale.h"

namespace decam::attack {

struct AttackOptions {
  ScaleAlgo algo = ScaleAlgo::Bilinear;  // the victim pipeline's scaler
  double eps = 1.0;         // allowed |scale(A) - T| per pixel
  int max_sweeps = 120;     // QP solver budget per 1-D problem
  double tolerance = 0.5;   // QP convergence tolerance (intensity levels)
};

struct AttackReport {
  double downscale_linf = 0.0;   // max |scale(A) - T| actually achieved
  double downscale_mse = 0.0;    // MSE(scale(A), T)
  double perturbation_mse = 0.0; // MSE(A, O) — how visible the attack is
  double source_ssim = 0.0;      // SSIM(A, O) — higher = stealthier
  bool converged = false;        // every 1-D QP met its tolerance
};

struct AttackResult {
  Image image;          // the attack image A
  AttackReport report;
};

/// Crafts an attack image disguising `target` inside `source`. The target
/// must be strictly smaller than the source in both dimensions (this is a
/// downscaling attack). Channel counts must match.
AttackResult craft_attack(const Image& source, const Image& target,
                          const AttackOptions& options = {});

/// Measures how well an arbitrary image functions as an attack against
/// `target` under the given scaler (used by tests and the examples).
AttackReport assess_attack(const Image& attack_image, const Image& source,
                           const Image& target, const AttackOptions& options);

}  // namespace decam::attack
