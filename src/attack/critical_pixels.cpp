#include "attack/critical_pixels.h"

namespace decam::attack {

std::vector<bool> critical_indices(const CoeffMatrix& matrix) {
  std::vector<bool> flags(static_cast<std::size_t>(matrix.cols()), false);
  for (int r = 0; r < matrix.rows(); ++r) {
    for (const Tap& tap : matrix.row_taps(r)) {
      if (tap.weight != 0.0f) {
        flags[static_cast<std::size_t>(tap.index)] = true;
      }
    }
  }
  return flags;
}

Image critical_mask(int src_w, int src_h, int dst_w, int dst_h,
                    ScaleAlgo algo) {
  const std::vector<bool> cols = critical_indices(
      CoeffMatrix::for_scaling(src_w, dst_w, algo));
  const std::vector<bool> rows = critical_indices(
      CoeffMatrix::for_scaling(src_h, dst_h, algo));
  Image mask(src_w, src_h, 1);
  for (int y = 0; y < src_h; ++y) {
    if (!rows[static_cast<std::size_t>(y)]) continue;
    for (int x = 0; x < src_w; ++x) {
      if (cols[static_cast<std::size_t>(x)]) mask.at(x, y, 0) = 255.0f;
    }
  }
  return mask;
}

double critical_fraction(int src_w, int src_h, int dst_w, int dst_h,
                         ScaleAlgo algo) {
  const std::vector<bool> cols = critical_indices(
      CoeffMatrix::for_scaling(src_w, dst_w, algo));
  const std::vector<bool> rows = critical_indices(
      CoeffMatrix::for_scaling(src_h, dst_h, algo));
  std::size_t col_count = 0, row_count = 0;
  for (bool flag : cols) col_count += flag ? 1 : 0;
  for (bool flag : rows) row_count += flag ? 1 : 0;
  return static_cast<double>(col_count) * row_count /
         (static_cast<double>(src_w) * src_h);
}

}  // namespace decam::attack
