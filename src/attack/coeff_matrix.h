// The scaler as an explicit sparse linear operator.
//
// Image scaling with any of our kernels is linear:  D = L * X * R^T, where
// L is the (out_h x in_h) vertical coefficient matrix and R the
// (out_w x in_w) horizontal one. The image-scaling attack (Xiao et al.)
// works directly on these matrices; this header wraps the KernelTable of
// imaging/kernels.h into a row-sparse matrix with the handful of dense
// operations the attack and its tests need.
#pragma once

#include <span>
#include <vector>

#include "imaging/kernels.h"

namespace decam::attack {

/// Row-sparse matrix: rows() entries, each a short list of (col, weight)
/// taps. Equivalently, the tap table of a 1-D resample.
class CoeffMatrix {
 public:
  CoeffMatrix() = default;
  explicit CoeffMatrix(KernelTable table);

  /// Coefficient matrix of a 1-D resample from `in_size` to `out_size`.
  static CoeffMatrix for_scaling(int in_size, int out_size, ScaleAlgo algo);

  int rows() const { return table_.out_size; }
  int cols() const { return table_.in_size; }

  std::span<const Tap> row_taps(int r) const { return table_.row(r); }

  /// Dense element access (0 where no tap exists). O(taps) per call; for
  /// tests and small analyses only.
  double at(int r, int c) const;

  /// y = M x  (x.size() == cols()).
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// Squared L2 norm of row r (used by projection steps).
  double row_norm_sq(int r) const;

  /// Sum of weights of row r (1.0 for all our kernels; checked in tests).
  double row_sum(int r) const;

  const KernelTable& table() const { return table_; }

 private:
  KernelTable table_;
  std::vector<double> row_norms_sq_;
};

}  // namespace decam::attack
