#include "attack/coeff_matrix.h"

namespace decam::attack {

CoeffMatrix::CoeffMatrix(KernelTable table) : table_(std::move(table)) {
  row_norms_sq_.reserve(static_cast<std::size_t>(table_.out_size));
  for (int r = 0; r < table_.out_size; ++r) {
    double norm = 0.0;
    for (const Tap& tap : table_.row(r)) {
      norm += static_cast<double>(tap.weight) * tap.weight;
    }
    row_norms_sq_.push_back(norm);
  }
}

CoeffMatrix CoeffMatrix::for_scaling(int in_size, int out_size,
                                     ScaleAlgo algo) {
  return CoeffMatrix(make_kernel_table(in_size, out_size, algo));
}

double CoeffMatrix::at(int r, int c) const {
  DECAM_REQUIRE(r >= 0 && r < rows() && c >= 0 && c < cols(),
                "CoeffMatrix::at out of range");
  double value = 0.0;
  for (const Tap& tap : row_taps(r)) {
    if (tap.index == c) value += tap.weight;
  }
  return value;
}

std::vector<double> CoeffMatrix::multiply(const std::vector<double>& x) const {
  DECAM_REQUIRE(x.size() == static_cast<std::size_t>(cols()),
                "CoeffMatrix::multiply size mismatch");
  std::vector<double> y(static_cast<std::size_t>(rows()), 0.0);
  for (int r = 0; r < rows(); ++r) {
    double acc = 0.0;
    for (const Tap& tap : row_taps(r)) {
      acc += static_cast<double>(tap.weight) *
             x[static_cast<std::size_t>(tap.index)];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

double CoeffMatrix::row_norm_sq(int r) const {
  DECAM_REQUIRE(r >= 0 && r < rows(), "row out of range");
  return row_norms_sq_[static_cast<std::size_t>(r)];
}

double CoeffMatrix::row_sum(int r) const {
  DECAM_REQUIRE(r >= 0 && r < rows(), "row out of range");
  double sum = 0.0;
  for (const Tap& tap : row_taps(r)) sum += tap.weight;
  return sum;
}

}  // namespace decam::attack
