// Multi-octave value noise — the texture engine behind the synthetic
// "natural image" generator. Summing bilinear lattice noise across octaves
// with persistence < 1 yields the ~1/f amplitude spectrum of photographs,
// which is the property the steganalysis detector (and the benign score
// distributions in general) depend on (DESIGN.md §2).
#pragma once

#include "data/rng.h"
#include "imaging/image.h"

namespace decam::data {

struct NoiseParams {
  int octaves = 5;            // number of frequency bands summed
  double base_period = 96.0;  // lattice spacing of the lowest octave, pixels
  double persistence = 0.55;  // amplitude falloff per octave
  double lacunarity = 2.0;    // frequency growth per octave
};

/// Generates a 1-channel noise image in [0, 255].
Image value_noise(int width, int height, const NoiseParams& params, Rng& rng);

/// Generates a 3-channel image with correlated per-channel noise: a shared
/// luma field plus small chroma offsets, so the result looks like a tinted
/// photograph rather than RGB static.
Image value_noise_rgb(int width, int height, const NoiseParams& params,
                      Rng& rng);

}  // namespace decam::data
