// Backdoor-trigger stamping for the image-scaling-assisted poisoning
// scenario of the paper's Section II-B: the attacker stamps a visual
// trigger (the "black-frame eye-glasses") onto victim images, then uses the
// scaling attack to disguise the trigger image as the target identity. The
// dataset_sanitizer example uses these helpers to build a poisoned corpus
// and show Decamouflage filtering it out.
#pragma once

#include "data/rng.h"
#include "imaging/image.h"

namespace decam::data {

struct TriggerParams {
  int size_fraction_denom = 5;  // trigger side = image side / denom
  float intensity = 10.0f;      // trigger pixel value (dark frame)
};

/// Stamps a rectangular black-frame trigger (hollow square, "eye-glass"
/// style: two joined frames) near the image centre. Returns the stamped copy.
Image stamp_trigger(const Image& img, const TriggerParams& params = {});

/// Generates a synthetic "face-like" portrait: smooth oval over gradient.
/// Stand-in for the face-recognition corpus in the backdoor walkthrough.
Image generate_portrait(int side, Rng& rng);

/// Portrait of a specific IDENTITY (0..3): class-determining attributes
/// (shirt colour, skin tone, backdrop hue) are fixed per identity while
/// pose-irrelevant details (gradients, blur, exact geometry) vary with the
/// RNG. Learnable by a small CNN at 32x32, which is what the end-to-end
/// backdoor experiment (examples/backdoor_e2e) trains.
Image generate_identity_portrait(int identity, int side, Rng& rng);

/// Number of identities generate_identity_portrait supports.
constexpr int kIdentityCount = 4;

}  // namespace decam::data
