#include "data/rng.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace decam::data {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

int Rng::next_int(int lo, int hi) {
  DECAM_REQUIRE(lo <= hi, "next_int bounds inverted");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::next_range(double lo, double hi) {
  DECAM_REQUIRE(lo <= hi, "next_range bounds inverted");
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace decam::data
