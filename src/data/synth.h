// Synthetic natural-image dataset generator.
//
// The paper calibrates thresholds on the NeurIPS-2017 adversarial-
// competition images and evaluates on Caltech-256. Neither dataset is
// available offline, so we substitute procedurally generated scenes with
// photograph-like statistics (multi-octave noise background + geometric
// content + lighting gradient + mild blur). Two parameter REGIMES with
// disjoint seeds and different size/contrast/content distributions stand in
// for the two datasets, preserving the paper's key protocol point: the
// thresholds are selected on one distribution and evaluated on another
// (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "data/rng.h"
#include "imaging/image.h"

namespace decam::data {

/// Which dataset distribution a scene is drawn from.
enum class Regime {
  A,  // calibration set stand-in (NeurIPS-2017-like): larger, softer scenes
  B,  // evaluation set stand-in (Caltech-256-like): smaller, busier scenes
};

struct SceneParams {
  int min_side = 448;
  int max_side = 1024;
  int min_shapes = 2;
  int max_shapes = 8;
  double blur_sigma_min = 0.5;
  double blur_sigma_max = 2.0;
  double texture_alpha_min = 0.30;  // how much noise shows through shapes
  double texture_alpha_max = 0.80;
  int noise_octaves_min = 4;  // per-image octave count is drawn uniformly
  int noise_octaves_max = 6;  //   from this range (focus diversity)
  bool color = true;
  // Tail cases that make real photo corpora hard: halftone-like fine
  // stripes (they alias under the no-antialias scalers, inflating benign
  // round-trip scores and occasionally faking CSP harmonics — the source
  // of the paper's 1.7% steganalysis FRR) and near-flat low-texture
  // frames. Probabilities are per image.
  double detail_probability = 0.05;
  double flat_probability = 0.06;
  // Content palette for the shapes (regimes differ here, not in the
  // low-level statistics the detectors score).
  double shape_value_lo = 20.0;
  double shape_value_hi = 235.0;
  // Smooth radial darkening toward the corners (object-photo look).
  bool vignette = false;
};

/// Parameter presets for the two regimes.
SceneParams scene_params(Regime regime);

/// Generates one scene with the given parameters. Width/height are drawn
/// independently from [min_side, max_side] (non-square, like real photos).
Image generate_scene(const SceneParams& params, Rng& rng);

/// Generates `count` scenes from a regime with a deterministic seed.
std::vector<Image> generate_dataset(Regime regime, int count,
                                    std::uint64_t seed);

/// Generates a small "CNN-input-sized" target image (what the attacker
/// wants the model to see), e.g. 224x224 — visually unrelated to any scene:
/// high-contrast geometric icon over a flat background.
Image generate_target(int width, int height, Rng& rng, bool color = true);

std::vector<Image> generate_targets(int width, int height, int count,
                                    std::uint64_t seed, bool color = true);

}  // namespace decam::data
