#include "data/synth.h"

#include <array>
#include <cmath>

#include "data/noise.h"
#include "imaging/draw.h"
#include "imaging/filter.h"

namespace decam::data {
namespace {

// Draws one random shape (disc, rectangle or bar) in a random color drawn
// from the regime's palette.
void add_shape(Image& img, Rng& rng, double value_lo, double value_hi) {
  const int w = img.width();
  const int h = img.height();
  std::array<float, 3> color = {
      static_cast<float>(rng.next_range(value_lo, value_hi)),
      static_cast<float>(rng.next_range(value_lo, value_hi)),
      static_cast<float>(rng.next_range(value_lo, value_hi))};
  const std::span<const float> color_span(
      color.data(), static_cast<std::size_t>(img.channels()));
  switch (rng.next_int(0, 2)) {
    case 0: {  // disc
      const int r = rng.next_int(std::min(w, h) / 16, std::min(w, h) / 4);
      fill_circle(img, rng.next_int(0, w - 1), rng.next_int(0, h - 1), r,
                  color_span);
      break;
    }
    case 1: {  // rectangle
      const int x0 = rng.next_int(0, w - 2);
      const int y0 = rng.next_int(0, h - 2);
      const int x1 = x0 + rng.next_int(w / 16, w / 3);
      const int y1 = y0 + rng.next_int(h / 16, h / 3);
      fill_rect(img, x0, y0, x1, y1, color_span);
      break;
    }
    default: {  // thick diagonal bar built from parallel lines
      const int x0 = rng.next_int(0, w - 1);
      const int y0 = rng.next_int(0, h - 1);
      const int x1 = rng.next_int(0, w - 1);
      const int y1 = rng.next_int(0, h - 1);
      const int thickness = rng.next_int(3, std::max(4, w / 40));
      for (int t = 0; t < thickness; ++t) {
        draw_line(img, x0 + t, y0, x1 + t, y1, color_span);
      }
      break;
    }
  }
}

}  // namespace

SceneParams scene_params(Regime regime) {
  // Both regimes share the LOW-LEVEL statistics (blur, texture energy,
  // octave structure): the paper's datasets are both natural photographs,
  // and that shared 1/f texture family is precisely why a percentile
  // threshold selected on one dataset transfers to the other. The regimes
  // differ in CONTENT — geometry mix, object density, palette — the way
  // NeurIPS-2017 crops differ from Caltech-256 object photos.
  SceneParams params;
  params.blur_sigma_min = 0.5;
  params.blur_sigma_max = 2.0;
  params.texture_alpha_min = 0.30;
  params.texture_alpha_max = 0.80;
  params.noise_octaves_min = 4;
  params.noise_octaves_max = 6;
  params.min_shapes = 3;
  params.max_shapes = 9;
  switch (regime) {
    case Regime::A:
      // NeurIPS-competition stand-in: larger photographic crops, wide
      // palette, no framing effects.
      params.min_side = 448;
      params.max_side = 1024;
      params.shape_value_lo = 20.0;
      params.shape_value_hi = 235.0;
      params.vignette = false;
      break;
    case Regime::B:
      // Caltech-256 stand-in: more varied sizes, a muted object-photo
      // palette and a vignette (smooth, so it does not move the
      // round-trip/filter scores the detectors threshold).
      params.min_side = 384;
      params.max_side = 896;
      params.shape_value_lo = 55.0;
      params.shape_value_hi = 215.0;
      params.vignette = true;
      break;
  }
  return params;
}

Image generate_scene(const SceneParams& params, Rng& rng) {
  DECAM_REQUIRE(params.min_side >= 32 && params.max_side >= params.min_side,
                "bad scene size bounds");
  const int w = rng.next_int(params.min_side, params.max_side);
  const int h = rng.next_int(params.min_side, params.max_side);
  const int channels = params.color ? 3 : 1;
  const bool flat_frame = rng.next_bool(params.flat_probability);
  const bool detail_frame =
      !flat_frame && rng.next_bool(params.detail_probability);

  // 1. Lighting gradient background.
  Image scene(w, h, channels);
  std::array<float, 3> from = {
      static_cast<float>(rng.next_range(30.0, 140.0)),
      static_cast<float>(rng.next_range(30.0, 140.0)),
      static_cast<float>(rng.next_range(30.0, 140.0))};
  std::array<float, 3> to = {
      static_cast<float>(rng.next_range(120.0, 230.0)),
      static_cast<float>(rng.next_range(120.0, 230.0)),
      static_cast<float>(rng.next_range(120.0, 230.0))};
  fill_gradient(scene,
                std::span<const float>(from.data(),
                                       static_cast<std::size_t>(channels)),
                std::span<const float>(to.data(),
                                       static_cast<std::size_t>(channels)),
                rng.next_range(0.0, 3.14159265));

  // 2. Object-like geometric content (none for near-flat frames).
  if (!flat_frame) {
    const int shapes = rng.next_int(params.min_shapes, params.max_shapes);
    for (int i = 0; i < shapes; ++i) {
      add_shape(scene, rng, params.shape_value_lo, params.shape_value_hi);
    }
  }

  // 3. Blend in the natural-statistics texture.
  DECAM_REQUIRE(params.noise_octaves_min >= 1 &&
                    params.noise_octaves_max >= params.noise_octaves_min,
                "bad octave range");
  NoiseParams noise_params;
  noise_params.octaves =
      rng.next_int(params.noise_octaves_min, params.noise_octaves_max);
  noise_params.base_period = rng.next_range(48.0, 160.0);
  noise_params.persistence = rng.next_range(0.40, 0.65);
  const Image texture = params.color
                            ? value_noise_rgb(w, h, noise_params, rng)
                            : value_noise(w, h, noise_params, rng);
  float alpha = static_cast<float>(
      rng.next_range(params.texture_alpha_min, params.texture_alpha_max));
  if (flat_frame) alpha *= 0.15f;  // studio-backdrop-like frame
  blend_sprite(scene, texture, 0, 0, alpha);

  // 4. Optional smooth vignette (radial falloff is low-frequency, so it
  // leaves the detectors' round-trip scores essentially unchanged).
  if (params.vignette) {
    const double cx = (w - 1) / 2.0;
    const double cy = (h - 1) / 2.0;
    const double max_r2 = cx * cx + cy * cy;
    const float strength = static_cast<float>(rng.next_range(0.15, 0.35));
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const double r2 = ((x - cx) * (x - cx) + (y - cy) * (y - cy)) / max_r2;
        const float gain = 1.0f - strength * static_cast<float>(r2);
        for (int c = 0; c < channels; ++c) scene.at(x, y, c) *= gain;
      }
    }
  }

  // 5. Mild camera blur, then 8-bit quantisation like a decoded photo.
  scene = gaussian_blur(
      scene, rng.next_range(params.blur_sigma_min, params.blur_sigma_max));

  // 6. Halftone-like fine detail AFTER the blur (scanned prints, textiles,
  // window blinds): stripes near the sampling Nyquist rate that alias
  // badly under the non-anti-aliased scalers — a benign heavy tail.
  if (detail_frame) {
    const int period = rng.next_int(2, 4);
    const bool vertical = rng.next_bool();
    const float strength = static_cast<float>(rng.next_range(12.0, 45.0));
    const int x0 = rng.next_int(0, w / 2);
    const int y0 = rng.next_int(0, h / 2);
    const int x1 = rng.next_int(x0 + w / 4, w);
    const int y1 = rng.next_int(y0 + h / 4, h);
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        const int phase = (vertical ? x : y) % period;
        const float delta = phase == 0 ? strength : -strength / (period - 1);
        for (int c = 0; c < channels; ++c) scene.at(x, y, c) += delta;
      }
    }
  }
  scene.clamp();
  for (int c = 0; c < scene.channels(); ++c) {
    for (float& v : scene.plane(c)) v = std::round(v);
  }
  return scene;
}

std::vector<Image> generate_dataset(Regime regime, int count,
                                    std::uint64_t seed) {
  DECAM_REQUIRE(count >= 0, "count must be non-negative");
  const SceneParams params = scene_params(regime);
  // Mix the regime into the stream so A and B never share image seeds.
  Rng root(seed ^ (regime == Regime::A ? 0xA11CE5EEDull : 0xB0B5EED5ull));
  std::vector<Image> images;
  images.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng child = root.fork();
    images.push_back(generate_scene(params, child));
  }
  return images;
}

Image generate_target(int width, int height, Rng& rng, bool color) {
  const int channels = color ? 3 : 1;
  Image target(width, height, channels);
  // Flat background with strong foreground glyphs: the "wolf" the attacker
  // wants the model to see. High contrast makes attack success obvious.
  std::array<float, 3> bg = {
      static_cast<float>(rng.next_range(0.0, 80.0)),
      static_cast<float>(rng.next_range(0.0, 80.0)),
      static_cast<float>(rng.next_range(0.0, 80.0))};
  fill_rect(target, 0, 0, width, height,
            std::span<const float>(bg.data(),
                                   static_cast<std::size_t>(channels)));
  const int glyphs = rng.next_int(2, 5);
  for (int i = 0; i < glyphs; ++i) add_shape(target, rng, 0.0, 255.0);
  // A bright frame helps visual inspection of crafted images.
  std::array<float, 3> frame = {240.0f, 240.0f, 240.0f};
  const std::span<const float> frame_span(
      frame.data(), static_cast<std::size_t>(channels));
  fill_rect(target, 0, 0, width, 2, frame_span);
  fill_rect(target, 0, height - 2, width, height, frame_span);
  fill_rect(target, 0, 0, 2, height, frame_span);
  fill_rect(target, width - 2, 0, width, height, frame_span);
  target.clamp();
  return target;
}

std::vector<Image> generate_targets(int width, int height, int count,
                                    std::uint64_t seed, bool color) {
  DECAM_REQUIRE(count >= 0, "count must be non-negative");
  Rng root(seed ^ 0x7A26E7ull);
  std::vector<Image> images;
  images.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng child = root.fork();
    images.push_back(generate_target(width, height, child, color));
  }
  return images;
}

}  // namespace decam::data
