#include "data/trigger.h"

#include <array>

#include "imaging/draw.h"
#include "imaging/filter.h"

namespace decam::data {

Image stamp_trigger(const Image& img, const TriggerParams& params) {
  DECAM_REQUIRE(params.size_fraction_denom >= 2, "trigger too large");
  Image out = img;
  const int side = std::min(img.width(), img.height());
  const int lens = side / params.size_fraction_denom;
  const int thickness = std::max(1, lens / 6);
  const int cy = img.height() * 2 / 5;  // eye line, upper-centre
  const int cx = img.width() / 2;
  const std::array<float, 1> dark = {params.intensity};
  auto frame = [&](int x0, int y0, int x1, int y1) {
    fill_rect(out, x0, y0, x1, y0 + thickness, dark);
    fill_rect(out, x0, y1 - thickness, x1, y1, dark);
    fill_rect(out, x0, y0, x0 + thickness, y1, dark);
    fill_rect(out, x1 - thickness, y0, x1, y1, dark);
  };
  // Two joined frames: the "black-frame eye-glasses".
  frame(cx - lens - thickness, cy - lens / 2, cx - thickness, cy + lens / 2);
  frame(cx + thickness, cy - lens / 2, cx + lens + thickness, cy + lens / 2);
  fill_rect(out, cx - thickness, cy - thickness / 2, cx + thickness,
            cy + std::max(1, thickness / 2), dark);
  return out;
}

Image generate_identity_portrait(int identity, int side, Rng& rng) {
  DECAM_REQUIRE(identity >= 0 && identity < kIdentityCount,
                "identity out of range");
  DECAM_REQUIRE(side >= 64, "portrait side too small");
  // Per-identity palettes: shirt is the strongest class signal, with skin
  // tone and backdrop hue reinforcing it — all still visible at 32x32.
  struct Palette {
    float shirt[3];
    float skin[3];
    float backdrop[3];
  };
  static constexpr Palette kPalettes[kIdentityCount] = {
      {{200.0f, 40.0f, 40.0f}, {225.0f, 175.0f, 150.0f}, {70.0f, 90.0f, 140.0f}},
      {{40.0f, 160.0f, 60.0f}, {150.0f, 105.0f, 80.0f}, {150.0f, 120.0f, 80.0f}},
      {{45.0f, 70.0f, 200.0f}, {245.0f, 205.0f, 180.0f}, {120.0f, 70.0f, 120.0f}},
      {{215.0f, 195.0f, 60.0f}, {110.0f, 75.0f, 55.0f}, {60.0f, 130.0f, 130.0f}},
  };
  const Palette& palette = kPalettes[identity];

  auto jitter = [&rng](const float (&base)[3], double amount) {
    return std::array<float, 3>{
        static_cast<float>(base[0] + rng.next_range(-amount, amount)),
        static_cast<float>(base[1] + rng.next_range(-amount, amount)),
        static_cast<float>(base[2] + rng.next_range(-amount, amount))};
  };

  Image img(side, side, 3);
  const std::array<float, 3> bg_from = jitter(palette.backdrop, 18.0);
  const std::array<float, 3> bg_to = jitter(palette.backdrop, 40.0);
  fill_gradient(img, bg_from, bg_to, rng.next_range(0.0, 3.14159265));

  const std::array<float, 3> skin = jitter(palette.skin, 10.0);
  const int cx = side / 2 + rng.next_int(-side / 20, side / 20);
  const int cy = side * 2 / 5 + rng.next_int(-side / 24, side / 24);
  const int r = side / 4 + rng.next_int(-side / 24, side / 24);
  fill_circle(img, cx, cy, r, skin);
  fill_circle(img, cx, cy + r / 2, r * 4 / 5, skin);

  const std::array<float, 3> shirt = jitter(palette.shirt, 14.0);
  fill_rect(img, cx - r * 3 / 2, side * 4 / 5, cx + r * 3 / 2, side, shirt);

  std::array<float, 3> dark = {35.0f, 25.0f, 25.0f};
  const int eye_dx = r / 2;
  const int eye_y = cy - r / 6;
  fill_circle(img, cx - eye_dx, eye_y, std::max(2, r / 10), dark);
  fill_circle(img, cx + eye_dx, eye_y, std::max(2, r / 10), dark);
  fill_rect(img, cx - r / 3, cy + r / 2, cx + r / 3,
            cy + r / 2 + std::max(2, r / 12), dark);
  img = gaussian_blur(img, rng.next_range(0.8, 1.5));
  img.clamp();
  return img;
}

Image generate_portrait(int side, Rng& rng) {
  DECAM_REQUIRE(side >= 64, "portrait side too small");
  Image img(side, side, 3);
  // Background gradient.
  std::array<float, 3> bg_from = {
      static_cast<float>(rng.next_range(40.0, 110.0)),
      static_cast<float>(rng.next_range(40.0, 110.0)),
      static_cast<float>(rng.next_range(60.0, 140.0))};
  std::array<float, 3> bg_to = {
      static_cast<float>(rng.next_range(120.0, 200.0)),
      static_cast<float>(rng.next_range(120.0, 200.0)),
      static_cast<float>(rng.next_range(140.0, 220.0))};
  fill_gradient(img, bg_from, bg_to, rng.next_range(0.0, 3.14159265));
  // Skin-tone head oval (approximated by stacked circles) + shoulders.
  std::array<float, 3> skin = {
      static_cast<float>(rng.next_range(160.0, 230.0)),
      static_cast<float>(rng.next_range(120.0, 185.0)),
      static_cast<float>(rng.next_range(95.0, 160.0))};
  const int cx = side / 2;
  const int cy = side * 2 / 5;
  const int r = side / 4;
  fill_circle(img, cx, cy, r, skin);
  fill_circle(img, cx, cy + r / 2, r * 4 / 5, skin);
  std::array<float, 3> shirt = {
      static_cast<float>(rng.next_range(30.0, 200.0)),
      static_cast<float>(rng.next_range(30.0, 200.0)),
      static_cast<float>(rng.next_range(30.0, 200.0))};
  fill_rect(img, cx - r * 3 / 2, side * 4 / 5, cx + r * 3 / 2, side, shirt);
  // Eyes and mouth give the detectors realistic local contrast.
  std::array<float, 3> dark = {35.0f, 25.0f, 25.0f};
  const int eye_dx = r / 2;
  const int eye_y = cy - r / 6;
  fill_circle(img, cx - eye_dx, eye_y, std::max(2, r / 10), dark);
  fill_circle(img, cx + eye_dx, eye_y, std::max(2, r / 10), dark);
  fill_rect(img, cx - r / 3, cy + r / 2, cx + r / 3,
            cy + r / 2 + std::max(2, r / 12), dark);
  img = gaussian_blur(img, rng.next_range(0.8, 1.6));
  img.clamp();
  return img;
}

}  // namespace decam::data
