#include "data/noise.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace decam::data {
namespace {

// Hash-based lattice value: maps integer lattice coordinates (plus a salt)
// to a deterministic double in [0, 1). Using a hash instead of a stored
// lattice keeps arbitrary image sizes cheap.
double lattice_value(std::int64_t x, std::int64_t y, std::uint64_t salt) {
  std::uint64_t h = salt;
  h ^= static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(y) * 0xc2b2ae3d27d4eb4fULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

// One octave of bilinear value noise at the given period.
double octave_at(double px, double py, double period, std::uint64_t salt) {
  const double gx = px / period;
  const double gy = py / period;
  const auto x0 = static_cast<std::int64_t>(std::floor(gx));
  const auto y0 = static_cast<std::int64_t>(std::floor(gy));
  const double tx = smoothstep(gx - static_cast<double>(x0));
  const double ty = smoothstep(gy - static_cast<double>(y0));
  const double v00 = lattice_value(x0, y0, salt);
  const double v10 = lattice_value(x0 + 1, y0, salt);
  const double v01 = lattice_value(x0, y0 + 1, salt);
  const double v11 = lattice_value(x0 + 1, y0 + 1, salt);
  const double top = v00 + (v10 - v00) * tx;
  const double bot = v01 + (v11 - v01) * tx;
  return top + (bot - top) * ty;
}

}  // namespace

Image value_noise(int width, int height, const NoiseParams& params, Rng& rng) {
  DECAM_REQUIRE(params.octaves >= 1, "need at least one octave");
  DECAM_REQUIRE(params.base_period > 1.0, "base period must exceed 1 pixel");
  Image out(width, height, 1);
  std::vector<std::uint64_t> salts(static_cast<std::size_t>(params.octaves));
  for (auto& s : salts) s = rng.next_u64();
  double max_amp = 0.0;
  {
    double amp = 1.0;
    for (int o = 0; o < params.octaves; ++o) {
      max_amp += amp;
      amp *= params.persistence;
    }
  }
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double value = 0.0;
      double amp = 1.0;
      double period = params.base_period;
      for (int o = 0; o < params.octaves; ++o) {
        value += amp * octave_at(x, y, period,
                                 salts[static_cast<std::size_t>(o)]);
        amp *= params.persistence;
        period /= params.lacunarity;
      }
      out.at(x, y, 0) = static_cast<float>(255.0 * value / max_amp);
    }
  }
  return out;
}

Image value_noise_rgb(int width, int height, const NoiseParams& params,
                      Rng& rng) {
  const Image luma = value_noise(width, height, params, rng);
  // Chroma fields vary slowly (one-third the detail) and modulate around
  // the shared luma, mimicking the luma/chroma statistics of photos.
  NoiseParams chroma_params = params;
  chroma_params.octaves = std::max(1, params.octaves - 2);
  const Image chroma_a = value_noise(width, height, chroma_params, rng);
  const Image chroma_b = value_noise(width, height, chroma_params, rng);
  const double tint_r = rng.next_range(-0.25, 0.25);
  const double tint_b = rng.next_range(-0.25, 0.25);
  Image out(width, height, 3);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const float l = luma.at(x, y, 0);
      const float ca = chroma_a.at(x, y, 0) - 127.5f;
      const float cb = chroma_b.at(x, y, 0) - 127.5f;
      out.at(x, y, 0) =
          l + static_cast<float>(tint_r) * ca + 0.30f * ca;
      out.at(x, y, 1) = l - 0.15f * ca - 0.15f * cb;
      out.at(x, y, 2) =
          l + static_cast<float>(tint_b) * cb + 0.30f * cb;
    }
  }
  out.clamp();
  return out;
}

}  // namespace decam::data
