// Deterministic pseudo-random numbers for every experiment. xoshiro256**
// seeded through SplitMix64; identical seeds produce identical datasets on
// any platform, which is what lets the benches print a seed and be exactly
// re-runnable.
#pragma once

#include <cstdint>

namespace decam::data {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int next_int(int lo, int hi);

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi);

  /// Standard normal via Box-Muller.
  double next_gaussian();

  /// Bernoulli(p).
  bool next_bool(double p = 0.5);

  /// Derive an independent child stream (for per-image generators).
  Rng fork();

 private:
  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace decam::data
