#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"

namespace decam::runtime {
namespace {

thread_local bool tl_pool_worker = false;

// Pool telemetry (DESIGN.md §7): queue depth and idle-worker counts are
// updated under the pool mutex the scheduler already holds, so the gauges
// cost one relaxed store on paths that were never lock-free to begin with.
obs::Gauge& queue_depth_gauge() {
  static auto& gauge =
      obs::MetricsRegistry::instance().gauge("pool/queue_depth");
  return gauge;
}

obs::Gauge& idle_workers_gauge() {
  static auto& gauge =
      obs::MetricsRegistry::instance().gauge("pool/idle_workers");
  return gauge;
}

}  // namespace

ThreadPool::ThreadPool(int threads) : size_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int i = 0; i + 1 < size_; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  static auto& submitted =
      obs::MetricsRegistry::instance().counter("pool/tasks_submitted");
  submitted.add();
  if (workers_.empty()) {
    task();  // degenerate pool: the caller is the only lane
    return;
  }
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  wake_.notify_one();
}

bool ThreadPool::on_worker_thread() { return tl_pool_worker; }

void ThreadPool::worker_main(int index) {
  tl_pool_worker = true;
  // Label the trace timeline: spans recorded from this thread group under a
  // named row in chrome://tracing instead of a bare tid.
  obs::set_current_thread_name("decam-worker-" + std::to_string(index + 1));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      ++idle_;
      idle_workers_gauge().set(static_cast<double>(idle_));
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      --idle_;
      idle_workers_gauge().set(static_cast<double>(idle_));
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    task();
  }
}

namespace detail {

void parallel_for_impl(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& body) {
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable done;
    int pending = 0;
  };
  // shared_ptr: a lane queued behind other work may still be starting up
  // while the fast lanes (and the caller) have finished every index.
  auto state = std::make_shared<State>();

  // One lane: pull indices until the range is drained or a lane failed.
  // `body` stays valid because the caller blocks until every lane returns.
  const auto lane = [state, &body, count] {
    for (;;) {
      if (state->failed.load(std::memory_order_relaxed)) break;
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const int lanes = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(pool.size()), count));
  state->pending = lanes - 1;
  for (int k = 0; k + 1 < lanes; ++k) {
    pool.submit([state, lane] {
      lane();
      std::lock_guard lock(state->mutex);
      --state->pending;
      state->done.notify_one();
    });
  }
  lane();  // the calling thread is the last lane
  {
    std::unique_lock lock(state->mutex);
    state->done.wait(lock, [&] { return state->pending == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace detail

int hardware_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

int env_thread_count() {
  const char* value = std::getenv("DECAM_THREADS");
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) return 0;
  return static_cast<int>(std::min<long>(parsed, 512));
}

int default_thread_count() {
  const int from_env = env_thread_count();
  return from_env > 0 ? from_env : hardware_thread_count();
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_requested = 0;  // 0 = follow default_thread_count()

int wanted_size() { return g_requested > 0 ? g_requested : default_thread_count(); }

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard lock(g_pool_mutex);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(wanted_size());
    obs::MetricsRegistry::instance().gauge("pool/size").set(
        static_cast<double>(g_pool->size()));
  }
  return *g_pool;
}

void set_thread_count(int threads) {
  std::lock_guard lock(g_pool_mutex);
  g_requested = std::max(0, threads);
  if (g_pool && g_pool->size() != wanted_size()) g_pool.reset();
}

int thread_count() {
  std::lock_guard lock(g_pool_mutex);
  return g_pool ? g_pool->size() : wanted_size();
}

}  // namespace decam::runtime
