// parallel_for / parallel_map on a ThreadPool (DESIGN.md §8).
//
// Contract:
//  - body(i) runs exactly once per index, on an unspecified lane/thread;
//  - the call returns only after every index completed (or an exception
//    stopped the range) — effects are visible to the caller;
//  - the first exception thrown by any lane is rethrown on the caller, the
//    remaining lanes stop at their next index boundary;
//  - a size-1 pool, a single-index range, and calls made from inside a pool
//    worker (nested parallelism) all degrade to the plain serial loop on
//    the calling thread.
//
// Determinism is the caller's job: write results into index-ordered slots
// and derive per-index RNG state before fanning out (core/pipeline.cpp is
// the reference pattern).
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace decam::runtime {

namespace detail {
/// Type-erased core; lives in thread_pool.cpp. `body` must stay valid for
/// the duration of the call (guaranteed: the call blocks).
void parallel_for_impl(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& body);
}  // namespace detail

template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (pool.size() <= 1 || count <= 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < count; ++i) body(begin + i);
    return;
  }
  const std::function<void(std::size_t)> erased = [&body, begin](
                                                      std::size_t i) {
    body(begin + i);
  };
  detail::parallel_for_impl(pool, count, erased);
}

/// parallel_for on the global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body) {
  parallel_for(global_pool(), begin, end, std::forward<Body>(body));
}

/// Maps fn over items into an index-ordered result vector (input order is
/// preserved no matter which lane computed each slot). The result type must
/// be default-constructible and move-assignable.
template <typename T, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>> {
  std::vector<std::decay_t<decltype(fn(items.front()))>> out(items.size());
  parallel_for(pool, 0, items.size(),
               [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

/// parallel_map on the global pool.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn) {
  return parallel_map(global_pool(), items, std::forward<Fn>(fn));
}

}  // namespace decam::runtime
