// Fixed-size worker pool — the parallel execution substrate every layer
// above it shares (DESIGN.md §8).
//
// Model: a ThreadPool of size N owns N-1 worker threads plus the calling
// thread; parallel_for (runtime/parallel.h) splits an index range into N
// lanes that pull indices from one atomic counter, so the pool is saturated
// without per-index task overhead. Size 1 spawns no threads and runs
// everything inline on the caller — the serial build is a degenerate pool,
// not a separate code path.
//
// Sizing: DECAM_THREADS env (>= 1) overrides the hardware-concurrency
// default; frontends additionally expose a --threads flag that wins over
// both via set_thread_count().
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace decam::runtime {

class ThreadPool {
 public:
  /// A pool of total parallelism `threads` (clamped to >= 1): `threads - 1`
  /// workers are spawned, the thread calling parallel_for is the last lane.
  explicit ThreadPool(int threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  /// Total parallelism (worker count + 1), >= 1.
  int size() const { return size_; }

  /// Enqueues a task for any worker. Fire-and-forget: completion is the
  /// caller's protocol (parallel_for counts its lanes). On a size-1 pool
  /// the task runs inline, immediately.
  void submit(std::function<void()> task);

  /// True when the calling thread is a pool worker (any pool). parallel_for
  /// uses this to run nested parallelism inline instead of deadlocking on
  /// the queue.
  static bool on_worker_thread();

 private:
  void worker_main(int index);

  int size_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  int idle_ = 0;  // workers parked in wait(), feeds pool/idle_workers gauge
};

/// max(1, std::thread::hardware_concurrency()).
int hardware_thread_count();

/// Parsed DECAM_THREADS, or 0 when unset / empty / not a positive integer.
int env_thread_count();

/// env_thread_count() when set, else hardware_thread_count().
int default_thread_count();

/// The process-wide pool, built lazily at default_thread_count() (or the
/// last set_thread_count() override). References stay valid until the next
/// set_thread_count() that changes the size.
ThreadPool& global_pool();

/// Overrides the global pool size (frontend --threads flags); 0 restores
/// the DECAM_THREADS / hardware default. Rebuilds the pool if it already
/// exists — call between parallel regions, not during one.
void set_thread_count(int threads);

/// Size the global pool has (or would be built with).
int thread_count();

}  // namespace decam::runtime
