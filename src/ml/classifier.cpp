#include "ml/classifier.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "imaging/scale.h"

namespace decam::ml {
namespace {

int conv_pool_output(int side, int kernel) {
  return (side - kernel + 1) / 2;
}

}  // namespace

SmallCnn::SmallCnn(int classes, int input_side, ScaleAlgo pipeline_algo,
                   std::uint64_t seed)
    : classes_(classes),
      input_side_(input_side),
      pipeline_algo_(pipeline_algo),
      init_rng_(seed),
      conv1_(3, 8, 3, init_rng_),
      conv2_(8, 16, 3, init_rng_),
      head_([&] {
        DECAM_REQUIRE(classes >= 2, "need at least two classes");
        DECAM_REQUIRE(input_side >= 12,
                      "input side too small for two conv blocks");
        const int after1 = conv_pool_output(input_side, 3);
        const int after2 = conv_pool_output(after1, 3);
        DECAM_REQUIRE(after2 >= 1, "input side too small");
        flat_size_ = 16 * after2 * after2;
        return Dense(flat_size_, classes, init_rng_);
      }()) {}

Tensor SmallCnn::preprocess(const Image& input) {
  const Image gray_safe =
      input.channels() == 3
          ? input
          : [&] {
              // Replicate grayscale input into RGB so the model geometry
              // stays fixed.
              Image rgb(input.width(), input.height(), 3);
              for (int c = 0; c < 3; ++c) {
                auto dst = rgb.plane(c);
                auto src = input.plane(0);
                std::copy(src.begin(), src.end(), dst.begin());
              }
              return rgb;
            }();
  if (input.width() == input_side_ && input.height() == input_side_) {
    return Tensor::from_image(gray_safe);
  }
  Image small = resize(gray_safe, input_side_, input_side_, pipeline_algo_);
  small.clamp();
  return Tensor::from_image(small);
}

std::vector<float> SmallCnn::forward(const Tensor& input) {
  const Tensor a1 = pool1_.forward(relu1_.forward(conv1_.forward(input)));
  last_pool2_ = pool2_.forward(relu2_.forward(conv2_.forward(a1)));
  DECAM_ASSERT(static_cast<int>(last_pool2_.size()) == flat_size_);
  return head_.forward(last_pool2_.flat());
}

void SmallCnn::backward(const std::vector<float>& grad_logits) {
  const std::vector<float> grad_flat = head_.backward(grad_logits);
  Tensor grad_pool2(last_pool2_.channels(), last_pool2_.height(),
                    last_pool2_.width());
  grad_pool2.flat() = grad_flat;
  const Tensor g2 = conv2_.backward(relu2_.backward(pool2_.backward(grad_pool2)));
  conv1_.backward(relu1_.backward(pool1_.backward(g2)));
}

void SmallCnn::apply_gradients(float learning_rate) {
  conv1_.apply_gradients(learning_rate);
  conv2_.apply_gradients(learning_rate);
  head_.apply_gradients(learning_rate);
}

std::vector<float> SmallCnn::predict(const Image& input) {
  return softmax(forward(preprocess(input)));
}

int SmallCnn::classify(const Image& input) {
  const std::vector<float> probs = predict(input);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

double SmallCnn::train(const std::vector<TrainingSample>& samples,
                       const TrainConfig& config) {
  DECAM_REQUIRE(!samples.empty(), "training set is empty");
  DECAM_REQUIRE(config.epochs >= 1 && config.learning_rate > 0.0f,
                "bad training configuration");
  // Pre-process once: the scaling attack acts here, before training.
  std::vector<Tensor> inputs;
  inputs.reserve(samples.size());
  for (const TrainingSample& sample : samples) {
    DECAM_REQUIRE(sample.label >= 0 && sample.label < classes_,
                  "label out of range");
    inputs.push_back(preprocess(sample.image));
  }
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  data::Rng shuffle_rng(config.shuffle_seed);
  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(
          shuffle_rng.next_int(0, static_cast<int>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    epoch_loss = 0.0;
    for (const std::size_t idx : order) {
      const std::vector<float> logits = forward(inputs[idx]);
      const LossResult loss =
          softmax_cross_entropy(logits, samples[idx].label);
      epoch_loss += loss.loss;
      backward(loss.grad_logits);
      apply_gradients(config.learning_rate);
    }
    epoch_loss /= static_cast<double>(samples.size());
    if (config.verbose) {
      std::fprintf(stderr, "[cnn] epoch %d/%d loss %.4f\n", epoch + 1,
                   config.epochs, epoch_loss);
    }
  }
  return epoch_loss;
}

namespace {

void write_block(std::ostream& out, const char* name,
                 const std::vector<float>& values) {
  out << name << ' ' << values.size() << '\n';
  for (float v : values) out << v << '\n';
}

void read_block(std::istream& in, const std::string& file, const char* name,
                std::vector<float>& values) {
  std::string tag;
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != name || count != values.size()) {
    throw IoError(file + ": model block mismatch at " + name);
  }
  for (float& v : values) {
    if (!(in >> v)) throw IoError(file + ": truncated block " + name);
  }
}

}  // namespace

void SmallCnn::save(const std::filesystem::path& file) const {
  std::ofstream out(file);
  if (!out) throw IoError(file.string() + ": cannot open for writing");
  out.precision(9);  // float round-trip
  out << "decam-smallcnn v1 " << classes_ << ' ' << input_side_ << ' '
      << to_string(pipeline_algo_) << '\n';
  write_block(out, "conv1.w", conv1_.weights());
  write_block(out, "conv1.b", conv1_.bias());
  write_block(out, "conv2.w", conv2_.weights());
  write_block(out, "conv2.b", conv2_.bias());
  write_block(out, "head.w", head_.weights());
  write_block(out, "head.b", head_.bias());
  if (!out) throw IoError(file.string() + ": short write");
}

void SmallCnn::load(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) throw IoError(file.string() + ": cannot open for reading");
  std::string magic, version, algo_name;
  int classes = 0, side = 0;
  if (!(in >> magic >> version >> classes >> side >> algo_name) ||
      magic != "decam-smallcnn" || version != "v1") {
    throw IoError(file.string() + ": not a SmallCnn model file");
  }
  if (classes != classes_ || side != input_side_) {
    throw IoError(file.string() + ": architecture mismatch");
  }
  read_block(in, file.string(), "conv1.w", conv1_.weights());
  read_block(in, file.string(), "conv1.b", conv1_.bias());
  read_block(in, file.string(), "conv2.w", conv2_.weights());
  read_block(in, file.string(), "conv2.b", conv2_.bias());
  read_block(in, file.string(), "head.w", head_.weights());
  read_block(in, file.string(), "head.b", head_.bias());
}

std::vector<std::vector<int>> SmallCnn::confusion(
    const std::vector<TrainingSample>& samples) {
  DECAM_REQUIRE(!samples.empty(), "empty evaluation set");
  std::vector<std::vector<int>> matrix(
      static_cast<std::size_t>(classes_),
      std::vector<int>(static_cast<std::size_t>(classes_), 0));
  for (const TrainingSample& sample : samples) {
    DECAM_REQUIRE(sample.label >= 0 && sample.label < classes_,
                  "label out of range");
    ++matrix[static_cast<std::size_t>(sample.label)]
            [static_cast<std::size_t>(classify(sample.image))];
  }
  return matrix;
}

double SmallCnn::accuracy(const std::vector<TrainingSample>& samples) {
  DECAM_REQUIRE(!samples.empty(), "empty evaluation set");
  int correct = 0;
  for (const TrainingSample& sample : samples) {
    if (classify(sample.image) == sample.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

}  // namespace decam::ml
