// CNN layers with manual forward/backward passes. Scope: exactly what the
// backdoor end-to-end experiment needs — Conv2D (valid padding, stride 1),
// ReLU, 2x2 max-pooling, a fully-connected head and softmax cross-entropy.
// Every layer caches its forward activations so backward() can be called
// immediately after forward() on the same sample (we train with SGD,
// batch size 1, which keeps the code transparent and single-core fast).
//
// Gradient correctness is enforced by numerical-differentiation tests in
// tests/ml_test.cpp.
#pragma once

#include <vector>

#include "data/rng.h"
#include "ml/tensor.h"

namespace decam::ml {

/// 2-D convolution, valid padding, stride 1, He-initialised weights.
class Conv2D {
 public:
  Conv2D(int in_channels, int out_channels, int kernel, data::Rng& rng);

  Tensor forward(const Tensor& input);
  /// Given dL/d(output), accumulates weight gradients and returns
  /// dL/d(input). Must follow a forward() on the same input.
  Tensor backward(const Tensor& grad_output);
  void apply_gradients(float learning_rate);

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }

  std::vector<float>& weights() { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& weights() const { return weights_; }
  const std::vector<float>& bias() const { return bias_; }

 private:
  std::size_t weight_index(int oc, int ic, int ky, int kx) const {
    return ((static_cast<std::size_t>(oc) * in_channels_ + ic) * kernel_ +
            ky) * kernel_ + kx;
  }

  int in_channels_;
  int out_channels_;
  int kernel_;
  std::vector<float> weights_;
  std::vector<float> bias_;
  std::vector<float> grad_weights_;
  std::vector<float> grad_bias_;
  Tensor last_input_;
};

/// Elementwise max(0, x).
class ReLU {
 public:
  Tensor forward(const Tensor& input);
  Tensor backward(const Tensor& grad_output);

 private:
  Tensor last_input_;
};

/// 2x2 max pooling, stride 2 (odd trailing row/column dropped).
class MaxPool2 {
 public:
  Tensor forward(const Tensor& input);
  Tensor backward(const Tensor& grad_output);

 private:
  Tensor last_input_;
  std::vector<int> argmax_;  // flat input index per output element
};

/// Fully-connected layer over the flattened tensor.
class Dense {
 public:
  Dense(int in_features, int out_features, data::Rng& rng);

  std::vector<float> forward(const std::vector<float>& input);
  std::vector<float> backward(const std::vector<float>& grad_output);
  void apply_gradients(float learning_rate);

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  std::vector<float>& weights() { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& weights() const { return weights_; }
  const std::vector<float>& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  std::vector<float> weights_;  // out x in, row-major
  std::vector<float> bias_;
  std::vector<float> grad_weights_;
  std::vector<float> grad_bias_;
  std::vector<float> last_input_;
};

/// Numerically-stable softmax.
std::vector<float> softmax(const std::vector<float>& logits);

/// Cross-entropy loss of softmax(logits) against a one-hot label, plus the
/// gradient dL/d(logits) = softmax - onehot.
struct LossResult {
  double loss = 0.0;
  std::vector<float> grad_logits;
};
LossResult softmax_cross_entropy(const std::vector<float>& logits, int label);

}  // namespace decam::ml
