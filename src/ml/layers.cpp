#include "ml/layers.h"

#include <algorithm>
#include <cmath>

namespace decam::ml {

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, data::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel) {
  DECAM_REQUIRE(in_channels > 0 && out_channels > 0 && kernel > 0,
                "conv dimensions must be positive");
  const std::size_t count = static_cast<std::size_t>(out_channels) *
                            in_channels * kernel * kernel;
  weights_.resize(count);
  grad_weights_.assign(count, 0.0f);
  bias_.assign(static_cast<std::size_t>(out_channels), 0.0f);
  grad_bias_.assign(bias_.size(), 0.0f);
  // He initialisation: std = sqrt(2 / fan_in).
  const double std_dev =
      std::sqrt(2.0 / (static_cast<double>(in_channels) * kernel * kernel));
  for (float& w : weights_) {
    w = static_cast<float>(rng.next_gaussian() * std_dev);
  }
}

Tensor Conv2D::forward(const Tensor& input) {
  DECAM_REQUIRE(input.channels() == in_channels_,
                "conv input channel mismatch");
  DECAM_REQUIRE(input.height() >= kernel_ && input.width() >= kernel_,
                "conv input smaller than kernel");
  last_input_ = input;
  const int out_h = input.height() - kernel_ + 1;
  const int out_w = input.width() - kernel_ + 1;
  Tensor output(out_channels_, out_h, out_w);
  for (int oc = 0; oc < out_channels_; ++oc) {
    for (int y = 0; y < out_h; ++y) {
      for (int x = 0; x < out_w; ++x) {
        double acc = bias_[static_cast<std::size_t>(oc)];
        for (int ic = 0; ic < in_channels_; ++ic) {
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              acc += static_cast<double>(
                         weights_[weight_index(oc, ic, ky, kx)]) *
                     input.at(ic, y + ky, x + kx);
            }
          }
        }
        output.at(oc, y, x) = static_cast<float>(acc);
      }
    }
  }
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  DECAM_REQUIRE(!last_input_.empty(), "backward before forward");
  const Tensor& input = last_input_;
  const int out_h = grad_output.height();
  const int out_w = grad_output.width();
  DECAM_REQUIRE(grad_output.channels() == out_channels_ &&
                    out_h == input.height() - kernel_ + 1 &&
                    out_w == input.width() - kernel_ + 1,
                "grad_output shape mismatch");
  Tensor grad_input(input.channels(), input.height(), input.width());
  for (int oc = 0; oc < out_channels_; ++oc) {
    for (int y = 0; y < out_h; ++y) {
      for (int x = 0; x < out_w; ++x) {
        const float g = grad_output.at(oc, y, x);
        if (g == 0.0f) continue;
        grad_bias_[static_cast<std::size_t>(oc)] += g;
        for (int ic = 0; ic < in_channels_; ++ic) {
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              grad_weights_[weight_index(oc, ic, ky, kx)] +=
                  g * input.at(ic, y + ky, x + kx);
              grad_input.at(ic, y + ky, x + kx) +=
                  g * weights_[weight_index(oc, ic, ky, kx)];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

void Conv2D::apply_gradients(float learning_rate) {
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] -= learning_rate * grad_weights_[i];
    grad_weights_[i] = 0.0f;
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    bias_[i] -= learning_rate * grad_bias_[i];
    grad_bias_[i] = 0.0f;
  }
}

Tensor ReLU::forward(const Tensor& input) {
  last_input_ = input;
  Tensor output = input;
  for (float& v : output.flat()) v = std::max(v, 0.0f);
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  DECAM_REQUIRE(grad_output.same_shape(last_input_),
                "relu grad shape mismatch");
  Tensor grad_input = grad_output;
  const auto& saved = last_input_.flat();
  auto& grad = grad_input.flat();
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (saved[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad_input;
}

Tensor MaxPool2::forward(const Tensor& input) {
  last_input_ = input;
  const int out_h = input.height() / 2;
  const int out_w = input.width() / 2;
  DECAM_REQUIRE(out_h > 0 && out_w > 0, "input too small to pool");
  Tensor output(input.channels(), out_h, out_w);
  argmax_.assign(static_cast<std::size_t>(input.channels()) * out_h * out_w,
                 0);
  std::size_t out_index = 0;
  for (int c = 0; c < input.channels(); ++c) {
    for (int y = 0; y < out_h; ++y) {
      for (int x = 0; x < out_w; ++x) {
        float best = input.at(c, 2 * y, 2 * x);
        int best_y = 2 * y, best_x = 2 * x;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const float v = input.at(c, 2 * y + dy, 2 * x + dx);
            if (v > best) {
              best = v;
              best_y = 2 * y + dy;
              best_x = 2 * x + dx;
            }
          }
        }
        output.at(c, y, x) = best;
        argmax_[out_index++] =
            (c * input.height() + best_y) * input.width() + best_x;
      }
    }
  }
  return output;
}

Tensor MaxPool2::backward(const Tensor& grad_output) {
  DECAM_REQUIRE(!last_input_.empty(), "backward before forward");
  Tensor grad_input(last_input_.channels(), last_input_.height(),
                    last_input_.width());
  DECAM_REQUIRE(grad_output.size() == argmax_.size(),
                "pool grad shape mismatch");
  const auto& grads = grad_output.flat();
  for (std::size_t i = 0; i < grads.size(); ++i) {
    grad_input.flat()[static_cast<std::size_t>(argmax_[i])] += grads[i];
  }
  return grad_input;
}

Dense::Dense(int in_features, int out_features, data::Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  DECAM_REQUIRE(in_features > 0 && out_features > 0,
                "dense dimensions must be positive");
  weights_.resize(static_cast<std::size_t>(in_features) * out_features);
  grad_weights_.assign(weights_.size(), 0.0f);
  bias_.assign(static_cast<std::size_t>(out_features), 0.0f);
  grad_bias_.assign(bias_.size(), 0.0f);
  const double std_dev = std::sqrt(2.0 / in_features);
  for (float& w : weights_) {
    w = static_cast<float>(rng.next_gaussian() * std_dev);
  }
}

std::vector<float> Dense::forward(const std::vector<float>& input) {
  DECAM_REQUIRE(input.size() == static_cast<std::size_t>(in_features_),
                "dense input size mismatch");
  last_input_ = input;
  std::vector<float> output(static_cast<std::size_t>(out_features_));
  for (int o = 0; o < out_features_; ++o) {
    double acc = bias_[static_cast<std::size_t>(o)];
    const float* row =
        weights_.data() + static_cast<std::size_t>(o) * in_features_;
    for (int i = 0; i < in_features_; ++i) {
      acc += static_cast<double>(row[i]) * input[static_cast<std::size_t>(i)];
    }
    output[static_cast<std::size_t>(o)] = static_cast<float>(acc);
  }
  return output;
}

std::vector<float> Dense::backward(const std::vector<float>& grad_output) {
  DECAM_REQUIRE(grad_output.size() == static_cast<std::size_t>(out_features_),
                "dense grad size mismatch");
  DECAM_REQUIRE(!last_input_.empty(), "backward before forward");
  std::vector<float> grad_input(static_cast<std::size_t>(in_features_), 0.0f);
  for (int o = 0; o < out_features_; ++o) {
    const float g = grad_output[static_cast<std::size_t>(o)];
    grad_bias_[static_cast<std::size_t>(o)] += g;
    float* grad_row =
        grad_weights_.data() + static_cast<std::size_t>(o) * in_features_;
    const float* row =
        weights_.data() + static_cast<std::size_t>(o) * in_features_;
    for (int i = 0; i < in_features_; ++i) {
      grad_row[i] += g * last_input_[static_cast<std::size_t>(i)];
      grad_input[static_cast<std::size_t>(i)] += g * row[i];
    }
  }
  return grad_input;
}

void Dense::apply_gradients(float learning_rate) {
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] -= learning_rate * grad_weights_[i];
    grad_weights_[i] = 0.0f;
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    bias_[i] -= learning_rate * grad_bias_[i];
    grad_bias_[i] = 0.0f;
  }
}

std::vector<float> softmax(const std::vector<float>& logits) {
  DECAM_REQUIRE(!logits.empty(), "softmax of empty vector");
  const float peak = *std::max_element(logits.begin(), logits.end());
  std::vector<float> out(logits.size());
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - peak);
    total += out[i];
  }
  for (float& v : out) v = static_cast<float>(v / total);
  return out;
}

LossResult softmax_cross_entropy(const std::vector<float>& logits,
                                 int label) {
  DECAM_REQUIRE(label >= 0 && label < static_cast<int>(logits.size()),
                "label out of range");
  LossResult result;
  result.grad_logits = softmax(logits);
  const double p =
      std::max(result.grad_logits[static_cast<std::size_t>(label)], 1e-12f);
  result.loss = -std::log(p);
  result.grad_logits[static_cast<std::size_t>(label)] -= 1.0f;
  return result;
}

}  // namespace decam::ml
