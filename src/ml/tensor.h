// Minimal CHW tensor for the CNN substrate (src/ml). The paper's threat
// model targets the pre-processing step IN FRONT of a CNN; to demonstrate
// the full backdoor chain end to end (poison -> train -> trigger ->
// misclassification) we need an actual trainable model, and that needs a
// tensor. Deliberately tiny: dense float storage, value semantics, checked
// accessors — mirrors decam::Image (HWC-planar) but adds the channel-major
// layout convolution wants.
#pragma once

#include <vector>

#include "common/error.h"
#include "imaging/image.h"

namespace decam::ml {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int channels, int height, int width, float fill = 0.0f);

  int channels() const { return channels_; }
  int height() const { return height_; }
  int width() const { return width_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int c, int y, int x) {
    DECAM_ASSERT(in_bounds(c, y, x));
    return data_[index(c, y, x)];
  }
  float at(int c, int y, int x) const {
    DECAM_ASSERT(in_bounds(c, y, x));
    return data_[index(c, y, x)];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& flat() { return data_; }
  const std::vector<float>& flat() const { return data_; }

  bool same_shape(const Tensor& other) const {
    return channels_ == other.channels_ && height_ == other.height_ &&
           width_ == other.width_;
  }

  /// Converts a decam::Image (planar HWC float, values 0..255) into a CHW
  /// tensor scaled to [0, 1] — the standard CNN input normalisation.
  static Tensor from_image(const Image& img);

 private:
  bool in_bounds(int c, int y, int x) const {
    return c >= 0 && c < channels_ && y >= 0 && y < height_ && x >= 0 &&
           x < width_;
  }
  std::size_t index(int c, int y, int x) const {
    return (static_cast<std::size_t>(c) * height_ + y) * width_ + x;
  }

  int channels_ = 0;
  int height_ = 0;
  int width_ = 0;
  std::vector<float> data_;
};

}  // namespace decam::ml
