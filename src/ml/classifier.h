// SmallCnn: the victim model of the backdoor experiment. A LeNet-style
// network over 32x32x3 inputs (the paper's Table 1 lists 32x32 as the
// LeNet-5 geometry):
//
//     conv 3->8 (3x3) - ReLU - maxpool2     32 -> 30 -> 15
//     conv 8->16 (3x3) - ReLU - maxpool2    15 -> 13 -> 6
//     flatten (16*6*6 = 576) - dense -> classes
//
// Trained with plain SGD, batch size 1. Deterministic given the seed.
#pragma once

#include <filesystem>
#include <vector>

#include "data/rng.h"
#include "imaging/image.h"
#include "imaging/kernels.h"
#include "ml/layers.h"

namespace decam::ml {

struct TrainingSample {
  Image image;  // any geometry; the model downscales to its input side
  int label = 0;
};

struct TrainConfig {
  int epochs = 10;
  float learning_rate = 0.01f;
  std::uint64_t shuffle_seed = 1;
  bool verbose = false;
};

class SmallCnn {
 public:
  /// `input_side` is the CNN geometry (e.g. 32); inputs of other sizes are
  /// downscaled with `pipeline_algo` first — the pre-processing step the
  /// image-scaling attack targets.
  SmallCnn(int classes, int input_side, ScaleAlgo pipeline_algo,
           std::uint64_t seed);

  /// Pre-processing + forward pass; returns class probabilities.
  std::vector<float> predict(const Image& input);

  /// argmax of predict().
  int classify(const Image& input);

  /// SGD training on (possibly poisoned) data. Returns final-epoch mean
  /// training loss.
  double train(const std::vector<TrainingSample>& samples,
               const TrainConfig& config);

  /// Fraction of samples classified correctly.
  double accuracy(const std::vector<TrainingSample>& samples);

  int classes() const { return classes_; }
  int input_side() const { return input_side_; }

  /// Persists all weights as a versioned text file; throws IoError on I/O
  /// failure. load() requires an architecture-compatible model (same
  /// classes/input_side) and throws IoError on mismatch.
  void save(const std::filesystem::path& file) const;
  void load(const std::filesystem::path& file);

  /// Per-class confusion matrix over a sample set: entry [actual][predicted].
  std::vector<std::vector<int>> confusion(
      const std::vector<TrainingSample>& samples);

 private:
  Tensor preprocess(const Image& input);
  std::vector<float> forward(const Tensor& input);
  void backward(const std::vector<float>& grad_logits);
  void apply_gradients(float learning_rate);

  int classes_;
  int input_side_;
  ScaleAlgo pipeline_algo_;
  data::Rng init_rng_;  // declared before the layers so they can draw from it
  int flat_size_ = 0;   // set during head_'s initialisation (see .cpp)
  Conv2D conv1_;
  ReLU relu1_;
  MaxPool2 pool1_;
  Conv2D conv2_;
  ReLU relu2_;
  MaxPool2 pool2_;
  Dense head_;
  Tensor last_pool2_;  // shape memo for unflattening the gradient
};

}  // namespace decam::ml
