#include "ml/tensor.h"

namespace decam::ml {

Tensor::Tensor(int channels, int height, int width, float fill)
    : channels_(channels), height_(height), width_(width) {
  DECAM_REQUIRE(channels > 0 && height > 0 && width > 0,
                "tensor dimensions must be positive");
  data_.assign(
      static_cast<std::size_t>(channels) * height * width, fill);
}

Tensor Tensor::from_image(const Image& img) {
  DECAM_REQUIRE(!img.empty(), "from_image of empty image");
  Tensor out(img.channels(), img.height(), img.width());
  for (int c = 0; c < img.channels(); ++c) {
    const auto plane = img.plane(c);
    float* dst = out.data() + static_cast<std::size_t>(c) * img.plane_size();
    for (std::size_t i = 0; i < plane.size(); ++i) {
      dst[i] = plane[i] / 255.0f;
    }
  }
  return out;
}

}  // namespace decam::ml
