#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "common/error.h"

namespace decam::obs {
namespace detail {

// One stage node of one thread's private tree. The owning thread is the
// only writer of `children` (inserts under the tree mutex so snapshots can
// traverse concurrently) and the only caller of enter/exit; the counters
// are relaxed atomics so a snapshot from another thread reads a consistent
// enough view without stopping the world.
struct ProfileNode {
  std::string name;
  ProfileNode* parent = nullptr;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::map<std::string, std::unique_ptr<ProfileNode>, std::less<>> children;
};

}  // namespace detail

namespace {

using detail::ProfileNode;

bool env_truthy(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

// -1 = not yet read from the environment (same protocol as the trace gate).
std::atomic<int> g_profiling{-1};

// One tree per thread that ever recorded a stage. Trees are kept alive past
// thread exit (shared_ptr in the registry) so a final export still sees
// worker stages. `mutex` guards child insertion and snapshot traversal;
// enter/exit on existing nodes never take it.
struct ThreadProfile {
  std::mutex mutex;
  ProfileNode root;      // name "", never reported itself
  ProfileNode* current = &root;
};

struct ProfileRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadProfile>> threads;
};

ProfileRegistry& registry() {
  static ProfileRegistry instance;
  return instance;
}

ThreadProfile& thread_profile() {
  thread_local std::shared_ptr<ThreadProfile> profile = [] {
    auto created = std::make_shared<ThreadProfile>();
    std::lock_guard lock(registry().mutex);
    registry().threads.push_back(created);
    return created;
  }();
  return *profile;
}

void flush_at_exit() { flush_profile(); }

void bootstrap_profiling() {
  registry();  // outlive the atexit handler (reverse destruction order)
  std::atexit(flush_at_exit);
  int expected = -1;
  g_profiling.compare_exchange_strong(
      expected, env_truthy("DECAM_PROFILE") ? 1 : 0,
      std::memory_order_relaxed);
}

// ------------------------------------------------------------- merging --

// Thread trees merged by stage path: identical paths from different threads
// (or from the same thread across epochs) collapse into one node.
struct MergedNode {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, MergedNode> children;
};

void merge_children(const ProfileNode& from, MergedNode& into) {
  for (const auto& [name, child] : from.children) {
    MergedNode& merged = into.children[name];
    merged.count += child->count.load(std::memory_order_relaxed);
    merged.total_ns += child->total_ns.load(std::memory_order_relaxed);
    merge_children(*child, merged);
  }
}

MergedNode merged_tree() {
  std::vector<std::shared_ptr<ThreadProfile>> threads;
  {
    std::lock_guard lock(registry().mutex);
    threads = registry().threads;
  }
  MergedNode root;
  for (const auto& thread : threads) {
    std::lock_guard lock(thread->mutex);
    merge_children(thread->root, root);
  }
  return root;
}

void flatten(const MergedNode& node, const std::string& path, int depth,
             std::vector<ProfileEntry>& out) {
  for (const auto& [name, child] : node.children) {
    // Local copy: recursing with a reference into `out` would dangle when
    // the vector reallocates.
    const std::string child_path = path.empty() ? name : path + ";" + name;
    ProfileEntry entry;
    entry.path = child_path;
    entry.name = name;
    entry.depth = depth;
    entry.count = child.count;
    entry.total_ms = static_cast<double>(child.total_ns) * 1e-6;
    std::uint64_t children_ns = 0;
    for (const auto& [child_name, grandchild] : child.children) {
      children_ns += grandchild.total_ns;
    }
    entry.self_ms =
        child.total_ns > children_ns
            ? static_cast<double>(child.total_ns - children_ns) * 1e-6
            : 0.0;
    out.push_back(std::move(entry));
    flatten(child, child_path, depth + 1, out);
  }
}

}  // namespace

bool profiling_enabled() {
  const int state = g_profiling.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  bootstrap_profiling();
  return g_profiling.load(std::memory_order_relaxed) != 0;
}

void set_profiling_enabled(bool enabled) {
  profiling_enabled();  // ensure the atexit flush is registered
  g_profiling.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::string profile_file_path() {
  const char* value = std::getenv("DECAM_PROFILE_FILE");
  return value == nullptr ? std::string() : std::string(value);
}

namespace detail {

ProfileNode* profile_enter(std::string_view name) {
  ThreadProfile& profile = thread_profile();
  ProfileNode* parent = profile.current;
  // Lock-free lookup: only this thread inserts into its own maps, so a plain
  // find can race only with a concurrent snapshot (also a reader).
  const auto found = parent->children.find(name);
  ProfileNode* node;
  if (found != parent->children.end()) {
    node = found->second.get();
  } else {
    auto created = std::make_unique<ProfileNode>();
    created->name = std::string(name);
    created->parent = parent;
    node = created.get();
    std::lock_guard lock(profile.mutex);
    parent->children.emplace(node->name, std::move(created));
  }
  profile.current = node;
  return node;
}

void profile_exit(ProfileNode* node, double elapsed_us) {
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->total_ns.fetch_add(
      static_cast<std::uint64_t>(std::max(elapsed_us, 0.0) * 1e3),
      std::memory_order_relaxed);
  thread_profile().current = node->parent;
}

}  // namespace detail

std::vector<ProfileEntry> profile_snapshot() {
  std::vector<ProfileEntry> out;
  flatten(merged_tree(), "", 0, out);
  return out;
}

void reset_profile() {
  std::vector<std::shared_ptr<ThreadProfile>> threads;
  {
    std::lock_guard lock(registry().mutex);
    threads = registry().threads;
  }
  for (const auto& thread : threads) {
    std::lock_guard lock(thread->mutex);
    // Do not clear the child maps: a span in flight on that thread holds a
    // raw node pointer and its `current` chain. Zeroing the counters gives
    // a fresh epoch while keeping every live pointer valid.
    struct Zero {
      static void apply(ProfileNode& node) {
        node.count.store(0, std::memory_order_relaxed);
        node.total_ns.store(0, std::memory_order_relaxed);
        for (auto& [name, child] : node.children) apply(*child);
      }
    };
    Zero::apply(thread->root);
  }
}

report::Table render_profile_tree() {
  // Depth-first with siblings ordered by descending self time: the table
  // reads as "the biggest stage first, its cost breakdown indented below".
  std::vector<ProfileEntry> entries = profile_snapshot();
  double grand_total_ms = 0.0;
  for (const ProfileEntry& entry : entries) grand_total_ms += entry.self_ms;

  struct Row {
    const ProfileEntry* entry;
    std::vector<Row> children;
  };
  // Rebuild nesting from depths (entries are pre-order).
  struct Builder {
    static std::size_t build(const std::vector<ProfileEntry>& entries,
                             std::size_t i, int depth,
                             std::vector<Row>& out) {
      while (i < entries.size() && entries[i].depth == depth) {
        Row row{&entries[i], {}};
        i = build(entries, i + 1, depth + 1, row.children);
        out.push_back(std::move(row));
      }
      std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
        return a.entry->self_ms > b.entry->self_ms;
      });
      return i;
    }
  };
  std::vector<Row> roots;
  Builder::build(entries, 0, 0, roots);

  report::Table table({"stage", "count", "total ms", "self ms", "self %"});
  struct Renderer {
    report::Table& table;
    double grand_total_ms;
    void render(const std::vector<Row>& rows, int depth) {
      for (const Row& row : rows) {
        const ProfileEntry& entry = *row.entry;
        const double pct = grand_total_ms > 0.0
                               ? 100.0 * entry.self_ms / grand_total_ms
                               : 0.0;
        table.add_row({std::string(static_cast<std::size_t>(2 * depth), ' ') +
                           entry.name,
                       std::to_string(entry.count),
                       report::format_double(entry.total_ms),
                       report::format_double(entry.self_ms),
                       report::format_double(pct)});
        render(row.children, depth + 1);
      }
    }
  };
  Renderer{table, grand_total_ms}.render(roots, 0);
  return table;
}

report::Table render_profile_hotspots(std::size_t limit) {
  std::vector<ProfileEntry> entries = profile_snapshot();
  std::sort(entries.begin(), entries.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.self_ms > b.self_ms;
            });
  if (limit > 0 && entries.size() > limit) entries.resize(limit);
  report::Table table({"stage", "count", "self ms", "total ms"});
  for (const ProfileEntry& entry : entries) {
    table.add_row({entry.path, std::to_string(entry.count),
                   report::format_double(entry.self_ms),
                   report::format_double(entry.total_ms)});
  }
  return table;
}

std::string collapsed_stacks() {
  std::string out;
  for (const ProfileEntry& entry : profile_snapshot()) {
    const auto self_us = static_cast<std::uint64_t>(entry.self_ms * 1e3);
    if (self_us == 0) continue;
    out += entry.path;
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), " %llu\n",
                  static_cast<unsigned long long>(self_us));
    out += buffer;
  }
  return out;
}

void write_collapsed_stacks(const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw IoError(path.string() + ": cannot open for writing");
  out << collapsed_stacks();
  if (!out) throw IoError(path.string() + ": short write");
}

bool flush_profile() {
  if (!profiling_enabled()) return false;
  const std::string path = profile_file_path();
  if (path.empty()) return false;
  const std::string stacks = collapsed_stacks();
  if (stacks.empty()) return false;
  try {
    std::ofstream out(path);
    if (!out) throw IoError(path + ": cannot open for writing");
    out << stacks;
    if (!out) throw IoError(path + ": short write");
  } catch (const IoError& error) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr, "decam: profile not written: %s\n", error.what());
    }
    return false;
  }
  return true;
}

}  // namespace decam::obs
