#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace decam::obs {
namespace {

// CAS loop: atomic<double> has no fetch_add/fetch_min before C++20 compilers
// grew them reliably, and relaxed ordering is all a statistic needs.
void atomic_add(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (observed > value &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (observed < value &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double delta) { atomic_add(value_, delta); }

double Histogram::bucket_upper_ms(int index) {
  return kMinMs * std::exp2((index + 1) * 0.25);
}

int Histogram::bucket_index(double ms) {
  if (!(ms > kMinMs)) return 0;  // also catches NaN and negatives
  const int index = static_cast<int>(std::log2(ms / kMinMs) * 4.0);
  return std::min(index, kBucketCount - 1);
}

void Histogram::record(double ms) {
  if (std::isnan(ms)) return;
  ms = std::max(ms, 0.0);
  buckets_[static_cast<std::size_t>(bucket_index(ms))].fetch_add(
      1, std::memory_order_relaxed);
  atomic_min(min_, ms);
  atomic_max(max_, ms);
  atomic_add(sum_, ms);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min_ms() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max_ms() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return min_ms();
  if (p >= 100.0) return max_ms();
  const double target = std::max(1.0, std::ceil(p / 100.0 * n));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t in_bucket =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= target) {
      const double lower = i == 0 ? 0.0 : bucket_upper_ms(i - 1);
      const double upper = bucket_upper_ms(i);
      const double fraction =
          (target - static_cast<double>(cumulative)) / in_bucket;
      const double estimate = lower + fraction * (upper - lower);
      return std::clamp(estimate, min_ms(), max_ms());
    }
    cumulative += in_bucket;
  }
  return max_ms();
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  // Intentionally immortal (never destroyed): metric handles are documented
  // as stable for the whole process, and they are written from places that
  // outlive every static-destruction order — pool workers woken during the
  // global pool's tear-down, atexit exporters, thread_local destructors.
  // A function-local static would be destroyed before the pool joins its
  // workers (the registry is first touched after the pool's unique_ptr
  // finishes dynamic initialization), turning those writes into
  // use-after-free.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

template <typename Metric>
Metric& find_or_create(
    std::map<std::string, std::unique_ptr<Metric>, std::less<>>& metrics,
    std::string_view name) {
  auto found = metrics.find(name);
  if (found == metrics.end()) {
    found = metrics.emplace(std::string(name), std::make_unique<Metric>())
                .first;
  }
  return *found->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  return find_or_create(histograms_, name);
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_values()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histograms() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto found = histograms_.find(name);
  return found == histograms_.end() ? nullptr : found->second.get();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace decam::obs
