// Monotonic process clock shared by every obs primitive.
//
// All timestamps in the observability layer are microseconds since a single
// per-process anchor (the first call into the clock), so spans recorded on
// different threads land on one common timeline and the Chrome trace viewer
// can lay them out without clock translation.
#pragma once

#include <cstdint>

namespace decam::obs {

/// Microseconds elapsed since the process anchor (monotonic).
double now_us();

/// Milliseconds elapsed since the process anchor (monotonic).
double elapsed_ms();

/// Small dense id for the calling thread (main thread observes 1). Stable
/// for the thread's lifetime; used as the `tid` of trace events.
std::uint32_t current_tid();

}  // namespace decam::obs
