// RAII timing primitives.
//
//   Span        — probe-only: when tracing is enabled (obs/trace.h) the
//                 scope becomes a Chrome trace event; when profiling is
//                 enabled (obs/profiler.h) it becomes a node of the stage
//                 call tree; when both are disabled the constructor is two
//                 relaxed atomic loads and a branch.
//   ScopedTimer — always times its scope into a MetricsRegistry histogram
//                 (callers ask for stats explicitly), and additionally
//                 feeds the trace buffer and profiler when those are on.
//
// Instrument library hot paths with the DECAM_SPAN macro so a build with
// -DDECAM_OBS_DISABLED (CMake -DDECAM_OBS=OFF) compiles the probes out
// entirely.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace decam::obs {

namespace detail {
struct ProfileNode;  // obs/profiler.h
}

class Span {
 public:
  explicit Span(std::string_view name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Ends the span early (records the trace event / profile frame once).
  void finish();
  bool active() const { return active_; }

 private:
  std::string name_;
  detail::ProfileNode* frame_ = nullptr;
  double start_us_ = 0.0;
  bool active_ = false;
  bool traced_ = false;
};

class ScopedTimer {
 public:
  /// Times into MetricsRegistry histogram `metric` (and a trace event /
  /// profile frame of the same name when tracing / profiling is enabled).
  explicit ScopedTimer(std::string_view metric);
  /// Times into a caller-held histogram; `span_name` empty suppresses the
  /// trace event and the profile frame.
  explicit ScopedTimer(Histogram& histogram, std::string_view span_name = {});
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Stops the clock, records, and returns the elapsed milliseconds.
  /// Subsequent calls return the first result without re-recording.
  double stop();

 private:
  Histogram* histogram_;
  std::string span_name_;
  detail::ProfileNode* frame_ = nullptr;
  double start_us_;
  double elapsed_ms_ = 0.0;
  bool running_ = true;
};

}  // namespace decam::obs

#define DECAM_OBS_CONCAT_INNER(a, b) a##b
#define DECAM_OBS_CONCAT(a, b) DECAM_OBS_CONCAT_INNER(a, b)

#ifndef DECAM_OBS_DISABLED
/// Marks the enclosing scope as a trace span and profiler stage (no-op
/// unless DECAM_TRACE / DECAM_PROFILE).
#define DECAM_SPAN(name) \
  ::decam::obs::Span DECAM_OBS_CONCAT(decam_obs_span_, __LINE__)(name)
/// Times the enclosing scope into the named registry histogram.
#define DECAM_TIMER(metric) \
  ::decam::obs::ScopedTimer DECAM_OBS_CONCAT(decam_obs_timer_, __LINE__)(metric)
#else
#define DECAM_SPAN(name) ((void)0)
#define DECAM_TIMER(metric) ((void)0)
#endif
