#include "obs/report.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"

namespace decam::obs {
namespace {

void add_latency_row(report::Table& table, const std::string& name,
                     const Histogram& histogram) {
  table.add_row({name, std::to_string(histogram.count()),
                 report::format_double(histogram.percentile(50.0)),
                 report::format_double(histogram.percentile(95.0)),
                 report::format_double(histogram.percentile(99.0)),
                 report::format_double(histogram.max_ms()),
                 report::format_double(histogram.sum_ms())});
}

report::Table make_latency_table() {
  return report::Table(
      {"metric", "count", "p50 ms", "p95 ms", "p99 ms", "max ms", "total ms"});
}

}  // namespace

int table7_rank(std::string_view metric_name) {
  if (metric_name.find("csp") != std::string_view::npos) return 0;
  if (metric_name.find("mse") != std::string_view::npos) return 1;
  if (metric_name.find("ssim") != std::string_view::npos) return 2;
  return 3;
}

report::Table latency_table(const std::vector<std::string>& names) {
  report::Table table = make_latency_table();
  for (const std::string& name : names) {
    const Histogram* histogram =
        MetricsRegistry::instance().find_histogram(name);
    if (histogram == nullptr || histogram->count() == 0) continue;
    add_latency_row(table, name, *histogram);
  }
  return table;
}

report::Table latency_table_by_prefix(std::string_view prefix) {
  auto entries = MetricsRegistry::instance().histograms();
  std::erase_if(entries, [&](const auto& entry) {
    return entry.second->count() == 0 ||
           entry.first.compare(0, prefix.size(), prefix) != 0;
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              const int ra = table7_rank(a.first);
              const int rb = table7_rank(b.first);
              return ra != rb ? ra < rb : a.first < b.first;
            });
  report::Table table = make_latency_table();
  for (const auto& [name, histogram] : entries) {
    add_latency_row(table, name, *histogram);
  }
  return table;
}

std::string render_metrics_report() {
  std::ostringstream out;
  const auto& registry = MetricsRegistry::instance();
  const auto counters = registry.counter_values();
  if (!counters.empty()) {
    report::Table table({"counter", "value"});
    for (const auto& [name, value] : counters) {
      table.add_row({name, std::to_string(value)});
    }
    out << table.render();
  }
  const auto gauges = registry.gauge_values();
  if (!gauges.empty()) {
    report::Table table({"gauge", "value"});
    for (const auto& [name, value] : gauges) {
      table.add_row({name, report::format_double(value)});
    }
    out << table.render();
  }
  out << latency_table_by_prefix().render();
  return out.str();
}

}  // namespace decam::obs
