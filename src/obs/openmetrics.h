// OpenMetrics / Prometheus text exposition of the MetricsRegistry.
//
// export_openmetrics() renders every counter, gauge, and histogram as one
// OpenMetrics text block (the format the future service daemon will serve
// over a socket; see DESIGN.md §7):
//
//   # TYPE decam_kernel_cache_hits counter
//   decam_kernel_cache_hits_total 42
//   # TYPE decam_detector_scaling_seconds histogram
//   # UNIT decam_detector_scaling_seconds seconds
//   decam_detector_scaling_seconds_bucket{le="0.001"} 7
//   decam_detector_scaling_seconds_bucket{le="+Inf"} 9
//   decam_detector_scaling_seconds_count 9
//   decam_detector_scaling_seconds_sum 0.0123
//   # EOF
//
// Conventions applied when mapping registry names to metric families:
//  - names are sanitized to [a-zA-Z0-9_:] ('/' and every other byte become
//    '_') and prefixed with `decam_`;
//  - counters gain the mandatory `_total` sample suffix;
//  - histograms are exposed in seconds (`_seconds` family suffix + UNIT
//    line); the 128 geometric milliseconds buckets are encoded cumulatively,
//    emitting only the occupied buckets plus each one's predecessor so the
//    flat stretches compress away, always ending with the mandatory +Inf
//    bucket equal to the total count.
//
// Memory gauges are re-sampled (obs/memstats.h) at the top of every export
// so byte figures are current, and a SIGUSR1 helper lets long-running
// binaries dump the exposition on demand without a scrape socket.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace decam::obs {

/// Sanitized OpenMetrics family name for a registry metric name:
/// `decam_` prefix, every byte outside [a-zA-Z0-9_:] replaced with '_'.
std::string openmetrics_name(std::string_view registry_name);

/// Renders the full registry as one OpenMetrics text block, terminated by
/// `# EOF`. Samples memory gauges first so byte figures are current.
std::string export_openmetrics();

/// Writes export_openmetrics() to `path` (throws IoError on failure).
void write_openmetrics(const std::filesystem::path& path);

/// Arms a SIGUSR1 handler that requests an exposition dump to `path`.
/// The handler only sets a flag (async-signal-safe); callers must invoke
/// service_openmetrics_signal_dump() periodically (e.g. between images) to
/// perform the actual write.
void install_openmetrics_signal_handler(const std::filesystem::path& path);

/// Writes the exposition to the path armed by the installer if a SIGUSR1
/// arrived since the last call. Returns true when a dump was written.
bool service_openmetrics_signal_dump();

}  // namespace decam::obs
