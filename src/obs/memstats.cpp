#include "obs/memstats.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace decam::obs {
namespace {

struct SourceRegistry {
  std::mutex mutex;
  std::map<std::string, std::function<std::uint64_t()>, std::less<>> sources;
};

SourceRegistry& sources() {
  // Immortal for the same reason as MetricsRegistry::instance(): sources
  // register from function-local statics in subsystems whose destruction
  // order relative to this registry is unknowable, and exporters may run
  // from atexit hooks.
  static SourceRegistry* instance = new SourceRegistry();
  return *instance;
}

// Reads one "Vm...:  <n> kB" field from /proc/self/status. Returns 0 when
// the file or the field is missing (non-Linux or restricted /proc).
std::uint64_t read_status_kb(const char* field) {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      kb = std::strtoull(line + field_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(status);
  return kb;
}

}  // namespace

void register_memory_source(std::string_view name,
                            std::function<std::uint64_t()> bytes_fn) {
  std::lock_guard lock(sources().mutex);
  sources().sources.insert_or_assign(std::string(name), std::move(bytes_fn));
}

std::uint64_t current_rss_bytes() { return read_status_kb("VmRSS") * 1024; }

std::uint64_t peak_rss_bytes() { return read_status_kb("VmHWM") * 1024; }

void sample_memory_gauges() {
  // Copy the callbacks out so a source's own locking (e.g. a cache mutex)
  // never nests inside the registry mutex.
  std::vector<std::pair<std::string, std::function<std::uint64_t()>>> polled;
  {
    std::lock_guard lock(sources().mutex);
    polled.assign(sources().sources.begin(), sources().sources.end());
  }
  auto& registry = MetricsRegistry::instance();
  for (const auto& [name, bytes_fn] : polled) {
    registry.gauge("mem/" + name + "_bytes")
        .set(static_cast<double>(bytes_fn()));
  }
  registry.gauge("mem/process_rss_bytes")
      .set(static_cast<double>(current_rss_bytes()));
  registry.gauge("mem/process_peak_rss_bytes")
      .set(static_cast<double>(peak_rss_bytes()));
}

report::Table render_memory_table() {
  sample_memory_gauges();
  std::vector<std::pair<std::string, double>> rows;
  for (const auto& [name, value] : MetricsRegistry::instance().gauge_values()) {
    if (name.rfind("mem/", 0) == 0) rows.emplace_back(name, value);
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  report::Table table({"source", "bytes", "MiB"});
  for (const auto& [name, value] : rows) {
    table.add_row({name,
                   std::to_string(static_cast<std::uint64_t>(value)),
                   report::format_double(value / (1024.0 * 1024.0))});
  }
  return table;
}

}  // namespace decam::obs
