// Human-readable exporter for the metrics registry, rendered with the same
// box-drawn tables the bench binaries use.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "report/table.h"

namespace decam::obs {

/// Latency summary rows (count, p50/p95/p99, max, total) for the named
/// registry histograms, in the given order. Unknown or empty histograms are
/// skipped.
report::Table latency_table(const std::vector<std::string>& names);

/// Latency summary of every registry histogram whose name starts with
/// `prefix` (empty = all). Rows are ordered by the paper's Table 7 cost
/// ranking — csp before mse before ssim — then lexicographically, so the
/// per-detector view lines up with the paper's presentation.
report::Table latency_table_by_prefix(std::string_view prefix = {});

/// Table-7 cost rank of a metric name: csp=0, mse=1, ssim=2, other=3.
int table7_rank(std::string_view metric_name);

/// Full registry dump: counters, gauges, and the latency table.
std::string render_metrics_report();

}  // namespace decam::obs
