// Structured progress logging with a monotonic elapsed-ms prefix.
//
// Every line looks like
//
//   [decam +  1234.5ms] [pipeline] evaluation set 40/60
//
// so interleaved stderr from long experiment runs carries its own timeline.
#pragma once

#include <cstdarg>
#include <string>

namespace decam::obs {

/// printf-style line to stderr, prefixed with the elapsed process time and
/// terminated with a newline (one is appended if the format lacks it).
void log(const char* format, ...) __attribute__((format(printf, 1, 2)));

/// va_list variant of log().
void vlog(const char* format, std::va_list args);

/// The "[decam +...ms]" prefix for the current instant (exposed for tests).
std::string log_prefix();

}  // namespace decam::obs
