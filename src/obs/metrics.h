// Thread-safe process metrics: counters, gauges, and fixed-bucket latency
// histograms, owned by a global MetricsRegistry.
//
// Design constraints (DESIGN.md §7):
//  - recording must be lock-free (atomics only) so hot detector paths can be
//    instrumented without contention;
//  - handles returned by the registry are stable for the process lifetime,
//    so callers resolve a metric once (static local) and record through the
//    reference afterwards;
//  - histograms use geometric fixed buckets (1 µs lower bound, 2^(1/4)
//    growth factor), giving ~9 % relative resolution from microseconds to
//    about an hour — plenty for p50/p95/p99 latency summaries.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace decam::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (queue depth, rate, configuration knob...).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram over milliseconds. Recording is lock-free;
/// percentile queries interpolate within the winning bucket and clamp to the
/// exact observed min/max.
class Histogram {
 public:
  static constexpr int kBucketCount = 128;
  static constexpr double kMinMs = 1e-3;  // bucket 0 upper bound = 1 µs * 2^¼

  /// Upper bound (inclusive) of bucket `index`, in milliseconds.
  static double bucket_upper_ms(int index);
  /// Bucket receiving a sample of `ms` milliseconds.
  static int bucket_index(double ms);

  void record(double ms);

  /// Samples recorded into bucket `index` (relaxed snapshot, exporters).
  std::uint64_t bucket_count(int index) const {
    return buckets_[static_cast<std::size_t>(index)].load(
        std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_ms() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  double min_ms() const;
  double max_ms() const;
  /// Interpolated percentile, p in [0, 100]. 0 when empty.
  double percentile(double p) const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Process-wide name -> metric map. Lookup takes a mutex; the returned
/// references stay valid (and lock-free to record through) forever.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Snapshot accessors for exporters. Histogram pointers stay valid.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, double>> gauge_values() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Zeroes every metric, keeping handles valid (tests & long-lived
  /// services that report in epochs).
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace decam::obs
