#include "obs/openmetrics.h"

#include <array>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "common/error.h"
#include "obs/memstats.h"
#include "obs/metrics.h"

namespace decam::obs {
namespace {

// Shortest round-trippable-enough float text; OpenMetrics permits the full
// Go/C float grammar including exponents, so %.9g is always valid.
std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string format_value(std::uint64_t value) {
  return std::to_string(value);
}

void append_histogram(const std::string& family, const Histogram& histogram,
                      std::string& out) {
  out += "# TYPE " + family + " histogram\n";
  out += "# UNIT " + family + " seconds\n";

  // Cumulative bucket encoding. Only occupied buckets and each one's
  // predecessor are emitted — the predecessor pins the lower edge of every
  // step so the series is unambiguous while long empty stretches collapse.
  // The last bucket is the overflow catch-all; its finite upper bound is a
  // lie, so its samples appear only in the mandatory +Inf line.
  std::array<bool, Histogram::kBucketCount> emit{};
  for (int i = 0; i < Histogram::kBucketCount - 1; ++i) {
    if (histogram.bucket_count(i) > 0) {
      emit[static_cast<std::size_t>(i)] = true;
      if (i > 0) emit[static_cast<std::size_t>(i - 1)] = true;
    }
  }
  std::uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kBucketCount - 1; ++i) {
    cumulative += histogram.bucket_count(i);
    if (!emit[static_cast<std::size_t>(i)]) continue;
    out += family + "_bucket{le=\"" +
           format_value(Histogram::bucket_upper_ms(i) / 1000.0) + "\"} " +
           format_value(cumulative) + "\n";
  }
  const std::uint64_t total = histogram.count();
  out += family + "_bucket{le=\"+Inf\"} " + format_value(total) + "\n";
  out += family + "_count " + format_value(total) + "\n";
  out += family + "_sum " + format_value(histogram.sum_ms() / 1000.0) + "\n";
}

// atomic<int> rather than sig_atomic_t: the flag is also drained from pool
// worker threads (decamctl services it between images), so the
// check-and-clear must be one atomic exchange. Lock-free atomic stores are
// async-signal-safe, so the handler side stays legal too.
std::atomic<int> g_dump_pending{0};

void handle_sigusr1(int) {
  g_dump_pending.store(1, std::memory_order_relaxed);
}

struct DumpTarget {
  std::mutex mutex;
  std::filesystem::path path;
};

DumpTarget& dump_target() {
  static DumpTarget instance;
  return instance;
}

}  // namespace

std::string openmetrics_name(std::string_view registry_name) {
  std::string out = "decam_";
  out.reserve(out.size() + registry_name.size());
  for (const char c : registry_name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string export_openmetrics() {
  sample_memory_gauges();
  auto& registry = MetricsRegistry::instance();
  std::string out;
  for (const auto& [name, value] : registry.counter_values()) {
    const std::string family = openmetrics_name(name);
    out += "# TYPE " + family + " counter\n";
    out += family + "_total " + format_value(value) + "\n";
  }
  for (const auto& [name, value] : registry.gauge_values()) {
    const std::string family = openmetrics_name(name);
    out += "# TYPE " + family + " gauge\n";
    out += family + " " + format_value(value) + "\n";
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    append_histogram(openmetrics_name(name) + "_seconds", *histogram, out);
  }
  out += "# EOF\n";
  return out;
}

void write_openmetrics(const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw IoError(path.string() + ": cannot open for writing");
  out << export_openmetrics();
  if (!out) throw IoError(path.string() + ": short write");
}

void install_openmetrics_signal_handler(const std::filesystem::path& path) {
  {
    std::lock_guard lock(dump_target().mutex);
    dump_target().path = path;
  }
#ifdef SIGUSR1
  std::signal(SIGUSR1, handle_sigusr1);
#endif
}

bool service_openmetrics_signal_dump() {
  if (g_dump_pending.exchange(0, std::memory_order_relaxed) == 0) {
    return false;
  }
  std::filesystem::path path;
  {
    std::lock_guard lock(dump_target().mutex);
    path = dump_target().path;
  }
  if (path.empty()) return false;
  try {
    write_openmetrics(path);
  } catch (const IoError& error) {
    std::fprintf(stderr, "decam: metrics dump failed: %s\n", error.what());
    return false;
  }
  return true;
}

}  // namespace decam::obs
