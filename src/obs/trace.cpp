#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/error.h"
#include "obs/clock.h"

namespace decam::obs {
namespace {

bool env_truthy(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

// -1 = not yet read from the environment.
std::atomic<int> g_tracing{-1};

void flush_at_exit() { flush_trace(); }

void bootstrap_tracing() {
  // Touch the singletons so their function-local statics outlive the atexit
  // handler (statics are destroyed in reverse construction order).
  TraceBuffer::instance();
  std::atexit(flush_at_exit);
  int expected = -1;
  g_tracing.compare_exchange_strong(expected, env_truthy("DECAM_TRACE") ? 1 : 0,
                                    std::memory_order_relaxed);
}

// Minimal JSON string escaping: quotes, backslashes, control characters.
void append_json_escaped(std::string& out, const std::string& text) {
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
}

}  // namespace

bool tracing_enabled() {
  const int state = g_tracing.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  bootstrap_tracing();
  return g_tracing.load(std::memory_order_relaxed) != 0;
}

void set_tracing_enabled(bool enabled) {
  // Run the bootstrap first so the atexit flush is registered even when the
  // gate was never consulted through the environment.
  tracing_enabled();
  g_tracing.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::string trace_file_path() {
  const char* value = std::getenv("DECAM_TRACE_FILE");
  return value == nullptr ? std::string() : std::string(value);
}

void set_current_thread_name(std::string name) {
  TraceBuffer::instance().set_thread_name(current_tid(), std::move(name));
}

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer buffer;
  return buffer;
}

void TraceBuffer::add(TraceEvent event) {
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t TraceBuffer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void TraceBuffer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard lock(mutex_);
  return events_;
}

void TraceBuffer::set_thread_name(std::uint32_t tid, std::string name) {
  std::lock_guard lock(mutex_);
  thread_names_[tid] = std::move(name);
}

std::vector<std::pair<std::uint32_t, std::string>> TraceBuffer::thread_names()
    const {
  std::lock_guard lock(mutex_);
  return {thread_names_.begin(), thread_names_.end()};
}

std::string TraceBuffer::chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  const auto names = thread_names();
  std::string out = "{\"traceEvents\":[";
  char number[64];
  bool first = true;
  // Thread-name metadata first, so viewers label worker rows before laying
  // out the duration events recorded from them.
  for (const auto& [tid, name] : names) {
    if (!first) out += ',';
    first = false;
    std::snprintf(number, sizeof(number), "%u", tid);
    out += "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += number;
    out += ",\"args\":{\"name\":\"";
    append_json_escaped(out, name);
    out += "\"}}";
  }
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    append_json_escaped(out, event.name);
    out += "\",\"cat\":\"decam\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(number, sizeof(number), "%u", event.tid);
    out += number;
    std::snprintf(number, sizeof(number), ",\"ts\":%.3f,\"dur\":%.3f}",
                  event.ts_us, event.dur_us);
    out += number;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void TraceBuffer::write_chrome_trace(
    const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw IoError(path.string() + ": cannot open for writing");
  out << chrome_json();
  if (!out) throw IoError(path.string() + ": short write");
}

bool flush_trace() {
  if (!tracing_enabled()) return false;
  const std::string path = trace_file_path();
  if (path.empty()) return false;
  if (TraceBuffer::instance().size() == 0) return false;
  try {
    TraceBuffer::instance().write_chrome_trace(path);
  } catch (const IoError& error) {
    // Exit paths must not throw, but a requested trace silently vanishing
    // is worse than a stderr line. Warn once: an explicit flush and the
    // atexit flush would otherwise both report the same bad path.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr, "decam: trace not written: %s\n", error.what());
    }
    return false;
  }
  return true;
}

}  // namespace decam::obs
