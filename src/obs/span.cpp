#include "obs/span.h"

#include "obs/clock.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace decam::obs {

Span::Span(std::string_view name) {
  const bool traced = tracing_enabled();
  const bool profiled = profiling_enabled();
  if (!traced && !profiled) return;
  if (traced) {
    name_ = name;
    traced_ = true;
  }
  if (profiled) frame_ = detail::profile_enter(name);
  start_us_ = now_us();
  active_ = true;
}

void Span::finish() {
  if (!active_) return;
  active_ = false;
  const double end_us = now_us();
  // The profile frame must pop even if the gates flipped mid-span, so the
  // thread's stage stack stays balanced.
  if (frame_ != nullptr) detail::profile_exit(frame_, end_us - start_us_);
  if (traced_) {
    TraceBuffer::instance().add(
        {std::move(name_), start_us_, end_us - start_us_, current_tid()});
  }
}

ScopedTimer::ScopedTimer(std::string_view metric)
    : histogram_(&MetricsRegistry::instance().histogram(metric)),
      span_name_(metric) {
  if (profiling_enabled()) frame_ = detail::profile_enter(metric);
  start_us_ = now_us();
}

ScopedTimer::ScopedTimer(Histogram& histogram, std::string_view span_name)
    : histogram_(&histogram), span_name_(span_name) {
  if (!span_name_.empty() && profiling_enabled()) {
    frame_ = detail::profile_enter(span_name);
  }
  start_us_ = now_us();
}

double ScopedTimer::stop() {
  if (!running_) return elapsed_ms_;
  running_ = false;
  const double end_us = now_us();
  elapsed_ms_ = (end_us - start_us_) / 1000.0;
  histogram_->record(elapsed_ms_);
  if (frame_ != nullptr) detail::profile_exit(frame_, end_us - start_us_);
  if (!span_name_.empty() && tracing_enabled()) {
    TraceBuffer::instance().add(
        {std::move(span_name_), start_us_, end_us - start_us_, current_tid()});
  }
  return elapsed_ms_;
}

}  // namespace decam::obs
