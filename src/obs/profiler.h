// Hierarchical stage profiler — a low-overhead call tree built from the
// same Span/ScopedTimer probes that feed tracing (DESIGN.md §7).
//
// Every thread owns a private tree of ProfileNodes keyed by (parent, stage
// name). Entering a span walks one pointer down (creating the child on first
// visit), leaving it adds the elapsed time and count with relaxed atomics —
// no locks on the hot path, no per-event allocation after the first visit of
// a stage. Exporters merge all thread trees into one by stage path, derive
// per-stage self time (total minus children), and render either a table
// sorted by self time or the collapsed-stack text format flamegraph.pl and
// speedscope consume ("a;b;c <self_us>" per line).
//
// Gates mirror tracing:
//  - runtime: DECAM_PROFILE env var (unset / "" / "0" = off), overridable in
//    process via set_profiling_enabled(); disabled cost is one relaxed
//    atomic load + branch per span;
//  - file:    DECAM_PROFILE_FILE names a collapsed-stack destination written
//    automatically at process exit (or earlier via flush_profile());
//  - compile time: -DDECAM_OBS_DISABLED removes the probes entirely.
//
// Snapshots may run while other threads record: counters are relaxed
// atomics, so a merged tree is a statistically consistent view, not a
// barrier (a node's count can momentarily lag its total by one sample).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "report/table.h"

namespace decam::obs {

/// True when span probes also feed the profiler call tree. First call reads
/// DECAM_PROFILE once; set_profiling_enabled() overrides afterwards.
bool profiling_enabled();

/// Programmatic override of the DECAM_PROFILE gate (frontends, tests).
void set_profiling_enabled(bool enabled);

/// Value of DECAM_PROFILE_FILE, or empty when unset.
std::string profile_file_path();

namespace detail {

struct ProfileNode;

/// Pushes `name` as the calling thread's current stage and returns the
/// node to hand back to profile_exit. Returns nullptr when profiling is
/// disabled (the caller skips the exit). Span/ScopedTimer call these; user
/// code should use the DECAM_SPAN macro instead.
ProfileNode* profile_enter(std::string_view name);

/// Pops the stage entered as `node`, attributing `elapsed_us` to it. Must
/// run on the thread that called profile_enter, in LIFO order (guaranteed
/// by the RAII probes).
void profile_exit(ProfileNode* node, double elapsed_us);

}  // namespace detail

/// One stage of the merged profile, in depth-first pre-order.
struct ProfileEntry {
  std::string path;    // "a;b;c" — stage names from the root, ';'-joined
  std::string name;    // last path component
  int depth = 0;       // 0 = top-level stage
  std::uint64_t count = 0;
  double total_ms = 0.0;  // inclusive: this stage and everything below it
  double self_ms = 0.0;   // total minus the children's totals (>= 0)
};

/// Merges every thread's tree by stage path. Safe to call while other
/// threads record (see header comment). Depth-first pre-order, children
/// sorted by name.
std::vector<ProfileEntry> profile_snapshot();

/// Drops every recorded stage on every thread (counts and structure);
/// in-flight spans still exit cleanly. Tests and epoch-based services.
void reset_profile();

/// The merged tree as an indented table sorted depth-first, children by
/// descending self time: stage, count, total ms, self ms, self %.
report::Table render_profile_tree();

/// The merged profile as a flat table of the `limit` largest self-time
/// stages (0 = all), descending — "where do the microseconds actually go".
report::Table render_profile_hotspots(std::size_t limit = 0);

/// Collapsed-stack text export: one "path;to;stage <self_us>" line per
/// stage with nonzero self time. Feed to flamegraph.pl or speedscope.
std::string collapsed_stacks();

/// Writes collapsed_stacks() to `path` (throws IoError on failure).
void write_collapsed_stacks(const std::filesystem::path& path);

/// Writes the collapsed stacks to DECAM_PROFILE_FILE if profiling is
/// enabled, the env var is set, and anything was recorded. Registered to
/// run at process exit, so `DECAM_PROFILE=1 DECAM_PROFILE_FILE=s.txt
/// <binary>` needs no cooperation from the binary.
bool flush_profile();

}  // namespace decam::obs
