// Memory accounting for the telemetry layer.
//
// Subsystems that own sizeable resident state (LRU caches, per-thread
// scratch workspaces, AnalysisContext intermediates) register a named byte
// source once; sample_memory_gauges() polls every source and publishes a
// `mem/<name>_bytes` gauge in the MetricsRegistry, alongside the process
// RSS read from /proc/self/status. Exporters call it right before they
// snapshot, so the gauges are fresh without any bookkeeping on hot paths.
//
// The obs library sits below imaging/signal/core in the link order, so it
// cannot ask the caches for their sizes directly — registration inverts the
// dependency: each subsystem registers its source from its own .cpp at
// first use.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "report/table.h"

namespace decam::obs {

/// Registers (or replaces) a byte source polled by sample_memory_gauges().
/// `bytes_fn` must be callable from any thread. Registration is cheap and
/// idempotent by name; subsystems typically register from a function-local
/// static initializer.
void register_memory_source(std::string_view name,
                            std::function<std::uint64_t()> bytes_fn);

/// Current resident set size of the process in bytes (VmRSS), or 0 when
/// /proc/self/status is unavailable.
std::uint64_t current_rss_bytes();

/// Peak resident set size of the process in bytes (VmHWM), or 0 when
/// /proc/self/status is unavailable.
std::uint64_t peak_rss_bytes();

/// Polls every registered source and the process RSS, publishing
/// `mem/<name>_bytes`, `mem/process_rss_bytes`, and
/// `mem/process_peak_rss_bytes` gauges in the MetricsRegistry.
void sample_memory_gauges();

/// Samples and renders the byte figures as a two-column table
/// (source, bytes) sorted by descending size — `decamctl scan --stats`.
report::Table render_memory_table();

}  // namespace decam::obs
