#include "obs/log.h"

#include <cstdio>

#include "obs/clock.h"

namespace decam::obs {

std::string log_prefix() {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "[decam +%9.1fms] ", elapsed_ms());
  return buffer;
}

void vlog(const char* format, std::va_list args) {
  char message[1024];
  std::vsnprintf(message, sizeof(message), format, args);
  const std::size_t length = std::char_traits<char>::length(message);
  const bool has_newline = length > 0 && message[length - 1] == '\n';
  std::fprintf(stderr, "%s%s%s", log_prefix().c_str(), message,
               has_newline ? "" : "\n");
  std::fflush(stderr);
}

void log(const char* format, ...) {
  std::va_list args;
  va_start(args, format);
  vlog(format, args);
  va_end(args);
}

}  // namespace decam::obs
