// Trace-event collection and Chrome trace export.
//
// Spans (obs/span.h) append completed TraceEvents to the global TraceBuffer
// when tracing is enabled. The buffer serialises to the Chrome trace-event
// JSON format ("X" complete events), loadable in chrome://tracing or Perfetto
// for flamegraph-style inspection of a detection run.
//
// Gates:
//  - runtime: DECAM_TRACE env var (unset / "" / "0" = off), overridable in
//    process via set_tracing_enabled();
//  - file:    DECAM_TRACE_FILE names the JSON destination; the buffer is
//    flushed there automatically at process exit, or earlier via
//    flush_trace();
//  - compile time: building with -DDECAM_OBS_DISABLED turns the DECAM_SPAN /
//    DECAM_TIMER macros into no-ops (CMake option DECAM_OBS=OFF).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace decam::obs {

/// True when span collection is on. First call reads DECAM_TRACE once;
/// set_tracing_enabled() overrides afterwards. The steady-state cost is one
/// relaxed atomic load.
bool tracing_enabled();

/// Programmatic override of the DECAM_TRACE gate (frontends, tests).
void set_tracing_enabled(bool enabled);

/// Value of DECAM_TRACE_FILE, or empty when unset.
std::string trace_file_path();

/// Labels the calling thread's trace timeline (runtime pool workers register
/// as "decam-worker-N"). Exported as Chrome "thread_name" metadata so worker
/// rows are named in chrome://tracing. Cheap; recorded even when tracing is
/// off so a later set_tracing_enabled(true) still has the names.
void set_current_thread_name(std::string name);

struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   // start, µs since the process clock anchor
  double dur_us = 0.0;  // duration in µs
  std::uint32_t tid = 0;
};

class TraceBuffer {
 public:
  static TraceBuffer& instance();

  void add(TraceEvent event);
  std::size_t size() const;
  void clear();
  std::vector<TraceEvent> snapshot() const;

  /// Thread-name registry feeding the Chrome metadata events. clear() does
  /// NOT drop names: threads outlive trace epochs.
  void set_thread_name(std::uint32_t tid, std::string name);
  std::vector<std::pair<std::uint32_t, std::string>> thread_names() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}).
  std::string chrome_json() const;
  /// Writes chrome_json() to `path` (throws IoError on failure).
  void write_chrome_trace(const std::filesystem::path& path) const;

 private:
  TraceBuffer() = default;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::uint32_t, std::string> thread_names_;
};

/// Writes the buffer to DECAM_TRACE_FILE if tracing is enabled and the env
/// var is set. Returns true when a file was written. Also registered to run
/// at process exit, so `DECAM_TRACE=1 DECAM_TRACE_FILE=t.json <binary>`
/// needs no cooperation from the binary.
bool flush_trace();

}  // namespace decam::obs
