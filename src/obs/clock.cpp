#include "obs/clock.h"

#include <atomic>
#include <chrono>

namespace decam::obs {
namespace {

std::chrono::steady_clock::time_point anchor() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

}  // namespace

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - anchor())
      .count();
}

double elapsed_ms() { return now_us() / 1000.0; }

std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace decam::obs
