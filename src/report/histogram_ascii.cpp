#include "report/histogram_ascii.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace decam::report {
namespace {

double transform(double v, bool log_x) {
  return log_x ? std::log10(std::max(v, 1e-9)) : v;
}

double untransform(double v, bool log_x) {
  return log_x ? std::pow(10.0, v) : v;
}

}  // namespace

std::string render_histogram(std::span<const double> a,
                             std::span<const double> b,
                             const HistogramOptions& options) {
  DECAM_REQUIRE(!a.empty(), "histogram needs at least one sample in set A");
  DECAM_REQUIRE(options.bins >= 2, "need at least two bins");

  double lo = transform(a[0], options.log_x);
  double hi = lo;
  auto widen = [&](std::span<const double> values) {
    for (double v : values) {
      const double t = transform(v, options.log_x);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
  };
  widen(a);
  widen(b);
  if (options.threshold) {
    const double t = transform(*options.threshold, options.log_x);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  const double span = std::max(hi - lo, 1e-12);

  std::vector<std::size_t> count_a(static_cast<std::size_t>(options.bins), 0);
  std::vector<std::size_t> count_b(count_a.size(), 0);
  auto tally = [&](std::span<const double> values,
                   std::vector<std::size_t>& counts) {
    for (double v : values) {
      const double t = transform(v, options.log_x);
      const int bin = std::min(
          static_cast<int>((t - lo) / span * options.bins), options.bins - 1);
      ++counts[static_cast<std::size_t>(std::max(bin, 0))];
    }
  };
  tally(a, count_a);
  tally(b, count_b);

  std::size_t peak = 1;
  for (std::size_t i = 0; i < count_a.size(); ++i) {
    peak = std::max({peak, count_a[i], count_b[i]});
  }

  // Which bin the threshold falls into (marker line).
  int threshold_bin = -1;
  if (options.threshold) {
    const double t = transform(*options.threshold, options.log_x);
    threshold_bin = std::clamp(
        static_cast<int>((t - lo) / span * options.bins), 0,
        options.bins - 1);
  }

  std::ostringstream out;
  out << "  " << options.label_a << ": '#' (" << a.size() << " samples)";
  if (!b.empty()) {
    out << "   " << options.label_b << ": '*' (" << b.size() << " samples)";
  }
  if (options.log_x) out << "   [log-x]";
  out << "\n";
  for (int bin = 0; bin < options.bins; ++bin) {
    const double left = untransform(lo + span * bin / options.bins,
                                    options.log_x);
    const std::size_t ca = count_a[static_cast<std::size_t>(bin)];
    const std::size_t cb = count_b[static_cast<std::size_t>(bin)];
    const int bar_a = static_cast<int>(
        std::lround(static_cast<double>(ca) * options.max_bar / peak));
    const int bar_b = static_cast<int>(
        std::lround(static_cast<double>(cb) * options.max_bar / peak));
    char label[32];
    std::snprintf(label, sizeof(label), "%12.4g", left);
    out << label << " | " << std::string(static_cast<std::size_t>(bar_a), '#')
        << std::string(static_cast<std::size_t>(bar_b), '*');
    if (ca > 0 || cb > 0) {
      out << "  (" << ca;
      if (!b.empty()) out << "/" << cb;
      out << ")";
    }
    if (bin == threshold_bin) out << "   <-- threshold";
    out << "\n";
  }
  return out.str();
}

}  // namespace decam::report
