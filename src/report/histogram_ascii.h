// Text histograms standing in for the paper's distribution figures: each
// bin renders as a bar of '#' characters, with benign and attack samples
// overlaid side by side and the chosen threshold marked — enough to see the
// separation (or, for PSNR, the overlap) the figures show.
#pragma once

#include <optional>
#include <span>
#include <string>

namespace decam::report {

struct HistogramOptions {
  int bins = 24;
  int max_bar = 48;                   // widest bar in characters
  std::optional<double> threshold;    // draws a "<-- threshold" marker
  std::string label_a = "benign";
  std::string label_b = "attack";
  bool log_x = false;                 // bin on log10(value) for MSE-like data
};

/// Renders two overlaid sample sets (b may be empty for single-class
/// figures) into an ASCII histogram.
std::string render_histogram(std::span<const double> a,
                             std::span<const double> b,
                             const HistogramOptions& options);

}  // namespace decam::report
