// ASCII table rendering for the bench binaries: every table in the paper is
// regenerated as a box-drawn text table with the same rows and columns.
#pragma once

#include <string>
#include <vector>

namespace decam::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns and +-| borders.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "99.9%"-style formatting of a ratio in [0, 1].
std::string format_percent(double ratio, int decimals = 1);

/// Fixed-point formatting.
std::string format_double(double value, int decimals = 2);

}  // namespace decam::report
