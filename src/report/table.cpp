#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace decam::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DECAM_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DECAM_REQUIRE(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto rule = [&]() {
    out << '+';
    for (std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c]
          << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
    }
    out << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return out.str();
}

std::string format_percent(double ratio, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

std::string format_double(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace decam::report
