// FFT execution plans — the precomputed, cacheable half of the spectral
// engine (DESIGN.md §10).
//
// A transform of length n always does the same twiddle arithmetic and the
// same data shuffle; only the samples change. Plans hoist everything
// sample-independent out of the hot loop: the bit-reversal permutation, the
// per-stage radix-4/radix-2 twiddle tables, and (for Bluestein lengths) the
// chirp sequence plus the pre-transformed convolution kernel. A 2-D
// transform of an H x W image reuses two plans H + W times, and a dataset
// sweep reuses them thousands of times, so plans live in a bounded
// thread-safe LRU cache (same shape as the resize kernel-table cache in
// imaging/kernels.cpp) and are handed out as shared_ptr — eviction can never
// invalidate a plan mid-transform.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

namespace decam {

using Complex = std::complex<double>;

/// Plan for one power-of-two length + direction: the bit-reversal
/// permutation and the twiddle tables of an iterative mixed radix-4/radix-2
/// decomposition (one radix-2 stage when log2(n) is odd, radix-4 for the
/// rest — ~25% fewer complex multiplies than all-radix-2, and table lookups
/// replace the serial `w *= wlen` recurrence).
struct FftPlan {
  std::size_t n = 0;
  bool inverse = false;
  int log2n = 0;
  /// Full permutation table: element i swaps with bitrev[i] (applied once,
  /// guarded by i < bitrev[i]).
  std::vector<std::uint32_t> bitrev;
  /// Concatenated per-stage tables: for each radix-4 stage of quarter-length
  /// L, triples (W^k, W^2k, W^3k) for k in [0, L), W = exp(sign*2*pi*i/4L).
  std::vector<Complex> twiddles;
  /// (quarter_length, twiddle offset) per radix-4 stage, ascending L. The
  /// DIT kernel walks it forward, the DIF kernel backward.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stages;
};

/// Plan for one arbitrary (non-power-of-two) length + direction via
/// Bluestein's chirp-z algorithm. The convolution kernel is stored already
/// DIF-transformed — in bit-reversed order, scaled by 1/m — so the per-call
/// convolution is DIF-forward, pointwise multiply, DIT-inverse: both inner
/// transforms skip the permutation entirely.
struct BluesteinPlan {
  std::size_t n = 0;
  bool inverse = false;
  std::size_t m = 0;                 // padded convolution length (power of 2)
  std::vector<Complex> chirp;        // exp(sign*i*pi*k^2/n)
  std::vector<Complex> kernel;       // DIF-FFT of padded conj chirp, / m
  std::shared_ptr<const FftPlan> conv_forward;  // length-m plans, pinned so
  std::shared_ptr<const FftPlan> conv_inverse;  // cache eviction can't bite
};

/// Cached plan lookup (thread-safe; builds on miss outside the lock).
std::shared_ptr<const FftPlan> get_fft_plan(std::size_t n, bool inverse);
std::shared_ptr<const BluesteinPlan> get_bluestein_plan(std::size_t n,
                                                        bool inverse);

struct FftPlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
  std::uint64_t resident_bytes = 0;  // heap held by the cached plans; a
                                     // Bluestein plan's convolution sub-plans
                                     // count in the power-of-two cache only
};

/// Separate stats for the two plan kinds (a Bluestein miss also costs one
/// or two power-of-two lookups for its convolution plans).
FftPlanCacheStats fft_plan_cache_stats();
FftPlanCacheStats bluestein_plan_cache_stats();
void clear_fft_plan_caches();

/// In-place execution, natural order in and out: bit-reversal permutation +
/// DIT stages (+ 1/n normalisation when the plan is inverse).
void fft_exec(const FftPlan& plan, Complex* data);

/// Permutation-free halves for convolution pipelines: DIF takes natural
/// order to bit-reversed, DIT takes bit-reversed back to natural. Neither
/// normalises — fold 1/m into the kernel instead.
void fft_exec_dif_noperm(const FftPlan& plan, Complex* data);
void fft_exec_dit_noperm(const FftPlan& plan, Complex* data);

/// In-place Bluestein execution over `data[0..n)`, using per-thread scratch
/// sized once per m (no per-call allocation after warm-up).
void bluestein_exec(const BluesteinPlan& plan, Complex* data);

/// One planned 1-D transform: resolves the plan (power-of-two or Bluestein)
/// once at construction so row/column loops pay the cache lookup once, not
/// per line. Execution is in-place over `n` contiguous elements.
class PlannedFft {
 public:
  PlannedFft(std::size_t n, bool inverse);
  std::size_t size() const { return n_; }
  void operator()(Complex* data) const;

 private:
  std::size_t n_;
  std::shared_ptr<const FftPlan> pow2_;
  std::shared_ptr<const BluesteinPlan> bluestein_;
};

}  // namespace decam
