#include "signal/fft.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/span.h"

namespace decam {
namespace {

// Cache-blocked column pass over columns [x0, x_end): each sweep gathers a
// tile of columns into contiguous scratch, transforms them, and scatters
// back. The gather/scatter walks the grid row-wise (sequential reads with a
// handful of open write streams), so every cache line of the plane is
// touched once per tile instead of once per column.
constexpr int kColumnTile = 8;

void fft_columns(Complex* data, int width, int height, int x0, int x_end,
                 const PlannedFft& col_fft) {
  thread_local std::vector<Complex> tile;
  const std::size_t h = static_cast<std::size_t>(height);
  const std::size_t need =
      h * static_cast<std::size_t>(std::min(kColumnTile, x_end - x0));
  if (tile.size() < need) tile.resize(need);
  for (int x = x0; x < x_end; x += kColumnTile) {
    const int tw = std::min(kColumnTile, x_end - x);
    for (int y = 0; y < height; ++y) {
      const Complex* src = data + static_cast<std::size_t>(y) * width + x;
      for (int c = 0; c < tw; ++c) {
        tile[static_cast<std::size_t>(c) * h + y] = src[c];
      }
    }
    for (int c = 0; c < tw; ++c) {
      col_fft(tile.data() + static_cast<std::size_t>(c) * h);
    }
    for (int y = 0; y < height; ++y) {
      Complex* dst = data + static_cast<std::size_t>(y) * width + x;
      for (int c = 0; c < tw; ++c) {
        dst[c] = tile[static_cast<std::size_t>(c) * h + y];
      }
    }
  }
}

}  // namespace

void fft(std::vector<Complex>& data, bool inverse) {
  DECAM_REQUIRE(!data.empty(), "fft of empty signal");
  if (data.size() == 1) return;
  const PlannedFft plan(data.size(), inverse);
  plan(data.data());
}

std::vector<Complex> fft(const std::vector<Complex>& data) {
  std::vector<Complex> out = data;
  fft(out, false);
  return out;
}

std::vector<Complex> ifft(const std::vector<Complex>& data) {
  std::vector<Complex> out = data;
  fft(out, true);
  return out;
}

void fft2d(std::vector<Complex>& data, int width, int height, bool inverse) {
  DECAM_SPAN("signal/fft2d");
  DECAM_REQUIRE(width > 0 && height > 0, "fft2d dimensions must be positive");
  DECAM_REQUIRE(data.size() == static_cast<std::size_t>(width) * height,
                "fft2d buffer size mismatch");
  if (width > 1) {
    const PlannedFft row_fft(static_cast<std::size_t>(width), inverse);
    for (int y = 0; y < height; ++y) {
      row_fft(data.data() + static_cast<std::size_t>(y) * width);
    }
  }
  if (height > 1) {
    const PlannedFft col_fft(static_cast<std::size_t>(height), inverse);
    fft_columns(data.data(), width, height, 0, width, col_fft);
  }
}

void fft2d(const Image& img, std::vector<Complex>& out) {
  DECAM_SPAN("signal/fft2d");
  DECAM_REQUIRE(!img.empty(), "fft2d of empty image");
  DECAM_REQUIRE(img.channels() == 1 || img.channels() == 3,
                "fft2d expects 1 or 3 channels");
  const int w = img.width();
  const int h = img.height();
  const std::size_t stride = static_cast<std::size_t>(w);
  out.resize(img.plane_size());

  // Luma without materialising a gray Image: same float expression as
  // to_gray(), widened to double afterwards.
  const bool rgb = img.channels() == 3;
  const float* r = img.data();
  const float* g = rgb ? r + img.plane_size() : nullptr;
  const float* b = rgb ? r + 2 * img.plane_size() : nullptr;
  const auto luma = [&](std::size_t i) -> double {
    if (!rgb) return static_cast<double>(r[i]);
    const float y = 0.299f * r[i] + 0.587f * g[i] + 0.114f * b[i];
    return static_cast<double>(y);
  };

  // Row pass, two real rows per complex transform: z = row0 + i*row1 costs
  // one FFT; the two spectra untangle through Hermitian symmetry
  //   F0[k] = (Z[k] + conj(Z[w-k])) / 2,  F1[k] = -i (Z[k] - conj(Z[w-k])) / 2.
  const PlannedFft row_fft(static_cast<std::size_t>(w), false);
  thread_local std::vector<Complex> z;
  if (z.size() < stride) z.resize(stride);
  int y = 0;
  for (; y + 1 < h; y += 2) {
    const std::size_t i0 = static_cast<std::size_t>(y) * stride;
    const std::size_t i1 = i0 + stride;
    for (int x = 0; x < w; ++x) {
      z[static_cast<std::size_t>(x)] = Complex(luma(i0 + x), luma(i1 + x));
    }
    row_fft(z.data());
    Complex* o0 = out.data() + i0;
    Complex* o1 = out.data() + i1;
    o0[0] = Complex(z[0].real(), 0.0);
    o1[0] = Complex(z[0].imag(), 0.0);
    for (int k = 1; k < w; ++k) {
      const Complex a = z[static_cast<std::size_t>(k)];
      const Complex bk = std::conj(z[static_cast<std::size_t>(w - k)]);
      const Complex sum = a + bk;
      const Complex diff = a - bk;
      o0[k] = Complex(0.5 * sum.real(), 0.5 * sum.imag());
      o1[k] = Complex(0.5 * diff.imag(), -0.5 * diff.real());
    }
  }
  if (h & 1) {
    const std::size_t i0 = static_cast<std::size_t>(h - 1) * stride;
    for (int x = 0; x < w; ++x) {
      z[static_cast<std::size_t>(x)] = Complex(luma(i0 + x), 0.0);
    }
    row_fft(z.data());
    std::copy_n(z.data(), stride, out.data() + i0);
  }

  if (h > 1) {
    // Columns 0..w/2 carry all the information of a real input; the rest
    // follow from F[y][x] = conj(F[(h-y) mod h][w-x]).
    const PlannedFft col_fft(static_cast<std::size_t>(h), false);
    const int x_end = w / 2 + 1;
    fft_columns(out.data(), w, h, 0, x_end, col_fft);
    for (int yy = 0; yy < h; ++yy) {
      const std::size_t ym = yy == 0 ? 0 : static_cast<std::size_t>(h - yy);
      const Complex* src = out.data() + ym * stride;
      Complex* dst = out.data() + static_cast<std::size_t>(yy) * stride;
      for (int x = x_end; x < w; ++x) dst[x] = std::conj(src[w - x]);
    }
  }
}

std::vector<Complex> fft2d(const Image& img) {
  std::vector<Complex> out;
  fft2d(img, out);
  return out;
}

void fftshift(std::vector<Complex>& data, int width, int height) {
  DECAM_REQUIRE(data.size() == static_cast<std::size_t>(width) * height,
                "fftshift buffer size mismatch");
  const int hx = width / 2;
  const int hy = height / 2;
  // Rotate each row right by hx (std::rotate is in place for odd widths;
  // for even widths it degenerates to swapping the two halves).
  if (hx > 0) {
    for (int y = 0; y < height; ++y) {
      Complex* row = data.data() + static_cast<std::size_t>(y) * width;
      std::rotate(row, row + (width - hx), row + width);
    }
  }
  if (hy == 0) return;
  const std::size_t stride = static_cast<std::size_t>(width);
  if (height % 2 == 0) {
    // Even height: rotating rows by h/2 is a pairwise block swap — no
    // scratch at all.
    for (int y = 0; y < hy; ++y) {
      Complex* a = data.data() + static_cast<std::size_t>(y) * stride;
      Complex* b = data.data() + static_cast<std::size_t>(y + hy) * stride;
      std::swap_ranges(a, a + stride, b);
    }
  } else {
    // Odd height: follow the rotation's permutation cycles with a single
    // row of scratch (dst takes the row hy below it, wrapping).
    std::vector<Complex> tmp(stride);
    const int cycles = std::gcd(height, hy);
    for (int c = 0; c < cycles; ++c) {
      std::copy_n(data.data() + static_cast<std::size_t>(c) * stride, stride,
                  tmp.data());
      int dst = c;
      while (true) {
        int src = dst - hy;
        if (src < 0) src += height;
        if (src == c) break;
        std::copy_n(data.data() + static_cast<std::size_t>(src) * stride,
                    stride, data.data() + static_cast<std::size_t>(dst) * stride);
        dst = src;
      }
      std::copy_n(tmp.data(), stride,
                  data.data() + static_cast<std::size_t>(dst) * stride);
    }
  }
}

}  // namespace decam
