#include "signal/fft.h"

#include <algorithm>
#include <bit>
#include <map>
#include <cmath>
#include <numbers>

#include "imaging/color.h"
#include "obs/span.h"

namespace decam {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Iterative radix-2 Cooley-Tukey; n must be a power of two.
void fft_pow2(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (Complex& x : a) x /= static_cast<double>(n);
  }
}

// Bluestein chirp-z transform: expresses a length-n DFT as a convolution,
// evaluated with a padded power-of-two FFT. Handles any n.
//
// The chirp table and the transformed convolution kernel depend only on
// (n, direction), and a 2-D transform calls this once per row/column of
// the same length — so both are cached per size. The cache is tiny (a few
// image side lengths) and makes the steganalysis detector's 2-D DFT ~2-3x
// faster on non-power-of-two images.
struct BluesteinPlan {
  std::vector<Complex> chirp;   // exp(sign*i*pi*k^2/n)
  std::vector<Complex> kernel;  // FFT of the padded conjugate chirp
  std::size_t m = 0;            // padded convolution length
};

const BluesteinPlan& bluestein_plan(std::size_t n, bool inverse) {
  struct Key {
    std::size_t n;
    bool inverse;
    bool operator<(const Key& o) const {
      return n != o.n ? n < o.n : inverse < o.inverse;
    }
  };
  // thread_local: the runtime layer (src/runtime) scores images from pool
  // workers concurrently; a shared cache would race on insert/clear and the
  // returned reference could be invalidated by another thread's clear().
  // Per-thread caches cost a few re-derived plans per worker instead.
  thread_local std::map<Key, BluesteinPlan> cache;
  const Key key{n, inverse};
  auto found = cache.find(key);
  if (found != cache.end()) return found->second;

  BluesteinPlan plan;
  const double sign = inverse ? 1.0 : -1.0;
  plan.chirp.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids catastrophic precision loss for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle =
        sign * std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n);
    plan.chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }
  plan.m = std::bit_ceil(2 * n - 1);
  plan.kernel.assign(plan.m, Complex(0, 0));
  plan.kernel[0] = std::conj(plan.chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    plan.kernel[k] = plan.kernel[plan.m - k] = std::conj(plan.chirp[k]);
  }
  fft_pow2(plan.kernel, false);
  // Bound the cache: detectors touch a handful of sizes, but a pathological
  // caller sweeping sizes should not grow memory without limit.
  if (cache.size() > 64) cache.clear();
  return cache.emplace(key, std::move(plan)).first->second;
}

void fft_bluestein(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  const BluesteinPlan& plan = bluestein_plan(n, inverse);
  std::vector<Complex> x(plan.m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * plan.chirp[k];
  fft_pow2(x, false);
  for (std::size_t k = 0; k < plan.m; ++k) x[k] *= plan.kernel[k];
  fft_pow2(x, true);
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * plan.chirp[k];
  if (inverse) {
    for (Complex& v : a) v /= static_cast<double>(n);
  }
}

}  // namespace

void fft(std::vector<Complex>& data, bool inverse) {
  DECAM_REQUIRE(!data.empty(), "fft of empty signal");
  if (data.size() == 1) return;
  if (is_pow2(data.size())) {
    fft_pow2(data, inverse);
  } else {
    fft_bluestein(data, inverse);
  }
}

std::vector<Complex> fft(const std::vector<Complex>& data) {
  std::vector<Complex> out = data;
  fft(out, false);
  return out;
}

std::vector<Complex> ifft(const std::vector<Complex>& data) {
  std::vector<Complex> out = data;
  fft(out, true);
  return out;
}

void fft2d(std::vector<Complex>& data, int width, int height, bool inverse) {
  DECAM_SPAN("signal/fft2d");
  DECAM_REQUIRE(width > 0 && height > 0, "fft2d dimensions must be positive");
  DECAM_REQUIRE(data.size() == static_cast<std::size_t>(width) * height,
                "fft2d buffer size mismatch");
  std::vector<Complex> line;
  // Rows.
  line.resize(static_cast<std::size_t>(width));
  for (int y = 0; y < height; ++y) {
    std::copy_n(data.begin() + static_cast<std::size_t>(y) * width, width,
                line.begin());
    fft(line, inverse);
    std::copy(line.begin(), line.end(),
              data.begin() + static_cast<std::size_t>(y) * width);
  }
  // Columns.
  line.resize(static_cast<std::size_t>(height));
  for (int x = 0; x < width; ++x) {
    for (int y = 0; y < height; ++y) {
      line[static_cast<std::size_t>(y)] =
          data[static_cast<std::size_t>(y) * width + x];
    }
    fft(line, inverse);
    for (int y = 0; y < height; ++y) {
      data[static_cast<std::size_t>(y) * width + x] =
          line[static_cast<std::size_t>(y)];
    }
  }
}

std::vector<Complex> fft2d(const Image& img) {
  DECAM_REQUIRE(!img.empty(), "fft2d of empty image");
  const Image gray = img.channels() == 1 ? img : to_gray(img);
  std::vector<Complex> data(gray.plane_size());
  const auto plane = gray.plane(0);
  for (std::size_t i = 0; i < plane.size(); ++i) {
    data[i] = Complex(static_cast<double>(plane[i]), 0.0);
  }
  fft2d(data, gray.width(), gray.height(), false);
  return data;
}

void fftshift(std::vector<Complex>& data, int width, int height) {
  DECAM_REQUIRE(data.size() == static_cast<std::size_t>(width) * height,
                "fftshift buffer size mismatch");
  std::vector<Complex> out(data.size());
  const int hx = width / 2;
  const int hy = height / 2;
  for (int y = 0; y < height; ++y) {
    const int sy = (y + hy) % height;
    for (int x = 0; x < width; ++x) {
      const int sx = (x + hx) % width;
      out[static_cast<std::size_t>(sy) * width + sx] =
          data[static_cast<std::size_t>(y) * width + x];
    }
  }
  data = std::move(out);
}

}  // namespace decam
