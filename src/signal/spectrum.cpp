#include "signal/spectrum.h"

#include <algorithm>
#include <cmath>

namespace decam {

std::vector<double> centered_log_magnitudes(const Image& img) {
  std::vector<Complex> freq = fft2d(img);
  fftshift(freq, img.width(), img.height());
  std::vector<double> logmag(freq.size());
  for (std::size_t i = 0; i < freq.size(); ++i) {
    logmag[i] = std::log1p(std::abs(freq[i]));
  }
  return logmag;
}

Image centered_log_spectrum(const Image& img) {
  const std::vector<double> logmag = centered_log_magnitudes(img);
  const auto [lo_it, hi_it] = std::minmax_element(logmag.begin(), logmag.end());
  const double lo = *lo_it;
  const double span = std::max(*hi_it - lo, 1e-12);
  Image out(img.width(), img.height(), 1);
  auto plane = out.plane(0);
  for (std::size_t i = 0; i < logmag.size(); ++i) {
    plane[i] = static_cast<float>(255.0 * (logmag[i] - lo) / span);
  }
  return out;
}

}  // namespace decam
