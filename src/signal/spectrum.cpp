#include "signal/spectrum.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

#include "obs/memstats.h"

namespace decam {
namespace {

// Bytes held by every live thread's spectrum workspace, for the
// `mem/spectrum_workspace_bytes` gauge. Each thread reconciles its own
// contribution against this total when it touches its workspace (and on
// thread exit), so sampling is one relaxed load.
std::atomic<std::uint64_t> g_workspace_bytes{0};

std::uint64_t workspace_bytes(const SpectrumWorkspace& ws) {
  return ws.freq.capacity() * sizeof(Complex) +
         ws.logmag.capacity() * sizeof(double);
}

struct TrackedWorkspace {
  SpectrumWorkspace ws;
  std::uint64_t accounted = 0;

  // Folds any capacity change since the last call into the global total.
  // Runs at workspace handout, so a buffer grown during the previous use is
  // visible to the next export (off by at most one image's growth).
  void reconcile() {
    const std::uint64_t now = workspace_bytes(ws);
    if (now >= accounted) {
      g_workspace_bytes.fetch_add(now - accounted, std::memory_order_relaxed);
    } else {
      g_workspace_bytes.fetch_sub(accounted - now, std::memory_order_relaxed);
    }
    accounted = now;
  }

  ~TrackedWorkspace() {
    g_workspace_bytes.fetch_sub(accounted, std::memory_order_relaxed);
  }
};

// log(u) for u >= 1, accurate to ~1e-12 absolute — a branch-free
// exponent/mantissa split plus a short atanh series, so the per-bin
// magnitude loop below auto-vectorises (glibc log1p is a scalar call with
// internal branching, ~3x slower and un-vectorisable).
//
// Subtracting the bit pattern of sqrt(1/2) before the shift lands the
// mantissa f in [sqrt(1/2), sqrt(2)), which caps |r| = |f-1|/|f+1| at
// 0.1716; the omitted series tail 2 r^15 / 15 is then < 5e-13. The
// numerical-tolerance policy in DESIGN.md §10 covers this: spectrum values
// are thresholded with k-sigma margins, so 1e-12 absolute noise is far
// below anything the detector can see.
inline double fast_log_ge1(double u) {
  constexpr std::uint64_t kSqrtHalfBits = 0x3FE6A09E667F3BCDULL;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(u);
  const std::int64_t e =
      static_cast<std::int64_t>(bits - kSqrtHalfBits) >> 52;
  const double f = std::bit_cast<double>(
      bits - (static_cast<std::uint64_t>(e) << 52));
  const double r = (f - 1.0) / (f + 1.0);
  const double r2 = r * r;
  const double poly =
      1.0 +
      r2 * (1.0 / 3.0 +
            r2 * (1.0 / 5.0 +
                  r2 * (1.0 / 7.0 +
                        r2 * (1.0 / 9.0 +
                              r2 * (1.0 / 11.0 + r2 * (1.0 / 13.0))))));
  constexpr double kLn2 = 0.6931471805599453;
  return static_cast<double>(e) * kLn2 + 2.0 * r * poly;
}

// log(1 + |v|) without the hypot overflow dance of std::abs(complex):
// magnitudes are bounded by 255 * w * h, nowhere near double overflow.
inline double log_magnitude(const Complex& v) {
  const double mag =
      std::sqrt(v.real() * v.real() + v.imag() * v.imag());
  return fast_log_ge1(1.0 + mag);
}

// FFT + fused shift: row y of the transform lands on row (y + h/2) mod h,
// and within a row the two horizontal halves swap — so each output row is
// written as two contiguous runs, no full-plane permutation pass.
void shifted_log_magnitudes(const Image& img, SpectrumWorkspace& ws) {
  fft2d(img, ws.freq);
  const int w = img.width();
  const int h = img.height();
  const int hx = w / 2;
  const int hy = h / 2;
  ws.logmag.resize(ws.freq.size());
  for (int y = 0; y < h; ++y) {
    const int sy = y + hy >= h ? y + hy - h : y + hy;
    const Complex* src = ws.freq.data() + static_cast<std::size_t>(y) * w;
    double* dst = ws.logmag.data() + static_cast<std::size_t>(sy) * w;
    for (int x = 0; x < w - hx; ++x) {
      dst[x + hx] = log_magnitude(src[x]);
    }
    for (int x = w - hx; x < w; ++x) {
      dst[x + hx - w] = log_magnitude(src[x]);
    }
  }
}

}  // namespace

SpectrumWorkspace& thread_spectrum_workspace() {
  thread_local TrackedWorkspace tracked;
  static const bool source_registered = [] {
    obs::register_memory_source("spectrum_workspace", [] {
      return g_workspace_bytes.load(std::memory_order_relaxed);
    });
    return true;
  }();
  (void)source_registered;
  tracked.reconcile();
  return tracked.ws;
}

std::vector<double> centered_log_magnitudes(const Image& img) {
  // Reuse the per-thread frequency plane, but hand back a fresh
  // log-magnitude vector (moving out the workspace buffer; it regrows on
  // the next call through this entry point).
  SpectrumWorkspace& ws = thread_spectrum_workspace();
  shifted_log_magnitudes(img, ws);
  std::vector<double> out = std::move(ws.logmag);
  thread_spectrum_workspace();  // fold the capacity change into the gauge
  return out;
}

Image centered_log_spectrum(const Image& img, SpectrumWorkspace& workspace) {
  shifted_log_magnitudes(img, workspace);
  const std::vector<double>& logmag = workspace.logmag;
  // Branch-free min/max (minmax_element's early-exit comparisons defeat
  // vectorisation on a full double plane).
  double lo = logmag[0];
  double hi = logmag[0];
  for (const double v : logmag) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = std::max(hi - lo, 1e-12);
  Image out(img.width(), img.height(), 1);
  auto plane = out.plane(0);
  for (std::size_t i = 0; i < logmag.size(); ++i) {
    plane[i] = static_cast<float>(255.0 * (logmag[i] - lo) / span);
  }
  thread_spectrum_workspace();  // fold any scratch growth into the gauge
  return out;
}

Image centered_log_spectrum(const Image& img) {
  return centered_log_spectrum(img, thread_spectrum_workspace());
}

}  // namespace decam
