// Fast Fourier Transform substrate for the steganalysis detector.
//
// Supports arbitrary lengths: power-of-two sizes run an iterative planned
// radix-4/radix-2 Cooley-Tukey; everything else goes through Bluestein's
// chirp-z algorithm (which internally uses a padded power-of-two
// convolution). Real images of any geometry — Caltech-style 300x451, say —
// therefore transform exactly, not via cropping or zero-padding that would
// distort the spectrum the detector inspects.
//
// All twiddle/permutation tables live in the LRU plan cache (fft_plan.h);
// the 2-D image transform additionally exploits the input being real
// (two rows packed per complex row transform, Hermitian mirror for half the
// columns) and sweeps columns in cache-blocked tiles. DESIGN.md §10 covers
// the engine and its numerical-tolerance policy: restructured summation
// orders mean results match a naive DFT to ~1e-12 relative, but are not
// bit-identical to the pre-plan scalar code.
#pragma once

#include <vector>

#include "imaging/image.h"
#include "signal/fft_plan.h"

namespace decam {

/// In-place forward/inverse FFT of arbitrary length n >= 1.
/// The inverse includes the 1/n normalisation, so ifft(fft(x)) == x.
void fft(std::vector<Complex>& data, bool inverse);

/// Out-of-place 1-D convenience wrappers.
std::vector<Complex> fft(const std::vector<Complex>& data);
std::vector<Complex> ifft(const std::vector<Complex>& data);

/// Row-major 2-D FFT of a height x width grid (rows in place, then columns
/// in cache-blocked tiles of contiguous scratch).
void fft2d(std::vector<Complex>& data, int width, int height, bool inverse);

/// Forward 2-D DFT of a single-channel image (values used as reals).
/// Multi-channel inputs are converted to luma first. The real-input fast
/// path packs two rows per complex transform and derives the right half of
/// the column transforms from Hermitian symmetry — roughly half the work of
/// the complex 2-D transform.
std::vector<Complex> fft2d(const Image& img);

/// Scratch-reusing overload: `out` is resized to width*height and filled
/// with the forward transform, reusing its capacity across calls (the
/// AnalysisContext scores thousands of images through one per-thread
/// buffer instead of allocating a complex plane each time).
void fft2d(const Image& img, std::vector<Complex>& out);

/// Swaps quadrants so the zero-frequency bin moves to the centre — the
/// "centering" step of the paper's Eq. (4). Self-inverse for even sizes.
/// In place: no temporary for even dimensions, one row of scratch for odd
/// heights. The fused spectrum path (spectrum.h) never materialises the
/// shifted complex plane at all; this stays exported for other callers.
void fftshift(std::vector<Complex>& data, int width, int height);

}  // namespace decam
