// Fast Fourier Transform substrate for the steganalysis detector.
//
// Supports arbitrary lengths: power-of-two sizes run an iterative radix-2
// Cooley-Tukey; everything else goes through Bluestein's chirp-z algorithm
// (which internally uses a padded radix-2 convolution). Real images of any
// geometry — Caltech-style 300x451, say — therefore transform exactly, not
// via cropping or zero-padding that would distort the spectrum the detector
// inspects.
#pragma once

#include <complex>
#include <vector>

#include "imaging/image.h"

namespace decam {

using Complex = std::complex<double>;

/// In-place forward/inverse FFT of arbitrary length n >= 1.
/// The inverse includes the 1/n normalisation, so ifft(fft(x)) == x.
void fft(std::vector<Complex>& data, bool inverse);

/// Out-of-place 1-D convenience wrappers.
std::vector<Complex> fft(const std::vector<Complex>& data);
std::vector<Complex> ifft(const std::vector<Complex>& data);

/// Row-major 2-D FFT of a height x width grid (rows first, then columns).
void fft2d(std::vector<Complex>& data, int width, int height, bool inverse);

/// Forward 2-D DFT of a single-channel image (values used as reals).
/// Multi-channel inputs are converted to luma first.
std::vector<Complex> fft2d(const Image& img);

/// Swaps quadrants so the zero-frequency bin moves to the centre — the
/// "centering" step of the paper's Eq. (4). Self-inverse for even sizes.
void fftshift(std::vector<Complex>& data, int width, int height);

}  // namespace decam
