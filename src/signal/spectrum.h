// Centered log-magnitude spectrum — Eq. (4) of the paper: the DFT is
// shifted so the DC bin sits at the image centre, and log(1 + |F|) maps the
// enormous dynamic range into something thresholdable. The steganalysis
// detector then binarises this spectrum and counts bright blobs ("centered
// spectrum points", CSP).
#pragma once

#include "imaging/image.h"
#include "signal/fft.h"

namespace decam {

/// Computes the centered log-magnitude spectrum of `img` (luma is taken for
/// color inputs) and linearly normalises it to [0, 255]. The output has the
/// same geometry as the input, 1 channel.
Image centered_log_spectrum(const Image& img);

/// Raw (unnormalised) log magnitudes, for callers needing exact values.
std::vector<double> centered_log_magnitudes(const Image& img);

}  // namespace decam
