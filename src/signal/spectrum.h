// Centered log-magnitude spectrum — Eq. (4) of the paper: the DFT is
// shifted so the DC bin sits at the image centre, and log(1 + |F|) maps the
// enormous dynamic range into something thresholdable. The steganalysis
// detector then binarises this spectrum and counts bright blobs ("centered
// spectrum points", CSP).
//
// The shift is fused into the magnitude pass: log1p(|F|) is written
// directly at its fftshift-ed position, so neither the shifted complex
// plane nor an intermediate complex copy ever exists.
#pragma once

#include "imaging/image.h"
#include "signal/fft.h"

namespace decam {

/// Reusable scratch for the spectrum pipeline: the complex frequency plane
/// and the shifted log-magnitude buffer. Callers scoring many images (the
/// AnalysisContext, the steganalysis detector's direct path) keep one per
/// thread so no per-image allocation survives warm-up.
struct SpectrumWorkspace {
  std::vector<Complex> freq;
  std::vector<double> logmag;
};

/// The calling thread's default workspace — what the convenience overloads
/// below use, and what AnalysisContext::spectrum_workspace() hands to
/// detectors.
SpectrumWorkspace& thread_spectrum_workspace();

/// Computes the centered log-magnitude spectrum of `img` (luma is taken for
/// color inputs) and linearly normalises it to [0, 255]. The output has the
/// same geometry as the input, 1 channel.
Image centered_log_spectrum(const Image& img);

/// Scratch-reusing overload of the above.
Image centered_log_spectrum(const Image& img, SpectrumWorkspace& workspace);

/// Raw (unnormalised) log magnitudes, for callers needing exact values.
std::vector<double> centered_log_magnitudes(const Image& img);

}  // namespace decam
