#include "signal/fft_plan.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <list>
#include <map>
#include <mutex>
#include <numbers>

#include "common/error.h"
#include "obs/memstats.h"
#include "obs/metrics.h"

namespace decam {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// ----------------------------------------------------------- plan build --

FftPlan make_fft_plan(std::size_t n, bool inverse) {
  DECAM_REQUIRE(is_pow2(n), "power-of-two plan for non-power-of-two length");
  FftPlan plan;
  plan.n = n;
  plan.inverse = inverse;
  plan.log2n = std::countr_zero(n);

  plan.bitrev.resize(n);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    plan.bitrev[i] = static_cast<std::uint32_t>(j);
  }

  // Radix-4 stages combine length-L sub-transforms into 4L. When log2(n) is
  // odd a twiddle-free radix-2 stage runs first (DIT) or last (DIF), so the
  // radix-4 ladder starts at L = 2 instead of 1.
  const double sign = inverse ? 1.0 : -1.0;
  std::size_t L = (plan.log2n & 1) ? 2 : 1;
  for (; L * 4 <= n; L *= 4) {
    plan.stages.emplace_back(static_cast<std::uint32_t>(L),
                             static_cast<std::uint32_t>(plan.twiddles.size()));
    const double base =
        sign * 2.0 * std::numbers::pi / static_cast<double>(4 * L);
    for (std::size_t k = 0; k < L; ++k) {
      const double a = base * static_cast<double>(k);
      plan.twiddles.emplace_back(std::cos(a), std::sin(a));
      plan.twiddles.emplace_back(std::cos(2 * a), std::sin(2 * a));
      plan.twiddles.emplace_back(std::cos(3 * a), std::sin(3 * a));
    }
  }
  return plan;
}

// DIT radix-2 stage over adjacent pairs (twiddle-free: W^0 only).
inline void radix2_pairs(Complex* a, std::size_t n) {
  for (std::size_t i = 0; i < n; i += 2) {
    const Complex u = a[i];
    const Complex v = a[i + 1];
    a[i] = u + v;
    a[i + 1] = u - v;
  }
}

// Shared radix-4 butterfly core. Sub-blocks within a 4L group sit in
// bit-reversed residue order (0, 2, 1, 3): block 1 holds residue 2, block 2
// holds residue 1 — in DIT that reorders the *reads*, in DIF the *writes*.
// `j` below is W^L = exp(sign*i*pi/2) = (0, sign).
//
// The arithmetic is spelled out on explicit doubles: std::complex
// operator* compiles to a NaN-recovery branch around __muldc3 (Annex G
// semantics), which blocks vectorisation and costs a call on every
// butterfly. Plain real/imag products have no such path.

void dit_stages(const FftPlan& plan, Complex* a) {
  const std::size_t n = plan.n;
  if (plan.log2n & 1) radix2_pairs(a, n);
  const double s = plan.inverse ? 1.0 : -1.0;
  for (const auto& [L32, off] : plan.stages) {
    const std::size_t L = L32;
    const Complex* stage_tw = plan.twiddles.data() + off;
    for (std::size_t i = 0; i < n; i += 4 * L) {
      Complex* p0 = a + i;
      Complex* p1 = a + i + L;
      Complex* p2 = a + i + 2 * L;
      Complex* p3 = a + i + 3 * L;
      const Complex* w = stage_tw;
      for (std::size_t k = 0; k < L; ++k, w += 3) {
        const double t0r = p0[k].real(), t0i = p0[k].imag();
        // residue 1 lives in block 2, residue 2 in block 1
        const double x1r = p2[k].real(), x1i = p2[k].imag();
        const double x2r = p1[k].real(), x2i = p1[k].imag();
        const double x3r = p3[k].real(), x3i = p3[k].imag();
        const double t1r = x1r * w[0].real() - x1i * w[0].imag();
        const double t1i = x1r * w[0].imag() + x1i * w[0].real();
        const double t2r = x2r * w[1].real() - x2i * w[1].imag();
        const double t2i = x2r * w[1].imag() + x2i * w[1].real();
        const double t3r = x3r * w[2].real() - x3i * w[2].imag();
        const double t3i = x3r * w[2].imag() + x3i * w[2].real();
        const double u0r = t0r + t2r, u0i = t0i + t2i;
        const double u1r = t0r - t2r, u1i = t0i - t2i;
        const double u2r = t1r + t3r, u2i = t1i + t3i;
        const double u3r = t1r - t3r, u3i = t1i - t3i;
        const double ju3r = -s * u3i, ju3i = s * u3r;
        p0[k] = Complex(u0r + u2r, u0i + u2i);
        p1[k] = Complex(u1r + ju3r, u1i + ju3i);
        p2[k] = Complex(u0r - u2r, u0i - u2i);
        p3[k] = Complex(u1r - ju3r, u1i - ju3i);
      }
    }
  }
}

void dif_stages(const FftPlan& plan, Complex* a) {
  const std::size_t n = plan.n;
  const double s = plan.inverse ? 1.0 : -1.0;
  for (auto it = plan.stages.rbegin(); it != plan.stages.rend(); ++it) {
    const std::size_t L = it->first;
    const Complex* stage_tw = plan.twiddles.data() + it->second;
    for (std::size_t i = 0; i < n; i += 4 * L) {
      Complex* p0 = a + i;
      Complex* p1 = a + i + L;
      Complex* p2 = a + i + 2 * L;
      Complex* p3 = a + i + 3 * L;
      const Complex* w = stage_tw;
      for (std::size_t k = 0; k < L; ++k, w += 3) {
        const double a0r = p0[k].real(), a0i = p0[k].imag();
        const double a1r = p1[k].real(), a1i = p1[k].imag();
        const double a2r = p2[k].real(), a2i = p2[k].imag();
        const double a3r = p3[k].real(), a3i = p3[k].imag();
        const double u0r = a0r + a2r, u0i = a0i + a2i;
        const double u1r = a0r - a2r, u1i = a0i - a2i;
        const double u2r = a1r + a3r, u2i = a1i + a3i;
        const double u3r = a1r - a3r, u3i = a1i - a3i;
        const double ju3r = -s * u3i, ju3i = s * u3r;
        const double c2r = u0r - u2r, c2i = u0i - u2i;
        const double c1r = u1r + ju3r, c1i = u1i + ju3i;
        const double c3r = u1r - ju3r, c3i = u1i - ju3i;
        p0[k] = Complex(u0r + u2r, u0i + u2i);  // residue 0 -> block 0
        p1[k] = Complex(c2r * w[1].real() - c2i * w[1].imag(),
                        c2r * w[1].imag() + c2i * w[1].real());
        p2[k] = Complex(c1r * w[0].real() - c1i * w[0].imag(),
                        c1r * w[0].imag() + c1i * w[0].real());
        p3[k] = Complex(c3r * w[2].real() - c3i * w[2].imag(),
                        c3r * w[2].imag() + c3i * w[2].real());
      }
    }
  }
  if (plan.log2n & 1) radix2_pairs(a, n);
}

// ----------------------------------------------------------------- cache --

// Heap held by a cached plan, for the resident-bytes gauges. A Bluestein
// plan's convolution sub-plans are shared_ptrs into the power-of-two cache
// and are counted there, not here — summing both gauges never double
// counts.
std::uint64_t plan_bytes(const FftPlan& plan) {
  return plan.bitrev.capacity() * sizeof(std::uint32_t) +
         plan.twiddles.capacity() * sizeof(Complex) +
         plan.stages.capacity() *
             sizeof(std::pair<std::uint32_t, std::uint32_t>);
}

std::uint64_t plan_bytes(const BluesteinPlan& plan) {
  return plan.chirp.capacity() * sizeof(Complex) +
         plan.kernel.capacity() * sizeof(Complex);
}

// Bounded thread-safe LRU, the same shape as imaging's KernelTableCache:
// lookups under a mutex, plan construction outside it (two threads racing on
// one key build identical plans; the second insert just reuses the first),
// shared_ptr handout so eviction never invalidates a plan in flight.
template <typename Plan>
class PlanLruCache {
 public:
  static constexpr std::size_t kCapacity = 64;

  template <typename Build>
  std::shared_ptr<const Plan> get(std::size_t n, bool inverse,
                                  const Build& build,
                                  obs::Counter& hit_counter,
                                  obs::Counter& miss_counter,
                                  obs::Counter& eviction_counter) {
    const std::uint64_t key = (static_cast<std::uint64_t>(n) << 1) |
                              static_cast<std::uint64_t>(inverse);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = map_.find(key);
      if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        ++hits_;
        hit_counter.add();
        return it->second.plan;
      }
      ++misses_;
      miss_counter.add();
    }
    auto plan = std::make_shared<const Plan>(build(n, inverse));
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.plan;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{plan, lru_.begin()});
    resident_bytes_ += plan_bytes(*plan);
    if (map_.size() > kCapacity) {
      // Least-recently-used only — never the hot row/column plans a 2-D
      // transform is holding (and shared_ptr keeps even an evicted plan
      // alive until its last user finishes).
      const auto victim = map_.find(lru_.back());
      resident_bytes_ -= plan_bytes(*victim->second.plan);
      map_.erase(victim);
      lru_.pop_back();
      ++evictions_;
      eviction_counter.add();
    }
    return plan;
  }

  FftPlanCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {hits_, misses_, evictions_, map_.size(), kCapacity,
            resident_bytes_};
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
    hits_ = misses_ = evictions_ = 0;
    resident_bytes_ = 0;
  }

 private:
  struct Entry {
    std::shared_ptr<const Plan> plan;
    std::list<std::uint64_t>::iterator lru_it;
  };

  mutable std::mutex mutex_;
  std::map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t resident_bytes_ = 0;
};

PlanLruCache<FftPlan>& pow2_cache() {
  static PlanLruCache<FftPlan> cache;
  static const bool source_registered = [] {
    obs::register_memory_source(
        "fft_plan_cache", [] { return cache.stats().resident_bytes; });
    return true;
  }();
  (void)source_registered;
  return cache;
}

PlanLruCache<BluesteinPlan>& bluestein_cache() {
  static PlanLruCache<BluesteinPlan> cache;
  static const bool source_registered = [] {
    obs::register_memory_source(
        "bluestein_plan_cache",
        [] { return cache.stats().resident_bytes; });
    return true;
  }();
  (void)source_registered;
  return cache;
}

BluesteinPlan make_bluestein_plan(std::size_t n, bool inverse) {
  DECAM_REQUIRE(n >= 2, "bluestein plan needs n >= 2");
  BluesteinPlan plan;
  plan.n = n;
  plan.inverse = inverse;
  const double sign = inverse ? 1.0 : -1.0;
  plan.chirp.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids catastrophic precision loss for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * std::numbers::pi * static_cast<double>(k2) /
                         static_cast<double>(n);
    plan.chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }
  plan.m = std::bit_ceil(2 * n - 1);
  plan.conv_forward = get_fft_plan(plan.m, false);
  plan.conv_inverse = get_fft_plan(plan.m, true);
  plan.kernel.assign(plan.m, Complex(0, 0));
  plan.kernel[0] = std::conj(plan.chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    plan.kernel[k] = plan.kernel[plan.m - k] = std::conj(plan.chirp[k]);
  }
  // Stored DIF-transformed (bit-reversed order) with the convolution's 1/m
  // folded in: per call, both inner transforms skip permutation and no
  // normalisation pass is needed.
  fft_exec_dif_noperm(*plan.conv_forward, plan.kernel.data());
  const double inv_m = 1.0 / static_cast<double>(plan.m);
  for (Complex& v : plan.kernel) v *= inv_m;
  return plan;
}

}  // namespace

std::shared_ptr<const FftPlan> get_fft_plan(std::size_t n, bool inverse) {
  static auto& registry = obs::MetricsRegistry::instance();
  static auto& hits = registry.counter("fft_plan_cache/hits");
  static auto& misses = registry.counter("fft_plan_cache/misses");
  static auto& evictions = registry.counter("fft_plan_cache/evictions");
  return pow2_cache().get(n, inverse, make_fft_plan, hits, misses, evictions);
}

std::shared_ptr<const BluesteinPlan> get_bluestein_plan(std::size_t n,
                                                        bool inverse) {
  static auto& registry = obs::MetricsRegistry::instance();
  static auto& hits = registry.counter("bluestein_plan_cache/hits");
  static auto& misses = registry.counter("bluestein_plan_cache/misses");
  static auto& evictions = registry.counter("bluestein_plan_cache/evictions");
  return bluestein_cache().get(n, inverse, make_bluestein_plan, hits, misses,
                               evictions);
}

FftPlanCacheStats fft_plan_cache_stats() { return pow2_cache().stats(); }

FftPlanCacheStats bluestein_plan_cache_stats() {
  return bluestein_cache().stats();
}

void clear_fft_plan_caches() {
  pow2_cache().clear();
  bluestein_cache().clear();
}

void fft_exec(const FftPlan& plan, Complex* data) {
  const std::size_t n = plan.n;
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t j = plan.bitrev[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  dit_stages(plan, data);
  if (plan.inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] *= inv_n;
  }
}

void fft_exec_dif_noperm(const FftPlan& plan, Complex* data) {
  if (plan.n <= 1) return;
  dif_stages(plan, data);
}

void fft_exec_dit_noperm(const FftPlan& plan, Complex* data) {
  if (plan.n <= 1) return;
  dit_stages(plan, data);
}

void bluestein_exec(const BluesteinPlan& plan, Complex* data) {
  const std::size_t n = plan.n;
  const std::size_t m = plan.m;
  // Grow-only per-thread scratch: one live convolution per thread, reused
  // across every call (the old implementation allocated m complexes per
  // transform — per image row/column).
  thread_local std::vector<Complex> scratch;
  if (scratch.size() < m) scratch.resize(m);
  Complex* x = scratch.data();
  const Complex* chirp = plan.chirp.data();
  // Explicit real/imag products for the same __muldc3 reason as the
  // butterfly kernels above.
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = data[k].real(), ai = data[k].imag();
    const double cr = chirp[k].real(), ci = chirp[k].imag();
    x[k] = Complex(ar * cr - ai * ci, ar * ci + ai * cr);
  }
  std::fill(x + n, x + m, Complex(0, 0));
  fft_exec_dif_noperm(*plan.conv_forward, x);
  const Complex* kernel = plan.kernel.data();
  for (std::size_t k = 0; k < m; ++k) {
    const double ar = x[k].real(), ai = x[k].imag();
    const double kr = kernel[k].real(), ki = kernel[k].imag();
    x[k] = Complex(ar * kr - ai * ki, ar * ki + ai * kr);
  }
  fft_exec_dit_noperm(*plan.conv_inverse, x);
  const double scale =
      plan.inverse ? 1.0 / static_cast<double>(n) : 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = x[k].real(), ai = x[k].imag();
    const double cr = chirp[k].real(), ci = chirp[k].imag();
    data[k] = Complex(scale * (ar * cr - ai * ci),
                      scale * (ar * ci + ai * cr));
  }
}

PlannedFft::PlannedFft(std::size_t n, bool inverse) : n_(n) {
  DECAM_REQUIRE(n >= 1, "fft of empty signal");
  if (n == 1) return;
  if (is_pow2(n)) {
    pow2_ = get_fft_plan(n, inverse);
  } else {
    bluestein_ = get_bluestein_plan(n, inverse);
  }
}

void PlannedFft::operator()(Complex* data) const {
  if (pow2_) {
    fft_exec(*pow2_, data);
  } else if (bluestein_) {
    bluestein_exec(*bluestein_, data);
  }
}

}  // namespace decam
