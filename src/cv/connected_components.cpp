#include "cv/connected_components.h"

#include <algorithm>

namespace decam {

ComponentMap connected_components(const Image& binary) {
  DECAM_REQUIRE(binary.channels() == 1,
                "connected_components expects 1 channel");
  const int w = binary.width();
  const int h = binary.height();
  ComponentMap map;
  map.labels.assign(static_cast<std::size_t>(w) * h, 0);
  const auto src = binary.plane(0);
  std::vector<std::size_t> stack;
  int next_label = 0;
  for (int sy = 0; sy < h; ++sy) {
    for (int sx = 0; sx < w; ++sx) {
      const std::size_t seed = static_cast<std::size_t>(sy) * w + sx;
      if (src[seed] <= 0.0f || map.labels[seed] != 0) continue;
      ++next_label;
      Blob blob;
      blob.label = next_label;
      blob.min_x = blob.max_x = sx;
      blob.min_y = blob.max_y = sy;
      double sum_x = 0.0, sum_y = 0.0;
      stack.clear();
      stack.push_back(seed);
      map.labels[seed] = next_label;
      while (!stack.empty()) {
        const std::size_t idx = stack.back();
        stack.pop_back();
        const int x = static_cast<int>(idx % static_cast<std::size_t>(w));
        const int y = static_cast<int>(idx / static_cast<std::size_t>(w));
        ++blob.area;
        sum_x += x;
        sum_y += y;
        blob.min_x = std::min(blob.min_x, x);
        blob.max_x = std::max(blob.max_x, x);
        blob.min_y = std::min(blob.min_y, y);
        blob.max_y = std::max(blob.max_y, y);
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const int nx = x + dx;
            const int ny = y + dy;
            if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
            const std::size_t nidx = static_cast<std::size_t>(ny) * w + nx;
            if (src[nidx] > 0.0f && map.labels[nidx] == 0) {
              map.labels[nidx] = next_label;
              stack.push_back(nidx);
            }
          }
        }
      }
      blob.centroid_x = sum_x / blob.area;
      blob.centroid_y = sum_y / blob.area;
      map.blobs.push_back(blob);
    }
  }
  std::sort(map.blobs.begin(), map.blobs.end(),
            [](const Blob& a, const Blob& b) { return a.area > b.area; });
  return map;
}

int count_blobs(const Image& binary, int min_area) {
  DECAM_REQUIRE(min_area >= 1, "min_area must be >= 1");
  const ComponentMap map = connected_components(binary);
  int count = 0;
  for (const Blob& blob : map.blobs) {
    if (blob.area >= min_area) ++count;
  }
  return count;
}

}  // namespace decam
