#include "cv/threshold.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace decam {

Image binarize(const Image& img, float level) {
  DECAM_REQUIRE(img.channels() == 1, "binarize expects 1 channel");
  Image out(img.width(), img.height(), 1);
  const auto src = img.plane(0);
  auto dst = out.plane(0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = src[i] > level ? 255.0f : 0.0f;
  }
  return out;
}

float otsu_threshold(const Image& img) {
  DECAM_REQUIRE(img.channels() == 1, "otsu expects 1 channel");
  std::array<double, 256> hist{};
  const auto plane = img.plane(0);
  for (float v : plane) {
    const int bin =
        std::clamp(static_cast<int>(std::lround(v)), 0, 255);
    hist[static_cast<std::size_t>(bin)] += 1.0;
  }
  const double total = static_cast<double>(plane.size());
  double sum_all = 0.0;
  for (int i = 0; i < 256; ++i) sum_all += i * hist[static_cast<std::size_t>(i)];
  double sum_bg = 0.0;
  double weight_bg = 0.0;
  double best_var = -1.0;
  int best_level = 0;
  for (int level = 0; level < 256; ++level) {
    weight_bg += hist[static_cast<std::size_t>(level)];
    if (weight_bg == 0.0) continue;
    const double weight_fg = total - weight_bg;
    if (weight_fg == 0.0) break;
    sum_bg += level * hist[static_cast<std::size_t>(level)];
    const double mean_bg = sum_bg / weight_bg;
    const double mean_fg = (sum_all - sum_bg) / weight_fg;
    const double between =
        weight_bg * weight_fg * (mean_bg - mean_fg) * (mean_bg - mean_fg);
    if (between > best_var) {
      best_var = between;
      best_level = level;
    }
  }
  return static_cast<float>(best_level);
}

Image circular_low_pass(const Image& img, double radius) {
  DECAM_REQUIRE(img.channels() == 1, "circular_low_pass expects 1 channel");
  DECAM_REQUIRE(radius >= 0.0, "radius must be non-negative");
  Image out = img;
  const double cx = (img.width() - 1) / 2.0;
  const double cy = (img.height() - 1) / 2.0;
  const double r2 = radius * radius;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const double dx = x - cx;
      const double dy = y - cy;
      if (dx * dx + dy * dy > r2) out.at(x, y, 0) = 0.0f;
    }
  }
  return out;
}

}  // namespace decam
