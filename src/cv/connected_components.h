// Connected-component labelling and blob statistics — the "contour
// detection function" of the paper's CSP metric (Section IV-B). We label
// 8-connected foreground regions of a binary image and report per-blob
// area, bounding box and centroid; the steganalysis detector counts blobs
// whose area clears a noise floor.
#pragma once

#include <vector>

#include "imaging/image.h"

namespace decam {

struct Blob {
  int label = 0;    // 1-based component id
  int area = 0;     // pixel count
  int min_x = 0, min_y = 0, max_x = 0, max_y = 0;  // inclusive bounding box
  double centroid_x = 0.0, centroid_y = 0.0;
};

struct ComponentMap {
  std::vector<int> labels;  // row-major, 0 = background
  std::vector<Blob> blobs;  // sorted by descending area
};

/// Labels 8-connected components of pixels > 0 in a 1-channel image.
ComponentMap connected_components(const Image& binary);

/// Convenience: number of components with area >= min_area.
int count_blobs(const Image& binary, int min_area = 1);

}  // namespace decam
