// Binarisation utilities for the steganalysis pipeline: fixed-level and
// Otsu automatic thresholding, plus the circular low-pass mask of the
// paper's Eq. (7) that restricts blob counting to low frequencies.
#pragma once

#include "imaging/image.h"

namespace decam {

/// Fixed binarisation: out = 255 where img > level, else 0. 1 channel only.
Image binarize(const Image& img, float level);

/// Otsu's method over a 256-bucket histogram of a 1-channel image; returns
/// the level that maximises inter-class variance.
float otsu_threshold(const Image& img);

/// Zeroes every pixel of a 1-channel image farther than `radius` from the
/// image centre — the ideal low-pass mask H(u,v) of Eq. (7), applied in the
/// (already centered) spectrum domain.
Image circular_low_pass(const Image& img, double radius);

}  // namespace decam
