#include "imaging/image.h"

#include <algorithm>
#include <cmath>

namespace decam {

Image::Image(int width, int height, int channels, float fill)
    : width_(width), height_(height), channels_(channels) {
  DECAM_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
  DECAM_REQUIRE(channels > 0, "channel count must be positive");
  data_.assign(static_cast<std::size_t>(width) * height * channels, fill);
}

float Image::at_clamped(int x, int y, int c) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return data_[index(x, y, c)];
}

std::span<float> Image::plane(int c) {
  DECAM_REQUIRE(c >= 0 && c < channels_, "channel out of range");
  return {data_.data() + c * plane_size(), plane_size()};
}

std::span<const float> Image::plane(int c) const {
  DECAM_REQUIRE(c >= 0 && c < channels_, "channel out of range");
  return {data_.data() + c * plane_size(), plane_size()};
}

std::span<float> Image::row(int y, int c) {
  DECAM_REQUIRE(y >= 0 && y < height_, "row out of range");
  DECAM_REQUIRE(c >= 0 && c < channels_, "channel out of range");
  return {data_.data() + index(0, y, c), static_cast<std::size_t>(width_)};
}

std::span<const float> Image::row(int y, int c) const {
  DECAM_REQUIRE(y >= 0 && y < height_, "row out of range");
  DECAM_REQUIRE(c >= 0 && c < channels_, "channel out of range");
  return {data_.data() + index(0, y, c), static_cast<std::size_t>(width_)};
}

Image& Image::clamp(float lo, float hi) {
  DECAM_REQUIRE(lo <= hi, "clamp bounds inverted");
  for (float& v : data_) v = std::clamp(v, lo, hi);
  return *this;
}

Image& Image::operator+=(const Image& other) {
  DECAM_REQUIRE(same_shape(other), "shape mismatch in operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Image& Image::operator-=(const Image& other) {
  DECAM_REQUIRE(same_shape(other), "shape mismatch in operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Image& Image::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

std::vector<std::uint8_t> Image::to_u8() const {
  std::vector<std::uint8_t> out(size());
  std::size_t i = 0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      for (int c = 0; c < channels_; ++c) {
        const float v = std::clamp(data_[index(x, y, c)], 0.0f, 255.0f);
        out[i++] = static_cast<std::uint8_t>(std::lround(v));
      }
    }
  }
  return out;
}

Image Image::from_u8(std::span<const std::uint8_t> data, int width, int height,
                     int channels) {
  DECAM_REQUIRE(data.size() == static_cast<std::size_t>(width) * height * channels,
                "interleaved byte buffer size mismatch");
  Image img(width, height, channels);
  std::size_t i = 0;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      for (int c = 0; c < channels; ++c) {
        img.at(x, y, c) = static_cast<float>(data[i++]);
      }
    }
  }
  return img;
}

Image Image::extract_channel(int c) const {
  DECAM_REQUIRE(c >= 0 && c < channels_, "channel out of range");
  Image out(width_, height_, 1);
  auto src = plane(c);
  std::copy(src.begin(), src.end(), out.plane(0).begin());
  return out;
}

Image Image::from_channels(std::span<const Image> planes) {
  DECAM_REQUIRE(!planes.empty(), "need at least one plane");
  const Image& first = planes.front();
  DECAM_REQUIRE(first.channels() == 1, "plane images must be single-channel");
  Image out(first.width(), first.height(), static_cast<int>(planes.size()));
  for (std::size_t c = 0; c < planes.size(); ++c) {
    DECAM_REQUIRE(planes[c].same_shape(first), "plane shape mismatch");
    auto src = planes[c].plane(0);
    std::copy(src.begin(), src.end(), out.plane(static_cast<int>(c)).begin());
  }
  return out;
}

float Image::min_value() const {
  DECAM_REQUIRE(!empty(), "min_value of empty image");
  return *std::min_element(data_.begin(), data_.end());
}

float Image::max_value() const {
  DECAM_REQUIRE(!empty(), "max_value of empty image");
  return *std::max_element(data_.begin(), data_.end());
}

double Image::mean_value() const {
  DECAM_REQUIRE(!empty(), "mean_value of empty image");
  double sum = 0.0;
  for (float v : data_) sum += v;
  return sum / static_cast<double>(data_.size());
}

Image absdiff(const Image& a, const Image& b) {
  DECAM_REQUIRE(a.same_shape(b), "shape mismatch in absdiff");
  Image out(a.width(), a.height(), a.channels());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) po[i] = std::fabs(pa[i] - pb[i]);
  return out;
}

}  // namespace decam
