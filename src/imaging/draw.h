// Drawing primitives used by the synthetic dataset generator (src/data) and
// the examples. All coordinates are pixel-centre integers; shapes are
// clipped to the image. Colors are per-channel spans sized to the image's
// channel count (a single value is broadcast for grayscale convenience).
#pragma once

#include <span>

#include "imaging/image.h"

namespace decam {

/// Solid axis-aligned rectangle [x0, x1) x [y0, y1).
void fill_rect(Image& img, int x0, int y0, int x1, int y1,
               std::span<const float> color);

/// Solid disc of radius r centred at (cx, cy).
void fill_circle(Image& img, int cx, int cy, int r,
                 std::span<const float> color);

/// 1-pixel-wide line from (x0, y0) to (x1, y1), Bresenham.
void draw_line(Image& img, int x0, int y0, int x1, int y1,
               std::span<const float> color);

/// Linear gradient across the whole image between two colors; `angle` in
/// radians selects the direction (0 = left-to-right).
void fill_gradient(Image& img, std::span<const float> from,
                   std::span<const float> to, double angle);

/// Alpha-blends `sprite` onto `img` at (x, y); alpha in [0, 1].
void blend_sprite(Image& img, const Image& sprite, int x, int y, float alpha);

}  // namespace decam
