// JPEG-style lossy recompression simulator: 8x8 block DCT, quantisation
// with the standard luminance table scaled by a quality factor, inverse
// DCT. No entropy coding (we only need the LOSS, not the byte stream).
//
// Why it exists: real upload pipelines recompress images before they ever
// reach the CNN. bench/extension_postprocessing uses this to measure (a)
// how much recompression an image-scaling attack tolerates — empirically
// the payload degrades GRACEFULLY, surviving moderate quality levels
// (q >= ~40) and only dissolving under aggressive compression (q <= ~10),
// so recompression alone is NOT a defence — and (b) whether recompression
// of benign images pushes Decamouflage's scores across its thresholds
// (it does not, or the detector would false-positive on every upload).
#pragma once

#include <array>

#include "imaging/image.h"

namespace decam {

/// Recompresses `img` at the given quality (1 = worst, 100 = near
/// lossless), emulating libjpeg's quality->quantisation-table scaling.
/// Each channel is processed independently (no chroma subsampling, which
/// keeps the simulation conservative: real JPEG damages attacks more).
Image jpeg_roundtrip(const Image& img, int quality);

/// The effective 8x8 quantisation table at a quality level (exposed for
/// tests).
std::array<int, 64> jpeg_quant_table(int quality);

}  // namespace decam
