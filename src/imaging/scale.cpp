#include "imaging/scale.h"

#include <algorithm>
#include <vector>

#include "obs/span.h"

namespace decam {

Image resize(const Image& src, int out_width, int out_height, ScaleAlgo algo) {
  DECAM_SPAN("imaging/resize");
  DECAM_REQUIRE(!src.empty(), "resize of empty image");
  DECAM_REQUIRE(out_width > 0 && out_height > 0,
                "output dimensions must be positive");
  const auto horiz = get_kernel_table(src.width(), out_width, algo);
  const auto vert = get_kernel_table(src.height(), out_height, algo);

  // Horizontal pass into an intermediate out_width x src.height buffer.
  // Separability holds exactly for all our kernels.
  Image mid(out_width, src.height(), src.channels());
  for (int c = 0; c < src.channels(); ++c) {
    for (int y = 0; y < src.height(); ++y) {
      apply_kernel(*horiz, src.row(y, c).data(), 1, mid.row(y, c).data(), 1);
    }
  }

  // Vertical pass, row-major: each output row is a weighted sum of its
  // contributing intermediate rows, accumulated across a contiguous double
  // buffer. This walks `mid` by whole rows (sequential cache lines) instead
  // of strided columns, and keeps the per-pixel arithmetic — double
  // accumulation over taps in ascending source order, one final cast —
  // identical to the column-walk formulation, so outputs are bit-exact
  // either way. The first tap assigns (0 + w*v == w*v exactly) and the last
  // tap fuses the cast, so a support-n row costs n row sweeps, not n + 2.
  Image out(out_width, out_height, src.channels());
  std::vector<double> acc(static_cast<std::size_t>(out_width));
  double* acc_p = acc.data();
  for (int c = 0; c < src.channels(); ++c) {
    for (int o = 0; o < out_height; ++o) {
      const auto taps = vert->row(o);
      const std::size_t n = taps.size();
      float* out_row = out.row(o, c).data();
      if (n == 1) {
        const double w = taps[0].weight;
        const float* mid_row = mid.row(taps[0].index, c).data();
        for (int x = 0; x < out_width; ++x) {
          out_row[x] = static_cast<float>(w * mid_row[x]);
        }
        continue;
      }
      {
        const double w = taps[0].weight;
        const float* mid_row = mid.row(taps[0].index, c).data();
        for (int x = 0; x < out_width; ++x) acc_p[x] = w * mid_row[x];
      }
      for (std::size_t t = 1; t + 1 < n; ++t) {
        const double w = taps[t].weight;
        const float* mid_row = mid.row(taps[t].index, c).data();
        for (int x = 0; x < out_width; ++x) acc_p[x] += w * mid_row[x];
      }
      {
        const double w = taps[n - 1].weight;
        const float* mid_row = mid.row(taps[n - 1].index, c).data();
        for (int x = 0; x < out_width; ++x) {
          out_row[x] = static_cast<float>(acc_p[x] + w * mid_row[x]);
        }
      }
    }
  }
  return out;
}

Image scale_round_trip(const Image& src, int down_width, int down_height,
                       ScaleAlgo down, ScaleAlgo up) {
  return scale_round_trip_full(src, down_width, down_height, down, up).up;
}

RoundTripImages scale_round_trip_full(const Image& src, int down_width,
                                      int down_height, ScaleAlgo down,
                                      ScaleAlgo up) {
  DECAM_SPAN("imaging/scale_round_trip");
  RoundTripImages out;
  out.down = resize(src, down_width, down_height, down);
  out.up = resize(out.down, src.width(), src.height(), up);
  return out;
}

}  // namespace decam
