#include "imaging/scale.h"

#include <vector>

#include "obs/span.h"

namespace decam {

Image resize(const Image& src, int out_width, int out_height, ScaleAlgo algo) {
  DECAM_SPAN("imaging/resize");
  DECAM_REQUIRE(!src.empty(), "resize of empty image");
  DECAM_REQUIRE(out_width > 0 && out_height > 0,
                "output dimensions must be positive");
  const KernelTable horiz = make_kernel_table(src.width(), out_width, algo);
  const KernelTable vert = make_kernel_table(src.height(), out_height, algo);

  // Horizontal pass into an intermediate out_width x src.height buffer,
  // then vertical pass. Separability holds exactly for all our kernels.
  Image mid(out_width, src.height(), src.channels());
  for (int c = 0; c < src.channels(); ++c) {
    for (int y = 0; y < src.height(); ++y) {
      apply_kernel(horiz, src.row(y, c).data(), 1, mid.row(y, c).data(), 1);
    }
  }
  Image out(out_width, out_height, src.channels());
  for (int c = 0; c < src.channels(); ++c) {
    float* out_plane = out.plane(c).data();
    const float* mid_plane = mid.plane(c).data();
    for (int x = 0; x < out_width; ++x) {
      apply_kernel(vert, mid_plane + x, out_width, out_plane + x, out_width);
    }
  }
  return out;
}

Image scale_round_trip(const Image& src, int down_width, int down_height,
                       ScaleAlgo down, ScaleAlgo up) {
  return scale_round_trip_full(src, down_width, down_height, down, up).up;
}

RoundTripImages scale_round_trip_full(const Image& src, int down_width,
                                      int down_height, ScaleAlgo down,
                                      ScaleAlgo up) {
  DECAM_SPAN("imaging/scale_round_trip");
  RoundTripImages out;
  out.down = resize(src, down_width, down_height, down);
  out.up = resize(out.down, src.width(), src.height(), up);
  return out;
}

}  // namespace decam
