#include "imaging/scale.h"

#include <algorithm>
#include <vector>

#include "common/simd.h"
#include "obs/span.h"

namespace decam {

Image resize(const Image& src, int out_width, int out_height, ScaleAlgo algo) {
  DECAM_SPAN("imaging/resize");
  DECAM_REQUIRE(!src.empty(), "resize of empty image");
  DECAM_REQUIRE(out_width > 0 && out_height > 0,
                "output dimensions must be positive");
  const auto horiz = get_kernel_table(src.width(), out_width, algo);
  const auto vert = get_kernel_table(src.height(), out_height, algo);

  // Horizontal pass into an intermediate out_width x src.height buffer.
  // Separability holds exactly for all our kernels.
  Image mid(out_width, src.height(), src.channels());
  for (int c = 0; c < src.channels(); ++c) {
    for (int y = 0; y < src.height(); ++y) {
      apply_kernel(*horiz, src.row(y, c).data(), 1, mid.row(y, c).data(), 1);
    }
  }

  // Vertical pass, row-major: each output row is a weighted sum of its
  // contributing intermediate rows, accumulated across a contiguous double
  // buffer. This walks `mid` by whole rows (sequential cache lines) instead
  // of strided columns, and keeps the per-pixel arithmetic — double
  // accumulation over taps in ascending source order, one final cast —
  // identical to the column-walk formulation, so outputs are bit-exact
  // either way. The first tap assigns (0 + w*v == w*v exactly) and the last
  // tap fuses the cast, so a support-n row costs n row sweeps, not n + 2.
  // Each sweep is one runtime-dispatched SIMD row op (common/simd.h), whose
  // contract pins exactly that arithmetic on every variant.
  const simd::SimdOps& ops = simd::ops();
  Image out(out_width, out_height, src.channels());
  std::vector<double> acc(static_cast<std::size_t>(out_width));
  double* acc_p = acc.data();
  for (int c = 0; c < src.channels(); ++c) {
    for (int o = 0; o < out_height; ++o) {
      const auto taps = vert->row(o);
      const std::size_t n = taps.size();
      float* out_row = out.row(o, c).data();
      if (n == 1) {
        ops.weighted_assign_f32(out_row, mid.row(taps[0].index, c).data(),
                                taps[0].weight, out_width);
        continue;
      }
      ops.weighted_init_f64(acc_p, mid.row(taps[0].index, c).data(),
                            taps[0].weight, out_width);
      for (std::size_t t = 1; t + 1 < n; ++t) {
        ops.weighted_add_f64(acc_p, mid.row(taps[t].index, c).data(),
                             taps[t].weight, out_width);
      }
      ops.weighted_finish_f32(out_row, acc_p,
                              mid.row(taps[n - 1].index, c).data(),
                              taps[n - 1].weight, out_width);
    }
  }
  return out;
}

Image scale_round_trip(const Image& src, int down_width, int down_height,
                       ScaleAlgo down, ScaleAlgo up) {
  return scale_round_trip_full(src, down_width, down_height, down, up).up;
}

RoundTripImages scale_round_trip_full(const Image& src, int down_width,
                                      int down_height, ScaleAlgo down,
                                      ScaleAlgo up) {
  DECAM_SPAN("imaging/scale_round_trip");
  RoundTripImages out;
  out.down = resize(src, down_width, down_height, down);
  out.up = resize(out.down, src.width(), src.height(), up);
  return out;
}

}  // namespace decam
