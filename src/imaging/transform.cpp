#include "imaging/transform.h"

namespace decam {

Image crop(const Image& img, int x0, int y0, int width, int height) {
  DECAM_REQUIRE(!img.empty(), "crop of empty image");
  DECAM_REQUIRE(width > 0 && height > 0, "crop size must be positive");
  DECAM_REQUIRE(x0 >= 0 && y0 >= 0 && x0 + width <= img.width() &&
                    y0 + height <= img.height(),
                "crop rectangle leaves the image");
  Image out(width, height, img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < height; ++y) {
      const auto src = img.row(y0 + y, c);
      auto dst = out.row(y, c);
      std::copy(src.begin() + x0, src.begin() + x0 + width, dst.begin());
    }
  }
  return out;
}

Image flip_horizontal(const Image& img) {
  DECAM_REQUIRE(!img.empty(), "flip of empty image");
  Image out(img.width(), img.height(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        out.at(x, y, c) = img.at(img.width() - 1 - x, y, c);
      }
    }
  }
  return out;
}

Image flip_vertical(const Image& img) {
  DECAM_REQUIRE(!img.empty(), "flip of empty image");
  Image out(img.width(), img.height(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      const auto src = img.row(img.height() - 1 - y, c);
      auto dst = out.row(y, c);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  return out;
}

Image rotate90_cw(const Image& img) {
  DECAM_REQUIRE(!img.empty(), "rotate of empty image");
  Image out(img.height(), img.width(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        out.at(img.height() - 1 - y, x, c) = img.at(x, y, c);
      }
    }
  }
  return out;
}

Image rotate90_ccw(const Image& img) {
  DECAM_REQUIRE(!img.empty(), "rotate of empty image");
  Image out(img.height(), img.width(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        out.at(y, img.width() - 1 - x, c) = img.at(x, y, c);
      }
    }
  }
  return out;
}

}  // namespace decam
