// Spatial filters. rank_filter() dispatches a k x k rank operation —
// minimum (the paper's filtering detection method, Section III-B; its
// Algorithm 2 uses k = 2), median, or maximum (the paper's Fig. 4
// comparison and the ablation benches sweep all three) — onto the
// per-operation fast paths below: van Herk/Gil–Werman scanline passes for
// min/max, a running-histogram median (or the exact sorted-window fallback)
// for median. Box/Gaussian blur support the synthetic dataset generator and
// robustness experiments.
//
// Border handling: edge replication (same as the clamped taps used by the
// scalers), window anchored at the top-left as in erode/dilate with an
// even-sized structuring element — a 2x2 window at (x, y) covers
// {x, x+1} x {y, y+1}.
//
// Accumulator policy: every weighted filter accumulates in double and
// truncates to float exactly once per output pixel. For the separable
// convolutions (gaussian_blur) the per-pixel sequence of operations —
// float tap-times-sample products, applied in ascending offset order,
// accumulated in double, one final narrowing cast — is part of the
// contract: rewrites may change memory traversal but must keep it, so
// outputs stay bit-identical across implementations. Rank filters select an
// actual input sample and are bit-exact by construction. box_blur uses a
// running sum (O(1) per pixel regardless of k), which re-associates the
// additions; its outputs may differ from the naive sum by a last-ulp
// rounding step, i.e. a max abs error on the order of 1e-6 of full scale.
//
// Float -> histogram eligibility (median): Image stores floats, but the
// histogram median needs a finite bin grid, so rank_filter classifies the
// image once per call (classify_median_path). A plane whose values are all
// exactly integral in [0, 255] takes the 8-bit Perreault–Hébert path; one
// whose values are all exactly i/256 for integral i in [0, 65535] (v * 256
// is a power-of-two scale, so the test and the relabeling are both exact)
// takes the 16-bit histogram path; anything else — including NaN, negative
// or out-of-range values — falls back to the exact sorted-window median.
// Every path returns an actual sample of the window, and bin -> float
// reconstruction is exact on both grids, so the result is bit-identical to
// the naive filter no matter which path ran. The rank_median/{grid8,
// grid16, exact} counters record the routing.
#pragma once

#include "imaging/image.h"

namespace decam {

enum class RankOp { Min, Median, Max };

/// Which median implementation an image is eligible for (see the
/// float -> histogram eligibility contract above).
enum class MedianPath { Grid8, Grid16, Exact };

/// One-pass classifier over every plane; exposed for tests and benches.
MedianPath classify_median_path(const Image& img);

/// k x k rank filter (k >= 1). Each output pixel is the min/median/max of
/// the window anchored at that pixel, per channel.
Image rank_filter(const Image& img, int k, RankOp op);

inline Image min_filter(const Image& img, int k = 2) {
  return rank_filter(img, k, RankOp::Min);
}
inline Image median_filter(const Image& img, int k = 3) {
  return rank_filter(img, k, RankOp::Median);
}
inline Image max_filter(const Image& img, int k = 2) {
  return rank_filter(img, k, RankOp::Max);
}

/// k x k box (mean) blur with edge replication; k must be odd.
Image box_blur(const Image& img, int k);

/// Separable Gaussian blur with standard deviation `sigma` (> 0); the
/// kernel radius is ceil(3 * sigma).
Image gaussian_blur(const Image& img, double sigma);

}  // namespace decam
