// Spatial filters. The paper's filtering detection method (Section III-B)
// runs a k x k MINIMUM filter over the input; median and maximum are
// implemented alongside because the paper compares all three (its Fig. 4)
// and the ablation benches sweep them. Box/Gaussian blur support the
// synthetic dataset generator and robustness experiments.
//
// Border handling: edge replication (same as the clamped taps used by the
// scalers), window anchored at the top-left as in erode/dilate with an
// even-sized structuring element — a 2x2 window at (x, y) covers
// {x, x+1} x {y, y+1}.
//
// Accumulator policy: every weighted filter accumulates in double and
// truncates to float exactly once per output pixel. For the separable
// convolutions (gaussian_blur) the per-pixel sequence of operations —
// float tap-times-sample products, applied in ascending offset order,
// accumulated in double, one final narrowing cast — is part of the
// contract: rewrites may change memory traversal but must keep it, so
// outputs stay bit-identical across implementations. Rank filters select an
// actual input sample and are bit-exact by construction. box_blur uses a
// running sum (O(1) per pixel regardless of k), which re-associates the
// additions; its outputs may differ from the naive sum by a last-ulp
// rounding step, i.e. a max abs error on the order of 1e-6 of full scale.
#pragma once

#include "imaging/image.h"

namespace decam {

enum class RankOp { Min, Median, Max };

/// k x k rank filter (k >= 1). Each output pixel is the min/median/max of
/// the window anchored at that pixel, per channel.
Image rank_filter(const Image& img, int k, RankOp op);

inline Image min_filter(const Image& img, int k = 2) {
  return rank_filter(img, k, RankOp::Min);
}
inline Image median_filter(const Image& img, int k = 3) {
  return rank_filter(img, k, RankOp::Median);
}
inline Image max_filter(const Image& img, int k = 2) {
  return rank_filter(img, k, RankOp::Max);
}

/// k x k box (mean) blur with edge replication; k must be odd.
Image box_blur(const Image& img, int k);

/// Separable Gaussian blur with standard deviation `sigma` (> 0); the
/// kernel radius is ceil(3 * sigma).
Image gaussian_blur(const Image& img, double sigma);

}  // namespace decam
