// decam::Image — the pixel container every subsystem operates on.
//
// Storage is planar row-major float: plane(c) is a contiguous H*W block and
// pixel (x, y) of channel c lives at data()[(c*H + y)*W + x]. Planar layout
// keeps per-channel operations (resampling, filtering, FFT) cache-friendly
// and lets them hand a whole channel to 1-D kernels as a std::span.
//
// Pixel values follow the paper's 8-bit convention: the nominal range is
// [0, 255] stored as float. Nothing clamps automatically — intermediate
// results (residuals, spectra) may leave the range; call clamp() before
// quantising with to_u8().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace decam {

class Image {
 public:
  /// Empty image (width == height == channels == 0).
  Image() = default;

  /// Allocates a width*height image with `channels` planes, zero-filled.
  Image(int width, int height, int channels = 1, float fill = 0.0f);

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  bool empty() const { return data_.empty(); }

  /// Number of floats per plane (width * height).
  std::size_t plane_size() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  /// Total number of floats across all planes.
  std::size_t size() const { return data_.size(); }

  /// True when the other image has identical width, height and channels.
  bool same_shape(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_;
  }

  float& at(int x, int y, int c = 0) {
    DECAM_ASSERT(in_bounds(x, y, c));
    return data_[index(x, y, c)];
  }
  float at(int x, int y, int c = 0) const {
    DECAM_ASSERT(in_bounds(x, y, c));
    return data_[index(x, y, c)];
  }

  /// Clamped accessor: coordinates outside the image are replicated from the
  /// nearest edge pixel (the border mode used by all our filters/scalers).
  float at_clamped(int x, int y, int c = 0) const;

  std::span<float> plane(int c);
  std::span<const float> plane(int c) const;

  /// One row of one plane.
  std::span<float> row(int y, int c = 0);
  std::span<const float> row(int y, int c = 0) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Clamp every value into [lo, hi] in place; returns *this for chaining.
  Image& clamp(float lo = 0.0f, float hi = 255.0f);

  /// Per-element arithmetic with shape checking (throws on mismatch).
  Image& operator+=(const Image& other);
  Image& operator-=(const Image& other);
  Image& operator*=(float s);

  /// Interleaved 8-bit export (RGBRGB... or grayscale), clamping to [0,255].
  std::vector<std::uint8_t> to_u8() const;

  /// Build from interleaved 8-bit data, e.g. decoded file contents.
  static Image from_u8(std::span<const std::uint8_t> data, int width,
                       int height, int channels);

  /// Extract a single channel as a 1-channel image.
  Image extract_channel(int c) const;

  /// Stack 1-channel images of identical shape into a multi-channel image.
  static Image from_channels(std::span<const Image> planes);

  /// Summary statistics over all planes.
  float min_value() const;
  float max_value() const;
  double mean_value() const;

 private:
  bool in_bounds(int x, int y, int c) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_ && c >= 0 &&
           c < channels_;
  }
  std::size_t index(int x, int y, int c) const {
    return (static_cast<std::size_t>(c) * height_ + y) * width_ + x;
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<float> data_;
};

/// Elementwise absolute difference |a - b| (shape-checked).
Image absdiff(const Image& a, const Image& b);

}  // namespace decam
