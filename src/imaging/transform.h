// Geometric transforms: crop, flips, 90-degree rotations. Besides being
// standard library fare, they power the attack-fragility experiment
// (bench/extension_fragility): the image-scaling attack embeds its payload
// at exact sampling-grid positions, so shifting the grid by a single pixel
// (a 1-px crop) destroys it — while benign content is unaffected.
#pragma once

#include "imaging/image.h"

namespace decam {

/// Copies the [x0, x0+width) x [y0, y0+height) region. Throws when the
/// rectangle leaves the image.
Image crop(const Image& img, int x0, int y0, int width, int height);

/// Mirror around the vertical axis (left-right swap).
Image flip_horizontal(const Image& img);

/// Mirror around the horizontal axis (top-bottom swap).
Image flip_vertical(const Image& img);

/// Quarter-turn clockwise (output is height x width).
Image rotate90_cw(const Image& img);

/// Quarter-turn counter-clockwise.
Image rotate90_ccw(const Image& img);

}  // namespace decam
