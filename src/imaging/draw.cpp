#include "imaging/draw.h"

#include <algorithm>
#include <cmath>

namespace decam {
namespace {

// Returns the color component for channel c, broadcasting single values.
float channel_color(std::span<const float> color, int c) {
  DECAM_ASSERT(!color.empty());
  return color.size() == 1 ? color[0]
                           : color[static_cast<std::size_t>(c)];
}

void check_color(const Image& img, std::span<const float> color) {
  DECAM_REQUIRE(color.size() == 1 ||
                    color.size() == static_cast<std::size_t>(img.channels()),
                "color span must have 1 or channels() entries");
}

}  // namespace

void fill_rect(Image& img, int x0, int y0, int x1, int y1,
               std::span<const float> color) {
  check_color(img, color);
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, img.width());
  y1 = std::min(y1, img.height());
  for (int c = 0; c < img.channels(); ++c) {
    const float v = channel_color(color, c);
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) img.at(x, y, c) = v;
    }
  }
}

void fill_circle(Image& img, int cx, int cy, int r,
                 std::span<const float> color) {
  check_color(img, color);
  DECAM_REQUIRE(r >= 0, "radius must be non-negative");
  const int x0 = std::max(cx - r, 0);
  const int x1 = std::min(cx + r + 1, img.width());
  const int y0 = std::max(cy - r, 0);
  const int y1 = std::min(cy + r + 1, img.height());
  const long long r2 = static_cast<long long>(r) * r;
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const long long dx = x - cx;
      const long long dy = y - cy;
      if (dx * dx + dy * dy <= r2) {
        for (int c = 0; c < img.channels(); ++c) {
          img.at(x, y, c) = channel_color(color, c);
        }
      }
    }
  }
}

void draw_line(Image& img, int x0, int y0, int x1, int y1,
               std::span<const float> color) {
  check_color(img, color);
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    if (x0 >= 0 && x0 < img.width() && y0 >= 0 && y0 < img.height()) {
      for (int c = 0; c < img.channels(); ++c) {
        img.at(x0, y0, c) = channel_color(color, c);
      }
    }
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void fill_gradient(Image& img, std::span<const float> from,
                   std::span<const float> to, double angle) {
  check_color(img, from);
  check_color(img, to);
  const double dir_x = std::cos(angle);
  const double dir_y = std::sin(angle);
  // Project each pixel onto the gradient direction and normalise to [0, 1].
  double lo = 1e300, hi = -1e300;
  const double corners[4][2] = {{0, 0},
                                {static_cast<double>(img.width() - 1), 0},
                                {0, static_cast<double>(img.height() - 1)},
                                {static_cast<double>(img.width() - 1),
                                 static_cast<double>(img.height() - 1)}};
  for (const auto& corner : corners) {
    const double t = corner[0] * dir_x + corner[1] * dir_y;
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  const double span = std::max(hi - lo, 1e-9);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const double t = (x * dir_x + y * dir_y - lo) / span;
      for (int c = 0; c < img.channels(); ++c) {
        const float a = channel_color(from, c);
        const float b = channel_color(to, c);
        img.at(x, y, c) = static_cast<float>(a + (b - a) * t);
      }
    }
  }
}

void blend_sprite(Image& img, const Image& sprite, int x, int y, float alpha) {
  DECAM_REQUIRE(sprite.channels() == img.channels(),
                "sprite channel count must match target");
  DECAM_REQUIRE(alpha >= 0.0f && alpha <= 1.0f, "alpha must be in [0,1]");
  const int x0 = std::max(x, 0);
  const int y0 = std::max(y, 0);
  const int x1 = std::min(x + sprite.width(), img.width());
  const int y1 = std::min(y + sprite.height(), img.height());
  for (int c = 0; c < img.channels(); ++c) {
    for (int py = y0; py < y1; ++py) {
      for (int px = x0; px < x1; ++px) {
        float& dst = img.at(px, py, c);
        const float src = sprite.at(px - x, py - y, c);
        dst = dst * (1.0f - alpha) + src * alpha;
      }
    }
  }
}

}  // namespace decam
