#include "imaging/jpeg_sim.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace decam {
namespace {

// ITU-T T.81 Annex K.1 luminance quantisation table.
constexpr int kBaseTable[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

// Separable 8-point DCT-II basis, precomputed once.
struct DctBasis {
  double cosines[8][8];  // cosines[k][n] = c(k) * cos((2n+1)k pi / 16)
  DctBasis() {
    for (int k = 0; k < 8; ++k) {
      const double scale = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int n = 0; n < 8; ++n) {
        cosines[k][n] = scale * std::cos((2.0 * n + 1.0) * k *
                                         std::numbers::pi / 16.0);
      }
    }
  }
};

const DctBasis& basis() {
  static const DctBasis instance;
  return instance;
}

// block is 8x8 row-major; forward DCT in place via temp.
void dct2d(double block[64]) {
  const DctBasis& b = basis();
  double temp[64];
  for (int y = 0; y < 8; ++y) {          // rows
    for (int k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (int n = 0; n < 8; ++n) acc += block[y * 8 + n] * b.cosines[k][n];
      temp[y * 8 + k] = acc;
    }
  }
  for (int x = 0; x < 8; ++x) {          // columns
    for (int k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (int n = 0; n < 8; ++n) acc += temp[n * 8 + x] * b.cosines[k][n];
      block[k * 8 + x] = acc;
    }
  }
}

void idct2d(double block[64]) {
  const DctBasis& b = basis();
  double temp[64];
  for (int x = 0; x < 8; ++x) {          // columns
    for (int n = 0; n < 8; ++n) {
      double acc = 0.0;
      for (int k = 0; k < 8; ++k) acc += block[k * 8 + x] * b.cosines[k][n];
      temp[n * 8 + x] = acc;
    }
  }
  for (int y = 0; y < 8; ++y) {          // rows
    for (int n = 0; n < 8; ++n) {
      double acc = 0.0;
      for (int k = 0; k < 8; ++k) acc += temp[y * 8 + k] * b.cosines[k][n];
      block[y * 8 + n] = acc;
    }
  }
}

}  // namespace

std::array<int, 64> jpeg_quant_table(int quality) {
  DECAM_REQUIRE(quality >= 1 && quality <= 100, "quality must be in [1,100]");
  // libjpeg's quality scaling.
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<int, 64> table;
  for (int i = 0; i < 64; ++i) {
    const int q = (kBaseTable[i] * scale + 50) / 100;
    table[static_cast<std::size_t>(i)] = std::clamp(q, 1, 255);
  }
  return table;
}

Image jpeg_roundtrip(const Image& img, int quality) {
  DECAM_REQUIRE(!img.empty(), "jpeg_roundtrip of empty image");
  const std::array<int, 64> quant = jpeg_quant_table(quality);
  Image out(img.width(), img.height(), img.channels());
  double block[64];
  for (int c = 0; c < img.channels(); ++c) {
    for (int by = 0; by < img.height(); by += 8) {
      for (int bx = 0; bx < img.width(); bx += 8) {
        // Load (edge blocks replicate border pixels, like a padded encode).
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            block[y * 8 + x] =
                static_cast<double>(img.at_clamped(bx + x, by + y, c)) - 128.0;
          }
        }
        dct2d(block);
        for (int i = 0; i < 64; ++i) {
          const double q = quant[static_cast<std::size_t>(i)];
          block[i] = std::round(block[i] / q) * q;
        }
        idct2d(block);
        for (int y = 0; y < 8 && by + y < img.height(); ++y) {
          for (int x = 0; x < 8 && bx + x < img.width(); ++x) {
            out.at(bx + x, by + y, c) = static_cast<float>(
                std::clamp(block[y * 8 + x] + 128.0, 0.0, 255.0));
          }
        }
      }
    }
  }
  return out;
}

}  // namespace decam
