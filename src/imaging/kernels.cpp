#include "imaging/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <numbers>
#include <tuple>

#include "obs/memstats.h"
#include "obs/metrics.h"

namespace decam {

const char* to_string(ScaleAlgo algo) {
  switch (algo) {
    case ScaleAlgo::Nearest: return "nearest";
    case ScaleAlgo::Bilinear: return "bilinear";
    case ScaleAlgo::Bicubic: return "bicubic";
    case ScaleAlgo::Area: return "area";
    case ScaleAlgo::Lanczos4: return "lanczos4";
  }
  return "?";
}

double cubic_weight(double t) {
  // Keys (1981) cubic convolution with a = -0.75, the value OpenCV uses.
  constexpr double a = -0.75;
  t = std::fabs(t);
  if (t <= 1.0) return ((a + 2.0) * t - (a + 3.0)) * t * t + 1.0;
  if (t < 2.0) return (((t - 5.0) * t + 8.0) * t - 4.0) * a;
  return 0.0;
}

double lanczos4_weight(double t) {
  constexpr double a = 4.0;
  t = std::fabs(t);
  if (t < 1e-9) return 1.0;
  if (t >= a) return 0.0;
  const double pt = std::numbers::pi * t;
  return a * std::sin(pt) * std::sin(pt / a) / (pt * pt);
}

namespace {

// Appends one output sample's tap list to the flattened table: sorts by
// source index, coalesces duplicates produced by border clamping (one entry
// per source index, weights summed), and checks the partition-of-unity
// invariant survives the merge.
void push_row(KernelTable& table, std::vector<Tap>& row) {
  DECAM_ASSERT(!row.empty());
  std::sort(row.begin(), row.end(),
            [](const Tap& a, const Tap& b) { return a.index < b.index; });
  std::size_t w_idx = 0;
  for (std::size_t r = 1; r < row.size(); ++r) {
    if (row[r].index == row[w_idx].index) {
      row[w_idx].weight += row[r].weight;
    } else {
      row[++w_idx] = row[r];
    }
  }
  row.resize(w_idx + 1);
  double sum = 0.0;
  for (const Tap& tap : row) sum += tap.weight;
  DECAM_ASSERT(std::fabs(sum - 1.0) < 1e-4);
  table.taps.insert(table.taps.end(), row.begin(), row.end());
  table.offsets.push_back(static_cast<int>(table.taps.size()));
}

KernelTable begin_table(int in_size, int out_size, int taps_guess) {
  KernelTable table;
  table.in_size = in_size;
  table.out_size = out_size;
  table.offsets.reserve(static_cast<std::size_t>(out_size) + 1);
  table.offsets.push_back(0);
  table.taps.reserve(static_cast<std::size_t>(out_size) * taps_guess);
  return table;
}

// Generic windowed-kernel table: fixed support, no anti-alias widening.
KernelTable windowed_table(int in_size, int out_size, int support,
                           double (*kernel)(double)) {
  KernelTable table = begin_table(in_size, out_size, 2 * support);
  const double scale = static_cast<double>(in_size) / out_size;
  std::vector<Tap> row;
  row.reserve(static_cast<std::size_t>(2 * support));
  for (int o = 0; o < out_size; ++o) {
    const double center = (o + 0.5) * scale - 0.5;
    const int first = static_cast<int>(std::floor(center)) - support + 1;
    row.clear();
    double sum = 0.0;
    for (int i = first; i < first + 2 * support; ++i) {
      const double w = kernel(center - i);
      if (w == 0.0) continue;
      const int clamped = std::clamp(i, 0, in_size - 1);
      row.push_back({clamped, static_cast<float>(w)});
      sum += w;
    }
    DECAM_ASSERT(!row.empty() && sum > 0.0);
    for (Tap& tap : row) tap.weight = static_cast<float>(tap.weight / sum);
    push_row(table, row);
  }
  return table;
}

double linear_weight(double t) {
  t = std::fabs(t);
  return t < 1.0 ? 1.0 - t : 0.0;
}

KernelTable nearest_table(int in_size, int out_size) {
  KernelTable table = begin_table(in_size, out_size, 1);
  const double scale = static_cast<double>(in_size) / out_size;
  std::vector<Tap> row(1);
  for (int o = 0; o < out_size; ++o) {
    // cv::resize INTER_NEAREST: sx = floor(dx * scale).
    const int src = std::clamp(static_cast<int>(std::floor(o * scale)), 0,
                               in_size - 1);
    row[0] = {src, 1.0f};
    push_row(table, row);
    row.resize(1);
  }
  return table;
}

KernelTable area_table(int in_size, int out_size) {
  const double scale = static_cast<double>(in_size) / out_size;
  if (out_size >= in_size) {
    // Upscaling: INTER_AREA degenerates to bilinear, as in OpenCV.
    return windowed_table(in_size, out_size, 1, linear_weight);
  }
  KernelTable table =
      begin_table(in_size, out_size, static_cast<int>(scale) + 2);
  std::vector<Tap> row;
  for (int o = 0; o < out_size; ++o) {
    const double lo = o * scale;
    const double hi = (o + 1) * scale;
    row.clear();
    const int first = static_cast<int>(std::floor(lo));
    const int last = std::min(static_cast<int>(std::ceil(hi)), in_size);
    double sum = 0.0;
    for (int i = first; i < last; ++i) {
      const double cover =
          std::min<double>(hi, i + 1) - std::max<double>(lo, i);
      if (cover <= 0.0) continue;
      row.push_back({std::clamp(i, 0, in_size - 1),
                     static_cast<float>(cover)});
      sum += cover;
    }
    DECAM_ASSERT(!row.empty() && sum > 0.0);
    for (Tap& tap : row) tap.weight = static_cast<float>(tap.weight / sum);
    push_row(table, row);
  }
  return table;
}

}  // namespace

KernelTable KernelTable::from_rows(int in_size,
                                   std::span<const std::vector<Tap>> rows) {
  KernelTable table;
  table.in_size = in_size;
  table.out_size = static_cast<int>(rows.size());
  table.offsets.reserve(rows.size() + 1);
  table.offsets.push_back(0);
  for (const std::vector<Tap>& row : rows) {
    DECAM_ASSERT(!row.empty());
    table.taps.insert(table.taps.end(), row.begin(), row.end());
    table.offsets.push_back(static_cast<int>(table.taps.size()));
  }
  return table;
}

KernelTable make_kernel_table(int in_size, int out_size, ScaleAlgo algo) {
  DECAM_REQUIRE(in_size > 0 && out_size > 0, "sizes must be positive");
  switch (algo) {
    case ScaleAlgo::Nearest:
      return nearest_table(in_size, out_size);
    case ScaleAlgo::Bilinear:
      return windowed_table(in_size, out_size, 1, linear_weight);
    case ScaleAlgo::Bicubic:
      return windowed_table(in_size, out_size, 2, cubic_weight);
    case ScaleAlgo::Area:
      return area_table(in_size, out_size);
    case ScaleAlgo::Lanczos4:
      return windowed_table(in_size, out_size, 4, lanczos4_weight);
  }
  DECAM_ASSERT(false);
}

// ----------------------------------------------------------------- cache --

namespace {

// LRU cache of built tables. Battery/pipeline runs resize every image in a
// dataset with the same few geometries; 64 entries comfortably covers a
// sweep over all algorithms at several sizes while bounding memory (a table
// is ~out_size * support * 8 bytes).
// Heap actually held by a cached table (the vectors' allocations; the
// struct itself lives inside the shared_ptr control block).
std::uint64_t table_bytes(const KernelTable& table) {
  return table.taps.capacity() * sizeof(Tap) +
         table.offsets.capacity() * sizeof(int);
}

class KernelTableCache {
 public:
  static constexpr std::size_t kCapacity = 64;

  std::shared_ptr<const KernelTable> get(int in_size, int out_size,
                                         ScaleAlgo algo) {
    static auto& registry = obs::MetricsRegistry::instance();
    static auto& hit_counter = registry.counter("kernel_cache/hits");
    static auto& miss_counter = registry.counter("kernel_cache/misses");
    static auto& eviction_counter = registry.counter("kernel_cache/evictions");
    const Key key{in_size, out_size, algo};
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = map_.find(key);
      if (it != map_.end()) {
        // Move to the front of the recency list.
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        ++hits_;
        hit_counter.add();
        return it->second.table;
      }
      ++misses_;
      miss_counter.add();
    }
    // Build outside the lock: table construction is the expensive part and
    // two threads racing on the same key just build the same table twice
    // (both results are identical; the second insert wins harmlessly).
    auto table = std::make_shared<const KernelTable>(
        make_kernel_table(in_size, out_size, algo));
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.table;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{table, lru_.begin()});
    resident_bytes_ += table_bytes(*table);
    if (map_.size() > kCapacity) {
      const auto victim = map_.find(lru_.back());
      resident_bytes_ -= table_bytes(*victim->second.table);
      map_.erase(victim);
      lru_.pop_back();
      ++evictions_;
      eviction_counter.add();
    }
    return table;
  }

  KernelCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {hits_, misses_, evictions_, map_.size(), kCapacity,
            resident_bytes_};
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
    hits_ = misses_ = evictions_ = 0;
    resident_bytes_ = 0;
  }

 private:
  using Key = std::tuple<int, int, ScaleAlgo>;
  struct Entry {
    std::shared_ptr<const KernelTable> table;
    std::list<Key>::iterator lru_it;
  };

  mutable std::mutex mutex_;
  std::map<Key, Entry> map_;
  std::list<Key> lru_;  // front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t resident_bytes_ = 0;
};

KernelTableCache& table_cache() {
  static KernelTableCache cache;
  static const bool source_registered = [] {
    obs::register_memory_source(
        "kernel_cache", [] { return cache.stats().resident_bytes; });
    return true;
  }();
  (void)source_registered;
  return cache;
}

}  // namespace

std::shared_ptr<const KernelTable> get_kernel_table(int in_size, int out_size,
                                                    ScaleAlgo algo) {
  DECAM_REQUIRE(in_size > 0 && out_size > 0, "sizes must be positive");
  return table_cache().get(in_size, out_size, algo);
}

KernelCacheStats kernel_cache_stats() { return table_cache().stats(); }

void clear_kernel_cache() { table_cache().clear(); }

void apply_kernel(const KernelTable& table, const float* in, int in_stride,
                  float* out, int out_stride) {
  const Tap* tap = table.taps.data();
  if (in_stride == 1 && out_stride == 1) {
    // Contiguous fast path — the layout both resize passes use. Taps of one
    // output sample have consecutive source indices except where border
    // clamping coalesced them, so the inner loop reads `in` sequentially.
    for (int o = 0; o < table.out_size; ++o) {
      const Tap* end =
          table.taps.data() + table.offsets[static_cast<std::size_t>(o) + 1];
      double acc = 0.0;
      for (; tap != end; ++tap) {
        acc += static_cast<double>(tap->weight) * in[tap->index];
      }
      out[o] = static_cast<float>(acc);
    }
    return;
  }
  for (int o = 0; o < table.out_size; ++o) {
    const Tap* end =
        table.taps.data() + table.offsets[static_cast<std::size_t>(o) + 1];
    double acc = 0.0;
    for (; tap != end; ++tap) {
      acc += static_cast<double>(tap->weight) *
             in[static_cast<std::size_t>(tap->index) * in_stride];
    }
    out[static_cast<std::size_t>(o) * out_stride] = static_cast<float>(acc);
  }
}

}  // namespace decam
