#include "imaging/kernels.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace decam {

const char* to_string(ScaleAlgo algo) {
  switch (algo) {
    case ScaleAlgo::Nearest: return "nearest";
    case ScaleAlgo::Bilinear: return "bilinear";
    case ScaleAlgo::Bicubic: return "bicubic";
    case ScaleAlgo::Area: return "area";
    case ScaleAlgo::Lanczos4: return "lanczos4";
  }
  return "?";
}

double cubic_weight(double t) {
  // Keys (1981) cubic convolution with a = -0.75, the value OpenCV uses.
  constexpr double a = -0.75;
  t = std::fabs(t);
  if (t <= 1.0) return ((a + 2.0) * t - (a + 3.0)) * t * t + 1.0;
  if (t < 2.0) return (((t - 5.0) * t + 8.0) * t - 4.0) * a;
  return 0.0;
}

double lanczos4_weight(double t) {
  constexpr double a = 4.0;
  t = std::fabs(t);
  if (t < 1e-9) return 1.0;
  if (t >= a) return 0.0;
  const double pt = std::numbers::pi * t;
  return a * std::sin(pt) * std::sin(pt / a) / (pt * pt);
}

namespace {

// Generic windowed-kernel table: fixed support, no anti-alias widening.
KernelTable windowed_table(int in_size, int out_size, int support,
                           double (*kernel)(double)) {
  KernelTable table;
  table.in_size = in_size;
  table.out_size = out_size;
  table.taps.resize(static_cast<std::size_t>(out_size));
  const double scale = static_cast<double>(in_size) / out_size;
  for (int o = 0; o < out_size; ++o) {
    const double center = (o + 0.5) * scale - 0.5;
    const int first = static_cast<int>(std::floor(center)) - support + 1;
    auto& taps = table.taps[static_cast<std::size_t>(o)];
    taps.reserve(static_cast<std::size_t>(2 * support));
    double sum = 0.0;
    for (int i = first; i < first + 2 * support; ++i) {
      const double w = kernel(center - i);
      if (w == 0.0) continue;
      const int clamped = std::clamp(i, 0, in_size - 1);
      taps.push_back({clamped, static_cast<float>(w)});
      sum += w;
    }
    DECAM_ASSERT(!taps.empty() && sum > 0.0);
    for (Tap& tap : taps) tap.weight = static_cast<float>(tap.weight / sum);
    // Merge duplicate indices produced by border clamping so the table is a
    // well-formed sparse operator (one entry per source index).
    std::sort(taps.begin(), taps.end(),
              [](const Tap& a, const Tap& b) { return a.index < b.index; });
    std::size_t w_idx = 0;
    for (std::size_t r = 1; r < taps.size(); ++r) {
      if (taps[r].index == taps[w_idx].index) {
        taps[w_idx].weight += taps[r].weight;
      } else {
        taps[++w_idx] = taps[r];
      }
    }
    taps.resize(w_idx + 1);
  }
  return table;
}

double linear_weight(double t) {
  t = std::fabs(t);
  return t < 1.0 ? 1.0 - t : 0.0;
}

KernelTable nearest_table(int in_size, int out_size) {
  KernelTable table;
  table.in_size = in_size;
  table.out_size = out_size;
  table.taps.resize(static_cast<std::size_t>(out_size));
  const double scale = static_cast<double>(in_size) / out_size;
  for (int o = 0; o < out_size; ++o) {
    // cv::resize INTER_NEAREST: sx = floor(dx * scale).
    const int src = std::clamp(static_cast<int>(std::floor(o * scale)), 0,
                               in_size - 1);
    table.taps[static_cast<std::size_t>(o)] = {{src, 1.0f}};
  }
  return table;
}

KernelTable area_table(int in_size, int out_size) {
  KernelTable table;
  table.in_size = in_size;
  table.out_size = out_size;
  table.taps.resize(static_cast<std::size_t>(out_size));
  const double scale = static_cast<double>(in_size) / out_size;
  if (out_size >= in_size) {
    // Upscaling: INTER_AREA degenerates to bilinear, as in OpenCV.
    return windowed_table(in_size, out_size, 1, linear_weight);
  }
  for (int o = 0; o < out_size; ++o) {
    const double lo = o * scale;
    const double hi = (o + 1) * scale;
    auto& taps = table.taps[static_cast<std::size_t>(o)];
    const int first = static_cast<int>(std::floor(lo));
    const int last = std::min(static_cast<int>(std::ceil(hi)), in_size);
    double sum = 0.0;
    for (int i = first; i < last; ++i) {
      const double cover =
          std::min<double>(hi, i + 1) - std::max<double>(lo, i);
      if (cover <= 0.0) continue;
      taps.push_back({std::clamp(i, 0, in_size - 1),
                      static_cast<float>(cover)});
      sum += cover;
    }
    DECAM_ASSERT(!taps.empty() && sum > 0.0);
    for (Tap& tap : taps) tap.weight = static_cast<float>(tap.weight / sum);
  }
  return table;
}

}  // namespace

KernelTable make_kernel_table(int in_size, int out_size, ScaleAlgo algo) {
  DECAM_REQUIRE(in_size > 0 && out_size > 0, "sizes must be positive");
  switch (algo) {
    case ScaleAlgo::Nearest:
      return nearest_table(in_size, out_size);
    case ScaleAlgo::Bilinear:
      return windowed_table(in_size, out_size, 1, linear_weight);
    case ScaleAlgo::Bicubic:
      return windowed_table(in_size, out_size, 2, cubic_weight);
    case ScaleAlgo::Area:
      return area_table(in_size, out_size);
    case ScaleAlgo::Lanczos4:
      return windowed_table(in_size, out_size, 4, lanczos4_weight);
  }
  DECAM_ASSERT(false);
}

void apply_kernel(const KernelTable& table, const float* in, int in_stride,
                  float* out, int out_stride) {
  for (int o = 0; o < table.out_size; ++o) {
    double acc = 0.0;
    for (const Tap& tap : table.taps[static_cast<std::size_t>(o)]) {
      acc += static_cast<double>(tap.weight) *
             in[static_cast<std::size_t>(tap.index) * in_stride];
    }
    out[static_cast<std::size_t>(o) * out_stride] = static_cast<float>(acc);
  }
}

}  // namespace decam
