// 2-D image resampling built on the 1-D kernel tables of kernels.h.
//
// resize() is the function every Decamouflage detector and every attack uses
// as its model of the victim pipeline's pre-processing step. It matches
// cv::resize semantics per interpolation mode (see kernels.h for the
// coordinate convention and the deliberate absence of anti-aliasing).
#pragma once

#include "imaging/image.h"
#include "imaging/kernels.h"

namespace decam {

/// Resamples `src` to out_width x out_height with the given algorithm.
/// All channels are processed independently; output values are NOT clamped
/// (bicubic/lanczos can overshoot — callers quantising to 8-bit should
/// clamp, and the detectors deliberately operate on the raw values).
Image resize(const Image& src, int out_width, int out_height, ScaleAlgo algo);

/// Convenience: square resize, the common CNN-input case (e.g. 224).
inline Image resize(const Image& src, int out_side, ScaleAlgo algo) {
  return resize(src, out_side, out_side, algo);
}

/// Downscale-then-upscale round trip back to the source geometry — the core
/// operation of the paper's scaling detection method (Section III-A).
/// `down` is the victim pipeline's scaler; `up` the reconstruction scaler.
Image scale_round_trip(const Image& src, int down_width, int down_height,
                       ScaleAlgo down, ScaleAlgo up);

/// Both halves of the round trip. Callers that also need the pipeline's
/// downscaled view (core::AnalysisContext, the histogram baseline) take this
/// variant so the downscale is computed once, not twice.
struct RoundTripImages {
  Image down;  // src at (down_width, down_height)
  Image up;    // `down` scaled back to src geometry
};
RoundTripImages scale_round_trip_full(const Image& src, int down_width,
                                      int down_height, ScaleAlgo down,
                                      ScaleAlgo up);

}  // namespace decam
