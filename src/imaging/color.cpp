#include "imaging/color.h"

#include <array>

namespace decam {

Image to_gray(const Image& img) {
  DECAM_REQUIRE(!img.empty(), "to_gray of empty image");
  if (img.channels() == 1) {
    return img;  // value copy
  }
  DECAM_REQUIRE(img.channels() == 3, "to_gray expects 1 or 3 channels");
  Image out(img.width(), img.height(), 1);
  const auto r = img.plane(0);
  const auto g = img.plane(1);
  const auto b = img.plane(2);
  auto y = out.plane(0);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = 0.299f * r[i] + 0.587f * g[i] + 0.114f * b[i];
  }
  return out;
}

Image gray_to_rgb(const Image& img) {
  DECAM_REQUIRE(img.channels() == 1, "gray_to_rgb expects 1 channel");
  const std::array<Image, 3> planes = {img, img, img};
  return Image::from_channels(planes);
}

}  // namespace decam
