// Minimal self-contained image file I/O: binary PPM (P6, RGB), binary PGM
// (P5, grayscale) and 24-bit uncompressed BMP. These cover everything the
// examples and benches need to persist visual artefacts without external
// codec dependencies.
#pragma once

#include <string>

#include "imaging/image.h"

namespace decam {

/// Writes `img` as PGM when it has one channel, PPM when it has three.
/// Values are clamped to [0,255] and rounded. Throws IoError on failure and
/// std::invalid_argument for channel counts other than 1 or 3.
void write_pnm(const Image& img, const std::string& path);

/// Reads a binary PGM (P5) or PPM (P6) file. Throws IoError on malformed
/// input. Maxval up to 255 is supported (the only depth we emit).
Image read_pnm(const std::string& path);

/// Writes a 24-bit BMP. 1-channel images are replicated to gray RGB.
void write_bmp(const Image& img, const std::string& path);

/// Reads an uncompressed 24-bit BMP (bottom-up or top-down).
Image read_bmp(const std::string& path);

}  // namespace decam
