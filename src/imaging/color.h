// Color-space helpers. Only what the detection pipeline needs: luma
// extraction (for the FFT-based steganalysis detector) and gray->RGB
// replication (for uniform example output).
#pragma once

#include "imaging/image.h"

namespace decam {

/// BT.601 luma: 0.299 R + 0.587 G + 0.114 B — the same weights OpenCV's
/// cvtColor(BGR2GRAY) uses. 1-channel inputs are passed through as a copy.
Image to_gray(const Image& img);

/// Replicates a 1-channel image into 3 identical RGB planes.
Image gray_to_rgb(const Image& img);

}  // namespace decam
