#include "imaging/filter.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/simd.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace decam {

namespace {

struct MinOp {
  float operator()(float a, float b) const { return a < b ? a : b; }
};
struct MaxOp {
  float operator()(float a, float b) const { return a > b ? a : b; }
};

// --------------------------------------------------------- van Herk core --
//
// Sliding-window min/max in 3 comparisons per sample independent of k
// (van Herk 1992; Gil & Werman 1993). Over a padded array `a` of length
// m = n + k - 1 the window result is
//     out[j] = op(L[j], R[j + k - 1]),
// where R is the running op from the start of each k-aligned block and L the
// running op from the end of the block. Border replication is handled by the
// caller padding the last k - 1 samples with the edge value, which
// reproduces the clamped-window semantics of the naive filter exactly (the
// result is always an element of the input, so the pass is bit-exact).

// One padded scanline: out[j] = op over a[j .. j+k-1], j in [0, n).
template <typename Op>
void van_herk_line(const float* a, int m, int k, float* left, float* right,
                   float* out, int n, Op op) {
  for (int block = 0; block < m; block += k) {
    const int end = std::min(block + k, m);
    right[block] = a[block];
    for (int i = block + 1; i < end; ++i) right[i] = op(right[i - 1], a[i]);
    left[end - 1] = a[end - 1];
    for (int i = end - 2; i >= block; --i) left[i] = op(left[i + 1], a[i]);
  }
  for (int j = 0; j < n; ++j) out[j] = op(left[j], right[j + k - 1]);
}

// Separable rank min/max: horizontal van Herk per scanline, then a vertical
// van Herk over whole rows (row-major, so the plane is walked in contiguous
// cache lines; the "array elements" of the vertical pass are entire rows
// combined elementwise).
template <typename Op>
void rank_min_max(const Image& img, int k, Op op, Image& out) {
  const int w = img.width();
  const int h = img.height();
  const int mx = w + k - 1;  // padded scanline length
  const int my = h + k - 1;  // padded row count

  std::vector<float> pad(static_cast<std::size_t>(mx));
  std::vector<float> left(static_cast<std::size_t>(mx));
  std::vector<float> right(static_cast<std::size_t>(mx));
  // Vertical scratch: block-prefix and block-suffix planes over padded rows.
  const std::size_t plane = static_cast<std::size_t>(my) * w;
  std::vector<float> vert_right(plane);
  std::vector<float> vert_left(plane);
  Image row_pass(w, h, 1);

  for (int c = 0; c < img.channels(); ++c) {
    // Horizontal: out(x) = op over row[x .. x+k-1] with edge replication.
    for (int y = 0; y < h; ++y) {
      const float* row = img.row(y, c).data();
      std::copy(row, row + w, pad.begin());
      std::fill(pad.begin() + w, pad.end(), row[w - 1]);
      van_herk_line(pad.data(), mx, k, left.data(), right.data(),
                    row_pass.row(y, 0).data(), w, op);
    }

    // Vertical: the padded "array" is the row sequence 0..h-1 followed by
    // k-1 copies of the last row; R/L are computed per k-aligned block.
    auto padded_row = [&](int r) {
      return row_pass.row(std::min(r, h - 1), 0).data();
    };
    for (int block = 0; block < my; block += k) {
      const int end = std::min(block + k, my);
      float* r_first = vert_right.data() + static_cast<std::size_t>(block) * w;
      std::copy(padded_row(block), padded_row(block) + w, r_first);
      for (int i = block + 1; i < end; ++i) {
        const float* prev =
            vert_right.data() + static_cast<std::size_t>(i - 1) * w;
        float* cur = vert_right.data() + static_cast<std::size_t>(i) * w;
        const float* a = padded_row(i);
        for (int x = 0; x < w; ++x) cur[x] = op(prev[x], a[x]);
      }
      float* l_last = vert_left.data() + static_cast<std::size_t>(end - 1) * w;
      std::copy(padded_row(end - 1), padded_row(end - 1) + w, l_last);
      for (int i = end - 2; i >= block; --i) {
        const float* next =
            vert_left.data() + static_cast<std::size_t>(i + 1) * w;
        float* cur = vert_left.data() + static_cast<std::size_t>(i) * w;
        const float* a = padded_row(i);
        for (int x = 0; x < w; ++x) cur[x] = op(next[x], a[x]);
      }
    }
    for (int y = 0; y < h; ++y) {
      const float* l = vert_left.data() + static_cast<std::size_t>(y) * w;
      const float* r =
          vert_right.data() + static_cast<std::size_t>(y + k - 1) * w;
      float* o = out.row(y, c).data();
      for (int x = 0; x < w; ++x) o[x] = op(l[x], r[x]);
    }
  }
}

// Exact median via an incrementally maintained sorted window: sliding one
// column in/out of the k x k window costs k binary-search erases + k
// binary-search inserts into a k^2 array (tiny memmoves) instead of
// rebuilding and nth_element-ing the window per pixel. The median is always
// an element of the input, so results match the naive filter bit-exactly —
// including the duplicated values clamped borders contribute. This is the
// fallback for float images off the 8/16-bit grids (see
// classify_median_path); the grid paths below are O(1) per pixel.
void rank_median_exact(const Image& img, int k, Image& out) {
  const int w = img.width();
  const int h = img.height();
  const std::size_t window_size = static_cast<std::size_t>(k) * k;
  const std::size_t mid = window_size / 2;
  std::vector<float> window;
  window.reserve(window_size);
  std::vector<const float*> rows(static_cast<std::size_t>(k));

  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < h; ++y) {
      for (int dy = 0; dy < k; ++dy) {
        rows[static_cast<std::size_t>(dy)] =
            img.row(std::min(y + dy, h - 1), c).data();
      }
      // Build the x = 0 window sorted.
      window.clear();
      for (int dx = 0; dx < k; ++dx) {
        const int col = std::min(dx, w - 1);
        for (int dy = 0; dy < k; ++dy) {
          window.push_back(rows[static_cast<std::size_t>(dy)][col]);
        }
      }
      std::sort(window.begin(), window.end());
      float* out_row = out.row(y, c).data();
      out_row[0] = window[mid];
      for (int x = 1; x < w; ++x) {
        // Slide: column x-1 leaves, column x+k-1 (clamped) enters. Each
        // leave/enter pair is one replace-and-rotate (a single short
        // memmove) rather than a separate erase + insert.
        const int col_out = x - 1;
        const int col_in = std::min(x + k - 1, w - 1);
        for (int dy = 0; dy < k; ++dy) {
          const float leave = rows[static_cast<std::size_t>(dy)][col_out];
          const float enter = rows[static_cast<std::size_t>(dy)][col_in];
          const auto pos =
              std::lower_bound(window.begin(), window.end(), leave);
          if (enter >= leave) {
            const auto dst =
                std::lower_bound(pos + 1, window.end(), enter);
            std::move(pos + 1, dst, pos);
            *(dst - 1) = enter;
          } else {
            const auto dst = std::lower_bound(window.begin(), pos, enter);
            std::move_backward(dst, pos, pos + 1);
            *dst = enter;
          }
        }
        out_row[x] = window[mid];
      }
    }
  }
}

// ------------------------------------------- running-histogram median --
//
// Perreault & Hébert 2007: one histogram per image column, maintained
// incrementally as the window moves down, and a kernel histogram that
// slides across the row by adding the entering column's histogram and
// subtracting the leaving one — constant work per pixel, independent of k.
// Two levels keep the per-pixel work small: 16 coarse bins (the high
// nibble) are merged on every step and locate the 16-bin fine segment
// holding the median; fine segments are synced lazily, only when the
// coarse descent lands on them, each tracking the window position it last
// summed. Both levels live in one contiguous 272-entry uint16 block per
// column (fine 0..255, coarse 256..271); the row-start rebuild is a SIMD
// sweep (simd::ops().hist_add_u16) and both rank descents are branch-free
// — on x86-64 an inlined SSE2 prefix-sum descent, elsewhere the scalar
// algorithm of the simd::SimdOps::hist_rank16_u16 contract.
//
// Counts are uint16: the kernel histogram holds exactly k*k samples
// (clamped borders re-count edge pixels), so k <= 255 guarantees no
// overflow; rank_median() falls back to the exact path beyond that.
constexpr int kFineBins8 = 256;
constexpr int kCoarseBins8 = 16;
constexpr int kHistStride8 = kFineBins8 + kCoarseBins8;

constexpr int kSegBins8 = 16;  // fine bins per coarse segment

// One level of the two-level rank descent: smallest index whose inclusive
// prefix sum exceeds `r` (16 when none does), with `*below` receiving the
// prefix sum before it — the simd::SimdOps::hist_rank16_u16 contract,
// inlined here because it runs twice per output pixel. Counts are
// integers, so both formulations below are exact and interchangeable.
// The SSE2 path keeps prefix sums in u16 lanes, which is valid because
// the k <= 255 routing guard bounds every window total by k*k <= 65025.
#if defined(__SSE2__)
// SSE2 is x86-64 baseline, so this TU may use it without -m flags. The
// descent works on 16-bin *inclusive prefix sums* held in two XMM halves:
// unsigned compare via saturating subtract, index from a psadbw count of
// the lanes the compare keeps. The prefixes themselves are maintained
// incrementally (add the prefix of the per-step delta strip), which keeps
// the per-pixel serial chain to one vector add + compare + count instead
// of a full in-loop prefix computation — the descent latency, not its
// throughput, is what bounds this filter.
inline __m128i load16(const std::uint16_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline void store16(std::uint16_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}
// Inclusive u16 prefix sum of 8 lanes (three lane-shift adds).
inline __m128i prefix8_sse2(__m128i x) {
  x = _mm_add_epi16(x, _mm_slli_si128(x, 2));
  x = _mm_add_epi16(x, _mm_slli_si128(x, 4));
  return _mm_add_epi16(x, _mm_slli_si128(x, 8));
}
// Broadcast lane 7 (the running total) to all lanes — two shuffles, no
// GPR round trip.
inline __m128i bcast_lane7_sse2(__m128i x) {
  x = _mm_shufflehi_epi16(x, _MM_SHUFFLE(3, 3, 3, 3));
  return _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
}
// Count of prefix lanes <= rank (== the descent index); the compare masks
// are returned for the caller's masked `below` sum. cum <= r  <=>
// saturating cum - r == 0 (unsigned u16 compare in SSE2).
inline int count_le_sse2(__m128i p0, __m128i p1, __m128i rv, __m128i* le0,
                         __m128i* le1) {
  const __m128i zero = _mm_setzero_si128();
  *le0 = _mm_cmpeq_epi16(_mm_subs_epu16(p0, rv), zero);
  *le1 = _mm_cmpeq_epi16(_mm_subs_epu16(p1, rv), zero);
  // Horizontal count of set lanes via psadbw over 0/1/2-valued bytes.
  // Never use movemask + __builtin_popcount here: without -mpopcnt that
  // lowers to a __popcountdi2 libcall, and two calls per pixel force the
  // compiler to spill every live XMM register around them — measured as
  // the single largest cost in this loop.
  const __m128i one = _mm_set1_epi16(1);
  const __m128i cnt = _mm_sad_epu8(
      _mm_add_epi16(_mm_and_si128(*le0, one), _mm_and_si128(*le1, one)),
      zero);
  return _mm_cvtsi128_si32(_mm_add_epi64(cnt, _mm_srli_si128(cnt, 8)));
}
#else
inline int hist_rank16(const std::uint16_t* bins, std::uint32_t r,
                       std::uint32_t* below) {
  std::uint32_t cum = 0;
  std::uint32_t pre = 0;
  int idx = 0;
  for (int i = 0; i < 16; ++i) {
    cum += bins[i];
    const bool le = cum <= r;
    idx += le ? 1 : 0;
    pre = le ? cum : pre;
  }
  *below = pre;
  return idx;
}
#endif

void rank_median_hist8(const Image& img, int k, Image& out) {
  const int w = img.width();
  const int h = img.height();
  const simd::SimdOps& ops = simd::ops();
  const unsigned rank = static_cast<unsigned>(k) * k / 2;  // upper median

  std::vector<std::uint8_t> idx(img.plane_size());
  std::vector<std::uint16_t> cols(static_cast<std::size_t>(w) *
                                  kHistStride8);
  std::vector<std::uint16_t> kern(kHistStride8);
  // sync[s] = window position x whose columns the kernel fine segment s
  // currently sums. The coarse level is merged every step; fine segments
  // are brought forward only when the coarse descent lands on them
  // (Perreault & Hébert's conditional fine update) — with spatially
  // coherent medians that is a couple of 16-bin column strips per pixel
  // instead of the full 256-bin merge.
  std::array<int, kCoarseBins8> sync{};
  const auto col_hist = [&](int x) {
    return cols.data() + static_cast<std::size_t>(x) * kHistStride8;
  };
#if defined(__SSE2__)
  // Median codes are produced as integers and converted to float in one
  // vector pass per row: a per-pixel cvtsi2ss sits on the already tight
  // descent chain, a batched cvtdq2ps does not.
  std::vector<std::int32_t> code(static_cast<std::size_t>(w));
#endif

#if !defined(__SSE2__)
  // Bring fine segment s forward from window position sync[s] to x: slide
  // (subtract the leaving column strip, add the entering one, exactly the
  // strips a full per-step merge would have applied) — or rebuild from the
  // k window columns when that is fewer strip operations.
  const auto sync_segment = [&](int s, int x) {
    std::uint16_t* seg = kern.data() + s * kSegBins8;
    const int x0 = sync[static_cast<std::size_t>(s)];
    if (x0 == x) return;
    if (2 * (x - x0) > k + 1) {
      std::fill(seg, seg + kSegBins8, std::uint16_t{0});
      for (int j = 0; j < k; ++j) {
        const std::uint16_t* col =
            col_hist(std::min(x + j, w - 1)) + s * kSegBins8;
        for (int t = 0; t < kSegBins8; ++t) {
          seg[t] = static_cast<std::uint16_t>(seg[t] + col[t]);
        }
      }
    } else {
      for (int j = x0; j < x; ++j) {
        const std::uint16_t* add =
            col_hist(std::min(j + k, w - 1)) + s * kSegBins8;
        const std::uint16_t* sub = col_hist(j) + s * kSegBins8;
        for (int t = 0; t < kSegBins8; ++t) {
          seg[t] = static_cast<std::uint16_t>(seg[t] + add[t] - sub[t]);
        }
      }
    }
    sync[static_cast<std::size_t>(s)] = x;
  };

  // Two-level descent at window position x: branch-free coarse rank, lazy
  // sync of the winning segment, branch-free fine rank within it. The
  // descents are inlined (an indirect SimdOps call per level would cost
  // more than the scan) and use the hist_rank16_u16 algorithm the parity
  // tests pin; results are integer counts, identical on every path.
  const auto select = [&](int x) {
    std::uint32_t below = 0;
    const int s = hist_rank16(kern.data() + kFineBins8, rank, &below);
    sync_segment(s, x);
    std::uint32_t unused = 0;
    const int off =
        hist_rank16(kern.data() + s * kSegBins8, rank - below, &unused);
    return static_cast<float>(s * kSegBins8 + off);
  };
#endif

  for (int c = 0; c < img.channels(); ++c) {
    // Values are exactly integral in [0, 255] (classify_median_path), so
    // the u8 index plane is a lossless relabeling.
    const float* plane = img.plane(c).data();
    for (std::size_t i = 0; i < idx.size(); ++i) {
      idx[i] = static_cast<std::uint8_t>(static_cast<int>(plane[i]));
    }

    // Prime the column histograms with window rows of y = 0 (clamped).
    std::fill(cols.begin(), cols.end(), std::uint16_t{0});
    for (int r = 0; r < k; ++r) {
      const std::uint8_t* row =
          idx.data() + static_cast<std::size_t>(std::min(r, h - 1)) * w;
      for (int x = 0; x < w; ++x) {
        std::uint16_t* col = col_hist(x);
        ++col[row[x]];
        ++col[kFineBins8 + (row[x] >> 4)];
      }
    }

    for (int y = 0; y < h; ++y) {
      if (y > 0) {
        // Window rows {clamp(y-1+d)} -> {clamp(y+d)}: row y-1 leaves, row
        // clamp(y+k-1) enters (identical when the bottom edge clamps).
        const std::uint8_t* leave =
            idx.data() + static_cast<std::size_t>(y - 1) * w;
        const std::uint8_t* enter =
            idx.data() + static_cast<std::size_t>(std::min(y + k - 1, h - 1)) * w;
        for (int x = 0; x < w; ++x) {
          std::uint16_t* col = col_hist(x);
          --col[leave[x]];
          --col[kFineBins8 + (leave[x] >> 4)];
          ++col[enter[x]];
          ++col[kFineBins8 + (enter[x] >> 4)];
        }
      }

      // Full kernel histogram (both levels, every segment synced) at x = 0.
      // Columns past the right edge replicate column w-1, re-adding its
      // histogram.
      std::fill(kern.begin(), kern.end(), std::uint16_t{0});
      for (int j = 0; j < k; ++j) {
        ops.hist_add_u16(kern.data(), col_hist(std::min(j, w - 1)),
                         kHistStride8);
      }
      sync.fill(0);
      float* out_row = out.row(y, c).data();
#if defined(__SSE2__)
      // Register-resident, prefix-domain inner loop. Everything the two
      // rank descents touch stays in XMM registers across the row:
      //   cp0/cp1 — inclusive prefix sums of the 16 coarse counts,
      //   fp0/fp1 — the prefix sums of the fine segment `s_cur`.
      // Per step, the prefix registers advance by the *prefix of the
      // delta strip* (entering minus leaving column), which is
      // independent of the descents and schedules ahead of them; the
      // per-pixel serial chain is then just add -> compare -> lane
      // count per level. Descent latency — not arithmetic
      // throughput — is what bounds this loop; formulations that
      // recompute prefixes in-loop or round-trip counts through memory
      // measure ~50% slower on chain latency and store-forwarding
      // stalls.
      //
      // u16 prefix lanes stay exact under the wrapping deltas because
      // every true prefix is bounded by the window total k*k <= 65025.
      //
      // The fine segment is synced to memory only when the descent
      // *switches* segments (sync[] keeps each segment's last synced
      // position); while resident it slides in registers and memory is
      // deliberately left stale — correct, because sync[s_cur] still
      // names the position its memory copy reflects.
      const __m128i rankv = _mm_set1_epi16(static_cast<short>(rank));
      __m128i cp0 = prefix8_sse2(load16(kern.data() + kFineBins8));
      __m128i cp1 =
          _mm_add_epi16(prefix8_sse2(load16(kern.data() + kFineBins8 + 8)),
                        bcast_lane7_sse2(cp0));
      int s_cur = -1;  // no fine segment resident yet
      __m128i fp0 = _mm_setzero_si128();
      __m128i fp1 = _mm_setzero_si128();
      for (int x = 0; x < w; ++x) {
        if (x > 0) {
          const std::uint16_t* addcol = col_hist(std::min(x + k - 1, w - 1));
          const std::uint16_t* subcol = col_hist(x - 1);
          // Coarse prefix advances by the prefix of the delta strip.
          const std::uint16_t* addc = addcol + kFineBins8;
          const std::uint16_t* subc = subcol + kFineBins8;
          const __m128i dc0 = _mm_sub_epi16(load16(addc), load16(subc));
          const __m128i dc1 =
              _mm_sub_epi16(load16(addc + 8), load16(subc + 8));
          const __m128i pc0 = prefix8_sse2(dc0);
          const __m128i pc1 =
              _mm_add_epi16(prefix8_sse2(dc1), bcast_lane7_sse2(pc0));
          cp0 = _mm_add_epi16(cp0, pc0);
          cp1 = _mm_add_epi16(cp1, pc1);
          // Resident fine segment: slide its prefix the same way. This
          // is speculative — wasted only when the descent switches
          // segments — and its strip addresses are known before the
          // coarse descent resolves, so it runs in the latency shadow.
          const std::uint16_t* addf = addcol + s_cur * kSegBins8;
          const std::uint16_t* subf = subcol + s_cur * kSegBins8;
          const __m128i df0 = _mm_sub_epi16(load16(addf), load16(subf));
          const __m128i df1 =
              _mm_sub_epi16(load16(addf + 8), load16(subf + 8));
          const __m128i pf0 = prefix8_sse2(df0);
          const __m128i pf1 =
              _mm_add_epi16(prefix8_sse2(df1), bcast_lane7_sse2(pf0));
          fp0 = _mm_add_epi16(fp0, pf0);
          fp1 = _mm_add_epi16(fp1, pf1);
        }
        __m128i le0;
        __m128i le1;
        const int s = count_le_sse2(cp0, cp1, rankv, &le0, &le1);
        // below = coarse prefix before segment s. The masked prefixes are
        // nondecreasing, so their max is exactly cp[s-1]; every lane the
        // mask keeps is <= rank <= 32512, inside signed-16 range, so
        // epi16 max is exact. Folded and broadcast without leaving the
        // vector domain — a GPR round trip (extract + set1) would add
        // ~6 cycles to the chain feeding the fine compare — and folds in
        // parallel with the popcount that produces s.
        __m128i bv = _mm_max_epi16(_mm_and_si128(cp0, le0),
                                   _mm_and_si128(cp1, le1));
        bv = _mm_max_epi16(bv, _mm_srli_si128(bv, 8));
        bv = _mm_max_epi16(bv, _mm_srli_si128(bv, 4));
        bv = _mm_max_epi16(bv, _mm_srli_si128(bv, 2));
        bv = _mm_shufflelo_epi16(bv, _MM_SHUFFLE(0, 0, 0, 0));
        bv = _mm_shuffle_epi32(bv, _MM_SHUFFLE(0, 0, 0, 0));
        const __m128i rvf = _mm_sub_epi16(rankv, bv);
        if (s != s_cur) {
          // Bring segment s forward from sync[s] (slide, or rebuild from
          // the k window columns when that is fewer strips), write the
          // raw counts back for future switches, and promote its prefix
          // to the registers.
          std::uint16_t* seg = kern.data() + s * kSegBins8;
          __m128i f0;
          __m128i f1;
          const int x0 = sync[static_cast<std::size_t>(s)];
          if (x0 == x) {
            f0 = load16(seg);
            f1 = load16(seg + 8);
          } else {
            if (2 * (x - x0) > k + 1) {
              f0 = _mm_setzero_si128();
              f1 = _mm_setzero_si128();
              for (int j = 0; j < k; ++j) {
                const std::uint16_t* col =
                    col_hist(std::min(x + j, w - 1)) + s * kSegBins8;
                f0 = _mm_add_epi16(f0, load16(col));
                f1 = _mm_add_epi16(f1, load16(col + 8));
              }
            } else {
              f0 = load16(seg);
              f1 = load16(seg + 8);
              for (int j = x0; j < x; ++j) {
                const std::uint16_t* add =
                    col_hist(std::min(j + k, w - 1)) + s * kSegBins8;
                const std::uint16_t* sub = col_hist(j) + s * kSegBins8;
                f0 = _mm_sub_epi16(_mm_add_epi16(f0, load16(add)),
                                   load16(sub));
                f1 = _mm_sub_epi16(_mm_add_epi16(f1, load16(add + 8)),
                                   load16(sub + 8));
              }
            }
            store16(seg, f0);
            store16(seg + 8, f1);
            sync[static_cast<std::size_t>(s)] = x;
          }
          fp0 = prefix8_sse2(f0);
          fp1 = _mm_add_epi16(prefix8_sse2(f1), bcast_lane7_sse2(fp0));
          s_cur = s;
        }
        __m128i g0;
        __m128i g1;
        const int off = count_le_sse2(fp0, fp1, rvf, &g0, &g1);
        code[x] = s * kSegBins8 + off;
      }
      {
        int x = 0;
        for (; x + 4 <= w; x += 4) {
          _mm_storeu_ps(out_row + x,
                        _mm_cvtepi32_ps(_mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(code.data() + x))));
        }
        for (; x < w; ++x) out_row[x] = static_cast<float>(code[x]);
      }
#else
      out_row[0] = select(0);
      for (int x = 1; x < w; ++x) {
        // Slide the coarse level only; fine segments catch up on demand.
        const std::uint16_t* addc =
            col_hist(std::min(x + k - 1, w - 1)) + kFineBins8;
        const std::uint16_t* subc = col_hist(x - 1) + kFineBins8;
        std::uint16_t* kc = kern.data() + kFineBins8;
        for (int t = 0; t < kCoarseBins8; ++t) {
          kc[t] = static_cast<std::uint16_t>(kc[t] + addc[t] - subc[t]);
        }
        out_row[x] = select(x);
      }
#endif
    }
  }
}

// 16-bit grid (values i / 256 for integral i in [0, 65535]): per-column
// fine histograms would need 128 KiB each, so this path runs Huang's
// algorithm instead — one kernel histogram, updated with the k samples of
// the entering column and the k of the leaving one — walked in serpentine
// order so moving down a row reuses the window instead of rebuilding it.
// Still two-level (256 coarse segments of 256 fine bins) to keep the
// median search short. O(k) per pixel, but with counters instead of the
// sorted window's O(k log k) memmove traffic.
void rank_median_hist16(const Image& img, int k, Image& out) {
  const int w = img.width();
  const int h = img.height();
  const unsigned rank = static_cast<unsigned>(k) * k / 2;

  std::vector<std::uint16_t> idx(img.plane_size());
  std::vector<std::uint16_t> fine(65536);
  std::vector<std::uint16_t> coarse(256);
  const auto add = [&](std::uint16_t v) {
    ++fine[v];
    ++coarse[v >> 8];
  };
  const auto remove = [&](std::uint16_t v) {
    --fine[v];
    --coarse[v >> 8];
  };
  const auto select = [&]() {
    unsigned cum = 0;
    int seg = 0;
    for (;; ++seg) {
      const unsigned next = cum + coarse[seg];
      if (next > rank) break;
      cum = next;
    }
    int bin = seg * 256;
    for (;; ++bin) {
      cum += fine[bin];
      if (cum > rank) break;
    }
    // Exact reconstruction: bin and 2^-8 are both exact in float, so the
    // product is the original sample value bit for bit.
    return static_cast<float>(bin) * 0.00390625f;
  };

  std::vector<const std::uint16_t*> rows(static_cast<std::size_t>(k));
  for (int c = 0; c < img.channels(); ++c) {
    const float* plane = img.plane(c).data();
    for (std::size_t i = 0; i < idx.size(); ++i) {
      // v * 256 is integral and in [0, 65535] (classify_median_path); the
      // power-of-two scale is exact, so this is a lossless relabeling.
      idx[i] = static_cast<std::uint16_t>(
          static_cast<int>(plane[i] * 256.0f));
    }
    std::fill(fine.begin(), fine.end(), std::uint16_t{0});
    std::fill(coarse.begin(), coarse.end(), std::uint16_t{0});

    // Initial window at (0, 0), clamped rows and columns.
    for (int dy = 0; dy < k; ++dy) {
      const std::uint16_t* row =
          idx.data() + static_cast<std::size_t>(std::min(dy, h - 1)) * w;
      for (int dx = 0; dx < k; ++dx) add(row[std::min(dx, w - 1)]);
    }

    int x = 0;
    int dir = 1;
    for (int y = 0; y < h; ++y) {
      for (int dy = 0; dy < k; ++dy) {
        rows[static_cast<std::size_t>(dy)] =
            idx.data() + static_cast<std::size_t>(std::min(y + dy, h - 1)) * w;
      }
      if (y > 0) {
        // Move the window down in place: row y-1 leaves, clamp(y+k-1)
        // enters, at the current window columns {clamp(x+d)}.
        const std::uint16_t* leave =
            idx.data() + static_cast<std::size_t>(y - 1) * w;
        const std::uint16_t* enter =
            idx.data() + static_cast<std::size_t>(std::min(y + k - 1, h - 1)) * w;
        for (int d = 0; d < k; ++d) {
          const int col = std::min(x + d, w - 1);
          remove(leave[col]);
          add(enter[col]);
        }
      }
      float* out_row = out.row(y, c).data();
      for (;;) {
        out_row[x] = select();
        if (dir > 0 ? x == w - 1 : x == 0) break;
        if (dir > 0) {
          // Columns {clamp(x+d)} -> {clamp(x+1+d)}: col x leaves,
          // clamp(x+k) enters.
          const int in_col = std::min(x + k, w - 1);
          for (int dy = 0; dy < k; ++dy) {
            remove(rows[static_cast<std::size_t>(dy)][x]);
            add(rows[static_cast<std::size_t>(dy)][in_col]);
          }
          ++x;
        } else {
          const int out_col = std::min(x + k - 1, w - 1);
          for (int dy = 0; dy < k; ++dy) {
            remove(rows[static_cast<std::size_t>(dy)][out_col]);
            add(rows[static_cast<std::size_t>(dy)][x - 1]);
          }
          --x;
        }
      }
      dir = -dir;
    }
  }
}

obs::Counter& median_path_counter(MedianPath path) {
  static obs::Counter& grid8 =
      obs::MetricsRegistry::instance().counter("rank_median/grid8");
  static obs::Counter& grid16 =
      obs::MetricsRegistry::instance().counter("rank_median/grid16");
  static obs::Counter& exact =
      obs::MetricsRegistry::instance().counter("rank_median/exact");
  switch (path) {
    case MedianPath::Grid8:
      return grid8;
    case MedianPath::Grid16:
      return grid16;
    case MedianPath::Exact:
      break;
  }
  return exact;
}

void rank_median(const Image& img, int k, Image& out) {
  // uint16 histogram counts require k*k <= 65535.
  const MedianPath path =
      k <= 255 ? classify_median_path(img) : MedianPath::Exact;
  median_path_counter(path).add();
  switch (path) {
    case MedianPath::Grid8:
      rank_median_hist8(img, k, out);
      break;
    case MedianPath::Grid16:
      rank_median_hist16(img, k, out);
      break;
    case MedianPath::Exact:
      rank_median_exact(img, k, out);
      break;
  }
}

}  // namespace

MedianPath classify_median_path(const Image& img) {
  // grid8 implies grid16 (v integral in [0,255] => v*256 integral in
  // [0,65280]), so the scan can stop as soon as grid16 fails.
  bool grid8 = true;
  const float* data = img.data();
  const std::size_t n = img.size();
  for (std::size_t i = 0; i < n; ++i) {
    const float v = data[i];
    // Range checks are false for NaN; the int casts below are reached only
    // for finite in-range values.
    const float scaled = v * 256.0f;  // power-of-two scale: exact
    if (!(scaled >= 0.0f && scaled <= 65535.0f &&
          static_cast<float>(static_cast<int>(scaled)) == scaled)) {
      return MedianPath::Exact;
    }
    if (grid8) {
      grid8 = v <= 255.0f && static_cast<float>(static_cast<int>(v)) == v;
    }
  }
  return grid8 ? MedianPath::Grid8 : MedianPath::Grid16;
}

Image rank_filter(const Image& img, int k, RankOp op) {
  DECAM_SPAN("imaging/rank_filter");
  DECAM_REQUIRE(!img.empty(), "rank_filter of empty image");
  DECAM_REQUIRE(k >= 1, "window size must be >= 1");
  if (k == 1) return img;  // 1x1 window: identity for min/median/max
  Image out(img.width(), img.height(), img.channels());
  switch (op) {
    case RankOp::Min:
      rank_min_max(img, k, MinOp{}, out);
      break;
    case RankOp::Max:
      rank_min_max(img, k, MaxOp{}, out);
      break;
    case RankOp::Median:
      rank_median(img, k, out);
      break;
  }
  return out;
}

namespace {

// Horizontal then vertical pass with an arbitrary normalised 1-D kernel.
//
// Accumulator policy (see filter.h): per output sample, taps are multiplied
// and summed in DOUBLE precision in ascending tap order, and the total is
// truncated to float once. Both passes read from edge-padded contiguous
// scanlines (horizontal: an explicit padded copy of the row; vertical: a
// clamped row pointer) and run each tap as one vectorized row sweep
// (simd::ops().tap_accumulate_f32 — float product, double accumulate). Each
// accumulator still receives its taps in ascending offset order starting
// from 0.0, so the arithmetic sequence per pixel is exactly the one the
// original at_clamped formulation produced, keeping this path
// bit-compatible with it on every dispatch variant.
Image separable_convolve(const Image& img, const std::vector<float>& kernel) {
  const int radius = static_cast<int>(kernel.size() / 2);
  const int w = img.width();
  const int h = img.height();
  const int taps = static_cast<int>(kernel.size());
  const simd::SimdOps& ops = simd::ops();

  Image mid(w, h, img.channels());
  std::vector<float> pad(static_cast<std::size_t>(w + 2 * radius));
  std::vector<double> acc(static_cast<std::size_t>(w));
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < h; ++y) {
      const float* row = img.row(y, c).data();
      std::fill(pad.begin(), pad.begin() + radius, row[0]);
      std::copy(row, row + w, pad.begin() + radius);
      std::fill(pad.begin() + radius + w, pad.end(), row[w - 1]);
      std::fill(acc.begin(), acc.end(), 0.0);
      for (int i = 0; i < taps; ++i) {
        ops.tap_accumulate_f32(acc.data(), pad.data() + i,
                               kernel[static_cast<std::size_t>(i)], w);
      }
      ops.narrow_f64_f32(mid.row(y, c).data(), acc.data(), w);
    }
  }

  Image out(w, h, img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < h; ++y) {
      std::fill(acc.begin(), acc.end(), 0.0);
      for (int i = 0; i < taps; ++i) {
        const float* mid_row =
            mid.row(std::clamp(y + i - radius, 0, h - 1), c).data();
        ops.tap_accumulate_f32(acc.data(), mid_row,
                               kernel[static_cast<std::size_t>(i)], w);
      }
      ops.narrow_f64_f32(out.row(y, c).data(), acc.data(), w);
    }
  }
  return out;
}

}  // namespace

Image box_blur(const Image& img, int k) {
  DECAM_SPAN("imaging/box_blur");
  DECAM_REQUIRE(k >= 1 && k % 2 == 1, "box blur needs odd window size");
  if (k == 1) return img;
  // Running-sum box: the window mean is maintained incrementally (add the
  // entering sample, subtract the leaving one), making the cost O(1) per
  // pixel for any k. The double running sum re-associates the addition
  // order relative to the per-window tap sum, so outputs may differ from
  // the dense formulation in the last float ulp (within the documented
  // 1e-6-per-255 tolerance; see filter.h).
  const int radius = (k - 1) / 2;
  const double inv_k = 1.0 / k;
  const int w = img.width();
  const int h = img.height();

  Image mid(w, h, img.channels());
  std::vector<float> pad(static_cast<std::size_t>(w + 2 * radius));
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < h; ++y) {
      const float* row = img.row(y, c).data();
      std::fill(pad.begin(), pad.begin() + radius, row[0]);
      std::copy(row, row + w, pad.begin() + radius);
      std::fill(pad.begin() + radius + w, pad.end(), row[w - 1]);
      float* mid_row = mid.row(y, c).data();
      double sum = 0.0;
      for (int i = 0; i < k; ++i) sum += pad[static_cast<std::size_t>(i)];
      mid_row[0] = static_cast<float>(sum * inv_k);
      for (int x = 1; x < w; ++x) {
        sum += pad[static_cast<std::size_t>(x + k - 1)] -
               pad[static_cast<std::size_t>(x - 1)];
        mid_row[x] = static_cast<float>(sum * inv_k);
      }
    }
  }

  Image out(w, h, img.channels());
  std::vector<double> acc(static_cast<std::size_t>(w));
  auto mid_row = [&](int y, int c) {
    return mid.row(std::clamp(y, 0, h - 1), c).data();
  };
  for (int c = 0; c < img.channels(); ++c) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (int i = -radius; i <= radius; ++i) {
      const float* row = mid_row(i, c);
      for (int x = 0; x < w; ++x) acc[static_cast<std::size_t>(x)] += row[x];
    }
    for (int y = 0; y < h; ++y) {
      float* out_row = out.row(y, c).data();
      for (int x = 0; x < w; ++x) {
        out_row[x] =
            static_cast<float>(acc[static_cast<std::size_t>(x)] * inv_k);
      }
      if (y + 1 < h) {
        const float* enter = mid_row(y + 1 + radius, c);
        const float* leave = mid_row(y - radius, c);
        for (int x = 0; x < w; ++x) {
          acc[static_cast<std::size_t>(x)] += static_cast<double>(enter[x]) -
                                              leave[x];
        }
      }
    }
  }
  return out;
}

Image gaussian_blur(const Image& img, double sigma) {
  DECAM_SPAN("imaging/gaussian_blur");
  DECAM_REQUIRE(sigma > 0.0, "sigma must be positive");
  const int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double w = std::exp(-(i * i) / (2.0 * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(w);
    sum += w;
  }
  for (float& w : kernel) w = static_cast<float>(w / sum);
  return separable_convolve(img, kernel);
}

}  // namespace decam
