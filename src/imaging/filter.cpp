#include "imaging/filter.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/span.h"

namespace decam {

Image rank_filter(const Image& img, int k, RankOp op) {
  DECAM_SPAN("imaging/rank_filter");
  DECAM_REQUIRE(!img.empty(), "rank_filter of empty image");
  DECAM_REQUIRE(k >= 1, "window size must be >= 1");
  Image out(img.width(), img.height(), img.channels());
  std::vector<float> window;
  window.reserve(static_cast<std::size_t>(k) * k);
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        window.clear();
        for (int dy = 0; dy < k; ++dy) {
          for (int dx = 0; dx < k; ++dx) {
            window.push_back(img.at_clamped(x + dx, y + dy, c));
          }
        }
        float value = 0.0f;
        switch (op) {
          case RankOp::Min:
            value = *std::min_element(window.begin(), window.end());
            break;
          case RankOp::Max:
            value = *std::max_element(window.begin(), window.end());
            break;
          case RankOp::Median: {
            auto mid = window.begin() + window.size() / 2;
            std::nth_element(window.begin(), mid, window.end());
            value = *mid;
            break;
          }
        }
        out.at(x, y, c) = value;
      }
    }
  }
  return out;
}

namespace {

// Horizontal then vertical pass with an arbitrary normalised 1-D kernel.
Image separable_convolve(const Image& img, const std::vector<float>& kernel) {
  const int radius = static_cast<int>(kernel.size() / 2);
  Image mid(img.width(), img.height(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        double acc = 0.0;
        for (int i = -radius; i <= radius; ++i) {
          acc += kernel[static_cast<std::size_t>(i + radius)] *
                 img.at_clamped(x + i, y, c);
        }
        mid.at(x, y, c) = static_cast<float>(acc);
      }
    }
  }
  Image out(img.width(), img.height(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        double acc = 0.0;
        for (int i = -radius; i <= radius; ++i) {
          acc += kernel[static_cast<std::size_t>(i + radius)] *
                 mid.at_clamped(x, y + i, c);
        }
        out.at(x, y, c) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

}  // namespace

Image box_blur(const Image& img, int k) {
  DECAM_SPAN("imaging/box_blur");
  DECAM_REQUIRE(k >= 1 && k % 2 == 1, "box blur needs odd window size");
  std::vector<float> kernel(static_cast<std::size_t>(k), 1.0f / k);
  return separable_convolve(img, kernel);
}

Image gaussian_blur(const Image& img, double sigma) {
  DECAM_SPAN("imaging/gaussian_blur");
  DECAM_REQUIRE(sigma > 0.0, "sigma must be positive");
  const int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double w = std::exp(-(i * i) / (2.0 * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(w);
    sum += w;
  }
  for (float& w : kernel) w = static_cast<float>(w / sum);
  return separable_convolve(img, kernel);
}

}  // namespace decam
