#include "imaging/filter.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/span.h"

namespace decam {

namespace {

struct MinOp {
  float operator()(float a, float b) const { return a < b ? a : b; }
};
struct MaxOp {
  float operator()(float a, float b) const { return a > b ? a : b; }
};

// --------------------------------------------------------- van Herk core --
//
// Sliding-window min/max in 3 comparisons per sample independent of k
// (van Herk 1992; Gil & Werman 1993). Over a padded array `a` of length
// m = n + k - 1 the window result is
//     out[j] = op(L[j], R[j + k - 1]),
// where R is the running op from the start of each k-aligned block and L the
// running op from the end of the block. Border replication is handled by the
// caller padding the last k - 1 samples with the edge value, which
// reproduces the clamped-window semantics of the naive filter exactly (the
// result is always an element of the input, so the pass is bit-exact).

// One padded scanline: out[j] = op over a[j .. j+k-1], j in [0, n).
template <typename Op>
void van_herk_line(const float* a, int m, int k, float* left, float* right,
                   float* out, int n, Op op) {
  for (int block = 0; block < m; block += k) {
    const int end = std::min(block + k, m);
    right[block] = a[block];
    for (int i = block + 1; i < end; ++i) right[i] = op(right[i - 1], a[i]);
    left[end - 1] = a[end - 1];
    for (int i = end - 2; i >= block; --i) left[i] = op(left[i + 1], a[i]);
  }
  for (int j = 0; j < n; ++j) out[j] = op(left[j], right[j + k - 1]);
}

// Separable rank min/max: horizontal van Herk per scanline, then a vertical
// van Herk over whole rows (row-major, so the plane is walked in contiguous
// cache lines; the "array elements" of the vertical pass are entire rows
// combined elementwise).
template <typename Op>
void rank_min_max(const Image& img, int k, Op op, Image& out) {
  const int w = img.width();
  const int h = img.height();
  const int mx = w + k - 1;  // padded scanline length
  const int my = h + k - 1;  // padded row count

  std::vector<float> pad(static_cast<std::size_t>(mx));
  std::vector<float> left(static_cast<std::size_t>(mx));
  std::vector<float> right(static_cast<std::size_t>(mx));
  // Vertical scratch: block-prefix and block-suffix planes over padded rows.
  const std::size_t plane = static_cast<std::size_t>(my) * w;
  std::vector<float> vert_right(plane);
  std::vector<float> vert_left(plane);
  Image row_pass(w, h, 1);

  for (int c = 0; c < img.channels(); ++c) {
    // Horizontal: out(x) = op over row[x .. x+k-1] with edge replication.
    for (int y = 0; y < h; ++y) {
      const float* row = img.row(y, c).data();
      std::copy(row, row + w, pad.begin());
      std::fill(pad.begin() + w, pad.end(), row[w - 1]);
      van_herk_line(pad.data(), mx, k, left.data(), right.data(),
                    row_pass.row(y, 0).data(), w, op);
    }

    // Vertical: the padded "array" is the row sequence 0..h-1 followed by
    // k-1 copies of the last row; R/L are computed per k-aligned block.
    auto padded_row = [&](int r) {
      return row_pass.row(std::min(r, h - 1), 0).data();
    };
    for (int block = 0; block < my; block += k) {
      const int end = std::min(block + k, my);
      float* r_first = vert_right.data() + static_cast<std::size_t>(block) * w;
      std::copy(padded_row(block), padded_row(block) + w, r_first);
      for (int i = block + 1; i < end; ++i) {
        const float* prev =
            vert_right.data() + static_cast<std::size_t>(i - 1) * w;
        float* cur = vert_right.data() + static_cast<std::size_t>(i) * w;
        const float* a = padded_row(i);
        for (int x = 0; x < w; ++x) cur[x] = op(prev[x], a[x]);
      }
      float* l_last = vert_left.data() + static_cast<std::size_t>(end - 1) * w;
      std::copy(padded_row(end - 1), padded_row(end - 1) + w, l_last);
      for (int i = end - 2; i >= block; --i) {
        const float* next =
            vert_left.data() + static_cast<std::size_t>(i + 1) * w;
        float* cur = vert_left.data() + static_cast<std::size_t>(i) * w;
        const float* a = padded_row(i);
        for (int x = 0; x < w; ++x) cur[x] = op(next[x], a[x]);
      }
    }
    for (int y = 0; y < h; ++y) {
      const float* l = vert_left.data() + static_cast<std::size_t>(y) * w;
      const float* r =
          vert_right.data() + static_cast<std::size_t>(y + k - 1) * w;
      float* o = out.row(y, c).data();
      for (int x = 0; x < w; ++x) o[x] = op(l[x], r[x]);
    }
  }
}

// Exact median via an incrementally maintained sorted window: sliding one
// column in/out of the k x k window costs k binary-search erases + k
// binary-search inserts into a k^2 array (tiny memmoves) instead of
// rebuilding and nth_element-ing the window per pixel. The median is always
// an element of the input, so results match the naive filter bit-exactly —
// including the duplicated values clamped borders contribute.
void rank_median(const Image& img, int k, Image& out) {
  const int w = img.width();
  const int h = img.height();
  const std::size_t window_size = static_cast<std::size_t>(k) * k;
  const std::size_t mid = window_size / 2;
  std::vector<float> window;
  window.reserve(window_size);
  std::vector<const float*> rows(static_cast<std::size_t>(k));

  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < h; ++y) {
      for (int dy = 0; dy < k; ++dy) {
        rows[static_cast<std::size_t>(dy)] =
            img.row(std::min(y + dy, h - 1), c).data();
      }
      // Build the x = 0 window sorted.
      window.clear();
      for (int dx = 0; dx < k; ++dx) {
        const int col = std::min(dx, w - 1);
        for (int dy = 0; dy < k; ++dy) {
          window.push_back(rows[static_cast<std::size_t>(dy)][col]);
        }
      }
      std::sort(window.begin(), window.end());
      float* out_row = out.row(y, c).data();
      out_row[0] = window[mid];
      for (int x = 1; x < w; ++x) {
        // Slide: column x-1 leaves, column x+k-1 (clamped) enters. Each
        // leave/enter pair is one replace-and-rotate (a single short
        // memmove) rather than a separate erase + insert.
        const int col_out = x - 1;
        const int col_in = std::min(x + k - 1, w - 1);
        for (int dy = 0; dy < k; ++dy) {
          const float leave = rows[static_cast<std::size_t>(dy)][col_out];
          const float enter = rows[static_cast<std::size_t>(dy)][col_in];
          const auto pos =
              std::lower_bound(window.begin(), window.end(), leave);
          if (enter >= leave) {
            const auto dst =
                std::lower_bound(pos + 1, window.end(), enter);
            std::move(pos + 1, dst, pos);
            *(dst - 1) = enter;
          } else {
            const auto dst = std::lower_bound(window.begin(), pos, enter);
            std::move_backward(dst, pos, pos + 1);
            *dst = enter;
          }
        }
        out_row[x] = window[mid];
      }
    }
  }
}

}  // namespace

Image rank_filter(const Image& img, int k, RankOp op) {
  DECAM_SPAN("imaging/rank_filter");
  DECAM_REQUIRE(!img.empty(), "rank_filter of empty image");
  DECAM_REQUIRE(k >= 1, "window size must be >= 1");
  if (k == 1) return img;  // 1x1 window: identity for min/median/max
  Image out(img.width(), img.height(), img.channels());
  switch (op) {
    case RankOp::Min:
      rank_min_max(img, k, MinOp{}, out);
      break;
    case RankOp::Max:
      rank_min_max(img, k, MaxOp{}, out);
      break;
    case RankOp::Median:
      rank_median(img, k, out);
      break;
  }
  return out;
}

namespace {

// Horizontal then vertical pass with an arbitrary normalised 1-D kernel.
//
// Accumulator policy (see filter.h): per output sample, taps are multiplied
// and summed in DOUBLE precision in ascending tap order, and the total is
// truncated to float once. Both passes read from edge-padded contiguous
// scanlines (horizontal: an explicit padded copy of the row; vertical: a
// clamped row pointer), so the inner loops are branch-free — the arithmetic
// sequence per pixel is exactly the one the original at_clamped formulation
// produced, keeping this path bit-compatible with it.
Image separable_convolve(const Image& img, const std::vector<float>& kernel) {
  const int radius = static_cast<int>(kernel.size() / 2);
  const int w = img.width();
  const int h = img.height();
  const int taps = static_cast<int>(kernel.size());

  Image mid(w, h, img.channels());
  std::vector<float> pad(static_cast<std::size_t>(w + 2 * radius));
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < h; ++y) {
      const float* row = img.row(y, c).data();
      std::fill(pad.begin(), pad.begin() + radius, row[0]);
      std::copy(row, row + w, pad.begin() + radius);
      std::fill(pad.begin() + radius + w, pad.end(), row[w - 1]);
      float* mid_row = mid.row(y, c).data();
      for (int x = 0; x < w; ++x) {
        double acc = 0.0;
        const float* in = pad.data() + x;
        for (int i = 0; i < taps; ++i) {
          // float product, double accumulate — the exact arithmetic the
          // original per-pixel at_clamped formulation performed, so the
          // scanline rewrite stays bit-compatible (imaging/filter.h).
          acc += kernel[static_cast<std::size_t>(i)] * in[i];
        }
        mid_row[x] = static_cast<float>(acc);
      }
    }
  }

  Image out(w, h, img.channels());
  std::vector<double> acc(static_cast<std::size_t>(w));
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < h; ++y) {
      std::fill(acc.begin(), acc.end(), 0.0);
      for (int i = 0; i < taps; ++i) {
        const float kw = kernel[static_cast<std::size_t>(i)];
        const float* mid_row =
            mid.row(std::clamp(y + i - radius, 0, h - 1), c).data();
        for (int x = 0; x < w; ++x) {
          // Same bit-compatibility contract as the horizontal pass: float
          // product, double accumulate, taps in ascending offset order.
          acc[static_cast<std::size_t>(x)] += kw * mid_row[x];
        }
      }
      float* out_row = out.row(y, c).data();
      for (int x = 0; x < w; ++x) {
        out_row[x] = static_cast<float>(acc[static_cast<std::size_t>(x)]);
      }
    }
  }
  return out;
}

}  // namespace

Image box_blur(const Image& img, int k) {
  DECAM_SPAN("imaging/box_blur");
  DECAM_REQUIRE(k >= 1 && k % 2 == 1, "box blur needs odd window size");
  if (k == 1) return img;
  // Running-sum box: the window mean is maintained incrementally (add the
  // entering sample, subtract the leaving one), making the cost O(1) per
  // pixel for any k. The double running sum re-associates the addition
  // order relative to the per-window tap sum, so outputs may differ from
  // the dense formulation in the last float ulp (within the documented
  // 1e-6-per-255 tolerance; see filter.h).
  const int radius = (k - 1) / 2;
  const double inv_k = 1.0 / k;
  const int w = img.width();
  const int h = img.height();

  Image mid(w, h, img.channels());
  std::vector<float> pad(static_cast<std::size_t>(w + 2 * radius));
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < h; ++y) {
      const float* row = img.row(y, c).data();
      std::fill(pad.begin(), pad.begin() + radius, row[0]);
      std::copy(row, row + w, pad.begin() + radius);
      std::fill(pad.begin() + radius + w, pad.end(), row[w - 1]);
      float* mid_row = mid.row(y, c).data();
      double sum = 0.0;
      for (int i = 0; i < k; ++i) sum += pad[static_cast<std::size_t>(i)];
      mid_row[0] = static_cast<float>(sum * inv_k);
      for (int x = 1; x < w; ++x) {
        sum += pad[static_cast<std::size_t>(x + k - 1)] -
               pad[static_cast<std::size_t>(x - 1)];
        mid_row[x] = static_cast<float>(sum * inv_k);
      }
    }
  }

  Image out(w, h, img.channels());
  std::vector<double> acc(static_cast<std::size_t>(w));
  auto mid_row = [&](int y, int c) {
    return mid.row(std::clamp(y, 0, h - 1), c).data();
  };
  for (int c = 0; c < img.channels(); ++c) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (int i = -radius; i <= radius; ++i) {
      const float* row = mid_row(i, c);
      for (int x = 0; x < w; ++x) acc[static_cast<std::size_t>(x)] += row[x];
    }
    for (int y = 0; y < h; ++y) {
      float* out_row = out.row(y, c).data();
      for (int x = 0; x < w; ++x) {
        out_row[x] =
            static_cast<float>(acc[static_cast<std::size_t>(x)] * inv_k);
      }
      if (y + 1 < h) {
        const float* enter = mid_row(y + 1 + radius, c);
        const float* leave = mid_row(y - radius, c);
        for (int x = 0; x < w; ++x) {
          acc[static_cast<std::size_t>(x)] += static_cast<double>(enter[x]) -
                                              leave[x];
        }
      }
    }
  }
  return out;
}

Image gaussian_blur(const Image& img, double sigma) {
  DECAM_SPAN("imaging/gaussian_blur");
  DECAM_REQUIRE(sigma > 0.0, "sigma must be positive");
  const int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double w = std::exp(-(i * i) / (2.0 * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(w);
    sum += w;
  }
  for (float& w : kernel) w = static_cast<float>(w / sum);
  return separable_convolve(img, kernel);
}

}  // namespace decam
