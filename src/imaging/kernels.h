// 1-D resampling kernels and precomputed tap tables.
//
// Every scaler in this library is separable: a 2-D resize is a horizontal
// 1-D resample followed by a vertical one. A 1-D resample from `in` samples
// to `out` samples is fully described by a table of weighted taps per output
// index — exactly the sparse linear operator the image-scaling attack
// exploits (src/attack/coeff_matrix.h re-exports these tables as matrices).
//
// Coordinate convention: we follow OpenCV/TensorFlow half-pixel mapping,
//     src = (dst + 0.5) * (in / out) - 0.5
// and — crucially for reproducing the attack — we do NOT widen the kernel
// support when downscaling (no anti-aliasing) for Nearest/Bilinear/Bicubic/
// Lanczos4, matching cv::resize. Only ScaleAlgo::Area averages the full
// source footprint; it is the "robust" scaler of Quiring et al.
//
// Storage: tables are flattened into one contiguous Tap array plus a row
// offset index (CSR layout). The resize inner loops walk `taps` linearly, so
// a whole table is a handful of cache lines instead of one heap allocation
// per output sample. Border-clamped duplicate taps are coalesced at build
// time (one entry per source index, weights summed), which both keeps the
// table a well-formed sparse operator and makes border rows cheaper to
// apply; per-row weights always sum to 1 (asserted at build time).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/error.h"

namespace decam {

/// Interpolation algorithms mirroring cv::resize's INTER_* family.
enum class ScaleAlgo {
  Nearest,   // INTER_NEAREST: src = floor(dst * in/out)
  Bilinear,  // INTER_LINEAR, 2 taps
  Bicubic,   // INTER_CUBIC, Keys a = -0.75, 4 taps
  Area,      // INTER_AREA: box average of the source footprint
  Lanczos4,  // INTER_LANCZOS4, 8 taps
};

const char* to_string(ScaleAlgo algo);

/// One weighted source sample contributing to an output sample.
struct Tap {
  int index;     // clamped source index in [0, in_size)
  float weight;  // kernel weight; weights of one output sample sum to 1
};

/// Tap lists for every output index of a 1-D resample, flattened: the taps
/// of output sample o live at taps[offsets[o] .. offsets[o+1]).
struct KernelTable {
  int in_size = 0;
  int out_size = 0;
  std::vector<int> offsets;  // out_size + 1 row boundaries into `taps`
  std::vector<Tap> taps;     // all rows, back to back, index-sorted per row

  /// Taps of output sample `o`.
  std::span<const Tap> row(int o) const {
    DECAM_ASSERT(o >= 0 && o < out_size);
    return {taps.data() + offsets[static_cast<std::size_t>(o)],
            taps.data() + offsets[static_cast<std::size_t>(o) + 1]};
  }
  int row_taps(int o) const {
    return offsets[static_cast<std::size_t>(o) + 1] -
           offsets[static_cast<std::size_t>(o)];
  }

  /// Assembles a table from per-row tap lists (tests, hand-built operators).
  static KernelTable from_rows(int in_size,
                               std::span<const std::vector<Tap>> rows);
};

/// Builds the tap table for resampling a length-`in_size` signal to
/// `out_size` samples with `algo`. Throws std::invalid_argument for
/// non-positive sizes. Unconditionally builds: see get_kernel_table for the
/// cached variant the resize hot path uses.
KernelTable make_kernel_table(int in_size, int out_size, ScaleAlgo algo);

/// Shared, immutable table from a process-wide thread-safe LRU cache keyed
/// by (in_size, out_size, algo). Dataset runs resize every image with the
/// same handful of geometries, so table construction amortises to a mutex
/// hop + map lookup. Entries are shared_ptr so an eviction can never
/// invalidate a table a resize in flight still holds.
std::shared_ptr<const KernelTable> get_kernel_table(int in_size, int out_size,
                                                    ScaleAlgo algo);

/// Kernel-table cache introspection (tests / stats reporting).
struct KernelCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
  std::uint64_t resident_bytes = 0;  // heap held by the cached tables
};
KernelCacheStats kernel_cache_stats();
/// Drops every cached table (tests; in-flight shared_ptrs stay valid).
void clear_kernel_cache();

/// Kernel profile functions (exposed for tests / analysis).
/// Keys bicubic with a = -0.75 evaluated at distance |t| <= 2.
double cubic_weight(double t);
/// Lanczos window with a = 4 evaluated at |t| <= 4.
double lanczos4_weight(double t);

/// Applies a tap table to one stride-`stride` signal: out[o] = sum w*in[tap].
/// `in` must hold in_size elements at the given stride, `out` out_size.
void apply_kernel(const KernelTable& table, const float* in, int in_stride,
                  float* out, int out_stride);

}  // namespace decam
