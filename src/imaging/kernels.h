// 1-D resampling kernels and precomputed tap tables.
//
// Every scaler in this library is separable: a 2-D resize is a horizontal
// 1-D resample followed by a vertical one. A 1-D resample from `in` samples
// to `out` samples is fully described by a table of weighted taps per output
// index — exactly the sparse linear operator the image-scaling attack
// exploits (src/attack/coeff_matrix.h re-exports these tables as matrices).
//
// Coordinate convention: we follow OpenCV/TensorFlow half-pixel mapping,
//     src = (dst + 0.5) * (in / out) - 0.5
// and — crucially for reproducing the attack — we do NOT widen the kernel
// support when downscaling (no anti-aliasing) for Nearest/Bilinear/Bicubic/
// Lanczos4, matching cv::resize. Only ScaleAlgo::Area averages the full
// source footprint; it is the "robust" scaler of Quiring et al.
#pragma once

#include <vector>

#include "common/error.h"

namespace decam {

/// Interpolation algorithms mirroring cv::resize's INTER_* family.
enum class ScaleAlgo {
  Nearest,   // INTER_NEAREST: src = floor(dst * in/out)
  Bilinear,  // INTER_LINEAR, 2 taps
  Bicubic,   // INTER_CUBIC, Keys a = -0.75, 4 taps
  Area,      // INTER_AREA: box average of the source footprint
  Lanczos4,  // INTER_LANCZOS4, 8 taps
};

const char* to_string(ScaleAlgo algo);

/// One weighted source sample contributing to an output sample.
struct Tap {
  int index;     // clamped source index in [0, in_size)
  float weight;  // kernel weight; weights of one output sample sum to 1
};

/// Tap lists for every output index of a 1-D resample.
struct KernelTable {
  int in_size = 0;
  int out_size = 0;
  // taps[o] lists the source samples blended into output sample o.
  std::vector<std::vector<Tap>> taps;
};

/// Builds the tap table for resampling a length-`in_size` signal to
/// `out_size` samples with `algo`. Throws std::invalid_argument for
/// non-positive sizes.
KernelTable make_kernel_table(int in_size, int out_size, ScaleAlgo algo);

/// Kernel profile functions (exposed for tests / analysis).
/// Keys bicubic with a = -0.75 evaluated at distance |t| <= 2.
double cubic_weight(double t);
/// Lanczos window with a = 4 evaluated at |t| <= 4.
double lanczos4_weight(double t);

/// Applies a tap table to one stride-`stride` signal: out[o] = sum w*in[tap].
/// `in` must hold in_size elements at the given stride, `out` out_size.
void apply_kernel(const KernelTable& table, const float* in, int in_stride,
                  float* out, int out_stride);

}  // namespace decam
