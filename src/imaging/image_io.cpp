#include "imaging/image_io.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace decam {
namespace {

// Hard ceiling on decoded pixel count (per image, all channels). Keeps a
// 20-byte header claiming a gigapixel canvas from turning into a
// multi-gigabyte allocation before the (missing) pixel data is even read.
constexpr std::size_t kMaxDecodePixels = std::size_t{1} << 24;  // 16 Mpx

// Skips PNM whitespace and '#' comments, then parses a decimal integer.
// Bounded: a digit run that exceeds the largest header field any valid
// file could carry is rejected instead of silently overflowing `int`.
int read_pnm_int(std::istream& in, const std::string& path) {
  int ch = in.get();
  while (ch != EOF) {
    if (ch == '#') {
      while (ch != EOF && ch != '\n') ch = in.get();
    } else if (!std::isspace(ch)) {
      break;
    }
    ch = in.get();
  }
  if (ch == EOF || !std::isdigit(ch)) {
    throw IoError(path + ": malformed PNM header");
  }
  long value = 0;
  while (ch != EOF && std::isdigit(ch)) {
    value = value * 10 + (ch - '0');
    if (value > static_cast<long>(kMaxDecodePixels)) {
      throw IoError(path + ": PNM header field out of range");
    }
    ch = in.get();
  }
  return static_cast<int>(value);
}

void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v) {
  buf.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

}  // namespace

void write_pnm(const Image& img, const std::string& path) {
  DECAM_REQUIRE(img.channels() == 1 || img.channels() == 3,
                "PNM supports 1 or 3 channels");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError(path + ": cannot open for writing");
  out << (img.channels() == 1 ? "P5" : "P6") << "\n"
      << img.width() << " " << img.height() << "\n255\n";
  const std::vector<std::uint8_t> bytes = img.to_u8();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw IoError(path + ": short write");
}

Image read_pnm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError(path + ": cannot open for reading");
  char magic[2] = {};
  in.read(magic, 2);
  if (!in || magic[0] != 'P' || (magic[1] != '5' && magic[1] != '6')) {
    throw IoError(path + ": not a binary PGM/PPM file");
  }
  const int channels = magic[1] == '5' ? 1 : 3;
  const int width = read_pnm_int(in, path);
  const int height = read_pnm_int(in, path);
  const int maxval = read_pnm_int(in, path);
  if (width <= 0 || height <= 0 || maxval <= 0 || maxval > 255) {
    throw IoError(path + ": unsupported PNM geometry/depth");
  }
  if (static_cast<std::size_t>(width) * static_cast<std::size_t>(height) >
      kMaxDecodePixels) {
    throw IoError(path + ": PNM image too large");
  }
  // read_pnm_int consumed the single whitespace byte after maxval already,
  // so the stream now points at the first pixel byte.
  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(width) * height * channels);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (static_cast<std::size_t>(in.gcount()) != bytes.size()) {
    throw IoError(path + ": truncated pixel data");
  }
  return Image::from_u8(bytes, width, height, channels);
}

void write_bmp(const Image& img, const std::string& path) {
  DECAM_REQUIRE(img.channels() == 1 || img.channels() == 3,
                "BMP supports 1 or 3 channels");
  const int w = img.width();
  const int h = img.height();
  const int row_stride = (w * 3 + 3) & ~3;
  const std::uint32_t pixel_bytes = static_cast<std::uint32_t>(row_stride) * h;
  std::vector<std::uint8_t> buf;
  buf.reserve(54 + pixel_bytes);
  // BITMAPFILEHEADER
  buf.push_back('B');
  buf.push_back('M');
  put_u32(buf, 54 + pixel_bytes);
  put_u32(buf, 0);
  put_u32(buf, 54);
  // BITMAPINFOHEADER
  put_u32(buf, 40);
  put_u32(buf, static_cast<std::uint32_t>(w));
  put_u32(buf, static_cast<std::uint32_t>(h));  // bottom-up
  put_u16(buf, 1);
  put_u16(buf, 24);
  put_u32(buf, 0);  // BI_RGB
  put_u32(buf, pixel_bytes);
  put_u32(buf, 2835);
  put_u32(buf, 2835);
  put_u32(buf, 0);
  put_u32(buf, 0);

  auto quantise = [](float v) {
    return static_cast<std::uint8_t>(
        std::lround(std::clamp(v, 0.0f, 255.0f)));
  };
  for (int y = h - 1; y >= 0; --y) {
    const std::size_t row_start = buf.size();
    for (int x = 0; x < w; ++x) {
      if (img.channels() == 1) {
        const std::uint8_t g = quantise(img.at(x, y, 0));
        buf.push_back(g);
        buf.push_back(g);
        buf.push_back(g);
      } else {
        buf.push_back(quantise(img.at(x, y, 2)));  // B
        buf.push_back(quantise(img.at(x, y, 1)));  // G
        buf.push_back(quantise(img.at(x, y, 0)));  // R
      }
    }
    while (buf.size() - row_start < static_cast<std::size_t>(row_stride)) {
      buf.push_back(0);
    }
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError(path + ": cannot open for writing");
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  if (!out) throw IoError(path + ": short write");
}

Image read_bmp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError(path + ": cannot open for reading");
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  if (buf.size() < 54 || buf[0] != 'B' || buf[1] != 'M') {
    throw IoError(path + ": not a BMP file");
  }
  const std::uint32_t data_offset = get_u32(&buf[10]);
  const std::uint32_t header_size = get_u32(&buf[14]);
  if (header_size < 40) throw IoError(path + ": unsupported BMP header");
  const std::int32_t w = static_cast<std::int32_t>(get_u32(&buf[18]));
  std::int32_t h = static_cast<std::int32_t>(get_u32(&buf[22]));
  const std::uint16_t bpp = get_u16(&buf[28]);
  const std::uint32_t compression = get_u32(&buf[30]);
  if (bpp != 24 || compression != 0) {
    throw IoError(path + ": only uncompressed 24-bit BMP supported");
  }
  const bool top_down = h < 0;
  // Negate via int64 first: h == INT32_MIN would make `-h` signed overflow.
  const std::int64_t abs_h = top_down ? -static_cast<std::int64_t>(h) : h;
  if (w <= 0 || abs_h <= 0 || abs_h > static_cast<std::int64_t>(kMaxDecodePixels)) {
    throw IoError(path + ": bad BMP dimensions");
  }
  h = static_cast<std::int32_t>(abs_h);
  if (static_cast<std::size_t>(w) * static_cast<std::size_t>(h) >
      kMaxDecodePixels) {
    throw IoError(path + ": BMP image too large");
  }
  const std::size_t row_stride = (static_cast<std::size_t>(w) * 3 + 3) & ~std::size_t{3};
  if (buf.size() < data_offset ||
      buf.size() - data_offset < row_stride * static_cast<std::size_t>(h)) {
    throw IoError(path + ": truncated BMP pixel data");
  }
  Image img(w, h, 3);
  for (int y = 0; y < h; ++y) {
    const int src_row = top_down ? y : (h - 1 - y);
    const std::uint8_t* row = &buf[data_offset + row_stride * src_row];
    for (int x = 0; x < w; ++x) {
      img.at(x, y, 2) = static_cast<float>(row[x * 3 + 0]);
      img.at(x, y, 1) = static_cast<float>(row[x * 3 + 1]);
      img.at(x, y, 0) = static_cast<float>(row[x * 3 + 2]);
    }
  }
  return img;
}

}  // namespace decam
