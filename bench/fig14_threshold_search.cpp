// Reproduces the paper's threshold-selection figure (Fig. 7 of the paper's
// numbering for the scaling method): the accuracy-vs-candidate-threshold
// curve traced by the white-box search, with the optimum marked. Expected
// shape: a plateau of 100% training accuracy between the two class
// supports, falling off on either side.
#include "bench_common.h"
#include "report/histogram_ascii.h"

using namespace decam;
using namespace decam::core;

namespace {

void trace_curve(const char* label, const std::vector<double>& benign,
                 const std::vector<double>& attack, bool log_x) {
  const WhiteBoxResult wb = calibrate_white_box(benign, attack);
  std::printf("%s: best threshold %.4f, training accuracy %.1f%%\n", label,
              wb.calibration.threshold,
              100.0 * wb.calibration.train_accuracy);
  // Down-sample the trace to ~40 printed probes.
  const std::size_t stride = std::max<std::size_t>(1, wb.trace.size() / 40);
  for (std::size_t i = 0; i < wb.trace.size(); i += stride) {
    const ThresholdProbe& probe = wb.trace[i];
    const int bar = static_cast<int>(probe.accuracy * 50.0);
    const double shown = log_x ? probe.threshold : probe.threshold;
    std::printf("%12.4g | %s %5.1f%%%s\n", shown,
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                100.0 * probe.accuracy,
                probe.threshold == wb.calibration.threshold ? "  <-- best"
                                                            : "");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 14 (threshold selection): accuracy vs candidate threshold",
      args);
  const ExperimentData data = bench::load_data(args);

  trace_curve("scaling/MSE",
              ExperimentData::column(data.train_benign, &ScoreRow::scaling_mse),
              ExperimentData::column(data.train_attack, &ScoreRow::scaling_mse),
              true);
  trace_curve(
      "scaling/SSIM",
      ExperimentData::column(data.train_benign, &ScoreRow::scaling_ssim),
      ExperimentData::column(data.train_attack, &ScoreRow::scaling_ssim),
      false);
  std::printf(
      "Paper shape: training accuracy forms a plateau at ~100%% between the "
      "benign and attack score supports; the search picks a midpoint on the "
      "plateau.\n");
  return 0;
}
