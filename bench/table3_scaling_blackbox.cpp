// Reproduces Table 3 of the paper: the scaling detection method in the
// black-box setting. Thresholds come from percentiles (1/2/3%) of the
// benign calibration distribution alone; evaluation runs against attacks
// crafted with an unknown pool of attack strengths. The benign mean/std
// columns mirror the paper's table. Expected shape: accuracy ~99%+, FRR
// tracking the percentile, FAR ~0.
#include "bench_common.h"
#include "core/evaluation.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner("Table 3: scaling detection, black-box", args);
  const ExperimentData data = bench::load_data(args);

  report::Table table({"Metric", "Percentile", "Acc.", "Prec.", "Rec.",
                       "FAR", "FRR", "Mean", "STD"});
  struct Row {
    const char* label;
    double ScoreRow::* member;
    Polarity polarity;
  };
  const Row rows[] = {
      {"MSE", &ScoreRow::scaling_mse, Polarity::HighIsAttack},
      {"SSIM", &ScoreRow::scaling_ssim, Polarity::LowIsAttack}};
  for (const Row& row : rows) {
    const auto benign_train =
        ExperimentData::column(data.train_benign, row.member);
    const ScoreStats stats_train = score_stats(benign_train);
    for (double percentile : {1.0, 2.0, 3.0}) {
      const Calibration calibration =
          calibrate_black_box(benign_train, percentile, row.polarity);
      const DetectionStats stats =
          evaluate(ExperimentData::column(data.eval_benign, row.member),
                   ExperimentData::column(data.eval_attack_black, row.member),
                   calibration);
      const bool first = percentile == 1.0;
      table.add_row(
          {first ? row.label : "",
           report::format_percent(percentile / 100.0, 0),
           report::format_percent(stats.accuracy()),
           report::format_percent(stats.precision()),
           report::format_percent(stats.recall()),
           report::format_percent(stats.far()),
           report::format_percent(stats.frr()),
           first ? report::format_double(stats_train.mean,
                                         row.polarity ==
                                                 Polarity::HighIsAttack
                                             ? 1
                                             : 3)
                 : "",
           first ? report::format_double(stats_train.stddev,
                                         row.polarity ==
                                                 Polarity::HighIsAttack
                                             ? 1
                                             : 3)
                 : ""});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reports: MSE/SSIM at 1%% percentile reach 99.5%% acc with "
      "0.0%% FAR and FRR ~= the percentile (1-3%%); benign MSE mean 218.6 "
      "std 217.6 on NeurIPS-2017 (absolute values are dataset-specific).\n");
  return 0;
}
