// Ablation: adaptive attacks against individual Decamouflage methods
// (paper §6 "Considerations for adaptive attacks"). Two adaptive moves:
//
//   1. spectral masking — noise on the pixels the scaler never reads,
//      trying to bury the CSP harmonics. Finding: CSP is unaffected (the
//      harmonics come from the payload pixels themselves) and the noise
//      feeds the other two methods. The attacker gains nothing.
//   2. stealth-budget sweep — shrinking eps / enlarging the solver budget
//      to minimise the footprint. Finding: detection scores barely move;
//      the footprint is structural, not a tuning artefact.
#include "attack/adaptive.h"
#include "bench_common.h"
#include "core/calibration.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.config.n_train == 50) args.config.n_train = 16;
  bench::print_banner("Ablation: adaptive attacks vs individual methods",
                      args);

  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = args.config.min_side;
  params.max_side = args.config.max_side;

  ScalingDetectorConfig scaling_config;
  scaling_config.down_width = args.config.target_width;
  scaling_config.down_height = args.config.target_height;
  scaling_config.metric = Metric::MSE;
  const ScalingDetector scaling{scaling_config};
  FilteringDetectorConfig filtering_config;
  filtering_config.metric = Metric::SSIM;
  const FilteringDetector filtering{filtering_config};
  const SteganalysisDetector steg{};

  struct Variant {
    const char* label;
    double eps;
    double noise;
  };
  const Variant variants[] = {
      {"plain eps=2", 2.0, 0.0},
      {"stealthy eps=0.5", 0.5, 0.0},
      {"loose eps=6", 6.0, 0.0},
      {"anti-CSP noise 16", 2.0, 16.0},
      {"anti-CSP noise 40", 2.0, 40.0},
  };

  report::Table table({"Attack variant", "mean scaling MSE",
                       "mean filtering SSIM", "mean CSP", "caught by CSP>=2",
                       "mean SSIM(A,O)"});

  // Benign baseline row for reference.
  {
    data::Rng rng(args.config.seed ^ 0xBE9196ull);
    double sum_mse = 0, sum_fssim = 0, sum_csp = 0, sum_ssim = 0;
    int caught = 0;
    for (int i = 0; i < args.config.n_train; ++i) {
      data::Rng child = rng.fork();
      const Image scene = generate_scene(params, child);
      sum_mse += scaling.score(scene);
      sum_fssim += filtering.score(scene);
      const int csp = steg.count_csp(scene);
      sum_csp += csp;
      caught += csp >= 2 ? 1 : 0;
      sum_ssim += 1.0;
    }
    const double n = args.config.n_train;
    table.add_row({"(benign reference)", report::format_double(sum_mse / n, 1),
                   report::format_double(sum_fssim / n, 3),
                   report::format_double(sum_csp / n, 2),
                   report::format_percent(caught / n),
                   report::format_double(sum_ssim / n, 3)});
  }

  for (const Variant& variant : variants) {
    data::Rng scene_rng(args.config.seed ^ 0xADA97ull);
    data::Rng target_rng(args.config.seed ^ 0x7A63E7ull);
    double sum_mse = 0, sum_fssim = 0, sum_csp = 0, sum_ssim = 0;
    int caught = 0;
    for (int i = 0; i < args.config.n_train; ++i) {
      data::Rng sc = scene_rng.fork();
      data::Rng tc = target_rng.fork();
      const Image scene = generate_scene(params, sc);
      const Image target = data::generate_target(
          args.config.target_width, args.config.target_height, tc);
      attack::NoiseMaskOptions options;
      options.base.algo = args.config.white_box_algo;
      options.base.eps = variant.eps;
      options.noise_amplitude = variant.noise;
      options.seed = args.config.seed + static_cast<std::uint64_t>(i);
      const attack::AttackResult result =
          variant.noise > 0.0
              ? attack::noise_masked_attack(scene, target, options)
              : attack::craft_attack(scene, target, options.base);
      sum_mse += scaling.score(result.image);
      sum_fssim += filtering.score(result.image);
      const int csp = steg.count_csp(result.image);
      sum_csp += csp;
      caught += csp >= 2 ? 1 : 0;
      sum_ssim += result.report.source_ssim;
      std::fprintf(stderr, "\r[adaptive] %s %d/%d        ", variant.label,
                   i + 1, args.config.n_train);
    }
    const double n = args.config.n_train;
    table.add_row({variant.label, report::format_double(sum_mse / n, 1),
                   report::format_double(sum_fssim / n, 3),
                   report::format_double(sum_csp / n, 2),
                   report::format_percent(caught / n),
                   report::format_double(sum_ssim / n, 3)});
  }
  std::fprintf(stderr, "\n");
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: every variant keeps scaling-MSE orders of magnitude above "
      "benign and CSP >= 2 on (almost) all images; the anti-CSP noise "
      "variants only lose visual stealth. Adaptive moves against one "
      "method do not transfer into evasion of the ensemble (paper §6).\n");
  return 0;
}
