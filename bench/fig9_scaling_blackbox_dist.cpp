// Reproduces Figure 9 of the paper: benign-only MSE and SSIM distributions
// for the scaling detection method, with the 1/2/3% percentile boundaries
// marked — the black-box calibration view. Expected shape: roughly
// unimodal benign distributions whose tail percentiles make good
// thresholds.
#include "bench_common.h"
#include "report/histogram_ascii.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 9: benign scaling-score distributions (black-box)", args);
  const ExperimentData data = bench::load_data(args);

  {
    const auto benign =
        ExperimentData::column(data.train_benign, &ScoreRow::scaling_mse);
    const ScoreStats stats = score_stats(benign);
    report::HistogramOptions options;
    options.bins = 24;
    options.label_b = "";
    options.threshold = percentile_of(benign, 99.0);  // 1% upper tail
    std::printf("benign MSE(I, S): mean %.2f std %.2f\n%s\n", stats.mean,
                stats.stddev,
                report::render_histogram(benign, {}, options).c_str());
    std::printf("percentile boundaries: 1%% -> %.2f, 2%% -> %.2f, 3%% -> %.2f\n\n",
                percentile_of(benign, 99.0), percentile_of(benign, 98.0),
                percentile_of(benign, 97.0));
  }
  {
    const auto benign =
        ExperimentData::column(data.train_benign, &ScoreRow::scaling_ssim);
    const ScoreStats stats = score_stats(benign);
    report::HistogramOptions options;
    options.bins = 24;
    options.threshold = percentile_of(benign, 1.0);  // 1% lower tail
    std::printf("benign SSIM(I, S): mean %.4f std %.4f\n%s\n", stats.mean,
                stats.stddev,
                report::render_histogram(benign, {}, options).c_str());
    std::printf("percentile boundaries: 1%% -> %.4f, 2%% -> %.4f, 3%% -> %.4f\n",
                percentile_of(benign, 1.0), percentile_of(benign, 2.0),
                percentile_of(benign, 3.0));
  }
  std::printf(
      "\nPaper shape: near-normal benign distributions (their NeurIPS-2017 "
      "MSE mean 218.6, std 217.6; SSIM mean 0.91, std 0.59).\n");
  return 0;
}
