// Ablation: which rank filter exposes the attack best? The paper's Fig. 4
// observes that the MINIMUM filter reveals the embedded target while
// median and maximum do not (their targets are darker than their carriers
// on average). This bench quantifies the choice: best achievable training
// accuracy of the filtering method with min / median / max filters across
// window sizes, on freshly crafted attacks.
#include <vector>

#include "attack/scale_attack.h"
#include "bench_common.h"
#include "core/calibration.h"
#include "core/filtering_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  // Fresh crafting per configuration is expensive; default smaller than
  // the table benches.
  if (args.config.n_train == 50) args.config.n_train = 24;
  bench::print_banner("Ablation: rank-filter choice for filtering detection",
                      args);

  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = args.config.min_side;
  params.max_side = args.config.max_side;
  data::Rng scene_rng(args.config.seed ^ 0xF117E6ull);
  data::Rng target_rng(args.config.seed ^ 0x7A63E7ull);

  attack::AttackOptions attack_opts;
  attack_opts.algo = args.config.white_box_algo;
  attack_opts.eps = args.config.attack_eps;

  std::vector<Image> benign;
  std::vector<Image> attacks;
  for (int i = 0; i < args.config.n_train; ++i) {
    data::Rng sc = scene_rng.fork();
    data::Rng tc = target_rng.fork();
    benign.push_back(generate_scene(params, sc));
    const Image target = data::generate_target(
        args.config.target_width, args.config.target_height, tc);
    attacks.push_back(
        attack::craft_attack(benign.back(), target, attack_opts).image);
    std::fprintf(stderr, "\r[ablation] crafted %d/%d", i + 1,
                 args.config.n_train);
  }
  std::fprintf(stderr, "\n");

  report::Table table({"Filter", "Window", "Best train acc (MSE)",
                       "Best train acc (SSIM)"});
  for (const RankOp op : {RankOp::Min, RankOp::Median, RankOp::Max}) {
    for (const int window : {2, 3}) {
      std::vector<double> benign_mse, attack_mse, benign_ssim, attack_ssim;
      for (std::size_t i = 0; i < benign.size(); ++i) {
        FilteringDetectorConfig mse_config{window, op, Metric::MSE};
        FilteringDetectorConfig ssim_config{window, op, Metric::SSIM};
        const FilteringDetector mse_det{mse_config};
        const FilteringDetector ssim_det{ssim_config};
        benign_mse.push_back(mse_det.score(benign[i]));
        attack_mse.push_back(mse_det.score(attacks[i]));
        benign_ssim.push_back(ssim_det.score(benign[i]));
        attack_ssim.push_back(ssim_det.score(attacks[i]));
      }
      const double acc_mse =
          calibrate_white_box(benign_mse, attack_mse).calibration
              .train_accuracy;
      const double acc_ssim =
          calibrate_white_box(benign_ssim, attack_ssim).calibration
              .train_accuracy;
      const char* name = op == RankOp::Min
                             ? "minimum"
                             : (op == RankOp::Median ? "median" : "maximum");
      table.add_row({name, std::to_string(window) + "x" + std::to_string(window),
                     report::format_percent(acc_mse),
                     report::format_percent(acc_ssim)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper shape (Fig. 4): the minimum filter reveals the embedded "
      "target; median/maximum are weaker. (With symmetric bright/dark "
      "targets min and max converge — the paper's targets skew dark.)\n");
  return 0;
}
