// Measures the cost of the observability probes themselves, backing the
// "near-zero overhead when disabled" requirement (DESIGN.md §7): a disabled
// DECAM_SPAN must stay in the nanoseconds (one relaxed atomic load + branch)
// so instrumenting the imaging/signal kernels cannot shift the Table 7
// numbers, and the enabled paths (trace ring, profile tree, histograms)
// must stay cheap enough to leave on in production scans.
//
//   obs_overhead [--quick] [--json] [--out FILE] [--filter SUBSTR]
//                [--regress-against FILE]
//   obs_overhead --validate FILE
//
// Reports ns per probe operation (the harness' "pixel" is one probe hit).
// --json writes a `decam-kernel-bench-v1` document (default BENCH_obs.json;
// run from the repo root to refresh the committed baseline) plus the
// provenance manifest sidecar; --regress-against is the obs_bench_regression
// ctest tripwire, failing if any probe got more than 2x slower.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace {

using namespace decam;
using bench::micro::BenchResult;
using bench::micro::run_bench;

struct Options {
  bool quick = false;
  bool json = false;
  std::string out = "BENCH_obs.json";
  std::string filter;
  std::string validate;  // non-empty: validate this file and exit
  std::string regress;   // non-empty: compare against this baseline JSON
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      opt.filter = argv[++i];
    } else if (std::strcmp(argv[i], "--validate") == 0 && i + 1 < argc) {
      opt.validate = argv[++i];
    } else if (std::strcmp(argv[i], "--regress-against") == 0 &&
               i + 1 < argc) {
      opt.regress = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json] [--out FILE] "
                   "[--filter SUBSTR] [--regress-against FILE] | "
                   "--validate FILE\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

// Probe ops are nanoseconds each, far below the clock's resolution, so every
// iteration runs a batch and the harness normalises to ns per op.
constexpr std::size_t kOps = 65536;

// The optimiser must believe each probe hit has an observable effect.
inline void clobber() { asm volatile("" ::: "memory"); }

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.validate.empty()) {
    return bench::micro::validate_file("obs_overhead", opt.validate);
  }

  const double budget_ms = opt.quick ? 10.0 : 80.0;
  std::printf("obs_overhead: %zu probe ops per iteration%s\n\n", kOps,
              opt.quick ? " [quick]" : "");

  std::vector<BenchResult> results;
  // `ops` is the number of probe operations one iteration of `fn` performs —
  // the harness' "pixels" — so ns/px reads as ns per op for every entry.
  auto bench = [&](const std::string& name, std::size_t ops,
                   const std::function<void()>& fn) {
    if (!opt.filter.empty() && name.find(opt.filter) == std::string::npos) {
      return;
    }
    results.push_back(run_bench(name, ops, budget_ms, fn));
    bench::micro::print_result(results.back());
  };

  // --- spans: the disabled path is the one that gates Table 7 -------------
  obs::set_tracing_enabled(false);
  obs::set_profiling_enabled(false);
  bench("span/disabled", kOps, [] {
    for (std::size_t i = 0; i < kOps; ++i) {
      DECAM_SPAN("bench/disabled");
      clobber();
    }
  });

  obs::set_tracing_enabled(true);
  bench("span/tracing", kOps, [] {
    for (std::size_t i = 0; i < kOps; ++i) {
      DECAM_SPAN("bench/tracing");
      clobber();
    }
    // Keep the ring bounded so the bench measures the span, not vector
    // growth over millions of hits.
    if (obs::TraceBuffer::instance().size() > 100000) {
      obs::TraceBuffer::instance().clear();
    }
  });
  obs::set_tracing_enabled(false);
  obs::TraceBuffer::instance().clear();

  obs::set_profiling_enabled(true);
  bench("span/profiling", kOps, [] {
    for (std::size_t i = 0; i < kOps; ++i) {
      DECAM_SPAN("bench/profiling");
      clobber();
    }
  });
  obs::set_profiling_enabled(false);

  // --- metric primitives ---------------------------------------------------
  {
    obs::Counter counter;
    bench("counter/add", kOps, [&] {
      for (std::size_t i = 0; i < kOps; ++i) {
        counter.add();
        clobber();
      }
    });
  }
  {
    obs::Histogram histogram;
    bench("histogram/record", kOps, [&] {
      double ms = 0.0;
      for (std::size_t i = 0; i < kOps; ++i) {
        histogram.record(ms);
        ms += 0.1;
        if (ms > 1000.0) ms = 0.0;
      }
    });
  }
  bench("registry/lookup", kOps, [] {
    for (std::size_t i = 0; i < kOps; ++i) {
      (void)obs::MetricsRegistry::instance().histogram("bench/lookup");
      clobber();
    }
  });

  // The CAS-loop min/max/sum updates are the histogram's only write path,
  // so contention is the interesting case: every worker in a parallel
  // battery records into the same "battery/*" histograms. Measured end to
  // end through the runtime pool (dispatch included).
  {
    runtime::ThreadPool pool(4);
    obs::Histogram histogram;
    constexpr std::size_t kLanes = 4;
    bench("histogram/record_contended", kOps, [&] {
      runtime::parallel_for(pool, std::size_t{0}, kLanes,
                            [&](std::size_t lane) {
                              double ms = 0.1 * static_cast<double>(lane + 1);
                              for (std::size_t i = 0; i < kOps / kLanes; ++i) {
                                histogram.record(ms);
                                ms += 0.1;
                                if (ms > 1000.0) ms = 0.0;
                              }
                            });
    });
  }

  // --- read-side: exporters pay these, hot paths never do ------------------
  {
    obs::Histogram histogram;
    for (int i = 1; i <= 10000; ++i) histogram.record(i * 0.05);
    bench("histogram/percentile", kOps / 64, [&] {
      for (std::size_t i = 0; i < kOps / 64; ++i) {
        (void)histogram.percentile(99.0);
        clobber();
      }
    });
  }
  bench("export/openmetrics", kOps / 2048, [] {
    for (std::size_t i = 0; i < kOps / 2048; ++i) {
      (void)obs::export_openmetrics();
      clobber();
    }
  });

  if (opt.json) {
    const std::string doc = bench::micro::bench_json(results, opt.quick);
    const std::string error = bench::micro::validate_bench_json(doc);
    if (!error.empty()) {
      std::fprintf(stderr, "obs_overhead: refusing to write %s: %s\n",
                   opt.out.c_str(), error.c_str());
      return 1;
    }
    std::ofstream out(opt.out);
    if (!out) {
      std::fprintf(stderr, "obs_overhead: cannot write %s\n", opt.out.c_str());
      return 1;
    }
    out << doc;
    out.close();
    std::printf("\nwrote %s (%zu benchmarks)\n", opt.out.c_str(),
                results.size());

    bench::manifest::RunManifest manifest;
    manifest.binary = "obs_overhead";
    manifest.argv.assign(argv + 1, argv + argc);
    manifest.quick = opt.quick;
    std::string manifest_path = opt.out;
    const std::size_t dot = manifest_path.rfind(".json");
    manifest_path = dot == std::string::npos
                        ? manifest_path + ".manifest.json"
                        : manifest_path.substr(0, dot) + ".manifest.json";
    (void)bench::manifest::write_manifest(manifest, manifest_path);
  }
  if (!opt.regress.empty() &&
      bench::micro::check_regressions("obs_overhead", results, opt.regress) !=
          0) {
    return 1;
  }
  return 0;
}
