// Measures the cost of the observability probes themselves, backing the
// "near-zero overhead when disabled" requirement: a disabled DECAM_SPAN must
// be nanoseconds (one relaxed atomic load + branch) so instrumenting the
// imaging/signal kernels cannot shift the Table 7 numbers.
#include <benchmark/benchmark.h>

#include <cstddef>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace {

using namespace decam;

void BM_SpanDisabled(benchmark::State& state) {
  obs::set_tracing_enabled(false);
  for (auto _ : state) {
    DECAM_SPAN("bench/disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::set_tracing_enabled(true);
  obs::TraceBuffer::instance().clear();
  for (auto _ : state) {
    DECAM_SPAN("bench/enabled");
    benchmark::ClobberMemory();
    // Keep the buffer bounded so the benchmark measures the span, not
    // vector growth over millions of iterations.
    if (obs::TraceBuffer::instance().size() > 100000) {
      obs::TraceBuffer::instance().clear();
    }
  }
  obs::set_tracing_enabled(false);
  obs::TraceBuffer::instance().clear();
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.add();
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram histogram;
  double ms = 0.0;
  for (auto _ : state) {
    histogram.record(ms);
    ms += 0.1;
    if (ms > 1000.0) ms = 0.0;
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecord);

// The CAS-loop min/max/sum updates are the histogram's only write path, so
// contention from the runtime pool is the interesting case: every worker in
// a parallel battery records into the same "battery/*" histograms.
void BM_HistogramRecordContended(benchmark::State& state) {
  static obs::Histogram histogram;  // shared across benchmark threads
  double ms = 0.1 * static_cast<double>(state.thread_index() + 1);
  for (auto _ : state) {
    histogram.record(ms);
    ms += 0.1;
    if (ms > 1000.0) ms = 0.0;
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecordContended)->Threads(4)->UseRealTime();

// Same contention through the runtime layer itself: a 4-lane parallel_for
// hammering one histogram, measuring records/s end to end (pool dispatch
// included).
void BM_HistogramRecordFromPool(benchmark::State& state) {
  runtime::ThreadPool pool(4);
  obs::Histogram histogram;
  constexpr std::size_t kRecordsPerLane = 4096;
  for (auto _ : state) {
    runtime::parallel_for(pool, std::size_t{0}, std::size_t{4},
                          [&](std::size_t lane) {
                            double ms = 0.1 * static_cast<double>(lane + 1);
                            for (std::size_t i = 0; i < kRecordsPerLane; ++i) {
                              histogram.record(ms);
                              ms += 0.1;
                              if (ms > 1000.0) ms = 0.0;
                            }
                          });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          kRecordsPerLane);
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecordFromPool);

void BM_RegistryLookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &obs::MetricsRegistry::instance().histogram("bench/lookup"));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_HistogramPercentile(benchmark::State& state) {
  obs::Histogram histogram;
  for (int i = 1; i <= 10000; ++i) histogram.record(i * 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.percentile(99.0));
  }
}
BENCHMARK(BM_HistogramPercentile);

}  // namespace

BENCHMARK_MAIN();
