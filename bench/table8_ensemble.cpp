// Reproduces Table 8 of the paper: the Decamouflage ensemble (majority
// vote of scaling/MSE, filtering/SSIM and steganalysis/CSP) in both the
// white-box and black-box settings. Expected shape: the ensemble matches
// or beats the best individual method in both settings.
#include "bench_common.h"
#include "core/evaluation.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

namespace {

DetectionStats ensemble_stats(const ExperimentData& data,
                              const Calibration& scaling,
                              const Calibration& filtering,
                              const Calibration& steg,
                              const std::vector<ScoreRow>& attack_rows) {
  auto vote = [&](const ScoreRow& row) {
    int votes = 0;
    if (is_attack(row.scaling_mse, scaling)) ++votes;
    if (is_attack(row.filtering_ssim, filtering)) ++votes;
    if (is_attack(row.csp, steg)) ++votes;
    return votes >= 2;
  };
  std::vector<bool> benign_flags;
  std::vector<bool> attack_flags;
  for (const ScoreRow& row : data.eval_benign) benign_flags.push_back(vote(row));
  for (const ScoreRow& row : attack_rows) attack_flags.push_back(vote(row));
  return evaluate_flags(benign_flags, attack_flags);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner("Table 8: Decamouflage ensemble (majority vote)", args);
  const ExperimentData data = bench::load_data(args);

  const Calibration steg{2.0, Polarity::HighIsAttack, 0.0};

  // White-box: thresholds from the two-class search on the training set.
  const Calibration wb_scaling =
      calibrate_white_box(
          ExperimentData::column(data.train_benign, &ScoreRow::scaling_mse),
          ExperimentData::column(data.train_attack, &ScoreRow::scaling_mse))
          .calibration;
  const Calibration wb_filtering =
      calibrate_white_box(
          ExperimentData::column(data.train_benign, &ScoreRow::filtering_ssim),
          ExperimentData::column(data.train_attack,
                                 &ScoreRow::filtering_ssim))
          .calibration;

  // Black-box: 1% percentile thresholds from benign scores only.
  const Calibration bb_scaling = calibrate_black_box(
      ExperimentData::column(data.train_benign, &ScoreRow::scaling_mse), 1.0,
      Polarity::HighIsAttack);
  const Calibration bb_filtering = calibrate_black_box(
      ExperimentData::column(data.train_benign, &ScoreRow::filtering_ssim),
      1.0, Polarity::LowIsAttack);

  const DetectionStats white = ensemble_stats(
      data, wb_scaling, wb_filtering, steg, data.eval_attack_white);
  const DetectionStats black = ensemble_stats(
      data, bb_scaling, bb_filtering, steg, data.eval_attack_black);

  report::Table table({"Setting", "Acc.", "Prec.", "Rec.", "FAR", "FRR"});
  for (const auto& [label, stats] :
       {std::pair{"White-box ensemble", white},
        std::pair{"Black-box ensemble", black}}) {
    table.add_row({label, report::format_percent(stats.accuracy()),
                   report::format_percent(stats.precision()),
                   report::format_percent(stats.recall()),
                   report::format_percent(stats.far()),
                   report::format_percent(stats.frr())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reports: white-box 99.9%% acc (FAR 0.2%%, FRR 0.0%%); "
      "black-box 99.8%% acc (FAR 0.2%%, FRR 0.1%%).\n");
  return 0;
}
