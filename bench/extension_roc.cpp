// Extension: threshold-free comparison of every detector/metric via ROC
// AUC, computed on the cached experiment. The paper compares methods at
// chosen thresholds; AUC shows the same ordering holds across ALL
// thresholds, and quantifies how far ahead the structural metrics are of
// the PSNR/histogram baselines.
#include "bench_common.h"
#include "core/roc.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner("Extension: ROC/AUC across detectors and metrics",
                      args);
  const ExperimentData data = bench::load_data(args);

  struct Row {
    const char* label;
    double ScoreRow::* member;
    Polarity polarity;
  };
  const Row rows[] = {
      {"scaling/MSE", &ScoreRow::scaling_mse, Polarity::HighIsAttack},
      {"scaling/SSIM", &ScoreRow::scaling_ssim, Polarity::LowIsAttack},
      {"scaling/PSNR", &ScoreRow::scaling_psnr, Polarity::LowIsAttack},
      {"filtering/MSE", &ScoreRow::filtering_mse, Polarity::HighIsAttack},
      {"filtering/SSIM", &ScoreRow::filtering_ssim, Polarity::LowIsAttack},
      {"filtering/PSNR", &ScoreRow::filtering_psnr, Polarity::LowIsAttack},
      {"steganalysis/CSP", &ScoreRow::csp, Polarity::HighIsAttack},
      {"histogram (Xiao)", &ScoreRow::histogram, Polarity::LowIsAttack},
  };
  report::Table table({"Detector/metric", "AUC (calibration set)",
                       "AUC (unseen, white-box)", "AUC (unseen, black-box)"});
  for (const Row& row : rows) {
    const double auc_train =
        roc_curve(ExperimentData::column(data.train_benign, row.member),
                  ExperimentData::column(data.train_attack, row.member),
                  row.polarity)
            .auc;
    const double auc_white =
        roc_curve(ExperimentData::column(data.eval_benign, row.member),
                  ExperimentData::column(data.eval_attack_white, row.member),
                  row.polarity)
            .auc;
    const double auc_black =
        roc_curve(ExperimentData::column(data.eval_benign, row.member),
                  ExperimentData::column(data.eval_attack_black, row.member),
                  row.polarity)
            .auc;
    table.add_row({row.label, report::format_double(auc_train, 4),
                   report::format_double(auc_white, 4),
                   report::format_double(auc_black, 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: the six Decamouflage method/metric combinations sit at or "
      "near AUC 1.0 on every split; the baselines are the weakest rows.\n");
  return 0;
}
