// Reproduces Figure 11 of the paper: benign-only filtering-score (2x2 min
// filter) distributions with percentile boundaries — the black-box
// calibration view of the filtering method.
#include "bench_common.h"
#include "report/histogram_ascii.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 11: benign filtering-score distributions (black-box)", args);
  const ExperimentData data = bench::load_data(args);

  {
    const auto benign =
        ExperimentData::column(data.train_benign, &ScoreRow::filtering_mse);
    const ScoreStats stats = score_stats(benign);
    report::HistogramOptions options;
    options.bins = 24;
    options.threshold = percentile_of(benign, 99.0);
    std::printf("benign MSE(I, F): mean %.2f std %.2f\n%s\n", stats.mean,
                stats.stddev,
                report::render_histogram(benign, {}, options).c_str());
    std::printf(
        "percentile boundaries: 1%% -> %.2f, 2%% -> %.2f, 3%% -> %.2f\n\n",
        percentile_of(benign, 99.0), percentile_of(benign, 98.0),
        percentile_of(benign, 97.0));
  }
  {
    const auto benign =
        ExperimentData::column(data.train_benign, &ScoreRow::filtering_ssim);
    const ScoreStats stats = score_stats(benign);
    report::HistogramOptions options;
    options.bins = 24;
    options.threshold = percentile_of(benign, 1.0);
    std::printf("benign SSIM(I, F): mean %.4f std %.4f\n%s\n", stats.mean,
                stats.stddev,
                report::render_histogram(benign, {}, options).c_str());
    std::printf(
        "percentile boundaries: 1%% -> %.4f, 2%% -> %.4f, 3%% -> %.4f\n",
        percentile_of(benign, 1.0), percentile_of(benign, 2.0),
        percentile_of(benign, 3.0));
  }
  std::printf(
      "\nPaper shape: near-normal benign distributions (their filtering MSE "
      "mean 1952.32, std 1543.27; SSIM mean 0.74, std 0.11).\n");
  return 0;
}
