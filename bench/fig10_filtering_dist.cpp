// Reproduces Figure 10 of the paper: white-box score distributions for the
// filtering detection method (2x2 minimum filter), MSE and SSIM, threshold
// marked. Expected shape: separated modes, with somewhat more proximity in
// MSE than the scaling method showed (the paper notes a small overlap).
#include "bench_common.h"
#include "report/histogram_ascii.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 10: filtering-detection score distributions (white-box)",
      args);
  const ExperimentData data = bench::load_data(args);

  {
    const auto benign =
        ExperimentData::column(data.train_benign, &ScoreRow::filtering_mse);
    const auto attack =
        ExperimentData::column(data.train_attack, &ScoreRow::filtering_mse);
    const WhiteBoxResult wb = calibrate_white_box(benign, attack);
    report::HistogramOptions options;
    options.bins = 26;
    options.log_x = true;
    options.threshold = wb.calibration.threshold;
    std::printf("MSE(I, F) distribution  [threshold %.2f]\n%s\n",
                wb.calibration.threshold,
                report::render_histogram(benign, attack, options).c_str());
  }
  {
    const auto benign =
        ExperimentData::column(data.train_benign, &ScoreRow::filtering_ssim);
    const auto attack =
        ExperimentData::column(data.train_attack, &ScoreRow::filtering_ssim);
    const WhiteBoxResult wb = calibrate_white_box(benign, attack);
    report::HistogramOptions options;
    options.bins = 26;
    options.threshold = wb.calibration.threshold;
    std::printf("SSIM(I, F) distribution  [threshold %.4f]\n%s\n",
                wb.calibration.threshold,
                report::render_histogram(benign, attack, options).c_str());
  }
  std::printf(
      "Paper shape: separable with thresholds MSE 5682.79 and SSIM 0.38 on "
      "its datasets; MSE shows slight class overlap, SSIM separates "
      "cleanly.\n");
  return 0;
}
