// Extension: the ATTACKER's run-time cost. The paper measures the
// defender's overhead (Table 7); the other side of the ledger is what
// crafting an attack costs — the nearest-neighbour closed form is
// instantaneous while the QP-based variants pay per pixel column/row.
// Useful for sizing both red-team tooling and the plausibility of
// high-volume poisoning campaigns.
#include <benchmark/benchmark.h>

#include "attack/scale_attack.h"
#include "data/rng.h"
#include "data/synth.h"

namespace {

using namespace decam;

const Image& source_image() {
  static const Image image = [] {
    data::SceneParams params = data::scene_params(data::Regime::A);
    params.min_side = params.max_side = 448;
    data::Rng rng(11);
    return generate_scene(params, rng);
  }();
  return image;
}

const Image& target_image() {
  static const Image image = [] {
    data::Rng rng(12);
    return data::generate_target(112, 112, rng);
  }();
  return image;
}

void run_attack(benchmark::State& state, ScaleAlgo algo) {
  attack::AttackOptions options;
  options.algo = algo;
  options.eps = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attack::craft_attack(source_image(), target_image(), options));
  }
}

void BM_CraftNearest(benchmark::State& state) {
  run_attack(state, ScaleAlgo::Nearest);
}
BENCHMARK(BM_CraftNearest)->Unit(benchmark::kMillisecond);

void BM_CraftBilinear(benchmark::State& state) {
  run_attack(state, ScaleAlgo::Bilinear);
}
BENCHMARK(BM_CraftBilinear)->Unit(benchmark::kMillisecond);

void BM_CraftBicubic(benchmark::State& state) {
  run_attack(state, ScaleAlgo::Bicubic);
}
BENCHMARK(BM_CraftBicubic)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
