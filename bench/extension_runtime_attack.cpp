// Extension: the ATTACKER's run-time cost. The paper measures the
// defender's overhead (Table 7); the other side of the ledger is what
// crafting an attack costs — the nearest-neighbour closed form is
// instantaneous while the QP-based variants pay per pixel column/row, and
// the adaptive variants (attack/adaptive.h) pay extra on top: the off-grid
// spread re-reads the coefficient matrices, the JPEG-robust loop multiplies
// the QP cost by its round budget. Useful for sizing both red-team tooling
// and the plausibility of high-volume poisoning campaigns.
//
// Runs on the shared micro harness (min-iteration ns/pixel over a fixed
// scene, seed 11) and takes the standard parse_args flags, so it emits a
// `decam-run-manifest-v1` sidecar like every other table bench.
#include <functional>
#include <string>
#include <vector>

#include "attack/adaptive.h"
#include "bench_common.h"
#include "data/rng.h"
#include "data/synth.h"

using namespace decam;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const bool quick = args.config.n_train == 12;  // parse_args --quick preset

  // Fixed geometry per mode, mirroring the historical google-benchmark
  // setup: a 448^2 scene hiding a 112^2 payload (192^2 / 48^2 in quick).
  const int side = quick ? 192 : 448;
  const int target_side = quick ? 48 : 112;
  const double budget_ms = quick ? 50.0 : 400.0;

  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = side;
  data::Rng scene_rng(11);
  const Image source = generate_scene(params, scene_rng);
  data::Rng target_rng(12);
  const Image target = data::generate_target(target_side, target_side,
                                             target_rng);
  const std::size_t px = source.plane_size() * source.channels();

  std::printf("=== Extension: attack crafting run-time ===\n");
  std::printf("scene %dx%dx%d (seed 11), target %dx%d (seed 12)%s\n\n",
              source.width(), source.height(), source.channels(),
              target.width(), target.height(), quick ? " [quick]" : "");

  std::vector<bench::micro::BenchResult> results;
  // Crafting a QP attack on the full scene costs seconds, not micros —
  // min_iters=1 keeps each entry at warm-up + one measured run minimum.
  auto bench = [&](const std::string& name,
                   const std::function<void()>& fn) {
    results.push_back(
        bench::micro::run_bench(name, px, budget_ms, fn, /*min_iters=*/1));
    bench::micro::print_result(results.back());
  };

  for (const ScaleAlgo algo :
       {ScaleAlgo::Nearest, ScaleAlgo::Bilinear, ScaleAlgo::Bicubic}) {
    attack::AttackOptions options;
    options.algo = algo;
    options.eps = 2.0;
    bench(std::string("attack/craft/") + to_string(algo),
          [&] { (void)attack::craft_attack(source, target, options); });
  }

  // Adaptive surcharges on the bilinear base attack.
  attack::AttackOptions base;
  base.eps = 2.0;
  const Image plain = attack::craft_attack(source, target, base).image;
  bench("attack/adaptive/offgrid_spread", [&] {
    (void)attack::spread_off_grid(plain, target.width(), target.height(),
                                  base.algo, 0.5);
  });
  bench("attack/adaptive/noise_mask", [&] {
    attack::NoiseMaskOptions options;
    options.base = base;
    (void)attack::noise_masked_attack(source, target, options);
  });

  return 0;
}
