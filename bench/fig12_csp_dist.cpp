// Reproduces Figure 12 of the paper: the CSP (centered spectrum point)
// count distribution for benign vs attack images. Expected shape: almost
// all benign images have exactly 1 CSP; almost all attack images have 2 or
// more — which is why a fixed threshold of 2 works with no calibration.
#include <map>

#include "bench_common.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner("Figure 12: CSP count distributions", args);
  const ExperimentData data = bench::load_data(args);

  auto tally = [](const std::vector<ScoreRow>& rows) {
    std::map<int, int> counts;
    for (const ScoreRow& row : rows) ++counts[static_cast<int>(row.csp)];
    return counts;
  };
  const auto benign = tally(data.train_benign);
  const auto attack = tally(data.train_attack);

  report::Table table({"CSP count", "benign images", "attack images"});
  int max_csp = 1;
  for (const auto& [k, v] : benign) max_csp = std::max(max_csp, k);
  for (const auto& [k, v] : attack) max_csp = std::max(max_csp, k);
  for (int k = 0; k <= max_csp; ++k) {
    const int b = benign.count(k) ? benign.at(k) : 0;
    const int a = attack.count(k) ? attack.at(k) : 0;
    if (b == 0 && a == 0) continue;
    table.add_row({std::to_string(k), std::to_string(b), std::to_string(a)});
  }
  std::printf("%s\n", table.render().c_str());

  int benign_one = benign.count(1) ? benign.at(1) : 0;
  int attack_multi = 0;
  for (const auto& [k, v] : attack) {
    if (k >= 2) attack_multi += v;
  }
  std::printf(
      "%.1f%% of benign images have exactly 1 CSP; %.1f%% of attack images "
      "have >= 2 CSP.\n",
      100.0 * benign_one / data.train_benign.size(),
      100.0 * attack_multi / data.train_attack.size());
  std::printf(
      "Paper shape: 99.3%% of originals have 1 CSP, 98.2%% of attacks have "
      "more than 1.\n");
  return 0;
}
