// Reproduces Figure 8 of the paper (score distributions for the scaling
// detection method in the white-box setting): MSE and SSIM histograms of
// 50/50 (or --n) benign vs attack images with the selected threshold
// marked. Expected shape: two cleanly separated modes per metric.
#include "bench_common.h"
#include "report/histogram_ascii.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 8: scaling-detection score distributions (white-box)", args);
  const ExperimentData data = bench::load_data(args);

  {
    const auto benign =
        ExperimentData::column(data.train_benign, &ScoreRow::scaling_mse);
    const auto attack =
        ExperimentData::column(data.train_attack, &ScoreRow::scaling_mse);
    const WhiteBoxResult wb = calibrate_white_box(benign, attack);
    report::HistogramOptions options;
    options.bins = 26;
    options.log_x = true;  // benign ~O(10), attack ~O(10^3..10^4)
    options.threshold = wb.calibration.threshold;
    std::printf("MSE(I, S) distribution  [threshold %.2f]\n%s\n",
                wb.calibration.threshold,
                report::render_histogram(benign, attack, options).c_str());
  }
  {
    const auto benign =
        ExperimentData::column(data.train_benign, &ScoreRow::scaling_ssim);
    const auto attack =
        ExperimentData::column(data.train_attack, &ScoreRow::scaling_ssim);
    const WhiteBoxResult wb = calibrate_white_box(benign, attack);
    report::HistogramOptions options;
    options.bins = 26;
    options.threshold = wb.calibration.threshold;
    std::printf("SSIM(I, S) distribution  [threshold %.4f]\n%s\n",
                wb.calibration.threshold,
                report::render_histogram(benign, attack, options).c_str());
  }
  std::printf(
      "Paper shape: benign and attack modes are disjoint for both metrics; "
      "the paper's thresholds on its datasets were MSE 1714.96 and SSIM "
      "0.61.\n");
  return 0;
}
