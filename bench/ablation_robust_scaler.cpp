// Ablation: the PREVENTION defence of Quiring et al. — use a robust
// scaling algorithm (area averaging / wide-support Lanczos) so the attack
// cannot inject target pixels in the first place. For attacks crafted
// against each vulnerable scaler we measure how close the downscale gets
// to the target under (a) the scaler the attack targets and (b) robust
// alternatives. Expected shape: near-zero target error under the targeted
// scaler, large error under area averaging — and a visible quality trade
// (this is the approach whose drawbacks motivate Decamouflage).
#include "attack/scale_attack.h"
#include "bench_common.h"
#include "data/rng.h"
#include "data/synth.h"
#include "metrics/mse.h"
#include "report/table.h"

using namespace decam;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.config.n_train == 50) args.config.n_train = 16;
  bench::print_banner("Ablation: robust-scaler prevention (Quiring et al.)",
                      args);

  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = args.config.min_side;
  params.max_side = args.config.max_side;

  const ScaleAlgo attack_algos[] = {ScaleAlgo::Nearest, ScaleAlgo::Bilinear,
                                    ScaleAlgo::Bicubic};
  const ScaleAlgo eval_algos[] = {ScaleAlgo::Nearest, ScaleAlgo::Bilinear,
                                  ScaleAlgo::Bicubic, ScaleAlgo::Area};

  report::Table table({"Attack crafted for", "Downscaled with",
                       "MSE(scale(A), T)", "attack survives?"});
  for (const ScaleAlgo crafted : attack_algos) {
    data::Rng scene_rng(args.config.seed ^ 0xAB1A7E5ull);
    data::Rng target_rng(args.config.seed ^ 0x7A63E7ull);
    std::vector<Image> attacks;
    std::vector<Image> targets;
    attack::AttackOptions options;
    options.algo = crafted;
    options.eps = args.config.attack_eps;
    for (int i = 0; i < args.config.n_train; ++i) {
      data::Rng sc = scene_rng.fork();
      data::Rng tc = target_rng.fork();
      const Image scene = generate_scene(params, sc);
      targets.push_back(data::generate_target(args.config.target_width,
                                              args.config.target_height, tc));
      attacks.push_back(
          attack::craft_attack(scene, targets.back(), options).image);
    }
    for (const ScaleAlgo deployed : eval_algos) {
      double total = 0.0;
      for (std::size_t i = 0; i < attacks.size(); ++i) {
        const Image down =
            resize(attacks[i], args.config.target_width,
                   args.config.target_height, deployed);
        total += mse(down, targets[i]);
      }
      const double avg = total / attacks.size();
      table.add_row({to_string(crafted), to_string(deployed),
                     report::format_double(avg, 1),
                     avg < 100.0 ? "YES (pipeline compromised)"
                                 : "no (target destroyed)"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: each attack only survives the exact scaler it was crafted "
      "for; INTER_AREA-style averaging destroys every variant — Quiring et "
      "al.'s prevention — at the cost of changing the deployed pipeline, "
      "which is the compatibility drawback Decamouflage avoids.\n");
  return 0;
}
