// Reproduces Appendix Figures 15/16 of the paper: PSNR histograms for the
// scaling and filtering methods, demonstrating the NEGATIVE result that
// PSNR does not separate benign from attack images as well as MSE/SSIM —
// peak errors dominate the ratio. We also print the best achievable
// training accuracy per metric so the gap is quantified, not eyeballed.
#include "bench_common.h"
#include "report/histogram_ascii.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

namespace {

double best_accuracy(const std::vector<double>& benign,
                     const std::vector<double>& attack) {
  return calibrate_white_box(benign, attack).calibration.train_accuracy;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figures 15/16 (appendix): PSNR as a detection metric", args);
  const ExperimentData data = bench::load_data(args);

  for (const auto& [label, member] :
       {std::pair{"scaling", &ScoreRow::scaling_psnr},
        std::pair{"filtering", &ScoreRow::filtering_psnr}}) {
    const auto benign = ExperimentData::column(data.train_benign, member);
    const auto attack = ExperimentData::column(data.train_attack, member);
    report::HistogramOptions options;
    options.bins = 26;
    std::printf("PSNR histogram, %s method:\n%s\n", label,
                report::render_histogram(benign, attack, options).c_str());
  }

  report::Table table({"Method", "Metric", "Best training accuracy"});
  table.add_row({"scaling", "MSE",
                 report::format_percent(best_accuracy(
                     ExperimentData::column(data.train_benign,
                                            &ScoreRow::scaling_mse),
                     ExperimentData::column(data.train_attack,
                                            &ScoreRow::scaling_mse)))});
  table.add_row({"scaling", "PSNR",
                 report::format_percent(best_accuracy(
                     ExperimentData::column(data.train_benign,
                                            &ScoreRow::scaling_psnr),
                     ExperimentData::column(data.train_attack,
                                            &ScoreRow::scaling_psnr)))});
  table.add_row({"filtering", "SSIM",
                 report::format_percent(best_accuracy(
                     ExperimentData::column(data.train_benign,
                                            &ScoreRow::filtering_ssim),
                     ExperimentData::column(data.train_attack,
                                            &ScoreRow::filtering_ssim)))});
  table.add_row({"filtering", "PSNR",
                 report::format_percent(best_accuracy(
                     ExperimentData::column(data.train_benign,
                                            &ScoreRow::filtering_psnr),
                     ExperimentData::column(data.train_attack,
                                            &ScoreRow::filtering_psnr)))});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper shape: PSNR's benign and attack histograms overlap heavily, so "
      "the paper does not recommend PSNR for Decamouflage. Note: PSNR is a "
      "monotone transform of MSE per image pair, so its best achievable "
      "accuracy equals MSE's on the same scores; the paper's observed "
      "overlap reflects threshold instability (the decision boundary falls "
      "in a dense region), which is what the histograms show.\n");
  return 0;
}
