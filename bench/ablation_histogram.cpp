// Ablation: Xiao et al.'s color-histogram detection suggestion and the
// adaptive attack that defeats it (Quiring et al.'s observation, echoed by
// the paper's related-work discussion). The adaptive attacker picks a
// HISTOGRAM-MATCHED target: a random spatial shuffle of the source's own
// downscale. The content the model sees is destroyed (wrong image), the
// histogram is (nearly) identical — so the histogram detector loses most
// of its signal while Decamouflage's scaling method still fires. Expected
// shape: the histogram AUC drops markedly under the adaptive attack while
// scaling-MSE stays at ~1.0. (The drop is partial rather than total here
// because the QP's minimal-norm perturbation itself leaves a small
// histogram footprint; Quiring et al.'s fully adaptive variant constrains
// that away inside the optimisation.)
#include <algorithm>

#include "attack/scale_attack.h"
#include "bench_common.h"
#include "core/calibration.h"
#include "core/histogram_detector.h"
#include "core/roc.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

namespace {

// Histogram-preserving target: the source's own downscale, spatially
// shuffled. Same pixels (same histogram), different image.
Image shuffled_downscale(const Image& source, int tw, int th, ScaleAlgo algo,
                         data::Rng& rng) {
  Image down = resize(source, tw, th, algo).clamp();
  for (int c = 0; c < down.channels(); ++c) {
    auto plane = down.plane(c);
    for (std::size_t i = plane.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(rng.next_int(0, static_cast<int>(i) - 1));
      std::swap(plane[i - 1], plane[j]);
    }
  }
  return down;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.config.n_train == 50) args.config.n_train = 20;
  bench::print_banner(
      "Ablation: histogram baseline vs the histogram-matched adaptive attack",
      args);

  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = args.config.min_side;
  params.max_side = args.config.max_side;
  data::Rng scene_rng(args.config.seed ^ 0x6157A6ull);
  data::Rng target_rng(args.config.seed ^ 0x7A63E7ull);
  data::Rng shuffle_rng(args.config.seed ^ 0x5BAFF1Eull);

  attack::AttackOptions attack_opts;
  attack_opts.algo = args.config.white_box_algo;
  attack_opts.eps = args.config.attack_eps;

  HistogramDetectorConfig hist_config;
  hist_config.down_width = args.config.target_width;
  hist_config.down_height = args.config.target_height;
  hist_config.algo = args.config.white_box_algo;
  const HistogramDetector hist{hist_config};

  ScalingDetectorConfig scaling_config;
  scaling_config.down_width = args.config.target_width;
  scaling_config.down_height = args.config.target_height;
  scaling_config.down_algo = scaling_config.up_algo =
      args.config.white_box_algo;
  scaling_config.metric = Metric::MSE;
  const ScalingDetector scaling{scaling_config};

  const SteganalysisDetector steg{};

  std::vector<double> hist_benign, hist_plain, hist_adaptive;
  std::vector<double> mse_benign, mse_plain, mse_adaptive;
  std::vector<double> csp_benign, csp_plain, csp_adaptive;
  for (int i = 0; i < args.config.n_train; ++i) {
    data::Rng sc = scene_rng.fork();
    data::Rng tc = target_rng.fork();
    const Image scene = generate_scene(params, sc);
    const Image plain_target = data::generate_target(
        args.config.target_width, args.config.target_height, tc);
    const Image adaptive_target = shuffled_downscale(
        scene, args.config.target_width, args.config.target_height,
        args.config.white_box_algo, shuffle_rng);
    const Image plain =
        attack::craft_attack(scene, plain_target, attack_opts).image;
    const Image adaptive =
        attack::craft_attack(scene, adaptive_target, attack_opts).image;
    hist_benign.push_back(hist.score(scene));
    hist_plain.push_back(hist.score(plain));
    hist_adaptive.push_back(hist.score(adaptive));
    mse_benign.push_back(scaling.score(scene));
    mse_plain.push_back(scaling.score(plain));
    mse_adaptive.push_back(scaling.score(adaptive));
    csp_benign.push_back(steg.score(scene));
    csp_plain.push_back(steg.score(plain));
    csp_adaptive.push_back(steg.score(adaptive));
    std::fprintf(stderr, "\r[ablation] %d/%d", i + 1, args.config.n_train);
  }
  std::fprintf(stderr, "\n");

  // AUC is threshold-free: with small sample counts the white-box search
  // would overfit and overstate the weak baseline.
  auto auc = [](const std::vector<double>& benign,
                const std::vector<double>& attack, Polarity polarity) {
    return roc_curve(benign, attack, polarity).auc;
  };
  report::Table table({"Detector", "Plain attack AUC", "Adaptive attack AUC"});
  table.add_row(
      {"histogram intersection (Xiao)",
       report::format_double(
           auc(hist_benign, hist_plain, Polarity::LowIsAttack), 3),
       report::format_double(
           auc(hist_benign, hist_adaptive, Polarity::LowIsAttack), 3)});
  table.add_row(
      {"Decamouflage scaling/MSE",
       report::format_double(
           auc(mse_benign, mse_plain, Polarity::HighIsAttack), 3),
       report::format_double(
           auc(mse_benign, mse_adaptive, Polarity::HighIsAttack), 3)});
  table.add_row(
      {"Decamouflage steganalysis/CSP",
       report::format_double(
           auc(csp_benign, csp_plain, Polarity::HighIsAttack), 3),
       report::format_double(
           auc(csp_benign, csp_adaptive, Polarity::HighIsAttack), 3)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: the histogram-matched attack degrades the histogram baseline "
      "(its AUC drops below the structural methods') while scaling/MSE "
      "holds at ~1.0 — the residual histogram signal comes from the "
      "perturbation itself, which a fully adaptive attacker (Quiring et "
      "al.: histogram constraints inside the QP) can also remove. CSP "
      "weakens too: a shuffled-downscale target has a flat spectrum, so "
      "its harmonic copies are faint — another reason the paper majority-"
      "votes structural methods instead of trusting any single signal.\n");
  return 0;
}
