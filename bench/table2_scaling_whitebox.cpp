// Reproduces Table 2 of the paper: the scaling detection method in the
// white-box setting. Thresholds (MSE and SSIM) are selected on the
// regime-A calibration set via the white-box search, then evaluated on the
// unseen regime-B set. Expected shape: accuracy >= ~99%, FAR/FRR near 0.
#include "bench_common.h"
#include "core/evaluation.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner("Table 2: scaling detection, white-box", args);
  const ExperimentData data = bench::load_data(args);

  report::Table table({"Metric", "Threshold", "Acc.", "Prec.", "Rec.", "FAR",
                       "FRR"});
  struct Row {
    const char* label;
    double ScoreRow::* member;
  };
  const Row rows[] = {{"MSE", &ScoreRow::scaling_mse},
                      {"SSIM", &ScoreRow::scaling_ssim}};
  for (const Row& row : rows) {
    const WhiteBoxResult wb = calibrate_white_box(
        ExperimentData::column(data.train_benign, row.member),
        ExperimentData::column(data.train_attack, row.member));
    const DetectionStats stats =
        evaluate(ExperimentData::column(data.eval_benign, row.member),
                 ExperimentData::column(data.eval_attack_white, row.member),
                 wb.calibration);
    table.add_row({row.label,
                   report::format_double(wb.calibration.threshold,
                                         row.member == &ScoreRow::scaling_mse
                                             ? 2
                                             : 4),
                   report::format_percent(stats.accuracy()),
                   report::format_percent(stats.precision()),
                   report::format_percent(stats.recall()),
                   report::format_percent(stats.far()),
                   report::format_percent(stats.frr())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reports (1000+1000 images, real datasets): MSE 99.9%% acc, "
      "0.0%% FAR, 0.1%% FRR; SSIM 99.0%% acc, 0.3%% FAR, 0.1%% FRR.\n");
  return 0;
}
